//! `intertubes` — command-line front end for the reproduction.
//!
//! Machine-readable exports of the study's artifacts (the `figures` binary
//! in `intertubes-bench` prints human-readable tables; this tool writes
//! JSON/GeoJSON/CSV for downstream tooling).
//!
//! ```sh
//! intertubes summary                    # map summary as JSON on stdout
//! intertubes geojson map.geojson        # Fig. 1 as GeoJSON
//! intertubes risk risk.json             # risk matrix + §4.2 metrics
//! intertubes sharing-csv sharing.csv    # per-conduit tenant counts
//! intertubes latency latency.json       # §5.3 per-pair delays
//! intertubes export out/                # everything, one file per artifact
//! intertubes --seed 42 summary          # any subcommand on another world
//! intertubes --strict summary           # abort (exit 3) on any dirty input
//! intertubes --faults plan.json summary # inject faults, degrade, report
//! ```
//!
//! Exit codes: 0 success, 2 usage error, 3 data error (strict-mode
//! failure, unreadable/invalid fault plan, unwritable output).

use std::path::Path;

use intertubes::degrade::DegradationPolicy;
use intertubes::faults::FaultPlan;
use intertubes::{Study, StudyConfig};
use serde_json::json;

fn usage() -> ! {
    eprintln!(
        "usage: intertubes [--seed N] [--strict|--lenient] [--faults <plan.json>] <command> [args]\n\
         flags:\n\
           --seed N               world seed (default 1504)\n\
           --threads N            worker threads for the parallel stages\n\
                                  (default: INTERTUBES_THREADS, then rayon;\n\
                                  output is identical at any thread count)\n\
           --strict               abort on the first malformed input (exit 3)\n\
           --lenient              absorb malformed input and report it (default)\n\
           --faults <plan.json>   inject the fault plan into every pipeline input\n\
         commands:\n\
           summary                map summary JSON to stdout\n\
           geojson <out>          constructed map as GeoJSON\n\
           risk <out>             risk matrix + sharing metrics JSON\n\
           sharing-csv <out>      per-conduit tenancy CSV\n\
           latency <out>          per-pair delay comparison JSON\n\
           resilience <out>       min-cut / bridges / articulation JSON\n\
           annotated <out>        traffic/delay/risk-annotated GeoJSON (10k probes)\n\
           whatif <out>           section-4 metrics before/after the eq.-2 plan\n\
           export <dir>           write all of the above into a directory"
    );
    std::process::exit(2);
}

/// Aborts with exit code 3: the inputs (not the invocation) are bad.
fn data_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(3);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = StudyConfig::default();
    let mut faults_path: Option<String> = None;
    loop {
        match args.first().map(String::as_str) {
            Some("--threads") => {
                if args.len() < 2 {
                    usage();
                }
                let n: usize = args[1].parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("--threads takes a positive integer");
                    std::process::exit(2);
                });
                // Highest-priority thread-count source after test overrides
                // (DESIGN.md §7); set before any parallel stage runs.
                std::env::set_var("INTERTUBES_THREADS", n.to_string());
                args.drain(..2);
            }
            Some("--seed") => {
                if args.len() < 2 {
                    usage();
                }
                cfg.world.seed = args[1].parse().unwrap_or_else(|_| {
                    eprintln!("--seed takes an integer");
                    std::process::exit(2);
                });
                args.drain(..2);
            }
            Some("--strict") => {
                cfg.policy = DegradationPolicy::Strict;
                args.drain(..1);
            }
            Some("--lenient") => {
                cfg.policy = DegradationPolicy::Lenient;
                args.drain(..1);
            }
            Some("--faults") => {
                if args.len() < 2 {
                    usage();
                }
                faults_path = Some(args[1].clone());
                args.drain(..2);
            }
            _ => break,
        }
    }
    let Some(command) = args.first().cloned() else {
        usage()
    };

    eprintln!(
        "building study (seed {}, {} policy, {} thread(s)) …",
        cfg.world.seed,
        cfg.policy,
        intertubes::parallel::thread_count()
    );
    let study = match &faults_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| data_error(&format!("cannot read fault plan {path}: {e}")));
            let plan = FaultPlan::from_json(&text)
                .unwrap_or_else(|e| data_error(&format!("invalid fault plan {path}: {e}")));
            match Study::new_faulted(cfg, &plan) {
                Ok((study, report, ledger)) => {
                    eprintln!("{}", ledger.render());
                    eprintln!("{}", report.render());
                    study
                }
                Err(e) => data_error(&e.to_string()),
            }
        }
        None => match Study::new_checked(cfg) {
            Ok((study, report)) => {
                eprintln!("{}", report.render());
                study
            }
            Err(e) => data_error(&e.to_string()),
        },
    };

    match command.as_str() {
        "summary" => {
            let text = serde_json::to_string_pretty(&summary_json(&study))
                .unwrap_or_else(|e| data_error(&format!("cannot serialize summary: {e:?}")));
            println!("{text}");
        }
        "geojson" => {
            let out = args.get(1).cloned().unwrap_or_else(|| usage());
            write_json(&out, &intertubes::map::to_geojson(&study.built.map));
        }
        "risk" => {
            let out = args.get(1).cloned().unwrap_or_else(|| usage());
            write_json(&out, &risk_json(&study));
        }
        "sharing-csv" => {
            let out = args.get(1).cloned().unwrap_or_else(|| usage());
            std::fs::write(&out, sharing_csv(&study))
                .unwrap_or_else(|e| data_error(&format!("cannot write {out}: {e}")));
            eprintln!("wrote {out}");
        }
        "latency" => {
            let out = args.get(1).cloned().unwrap_or_else(|| usage());
            let report = study.latency();
            write_json(&out, &serde_json::to_value(&report)
                .unwrap_or_else(|e| data_error(&format!("cannot serialize: {e:?}"))));
        }
        "resilience" => {
            let out = args.get(1).cloned().unwrap_or_else(|| usage());
            write_json(&out, &resilience_json(&study));
        }
        "annotated" => {
            let out = args.get(1).cloned().unwrap_or_else(|| usage());
            let overlay = study.overlay(&study.campaign(Some(10_000)));
            write_json(&out, &study.annotated_geojson(&overlay));
        }
        "whatif" => {
            let out = args.get(1).cloned().unwrap_or_else(|| usage());
            let report = study.what_if_augmented();
            write_json(&out, &serde_json::to_value(&report)
                .unwrap_or_else(|e| data_error(&format!("cannot serialize: {e:?}"))));
        }
        "export" => {
            let dir = args.get(1).cloned().unwrap_or_else(|| usage());
            std::fs::create_dir_all(&dir)
                .unwrap_or_else(|e| data_error(&format!("cannot create {dir}: {e}")));
            let p = |name: &str| Path::new(&dir).join(name).to_string_lossy().into_owned();
            write_json(&p("summary.json"), &summary_json(&study));
            write_json(
                &p("map.geojson"),
                &intertubes::map::to_geojson(&study.built.map),
            );
            write_json(&p("risk.json"), &risk_json(&study));
            std::fs::write(p("sharing.csv"), sharing_csv(&study))
                .unwrap_or_else(|e| data_error(&format!("cannot write sharing.csv: {e}")));
            let lat = study.latency();
            write_json(
                &p("latency.json"),
                &serde_json::to_value(&lat)
                .unwrap_or_else(|e| data_error(&format!("cannot serialize: {e:?}"))),
            );
            write_json(&p("resilience.json"), &resilience_json(&study));
            let overlay = study.overlay(&study.campaign(Some(10_000)));
            write_json(
                &p("map-annotated.geojson"),
                &study.annotated_geojson(&overlay),
            );
            let wi = study.what_if_augmented();
            write_json(
                &p("whatif.json"),
                &serde_json::to_value(&wi)
                .unwrap_or_else(|e| data_error(&format!("cannot serialize: {e:?}"))),
            );
            eprintln!("exported 8 artifacts into {dir}");
        }
        _ => usage(),
    }
}

fn write_json(path: &str, value: &serde_json::Value) {
    let text = serde_json::to_string_pretty(value)
        .unwrap_or_else(|e| data_error(&format!("cannot serialize {path}: {e:?}")));
    std::fs::write(path, text)
        .unwrap_or_else(|e| data_error(&format!("cannot write {path}: {e}")));
    eprintln!("wrote {path}");
}

fn summary_json(study: &Study) -> serde_json::Value {
    let s = intertubes::map::summarize(&study.built.map);
    json!({
        "seed": study.world.config.seed,
        "nodes": s.nodes,
        "links": s.links,
        "conduits": s.conduits,
        "validated_conduits": s.validated_conduits,
        "total_km": s.total_km,
        "hubs": s.hubs,
        "steps": study.built.reports,
        "paper_reference": { "nodes": 273, "links": 2411, "conduits": 542 },
    })
}

fn risk_json(study: &Study) -> serde_json::Value {
    let rm = study.risk_matrix();
    json!({
        "isps": rm.isps,
        "shared_by_at_least": intertubes::risk::conduits_shared_by_at_least(&rm),
        "fractions": {
            "ge2": intertubes::risk::sharing_fraction(&rm, 2),
            "ge3": intertubes::risk::sharing_fraction(&rm, 3),
            "ge4": intertubes::risk::sharing_fraction(&rm, 4),
        },
        "ranking": intertubes::risk::isp_sharing_ranking(&rm),
        "raw_shared": intertubes::risk::raw_shared_conduits(&rm),
        "hamming_mean_distances": intertubes::risk::hamming_heatmap(&rm).mean_distances(),
    })
}

fn resilience_json(study: &Study) -> serde_json::Value {
    let rm = study.risk_matrix();
    json!({
        "map": intertubes::risk::map_resilience(&study.built.map),
        "per_isp": intertubes::risk::isp_resilience(&study.built.map, &rm),
    })
}

fn sharing_csv(study: &Study) -> String {
    let map = &study.built.map;
    let mut out = String::from("conduit,a,b,length_km,tenants,validated,provenance\n");
    for (i, c) in map.conduits.iter().enumerate() {
        out.push_str(&format!(
            "{},{:?},{:?},{:.1},{},{},{}\n",
            i,
            map.nodes[c.a.index()].label,
            map.nodes[c.b.index()].label,
            c.geometry.length_km(),
            c.tenant_count(),
            c.validated,
            match c.provenance {
                intertubes::map::Provenance::Step1 => "step1",
                intertubes::map::Provenance::Step3 => "step3",
            }
        ));
    }
    out
}
