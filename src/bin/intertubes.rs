//! `intertubes` — command-line front end for the reproduction.
//!
//! Machine-readable exports of the study's artifacts (the `figures` binary
//! in `intertubes-bench` prints human-readable tables; this tool writes
//! JSON/GeoJSON/CSV for downstream tooling).
//!
//! ```sh
//! intertubes summary                    # map summary as JSON on stdout
//! intertubes geojson map.geojson        # Fig. 1 as GeoJSON
//! intertubes risk risk.json             # risk matrix + §4.2 metrics
//! intertubes sharing-csv sharing.csv    # per-conduit tenant counts
//! intertubes latency latency.json       # §5.3 per-pair delays
//! intertubes robustness rob.json        # §5.1 PI/SRR + peering suggestions
//! intertubes export out/                # everything, one file per artifact
//! intertubes --seed 42 summary          # any subcommand on another world
//! intertubes --strict summary           # abort (exit 3) on any dirty input
//! intertubes --faults plan.json summary # inject faults, degrade, report
//! intertubes --trace-json t.jsonl \
//!            --metrics-out m.json export out/   # structured trace + metrics
//! intertubes snapshot study.snap       # freeze the study (DESIGN.md §9)
//! intertubes snapshot study.snap --chaos torn-write
//!                                      # crash-safe save under injected faults
//! intertubes serve --snapshot study.snap --replay 10000 \
//!            --out responses.jsonl     # replay a mixed workload
//! intertubes serve --snapshot study.snap --chaos flaky-io \
//!            --chaos-report chaos.json # runtime fault injection (DESIGN.md §11)
//! intertubes serve --snapshot study.snap --stats-out stats.json
//!                                      # telemetry: count+timing planes, flight
//!                                      # recorder, plus stats.json.prom
//! intertubes query --snapshot study.snap '{"TopShared":{"k":8}}'
//! intertubes query --snapshot study.snap '"Stats"'  # telemetry self-query
//! intertubes scenario hurricane.json --snapshot study.snap \
//!            --out risk.json           # seeded scenario ensemble (DESIGN.md §12)
//! ```
//!
//! `serve`, `query`, and `scenario` never build a study: they load the frozen snapshot
//! (milliseconds) and answer from it, which is the whole point of the
//! serving split — `snapshot` pays the pipeline cost once.
//!
//! Every run records through `intertubes-obs`: stage spans, counters, and
//! structured events. The stderr log is the session echo (filtered by
//! `INTERTUBES_LOG`); `--trace-json` writes the full structured log as
//! JSON Lines with the run manifest as the final line, on success *and* on
//! data errors, so a failed run still explains itself.
//!
//! Exit codes: 0 success, 2 usage error, 3 data error (strict-mode
//! failure, unreadable/invalid fault plan, unwritable output).

use std::path::Path;

use intertubes::degrade::DegradationPolicy;
use intertubes::faults::FaultPlan;
use intertubes::obs::{self, Level, ObsConfig, RunInfo, TopologyCounts};
use intertubes::{Study, StudyConfig};
use serde_json::json;

fn usage() -> ! {
    eprintln!(
        "usage: intertubes [flags] <command> [args]\n\
         flags:\n\
           --seed N               world seed (flag wins over the StudyConfig\n\
                                  default of 1504)\n\
           --threads N            worker threads for the parallel stages;\n\
                                  resolution order: --threads, then the\n\
                                  INTERTUBES_THREADS environment variable,\n\
                                  then the rayon default (output is identical\n\
                                  at any thread count)\n\
           --strict               abort on the first malformed input (exit 3)\n\
           --lenient              absorb malformed input and report it (default)\n\
           --faults <plan.json>   inject the fault plan into every pipeline input\n\
           --trace-json <path>    write the structured log as JSON Lines, with\n\
                                  the run manifest as the final line\n\
           --metrics-out <path>   write the merged metrics registry as JSON\n\
         environment:\n\
           INTERTUBES_LOG         stderr log level: error|warn|info|debug|trace\n\
                                  (default info)\n\
           INTERTUBES_THREADS     worker thread count when --threads is absent\n\
         commands:\n\
           summary                map summary JSON to stdout\n\
           geojson <out>          constructed map as GeoJSON\n\
           risk <out>             risk matrix + sharing metrics JSON\n\
           sharing-csv <out>      per-conduit tenancy CSV\n\
           latency <out>          per-pair delay comparison JSON\n\
           robustness <out>       PI/SRR robustness + peering suggestions JSON\n\
           resilience <out>       min-cut / bridges / articulation JSON\n\
           annotated <out>        traffic/delay/risk-annotated GeoJSON (10k probes)\n\
           whatif <out>           section-4 metrics before/after the eq.-2 plan\n\
           export <dir>           write all of the above into a directory\n\
           snapshot <out> [--chaos <plan>]\n\
                                  freeze the study into a serving snapshot\n\
                                  (crash-safe save; --chaos injects runtime\n\
                                  faults from a plan file or built-in name)\n\
           serve --snapshot <path> [serve flags]\n\
                                  replay a deterministic mixed workload\n\
           serve --listen <addr> --snapshot [id=]<path>... [serve flags]\n\
                                  remote front-end: frame protocol over TCP,\n\
                                  snapshot routing, per-tenant quotas\n\
                                  (DESIGN.md section 14)\n\
           query --snapshot <path> <query-json>\n\
                                  answer one query from a snapshot\n\
           query --connect <addr> [query flags] [<query-json>]\n\
                                  answer over the wire: one query, or a\n\
                                  replayed workload split over --clients\n\
           scenario <plan.json> --snapshot <path> [--out <path>]\n\
                                  evaluate a geofenced scenario ensemble\n\
                                  (DESIGN.md section 12); the report goes to\n\
                                  --out or stdout. An invalid plan exits 2.\n\
         serve flags:\n\
           --replay N             workload size (default 10000)\n\
           --workload-seed N      workload generator seed (default 2026)\n\
           --queue N              bounded queue capacity (default 256)\n\
           --admit-max N          admission limit; excess queries are rejected\n\
           --deadline-us N        per-query latency deadline (0 = none)\n\
           --no-cache             disable the result cache\n\
           --out <path>           responses as JSON Lines (default stdout)\n\
           --stats <path>         batch stats JSON (default stdout)\n\
           --stats-out <path>     telemetry document (intertubes-stats/v1):\n\
                                  count plane, timing plane, flight recorder;\n\
                                  also writes <path>.prom (Prometheus text).\n\
                                  Accepted by serve and query; the canonical\n\
                                  count plane is embedded in the run manifest\n\
                                  as run.serve_stats\n\
           --chaos <plan>         runtime fault plan: a JSON file or a built-in\n\
                                  chaos scenario name (torn-write, flaky-io,\n\
                                  bit-rot, poisoned-cache, overload, torn-frame,\n\
                                  chaos-everything); under --listen the plan's\n\
                                  transport families (torn-frame, slow-loris,\n\
                                  disconnect) drive the wire injector\n\
           --chaos-report <path>  chaos report (ledger + health trace) JSON\n\
         serve --listen flags:\n\
           --listen <addr>        bind address (port 0 picks an ephemeral port)\n\
           --addr-file <path>     write the resolved listen address (scripts\n\
                                  discover the ephemeral port here)\n\
           --sessions N           exit after N client-initiated session closes\n\
                                  (without it the server runs forever)\n\
           --quota-burst N        per-tenant token-bucket size (0 = unlimited)\n\
           --quota-refill N       tokens restored per refill window\n\
           --quota-window N       refill window, in requests of that tenant\n\
                                  (request-count time keeps quota decisions\n\
                                  deterministic)\n\
         query flags (with --connect):\n\
           --tenant <id>          tenant id stamped into every frame\n\
                                  (default \"cli\")\n\
           --snapshot-id <id>     snapshot id to route to (default \"default\")\n\
           --clients N            split the workload over N concurrent\n\
                                  connections (default 1)\n\
           --workload-from <path> generate the mixed workload from this local\n\
                                  snapshot (with --replay/--workload-seed)\n\
                                  instead of sending one query\n\
           --out <path>           responses as JSON Lines (default stdout)"
    );
    std::process::exit(2);
}

/// A data error (exit 3): the inputs, not the invocation, are bad.
type CliResult<T> = Result<T, String>;

struct Invocation {
    cfg: StudyConfig,
    faults_path: Option<String>,
    trace_json: Option<String>,
    metrics_out: Option<String>,
    command: String,
    /// `<out>` / `<dir>` operand for the commands that take one.
    out: Option<String>,
    /// Remaining operands for `serve` / `query`, parsed per command.
    rest: Vec<String>,
}

fn parse_args() -> Invocation {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut cfg = StudyConfig::default();
    let mut faults_path: Option<String> = None;
    let mut trace_json: Option<String> = None;
    let mut metrics_out: Option<String> = None;
    loop {
        match args.first().map(String::as_str) {
            Some("--threads") => {
                if args.len() < 2 {
                    usage();
                }
                let n: usize = args[1].parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("--threads takes a positive integer");
                    std::process::exit(2);
                });
                // Highest-priority thread-count source after test overrides
                // (DESIGN.md §7); set before any parallel stage runs.
                std::env::set_var("INTERTUBES_THREADS", n.to_string());
                args.drain(..2);
            }
            Some("--seed") => {
                if args.len() < 2 {
                    usage();
                }
                cfg.world.seed = args[1].parse().unwrap_or_else(|_| {
                    eprintln!("--seed takes an integer");
                    std::process::exit(2);
                });
                args.drain(..2);
            }
            Some("--strict") => {
                cfg.policy = DegradationPolicy::Strict;
                args.drain(..1);
            }
            Some("--lenient") => {
                cfg.policy = DegradationPolicy::Lenient;
                args.drain(..1);
            }
            Some("--faults") => {
                if args.len() < 2 {
                    usage();
                }
                faults_path = Some(args[1].clone());
                args.drain(..2);
            }
            Some("--trace-json") => {
                if args.len() < 2 {
                    usage();
                }
                trace_json = Some(args[1].clone());
                args.drain(..2);
            }
            Some("--metrics-out") => {
                if args.len() < 2 {
                    usage();
                }
                metrics_out = Some(args[1].clone());
                args.drain(..2);
            }
            _ => break,
        }
    }
    let Some(command) = args.first().cloned() else {
        usage()
    };
    // Validate the command shape before the session starts, so usage
    // errors (exit 2) never produce a half-recorded trace.
    let out = match command.as_str() {
        "summary" => None,
        "geojson" | "risk" | "sharing-csv" | "latency" | "robustness" | "resilience"
        | "annotated" | "whatif" | "export" | "snapshot" => {
            Some(args.get(1).cloned().unwrap_or_else(|| usage()))
        }
        "serve" => {
            // Shape check only (exit 2 now); flag values are validated by
            // the command handler (exit 3 — they concern data on disk).
            // The remote front-end (--listen) still serves snapshots, so
            // at least one --snapshot is required either way.
            if !args.iter().any(|a| a == "--snapshot") {
                usage()
            }
            None
        }
        "query" => {
            // Local answers need a snapshot; remote answers need a server.
            if !args.iter().any(|a| a == "--snapshot" || a == "--connect") {
                usage()
            }
            None
        }
        "scenario" => {
            // Plan operand plus a snapshot to evaluate against; the plan's
            // *content* is validated by the handler (an invalid DSL is
            // still an invocation-class error — exit 2 there too).
            if !args.iter().any(|a| a == "--snapshot") {
                usage()
            }
            match args.get(1) {
                Some(op) if !op.starts_with("--") => Some(op.clone()),
                _ => usage(),
            }
        }
        _ => usage(),
    };
    Invocation {
        cfg,
        faults_path,
        trace_json,
        metrics_out,
        command,
        out,
        rest: args.into_iter().skip(1).collect(),
    }
}

/// `serve` command flags (everything after the command word).
struct ServeOpts {
    /// `--snapshot` values: a single path for local replay, or repeated
    /// `[id=]path` specs for the remote front-end.
    snapshots: Vec<String>,
    replay: usize,
    workload_seed: u64,
    queue: usize,
    admit_max: usize,
    deadline_us: u64,
    cache: bool,
    out: Option<String>,
    stats: Option<String>,
    stats_out: Option<String>,
    chaos: Option<String>,
    chaos_report: Option<String>,
    /// `--listen <addr>`: run the remote front-end instead of a replay.
    listen: Option<String>,
    /// `--addr-file <path>`: write the resolved listen address.
    addr_file: Option<String>,
    /// `--sessions N`: exit after N client-initiated session closes.
    sessions: Option<u64>,
    quota_burst: u64,
    quota_refill: u64,
    quota_window: u64,
}

fn parse_serve_opts(rest: &[String]) -> ServeOpts {
    let mut opts = ServeOpts {
        snapshots: Vec::new(),
        replay: 10_000,
        workload_seed: 2026,
        queue: 256,
        admit_max: usize::MAX,
        deadline_us: 0,
        cache: true,
        out: None,
        stats: None,
        stats_out: None,
        chaos: None,
        chaos_report: None,
        listen: None,
        addr_file: None,
        sessions: None,
        quota_burst: 0,
        quota_refill: 1,
        quota_window: 1,
    };
    let mut i = 0;
    let value = |rest: &[String], i: usize| -> String {
        rest.get(i + 1).cloned().unwrap_or_else(|| usage())
    };
    let number = |rest: &[String], i: usize, flag: &str| -> u64 {
        value(rest, i).parse().unwrap_or_else(|_| {
            eprintln!("{flag} takes a non-negative integer");
            std::process::exit(2);
        })
    };
    while i < rest.len() {
        match rest[i].as_str() {
            "--snapshot" => {
                opts.snapshots.push(value(rest, i));
                i += 2;
            }
            "--listen" => {
                opts.listen = Some(value(rest, i));
                i += 2;
            }
            "--addr-file" => {
                opts.addr_file = Some(value(rest, i));
                i += 2;
            }
            "--sessions" => {
                opts.sessions = Some(number(rest, i, "--sessions"));
                i += 2;
            }
            "--quota-burst" => {
                opts.quota_burst = number(rest, i, "--quota-burst");
                i += 2;
            }
            "--quota-refill" => {
                opts.quota_refill = number(rest, i, "--quota-refill");
                i += 2;
            }
            "--quota-window" => {
                opts.quota_window = number(rest, i, "--quota-window");
                i += 2;
            }
            "--replay" => {
                opts.replay = number(rest, i, "--replay") as usize;
                i += 2;
            }
            "--workload-seed" => {
                opts.workload_seed = number(rest, i, "--workload-seed");
                i += 2;
            }
            "--queue" => {
                opts.queue = (number(rest, i, "--queue") as usize).max(1);
                i += 2;
            }
            "--admit-max" => {
                opts.admit_max = number(rest, i, "--admit-max") as usize;
                i += 2;
            }
            "--deadline-us" => {
                opts.deadline_us = number(rest, i, "--deadline-us");
                i += 2;
            }
            "--no-cache" => {
                opts.cache = false;
                i += 1;
            }
            "--out" => {
                opts.out = Some(value(rest, i));
                i += 2;
            }
            "--stats" => {
                opts.stats = Some(value(rest, i));
                i += 2;
            }
            "--stats-out" => {
                opts.stats_out = Some(value(rest, i));
                i += 2;
            }
            "--chaos" => {
                opts.chaos = Some(value(rest, i));
                i += 2;
            }
            "--chaos-report" => {
                opts.chaos_report = Some(value(rest, i));
                i += 2;
            }
            _ => usage(),
        }
    }
    if opts.snapshots.is_empty() {
        usage();
    }
    if opts.listen.is_none() && opts.snapshots.len() > 1 {
        eprintln!("multiple --snapshot entries need --listen (local replay serves one)");
        std::process::exit(2);
    }
    opts
}

fn main() {
    let inv = parse_args();

    // The session owns all stderr output from here on: events echo through
    // the INTERTUBES_LOG-filtered renderer, and everything is captured for
    // --trace-json / --metrics-out.
    let session = obs::Session::begin(ObsConfig::from_env().with_echo());
    let mut fault_plan_doc: Option<serde_json::Value> = None;
    let mut health_doc: Option<serde_json::Value> = None;
    let mut serve_stats_doc: Option<serde_json::Value> = None;
    let mut tenants_doc: Option<serde_json::Value> = None;
    let mut topology: Option<TopologyCounts> = None;
    let exit_status = match run(
        &inv,
        &mut fault_plan_doc,
        &mut health_doc,
        &mut serve_stats_doc,
        &mut tenants_doc,
        &mut topology,
    ) {
        Ok(()) => 0,
        Err(msg) => {
            obs::event(Level::Error, "cli", &format!("error: {msg}"), &[]);
            3
        }
    };
    let record = session.finish();

    let info = RunInfo {
        command: inv.command.clone(),
        seed: inv.cfg.world.seed,
        policy: inv.cfg.policy.to_string(),
        fault_plan: fault_plan_doc,
        threads: intertubes::parallel::thread_count(),
        exit_status,
        health: health_doc,
        serve_stats: serve_stats_doc,
        tenants: tenants_doc,
    };
    let manifest = obs::build_manifest(&info, &record, topology.as_ref());
    let mut sink_failed = false;
    if let Some(path) = &inv.trace_json {
        let jsonl = obs::record_to_jsonl(&record, &manifest);
        if let Err(e) = std::fs::write(path, jsonl) {
            eprintln!("error: cannot write trace {path}: {e}");
            sink_failed = true;
        } else {
            eprintln!("wrote {path}");
        }
    }
    if let Some(path) = &inv.metrics_out {
        let text = serde_json::to_string_pretty(&record.metrics.to_json())
            .unwrap_or_else(|_| "{}".to_string());
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("error: cannot write metrics {path}: {e}");
            sink_failed = true;
        } else {
            eprintln!("wrote {path}");
        }
    }
    if exit_status != 0 || sink_failed {
        std::process::exit(if exit_status != 0 { exit_status } else { 3 });
    }
}

fn run(
    inv: &Invocation,
    fault_plan_doc: &mut Option<serde_json::Value>,
    health_doc: &mut Option<serde_json::Value>,
    serve_stats_doc: &mut Option<serde_json::Value>,
    tenants_doc: &mut Option<serde_json::Value>,
    topology: &mut Option<TopologyCounts>,
) -> CliResult<()> {
    // The serving commands answer from a frozen snapshot — no world, no
    // corpus, no pipeline.
    match inv.command.as_str() {
        "serve" => {
            return run_serve(
                inv,
                fault_plan_doc,
                health_doc,
                serve_stats_doc,
                tenants_doc,
                topology,
            )
        }
        "query" => return run_query(inv, serve_stats_doc, topology),
        "scenario" => return run_scenario(inv, topology),
        _ => {}
    }

    let cfg = inv.cfg;
    obs::event(
        Level::Info,
        "cli",
        &format!(
            "building study (seed {}, {} policy, {} thread(s)) …",
            cfg.world.seed,
            cfg.policy,
            intertubes::parallel::thread_count()
        ),
        &[],
    );

    let study = match &inv.faults_path {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read fault plan {path}: {e}"))?;
            let plan = FaultPlan::from_json(&text)
                .map_err(|e| format!("invalid fault plan {path}: {e}"))?;
            // Embed the plan document in the run manifest so a trace is
            // self-describing.
            *fault_plan_doc = serde_json::from_str(&text).ok();
            let (study, report, ledger) =
                Study::new_faulted(cfg, &plan).map_err(|e| e.to_string())?;
            obs::event(Level::Info, "cli", &ledger.render(), &[]);
            obs::event(Level::Info, "cli", &report.render(), &[]);
            study
        }
        None => {
            let (study, report) = Study::new_checked(cfg).map_err(|e| e.to_string())?;
            obs::event(Level::Info, "cli", &report.render(), &[]);
            study
        }
    };
    let s = intertubes::map::summarize(&study.built.map);
    *topology = Some(TopologyCounts {
        nodes: s.nodes,
        links: s.links,
        conduits: s.conduits,
        validated_conduits: s.validated_conduits,
    });

    let out = inv.out.as_deref();
    match inv.command.as_str() {
        "summary" => {
            let text = serde_json::to_string_pretty(&summary_json(&study))
                .map_err(|e| format!("cannot serialize summary: {e:?}"))?;
            println!("{text}");
        }
        "geojson" => {
            write_json(operand(out)?, &intertubes::map::to_geojson(&study.built.map))?;
        }
        "risk" => {
            write_json(operand(out)?, &risk_json(&study))?;
        }
        "sharing-csv" => {
            let out = operand(out)?;
            std::fs::write(out, sharing_csv(&study))
                .map_err(|e| format!("cannot write {out}: {e}"))?;
            wrote(out);
        }
        "latency" => {
            let report = study.latency();
            write_json(
                operand(out)?,
                &serde_json::to_value(&report).map_err(|e| format!("cannot serialize: {e:?}"))?,
            )?;
        }
        "robustness" => {
            write_json(operand(out)?, &robustness_json(&study)?)?;
        }
        "resilience" => {
            write_json(operand(out)?, &resilience_json(&study))?;
        }
        "annotated" => {
            let overlay = study.overlay(&study.campaign(Some(10_000)));
            write_json(operand(out)?, &study.annotated_geojson(&overlay))?;
        }
        "whatif" => {
            let report = study.what_if_augmented();
            write_json(
                operand(out)?,
                &serde_json::to_value(&report).map_err(|e| format!("cannot serialize: {e:?}"))?,
            )?;
        }
        "export" => {
            let dir = operand(out)?;
            std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {dir}: {e}"))?;
            let p = |name: &str| Path::new(dir).join(name).to_string_lossy().into_owned();
            write_json(&p("summary.json"), &summary_json(&study))?;
            write_json(
                &p("map.geojson"),
                &intertubes::map::to_geojson(&study.built.map),
            )?;
            write_json(&p("risk.json"), &risk_json(&study))?;
            std::fs::write(p("sharing.csv"), sharing_csv(&study))
                .map_err(|e| format!("cannot write sharing.csv: {e}"))?;
            let lat = study.latency();
            write_json(
                &p("latency.json"),
                &serde_json::to_value(&lat).map_err(|e| format!("cannot serialize: {e:?}"))?,
            )?;
            write_json(&p("robustness.json"), &robustness_json(&study)?)?;
            write_json(&p("resilience.json"), &resilience_json(&study))?;
            let overlay = study.overlay(&study.campaign(Some(10_000)));
            write_json(
                &p("map-annotated.geojson"),
                &study.annotated_geojson(&overlay),
            )?;
            let wi = study.what_if_augmented();
            write_json(
                &p("whatif.json"),
                &serde_json::to_value(&wi).map_err(|e| format!("cannot serialize: {e:?}"))?,
            )?;
            obs::event(
                Level::Info,
                "cli",
                &format!("exported 9 artifacts into {dir}"),
                &[],
            );
        }
        "snapshot" => {
            let out = operand(out)?;
            // Same probe sizing as `annotated`, so the embedded overlay
            // matches the exported artifact.
            let snap = study.snapshot(Some(10_000));
            // Optional `--chaos <plan>` after the operand: route the
            // crash-safe save through an injecting ChaosSession. A failed
            // save (exit 3) must leave any previous snapshot loadable.
            match chaos_session_from_rest(&inv.rest[1..], inv.cfg.policy, fault_plan_doc)? {
                Some(session) => {
                    let rep = intertubes::serve::save_with(
                        &session,
                        &snap,
                        Path::new(out),
                        &session.retry_policy(),
                    );
                    *health_doc = Some(session.report().health_value());
                    let rep = rep.map_err(|e| e.to_string())?;
                    obs::event(
                        Level::Info,
                        "cli",
                        &format!(
                            "chaos save: {} attempt(s), {}us virtual backoff",
                            rep.attempts, rep.backoff_us
                        ),
                        &[],
                    );
                }
                None => {
                    snap.save(out).map_err(|e| e.to_string())?;
                }
            }
            wrote(out);
        }
        // parse_args only lets known commands through.
        other => return Err(format!("unknown command {other}")),
    }
    Ok(())
}

/// Resolves a `--chaos <spec>` value: a built-in chaos scenario name
/// first, else a fault-plan JSON file. Returns the plan plus the plan
/// document embedded in the run manifest.
fn resolve_chaos_plan(spec: &str) -> CliResult<(FaultPlan, serde_json::Value)> {
    for (name, plan) in FaultPlan::built_in_chaos_scenarios() {
        if name == spec {
            let doc = serde_json::from_str(&plan.to_json()).unwrap_or(serde_json::Value::Null);
            return Ok((plan, doc));
        }
    }
    let text = std::fs::read_to_string(spec).map_err(|e| {
        format!("--chaos {spec}: not a built-in scenario and cannot read as a file: {e}")
    })?;
    let plan =
        FaultPlan::from_json(&text).map_err(|e| format!("invalid chaos plan {spec}: {e}"))?;
    let doc = serde_json::from_str(&text).unwrap_or(serde_json::Value::Null);
    Ok((plan, doc))
}

/// Parses an optional trailing `--chaos <spec>` (used by `snapshot`,
/// whose output operand is positional) into a bound session.
fn chaos_session_from_rest(
    rest: &[String],
    policy: DegradationPolicy,
    fault_plan_doc: &mut Option<serde_json::Value>,
) -> CliResult<Option<intertubes::serve::ChaosSession>> {
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        if arg == "--chaos" {
            let spec = it
                .next()
                .ok_or_else(|| "--chaos takes a plan file or scenario name".to_string())?;
            let (plan, doc) = resolve_chaos_plan(spec)?;
            if fault_plan_doc.is_none() {
                *fault_plan_doc = Some(doc);
            }
            return Ok(Some(intertubes::serve::ChaosSession::new(plan, policy)));
        }
    }
    Ok(None)
}

/// Fills the manifest topology from a loaded snapshot's map (the serving
/// commands have no built study).
fn note_topology(
    snap: &intertubes::serve::StudySnapshot,
    topology: &mut Option<TopologyCounts>,
) {
    let s = intertubes::map::summarize(&snap.map);
    *topology = Some(TopologyCounts {
        nodes: s.nodes,
        links: s.links,
        conduits: s.conduits,
        validated_conduits: s.validated_conduits,
    });
}

/// Loads the snapshot named by `--snapshot` and fills the manifest
/// topology from its map.
fn load_snapshot(
    path: &str,
    topology: &mut Option<TopologyCounts>,
) -> CliResult<intertubes::serve::StudySnapshot> {
    let mut span = obs::stage("serve.load");
    let snap = intertubes::serve::StudySnapshot::load(path).map_err(|e| e.to_string())?;
    span.items("conduits", snap.map.conduits.len());
    span.items("pairs", snap.paths.pairs.len());
    note_topology(&snap, topology);
    Ok(snap)
}

fn run_serve(
    inv: &Invocation,
    fault_plan_doc: &mut Option<serde_json::Value>,
    health_doc: &mut Option<serde_json::Value>,
    serve_stats_doc: &mut Option<serde_json::Value>,
    tenants_doc: &mut Option<serde_json::Value>,
    topology: &mut Option<TopologyCounts>,
) -> CliResult<()> {
    let opts = parse_serve_opts(&inv.rest);
    if opts.listen.is_some() {
        return run_serve_listen(&opts, fault_plan_doc, serve_stats_doc, tenants_doc, topology);
    }
    let chaos = match &opts.chaos {
        Some(spec) => {
            let (plan, doc) = resolve_chaos_plan(spec)?;
            if fault_plan_doc.is_none() {
                *fault_plan_doc = Some(doc);
            }
            Some(intertubes::serve::ChaosSession::new(plan, inv.cfg.policy))
        }
        None => None,
    };
    // Local replay serves exactly one snapshot (parse_serve_opts rejects
    // more without --listen).
    let snapshot_path = opts.snapshots.first().cloned().unwrap_or_default();
    // Under chaos the load itself is fault-injected: resilient load with
    // `.tmp`/`.bak` salvage and policy-driven retry. A salvage is a
    // degradation event, recorded against wave 0 (pre-batch).
    let (snap, load_info) = match &chaos {
        Some(session) => {
            let mut span = obs::stage("serve.load");
            let report = intertubes::serve::load_with(
                session,
                Path::new(&snapshot_path),
                &session.retry_policy(),
            )
            .map_err(|e| e.to_string())?;
            span.items("conduits", report.snapshot.map.conduits.len());
            span.items("pairs", report.snapshot.paths.pairs.len());
            if report.salvaged() {
                session.note_degraded(
                    0,
                    &format!("salvaged snapshot from {} candidate", report.source),
                );
            }
            let info = (report.source, report.attempts, report.backoff_us);
            (report.snapshot, Some(info))
        }
        None => (load_snapshot(&snapshot_path, topology)?, None),
    };
    if load_info.is_some() {
        note_topology(&snap, topology);
    }
    let mut engine = intertubes::serve::QueryEngine::new(snap);
    let workload = intertubes::serve::mixed_workload(
        engine.snapshot(),
        opts.replay,
        opts.workload_seed,
    );
    let cfg = intertubes::serve::ServeConfig {
        queue_capacity: opts.queue,
        admit_max: opts.admit_max,
        deadline_us: opts.deadline_us,
        cache: intertubes::serve::CacheConfig {
            enabled: opts.cache,
            ..intertubes::serve::CacheConfig::default()
        },
        ..intertubes::serve::ServeConfig::default()
    };
    let telemetry = std::sync::Arc::new(
        intertubes::serve::ServeTelemetry::with_flight_capacity(cfg.flight_capacity),
    );
    engine.attach_telemetry(telemetry.clone());
    let cache = intertubes::serve::ResultCache::new(cfg.cache);
    let (responses, stats, chaos_report) = {
        let mut span = obs::stage("serve.replay");
        span.items("queries", workload.len());
        match &chaos {
            Some(session) => {
                let (r, s, mut rep) = intertubes::serve::run_batch_chaos_telemetry(
                    &engine, &workload, &cfg, &cache, session, &telemetry,
                );
                if let Some((source, attempts, backoff)) = load_info {
                    rep.load_attempts = attempts;
                    rep.load_backoff_us = backoff;
                    rep.salvaged_from = (source != "primary").then(|| source.to_string());
                }
                (r, s, Some(rep))
            }
            None => {
                let (r, s) = intertubes::serve::run_batch_telemetry(
                    &engine, &workload, &cfg, &cache, &telemetry,
                );
                (r, s, None)
            }
        }
    };
    let jsonl: String = responses
        .iter()
        .map(|r| format!("{r}\n"))
        .collect();
    match &opts.out {
        Some(path) => {
            std::fs::write(path, jsonl).map_err(|e| format!("cannot write {path}: {e}"))?;
            wrote(path);
        }
        None => print!("{jsonl}"),
    }
    let stats_text = serde_json::to_string_pretty(
        &serde_json::to_value(&stats).map_err(|e| format!("cannot serialize stats: {e:?}"))?,
    )
    .map_err(|e| format!("cannot serialize stats: {e:?}"))?;
    match &opts.stats {
        Some(path) => {
            std::fs::write(path, &stats_text)
                .map_err(|e| format!("cannot write {path}: {e}"))?;
            wrote(path);
        }
        // With responses on stdout, stats go to the structured log so the
        // response stream stays machine-parseable.
        None if opts.out.is_none() => {
            obs::event(Level::Info, "serve", &format!("stats: {stats_text}"), &[]);
        }
        None => println!("{stats_text}"),
    }
    if let Some(rep) = chaos_report {
        let text = rep.to_canonical_json();
        match &opts.chaos_report {
            Some(path) => {
                std::fs::write(path, &text)
                    .map_err(|e| format!("cannot write {path}: {e}"))?;
                wrote(path);
            }
            None => obs::event(Level::Info, "serve", &format!("chaos report: {text}"), &[]),
        }
        *health_doc = Some(rep.health_value());
    }
    write_stats_out(&telemetry, Some(&cache), opts.stats_out.as_deref(), serve_stats_doc)?;
    Ok(())
}

/// Splits a `--snapshot [id=]path` spec. Without an explicit id the file
/// stem names the snapshot (`study.snap` → `"study"`), falling back to
/// `"default"` for unstemmable paths.
fn split_snapshot_spec(spec: &str) -> (String, String) {
    if let Some((id, path)) = spec.split_once('=') {
        if !id.is_empty() && !id.contains(std::path::MAIN_SEPARATOR) {
            return (id.to_string(), path.to_string());
        }
    }
    let id = Path::new(spec)
        .file_stem()
        .map(|s| s.to_string_lossy().into_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "default".to_string());
    (id, spec.to_string())
}

/// `serve --listen`: the remote front-end (DESIGN.md §14). Loads every
/// `--snapshot [id=]path` into one registry, binds the listener, and runs
/// the poll loop in the foreground until `--sessions` is satisfied. The
/// shared telemetry's canonical count plane (with its per-tenant
/// aggregates) lands in the run manifest as `run.serve_stats` /
/// `run.tenants`.
fn run_serve_listen(
    opts: &ServeOpts,
    fault_plan_doc: &mut Option<serde_json::Value>,
    serve_stats_doc: &mut Option<serde_json::Value>,
    tenants_doc: &mut Option<serde_json::Value>,
    topology: &mut Option<TopologyCounts>,
) -> CliResult<()> {
    use intertubes::net::{netpoll::NbListener, NetServer, SnapshotRegistry};

    let listen = opts.listen.as_deref().unwrap_or("127.0.0.1:0");
    let chaos_plan = match &opts.chaos {
        Some(spec) => {
            let (plan, doc) = resolve_chaos_plan(spec)?;
            if fault_plan_doc.is_none() {
                *fault_plan_doc = Some(doc);
            }
            Some(plan)
        }
        None => None,
    };
    let cfg = intertubes::serve::ServeConfig {
        queue_capacity: opts.queue,
        admit_max: opts.admit_max,
        deadline_us: opts.deadline_us,
        cache: intertubes::serve::CacheConfig {
            enabled: opts.cache,
            ..intertubes::serve::CacheConfig::default()
        },
        ..intertubes::serve::ServeConfig::default()
    };
    let telemetry = std::sync::Arc::new(
        intertubes::serve::ServeTelemetry::with_flight_capacity(cfg.flight_capacity),
    );
    let mut registry = SnapshotRegistry::with_telemetry(telemetry.clone());
    for spec in &opts.snapshots {
        let (id, path) = split_snapshot_spec(spec);
        let snap = load_snapshot(&path, topology)?;
        registry.insert(&id, intertubes::serve::QueryEngine::new(snap), cfg);
        obs::event(
            Level::Info,
            "net",
            &format!("serving snapshot {id:?} from {path}"),
            &[],
        );
    }
    let mut server = NetServer::new(registry);
    if opts.quota_burst > 0 {
        server = server.with_quota(intertubes::serve::QuotaConfig::limited(
            opts.quota_burst,
            opts.quota_refill,
            opts.quota_window,
        ));
    }
    if let Some(plan) = &chaos_plan {
        server = server.with_chaos(plan);
    }
    if let Some(n) = opts.sessions {
        server = server.with_session_limit(n);
    }
    let listener =
        NbListener::bind(listen).map_err(|e| format!("cannot bind {listen}: {e}"))?;
    let local = listener.local_addr();
    if let Some(path) = &opts.addr_file {
        std::fs::write(path, local.to_string())
            .map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    obs::event(Level::Info, "net", &format!("listening on {local}"), &[]);
    let report = server
        .run(&listener)
        .map_err(|e| format!("serve loop failed: {e}"))?;
    obs::event(
        Level::Info,
        "net",
        &format!(
            "served {} frame(s) over {} connection(s): {} response(s), \
             {} error frame(s), {} quota rejection(s), {} fault(s) injected",
            report.frames,
            report.accepted,
            report.responses,
            report.errors,
            report.quota_rejected,
            report.chaos_injected
        ),
        &[],
    );
    write_stats_out(&telemetry, None, opts.stats_out.as_deref(), serve_stats_doc)?;
    // The per-tenant aggregates double as run.tenants — the manifest's
    // remote-tenancy record.
    *tenants_doc = serve_stats_doc
        .as_ref()
        .and_then(|doc| doc.get("counts"))
        .and_then(|counts| counts.get("tenants"))
        .cloned();
    Ok(())
}

/// Writes the telemetry document (and its Prometheus sibling) to
/// `--stats-out`, and embeds the **canonicalized** form — count plane
/// only, timing stripped — in the run manifest as `run.serve_stats`.
fn write_stats_out(
    telemetry: &intertubes::serve::ServeTelemetry,
    cache: Option<&intertubes::serve::ResultCache>,
    stats_out: Option<&str>,
    serve_stats_doc: &mut Option<serde_json::Value>,
) -> CliResult<()> {
    let doc = telemetry.stats_document(cache);
    *serve_stats_doc = Some(intertubes::serve::canonicalize_stats(&doc));
    let Some(path) = stats_out else {
        return Ok(());
    };
    write_json(path, &doc)?;
    let prom_path = format!("{path}.prom");
    std::fs::write(&prom_path, telemetry.prometheus(cache))
        .map_err(|e| format!("cannot write {prom_path}: {e}"))?;
    wrote(&prom_path);
    Ok(())
}

fn run_query(
    inv: &Invocation,
    serve_stats_doc: &mut Option<serde_json::Value>,
    topology: &mut Option<TopologyCounts>,
) -> CliResult<()> {
    let mut snapshot_path: Option<&String> = None;
    let mut query_text: Option<&String> = None;
    let mut stats_out: Option<&String> = None;
    let mut connect: Option<&String> = None;
    let mut tenant = "cli".to_string();
    let mut snapshot_id = "default".to_string();
    let mut clients: usize = 1;
    let mut workload_from: Option<&String> = None;
    let mut replay: usize = 10_000;
    let mut workload_seed: u64 = 2026;
    let mut out: Option<&String> = None;
    let value = |rest: &[String], i: usize| -> String {
        rest.get(i + 1).cloned().unwrap_or_else(|| usage())
    };
    let mut i = 0;
    while i < inv.rest.len() {
        match inv.rest[i].as_str() {
            "--snapshot" => {
                snapshot_path = inv.rest.get(i + 1);
                i += 2;
            }
            "--stats-out" => {
                stats_out = inv.rest.get(i + 1);
                i += 2;
            }
            "--connect" => {
                connect = inv.rest.get(i + 1);
                i += 2;
            }
            "--tenant" => {
                tenant = value(&inv.rest, i);
                i += 2;
            }
            "--snapshot-id" => {
                snapshot_id = value(&inv.rest, i);
                i += 2;
            }
            "--clients" => {
                clients = value(&inv.rest, i).parse().unwrap_or_else(|_| {
                    eprintln!("--clients takes a positive integer");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--workload-from" => {
                workload_from = inv.rest.get(i + 1);
                i += 2;
            }
            "--replay" => {
                replay = value(&inv.rest, i).parse().unwrap_or_else(|_| {
                    eprintln!("--replay takes a non-negative integer");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--workload-seed" => {
                workload_seed = value(&inv.rest, i).parse().unwrap_or_else(|_| {
                    eprintln!("--workload-seed takes a non-negative integer");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--out" => {
                out = inv.rest.get(i + 1);
                i += 2;
            }
            _ => {
                query_text = Some(&inv.rest[i]);
                i += 1;
            }
        }
    }
    if let Some(addr) = connect {
        let remote = RemoteQuery {
            addr: addr.clone(),
            tenant,
            snapshot_id,
            clients: clients.max(1),
            workload_from: workload_from.cloned(),
            replay,
            workload_seed,
            query_text: query_text.cloned(),
            out: out.cloned(),
        };
        return run_query_remote(&remote, topology);
    }
    let (Some(path), Some(text)) = (snapshot_path, query_text) else {
        usage()
    };
    let query: intertubes::serve::Query = serde_json::from_str(text)
        .map_err(|e| format!("invalid query {text:?}: {e:?}"))?;
    let snap = load_snapshot(path, topology)?;
    let mut engine = intertubes::serve::QueryEngine::new(snap);
    match stats_out {
        // With telemetry requested, the one query runs through the
        // scheduler (one wave of one query) so the telemetry plane
        // observes it exactly as `serve` would — the response bytes are
        // identical either way because the engine is pure.
        Some(stats_path) => {
            let cfg = intertubes::serve::ServeConfig::default();
            let telemetry = std::sync::Arc::new(
                intertubes::serve::ServeTelemetry::with_flight_capacity(cfg.flight_capacity),
            );
            engine.attach_telemetry(telemetry.clone());
            let cache = intertubes::serve::ResultCache::new(cfg.cache);
            let (responses, _) = intertubes::serve::run_batch_telemetry(
                &engine,
                std::slice::from_ref(&query),
                &cfg,
                &cache,
                &telemetry,
            );
            println!("{}", responses[0]);
            write_stats_out(&telemetry, Some(&cache), Some(stats_path), serve_stats_doc)?;
        }
        None => println!("{}", engine.answer(&query).to_canonical_json()),
    }
    Ok(())
}

/// `query --connect` flags, bundled.
struct RemoteQuery {
    addr: String,
    tenant: String,
    snapshot_id: String,
    clients: usize,
    workload_from: Option<String>,
    replay: usize,
    workload_seed: u64,
    query_text: Option<String>,
    out: Option<String>,
}

/// `query --connect`: answer over the wire. One query (positional JSON)
/// goes through a single [`intertubes::net::NetClient`]; with
/// `--workload-from` the deterministic mixed workload is generated
/// locally and split over `--clients` concurrent connections — the same
/// harness the remote gate byte-compares across client counts.
fn run_query_remote(
    remote: &RemoteQuery,
    topology: &mut Option<TopologyCounts>,
) -> CliResult<()> {
    use std::net::ToSocketAddrs;
    let addr = remote
        .addr
        .to_socket_addrs()
        .map_err(|e| format!("cannot resolve {}: {e}", remote.addr))?
        .next()
        .ok_or_else(|| format!("{} resolves to no address", remote.addr))?;
    match (&remote.workload_from, &remote.query_text) {
        (Some(snap_path), None) => {
            // The workload generator needs the snapshot's shape (node and
            // conduit counts), so the client loads it locally — the
            // *answers* still come over the wire.
            let snap = load_snapshot(snap_path, topology)?;
            let workload =
                intertubes::serve::mixed_workload(&snap, remote.replay, remote.workload_seed);
            let responses = intertubes::net::run_clients(
                addr,
                &remote.tenant,
                &remote.snapshot_id,
                &workload,
                remote.clients,
            )
            .map_err(|e| format!("remote workload failed: {e}"))?;
            let jsonl: String = responses.iter().map(|r| format!("{r}\n")).collect();
            match &remote.out {
                Some(path) => {
                    std::fs::write(path, jsonl)
                        .map_err(|e| format!("cannot write {path}: {e}"))?;
                    wrote(path);
                }
                None => print!("{jsonl}"),
            }
            Ok(())
        }
        (None, Some(text)) => {
            let query: intertubes::serve::Query = serde_json::from_str(text)
                .map_err(|e| format!("invalid query {text:?}: {e:?}"))?;
            let mut client = intertubes::net::NetClient::new(addr, &remote.tenant)
                .map_err(|e| format!("cannot connect to {addr}: {e}"))?;
            let reply = client
                .request(&remote.snapshot_id, 1, &query)
                .map_err(|e| format!("remote query failed: {e}"))?;
            client.close();
            println!("{}", reply.payload());
            match &reply {
                intertubes::net::NetReply::Response(_) => Ok(()),
                intertubes::net::NetReply::ErrorFrame(payload) => {
                    Err(format!("server answered with an error frame: {payload}"))
                }
            }
        }
        _ => usage(),
    }
}

fn run_scenario(inv: &Invocation, topology: &mut Option<TopologyCounts>) -> CliResult<()> {
    let plan_path = inv
        .out
        .as_deref()
        .ok_or_else(|| "missing scenario plan operand".to_string())?;
    let mut snapshot_path: Option<&String> = None;
    let mut out: Option<&String> = None;
    let mut i = 0;
    let rest = &inv.rest[1..];
    while i < rest.len() {
        match rest[i].as_str() {
            "--snapshot" => {
                snapshot_path = rest.get(i + 1);
                i += 2;
            }
            "--out" => {
                out = rest.get(i + 1);
                i += 2;
            }
            _ => usage(),
        }
    }
    let Some(path) = snapshot_path else { usage() };
    let text = std::fs::read_to_string(plan_path)
        .map_err(|e| format!("cannot read scenario plan {plan_path}: {e}"))?;
    let plan = match intertubes::scenario::ScenarioPlan::from_json(&text) {
        Ok(plan) => plan,
        Err(e) => {
            // An invalid plan is an invocation-class error, like usage():
            // the typed error goes to stderr and the process exits 2
            // (tests/scenario_goldens.rs pins the code per error family).
            eprintln!("invalid scenario plan {plan_path}: {e}");
            std::process::exit(2);
        }
    };
    let snap = load_snapshot(path, topology)?;
    let engine = intertubes::serve::QueryEngine::new(snap);
    let report = {
        let mut span = obs::stage("scenario.ensemble");
        span.items("draws", plan.draws as usize);
        engine.conditional_risk(&plan).map_err(|e| e.to_string())?
    };
    let value =
        serde_json::to_value(&report).map_err(|e| format!("cannot serialize report: {e:?}"))?;
    match out {
        Some(path) => write_json(path, &value)?,
        None => {
            let text = serde_json::to_string_pretty(&value)
                .map_err(|e| format!("cannot serialize report: {e:?}"))?;
            println!("{text}");
        }
    }
    Ok(())
}

/// The `<out>` operand, guaranteed present by `parse_args` for every
/// command that reaches here.
fn operand(out: Option<&str>) -> CliResult<&str> {
    out.ok_or_else(|| "missing output operand".to_string())
}

fn wrote(path: &str) {
    obs::event(Level::Info, "cli", &format!("wrote {path}"), &[]);
}

fn write_json(path: &str, value: &serde_json::Value) -> CliResult<()> {
    let text = serde_json::to_string_pretty(value)
        .map_err(|e| format!("cannot serialize {path}: {e:?}"))?;
    std::fs::write(path, text).map_err(|e| format!("cannot write {path}: {e}"))?;
    wrote(path);
    Ok(())
}

fn summary_json(study: &Study) -> serde_json::Value {
    let s = intertubes::map::summarize(&study.built.map);
    json!({
        "seed": study.world.config.seed,
        "nodes": s.nodes,
        "links": s.links,
        "conduits": s.conduits,
        "validated_conduits": s.validated_conduits,
        "total_km": s.total_km,
        "hubs": s.hubs,
        "steps": study.built.reports,
        "paper_reference": { "nodes": 273, "links": 2411, "conduits": 542 },
    })
}

fn risk_json(study: &Study) -> serde_json::Value {
    let rm = study.risk_matrix();
    json!({
        "isps": rm.isps,
        "shared_by_at_least": intertubes::risk::conduits_shared_by_at_least(&rm),
        "fractions": {
            "ge2": intertubes::risk::sharing_fraction(&rm, 2),
            "ge3": intertubes::risk::sharing_fraction(&rm, 3),
            "ge4": intertubes::risk::sharing_fraction(&rm, 4),
        },
        "ranking": intertubes::risk::isp_sharing_ranking(&rm),
        "raw_shared": intertubes::risk::raw_shared_conduits(&rm),
        "hamming_mean_distances": intertubes::risk::hamming_heatmap(&rm).mean_distances(),
    })
}

fn robustness_json(study: &Study) -> CliResult<serde_json::Value> {
    // Paper §5.1: the 12 most-shared conduits.
    let report = study.robustness(12);
    serde_json::to_value(&report).map_err(|e| format!("cannot serialize: {e:?}"))
}

fn resilience_json(study: &Study) -> serde_json::Value {
    let rm = study.risk_matrix();
    json!({
        "map": intertubes::risk::map_resilience(&study.built.map),
        "per_isp": intertubes::risk::isp_resilience(&study.built.map, &rm),
    })
}

fn sharing_csv(study: &Study) -> String {
    let map = &study.built.map;
    let mut out = String::from("conduit,a,b,length_km,tenants,validated,provenance\n");
    for (i, c) in map.conduits.iter().enumerate() {
        out.push_str(&format!(
            "{},{:?},{:?},{:.1},{},{},{}\n",
            i,
            map.nodes[c.a.index()].label,
            map.nodes[c.b.index()].label,
            c.geometry.length_km(),
            c.tenant_count(),
            c.validated,
            match c.provenance {
                intertubes::map::Provenance::Step1 => "step1",
                intertubes::map::Provenance::Step3 => "step3",
            }
        ));
    }
    out
}
