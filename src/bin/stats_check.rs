//! `stats_check` — the CI stats gate's validator.
//!
//! Validates an `intertubes-stats/v1` document produced by the CLI's
//! `--stats-out` flag: the schema tag, the count plane's required fields,
//! the timing plane's quantile annotations, and the flight recorder's
//! shape. With `--canonical` it additionally prints the canonicalized
//! document (timing plane and cache-mode-dependent counters stripped) as
//! compact JSON on stdout — the byte-comparable form
//! `scripts/stats_gate.sh` diffs across thread counts and cache modes —
//! after proving no non-canonical key survived the strip.
//!
//! ```sh
//! intertubes serve --snapshot s.snap --stats-out stats.json
//! stats_check stats.json                 # validate
//! stats_check --canonical stats.json > canon.json   # byte-comparable form
//! ```
//!
//! Exit codes: 0 valid, 1 invalid document, 2 usage error.

use serde_json::Value;

/// Keys that must not appear anywhere in a canonicalized document —
/// mirrors `intertubes_serve::NONCANONICAL_STATS_KEYS`.
const FORBIDDEN_CANONICAL_KEYS: [&str; 8] = [
    "timing",
    "cache",
    "cache_hits",
    "cache_misses",
    "stale_served",
    "hit_rate",
    "outcome",
    "duration_bucket",
];

fn fail(msg: &str) -> ! {
    eprintln!("stats_check: {msg}");
    std::process::exit(1);
}

/// Recursively strips the non-canonical keys (the same transform as
/// `intertubes_serve::canonicalize_stats`; duplicated here so the checker
/// binary stays a pure reader of the on-disk format).
fn canonicalize(value: &Value) -> Value {
    match value {
        Value::Object(map) => Value::Object(
            map.iter()
                .filter(|(k, _)| !FORBIDDEN_CANONICAL_KEYS.contains(&k.as_str()))
                .map(|(k, v)| (k.clone(), canonicalize(v)))
                .collect(),
        ),
        Value::Array(items) => Value::Array(items.iter().map(canonicalize).collect()),
        other => other.clone(),
    }
}

/// Whether any forbidden key survives anywhere in the value.
fn find_forbidden(value: &Value) -> Option<String> {
    match value {
        Value::Object(map) => {
            for (k, v) in map.iter() {
                if FORBIDDEN_CANONICAL_KEYS.contains(&k.as_str()) {
                    return Some(k.clone());
                }
                if let Some(found) = find_forbidden(v) {
                    return Some(found);
                }
            }
            None
        }
        Value::Array(items) => items.iter().find_map(find_forbidden),
        _ => None,
    }
}

fn require_u64(obj: &Value, key: &str, ctx: &str) -> u64 {
    obj.get(key)
        .and_then(Value::as_u64)
        .unwrap_or_else(|| fail(&format!("{ctx}.{key} missing or not a u64")))
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut canonical = false;
    if args.first().map(String::as_str) == Some("--canonical") {
        canonical = true;
        args.remove(0);
    }
    let [path] = args.as_slice() else {
        eprintln!("usage: stats_check [--canonical] <stats.json>");
        std::process::exit(2);
    };

    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let doc: Value =
        serde_json::from_str(&text).unwrap_or_else(|e| fail(&format!("not JSON: {e:?}")));

    if doc.get("schema").and_then(Value::as_str) != Some("intertubes-stats/v1") {
        fail("schema is not \"intertubes-stats/v1\"");
    }

    // Count plane: all required aggregates present, internally consistent.
    let counts = doc
        .get("counts")
        .filter(|c| c.is_object())
        .unwrap_or_else(|| fail("missing counts object"));
    let submitted = require_u64(counts, "submitted", "counts");
    let admitted = require_u64(counts, "admitted", "counts");
    let rejected = require_u64(counts, "rejected", "counts");
    let waves = require_u64(counts, "waves", "counts");
    require_u64(counts, "degraded", "counts");
    require_u64(counts, "health_transitions", "counts");
    require_u64(counts, "flight_dumps", "counts");
    if admitted + rejected != submitted {
        fail(&format!(
            "counts are inconsistent: admitted {admitted} + rejected {rejected} != submitted {submitted}"
        ));
    }
    let families = counts
        .get("families")
        .and_then(Value::as_object)
        .unwrap_or_else(|| fail("counts.families missing or not an object"));
    let family_total: u64 = families.values().filter_map(Value::as_u64).sum();
    if family_total != admitted {
        fail(&format!(
            "family counts sum to {family_total}, expected admitted {admitted}"
        ));
    }
    if counts.get("responses").and_then(Value::as_object).is_none() {
        fail("counts.responses missing or not an object");
    }

    // Timing plane: present in the *full* document, with quantile
    // annotations per family histogram.
    let timing = doc
        .get("timing")
        .filter(|t| t.is_object())
        .unwrap_or_else(|| fail("missing timing object (full document expected)"));
    let per_family = timing
        .get("per_family")
        .and_then(Value::as_object)
        .unwrap_or_else(|| fail("timing.per_family missing or not an object"));
    for (family, hist) in per_family.iter() {
        for q in ["p50_us", "p95_us", "p99_us"] {
            if hist.get(q).and_then(Value::as_u64).is_none() {
                fail(&format!("timing.per_family.{family}.{q} missing"));
            }
        }
    }
    if timing.get("queue_depth").is_none() {
        fail("timing.queue_depth missing");
    }

    // Flight recorder shape.
    let flight = doc
        .get("flight")
        .filter(|f| f.is_object())
        .unwrap_or_else(|| fail("missing flight object"));
    require_u64(flight, "capacity", "flight");
    require_u64(flight, "pushed", "flight");
    let dumps = flight
        .get("dumps")
        .and_then(Value::as_array)
        .unwrap_or_else(|| fail("flight.dumps missing or not an array"));
    for (i, dump) in dumps.iter().enumerate() {
        if dump.get("reason").and_then(Value::as_str).is_none() {
            fail(&format!("flight.dumps[{i}].reason missing"));
        }
        if dump.get("events").and_then(Value::as_array).is_none() {
            fail(&format!("flight.dumps[{i}].events missing"));
        }
    }

    if canonical {
        let canon = canonicalize(&doc);
        if let Some(key) = find_forbidden(&canon) {
            fail(&format!(
                "non-canonical key {key:?} survived canonicalization"
            ));
        }
        match serde_json::to_string(&canon) {
            Ok(text) => println!("{text}"),
            Err(e) => fail(&format!("cannot serialize canonical form: {e:?}")),
        }
    } else {
        eprintln!(
            "stats_check: ok — {submitted} submitted, {waves} wave(s), {} familie(s), {} dump(s)",
            families.len(),
            dumps.len()
        );
    }
}
