//! `trace_check` — the CI trace gate.
//!
//! Validates a `--trace-json` JSON Lines file produced by the `intertubes`
//! CLI: every line must parse as JSON with a `type` field, and the final
//! line must be a run manifest that passes
//! [`intertubes::obs::validate_manifest`] with every end-to-end pipeline
//! stage present.
//!
//! ```sh
//! intertubes --trace-json out.jsonl export artifacts/
//! trace_check out.jsonl
//! trace_check --profile serve serve.jsonl      # serving-run span set
//! trace_check --profile scenario plan.jsonl    # scenario-run span set
//! trace_check --profile remote listen.jsonl    # remote front-end span set
//! ```
//!
//! The `--profile` flag selects which stage-span set the manifest must
//! contain: `export` (the default — the full pipeline), `serve` (snapshot
//! load, scheduler, replay), `scenario` (snapshot load plus the ensemble
//! evaluation), or `remote` (a `serve --listen` run: accept, frame, and
//! route spans around the scheduler).
//!
//! Exit codes: 0 valid, 1 invalid trace, 2 usage error.

use intertubes::obs::validate_manifest;
use serde_json::Value;

/// Stages an `export` run must record: the four map-construction steps,
/// ingest/sanitize, the traceroute overlay, the §4 risk analyses, and all
/// three §5 mitigation solvers.
const EXPORT_STAGES: [&str; 15] = [
    "world.generate",
    "corpus.generate",
    "records.sanitize",
    "map.sanitize",
    "map.step1",
    "map.step2",
    "map.step3",
    "map.step4",
    "probes.campaign",
    "overlay",
    "risk.matrix",
    "risk.hamming",
    "mitigation.robustness",
    "mitigation.augmentation",
    "mitigation.latency",
];

/// Stages a `serve` replay must record: the snapshot load, the scheduler's
/// wave loop, and the replay wrapper around it.
const SERVE_STAGES: [&str; 3] = ["serve.load", "serve.replay", "serve.schedule"];

/// Stages a `scenario` evaluation must record.
const SCENARIO_STAGES: [&str; 2] = ["serve.load", "scenario.ensemble"];

/// Stages a remote serving run (`serve --listen`) must record: the
/// snapshot load(s), the transport's accept/frame/route spans, and the
/// scheduler the routed batches run through.
const REMOTE_STAGES: [&str; 5] = [
    "serve.load",
    "net.accept",
    "net.frame",
    "net.route",
    "serve.schedule",
];

fn fail(msg: &str) -> ! {
    eprintln!("trace_check: {msg}");
    std::process::exit(1);
}

fn usage() -> ! {
    eprintln!("usage: trace_check [--profile export|serve|scenario|remote] <trace.jsonl>");
    std::process::exit(2);
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let mut required: &[&str] = &EXPORT_STAGES;
    if args.first().map(String::as_str) == Some("--profile") {
        if args.len() < 2 {
            usage();
        }
        required = match args[1].as_str() {
            "export" => &EXPORT_STAGES,
            "serve" => &SERVE_STAGES,
            "scenario" => &SCENARIO_STAGES,
            "remote" => &REMOTE_STAGES,
            _ => usage(),
        };
        args.drain(..2);
    }
    let [path] = args.as_slice() else { usage() };

    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| fail(&format!("cannot read {path}: {e}")));
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        fail(&format!("{path} is empty"));
    }

    let mut last: Option<Value> = None;
    for (i, line) in lines.iter().enumerate() {
        let v: Value = serde_json::from_str(line)
            .unwrap_or_else(|e| fail(&format!("line {}: not JSON: {e:?}", i + 1)));
        if v.get("type").and_then(Value::as_str).is_none() {
            fail(&format!("line {}: missing \"type\" field", i + 1));
        }
        last = Some(v);
    }

    let manifest = last.unwrap_or(Value::Null);
    if manifest.get("type").and_then(Value::as_str) != Some("manifest") {
        fail("final line is not the run manifest");
    }
    if manifest
        .get("run")
        .and_then(|r| r.get("exit_status"))
        .and_then(Value::as_i64)
        != Some(0)
    {
        fail("manifest records a non-zero exit status");
    }
    if let Err(problems) = validate_manifest(&manifest, required) {
        for p in &problems {
            eprintln!("trace_check: {p}");
        }
        fail(&format!("{} problem(s) in {path}", problems.len()));
    }

    let stages = manifest
        .get("stages")
        .and_then(Value::as_object)
        .map(|s| s.len())
        .unwrap_or(0);
    let events = manifest
        .get("events")
        .and_then(|e| e.get("total"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    println!(
        "trace_check: ok — {} line(s), {stages} stage(s), {events} event(s)",
        lines.len()
    );
}
