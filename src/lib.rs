//! Workspace-level facade for the InterTubes reproduction suite.
//!
//! Re-exports the [`intertubes`] crate so the root package's examples,
//! integration tests and the `intertubes` CLI binary share one entry point.
//! See the crate-level documentation of [`intertubes`] for the library API.

pub use intertubes::*;
