//! An interactive-style what-if session against the serving layer: freeze
//! (or load) a study snapshot, find the §4.2 chokepoints, then sever the
//! top-k most heavily shared conduits and report who is affected and what
//! the surviving routes cost in delay (DESIGN.md §9).
//!
//! ```sh
//! cargo run --release --example query_server              # freeze in-process
//! cargo run --release --example query_server -- 3         # cut the top 3
//! cargo run --release --example query_server -- 3 s.snap  # serve from a file
//! ```
//!
//! The second form pairs with the CLI: `intertubes snapshot s.snap` once,
//! then this example (and `intertubes serve`/`query`) answer from the
//! frozen artifact in milliseconds instead of rebuilding the study.

use intertubes::serve::{Query, QueryEngine, Response, StudySnapshot};
use intertubes::Study;

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let snap = match std::env::args().nth(2) {
        Some(path) => match StudySnapshot::load(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot load snapshot {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!("(no snapshot given — freezing the reference study in-process)");
            Study::reference().snapshot(Some(5_000))
        }
    };
    let engine = QueryEngine::new(snap);

    // Step 1: the §4.2 ranking — which trenches carry the most providers?
    println!("== The {k} most heavily shared conduits (§4.2) ==\n");
    let ranking = match engine.answer(&Query::TopShared { k }) {
        Response::TopShared(view) => view.ranking,
        other => {
            eprintln!("unexpected answer: {}", other.to_canonical_json());
            std::process::exit(1);
        }
    };
    for r in &ranking {
        println!(
            "  conduit {:>3}  {} — {}  ({} co-tenants)",
            r.conduit, r.a, r.b, r.shared
        );
    }

    // Step 2: the what-if — sever all of them at once.
    let cut: Vec<u32> = ranking.iter().map(|r| r.conduit).collect();
    println!("\n== What if all {k} were cut simultaneously? ==\n");
    let impact = match engine.answer(&Query::CutImpact { conduits: cut }) {
        Response::CutImpact(view) => view,
        other => {
            eprintln!("unexpected answer: {}", other.to_canonical_json());
            std::process::exit(1);
        }
    };
    let rep = &impact.report;
    println!(
        "providers losing at least one conduit: {} — {}",
        rep.affected_isps.len(),
        rep.affected_isps.join(", ")
    );
    println!("tenancies (links) lost: {}", rep.links_lost);
    println!(
        "fraction of conduits shared by ≥4 providers: {:.1} % → {:.1} %",
        rep.ge4_before * 100.0,
        rep.ge4_after * 100.0
    );
    println!(
        "worst single-conduit sharing: {} → {}",
        rep.max_sharing_before, rep.max_sharing_after
    );
    println!(
        "mean per-provider average risk: {:.2} → {:.2}",
        rep.mean_avg_risk_before, rep.mean_avg_risk_after
    );

    // Step 3: the §5.3 reading — what do the cuts cost in delay?
    println!("\n== City pairs whose best route crossed a severed conduit ==\n");
    if impact.pair_deltas.is_empty() {
        println!("  (none — no precomputed best route used those conduits)");
    }
    for d in impact.pair_deltas.iter().take(12) {
        match (d.after_us, d.delta_us) {
            (Some(after), Some(delta)) => println!(
                "  {} — {}: {:.0} µs → {:.0} µs (+{:.0} µs)",
                d.a, d.b, d.before_us, after, delta
            ),
            _ => println!(
                "  {} — {}: {:.0} µs → no stored route survives",
                d.a, d.b, d.before_us
            ),
        }
    }
    if impact.pair_deltas.len() > 12 {
        println!("  … and {} more pairs", impact.pair_deltas.len() - 12);
    }
}
