//! A what-if session over the real remote front-end: freeze (or load) a
//! study snapshot, stand up the framed-TCP serving loop in-process, and
//! run the conduit-cut conversation as two tenants of the same server —
//! an analyst doing the §4.2/§5.3 reading over the wire, and an "ops"
//! tenant that floods past its admission quota to show what a typed
//! rejection looks like (DESIGN.md §14).
//!
//! ```sh
//! cargo run --release --example query_server              # freeze in-process
//! cargo run --release --example query_server -- 3         # cut the top 3
//! cargo run --release --example query_server -- 3 s.snap  # serve from a file
//! ```
//!
//! The second form pairs with the CLI: `intertubes snapshot s.snap` once,
//! then this example (and `intertubes serve --listen`/`query --connect`)
//! answer from the frozen artifact in milliseconds instead of rebuilding
//! the study. Every answer below arrived as an `intertubes-wire/v1` frame.

use intertubes::net::{NetClient, NetServer, SnapshotRegistry};
use intertubes::serve::{Query, QueryEngine, QuotaConfig, Response, ServeConfig, StudySnapshot};
use intertubes::Study;

fn main() {
    let k: usize = std::env::args()
        .nth(1)
        .and_then(|v| v.parse().ok())
        .unwrap_or(4);
    let snap = match std::env::args().nth(2) {
        Some(path) => match StudySnapshot::load(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("cannot load snapshot {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!("(no snapshot given — freezing the reference study in-process)");
            Study::reference().snapshot(Some(5_000))
        }
    };

    // Stand up the front-end: one snapshot under the id "study", a quota
    // generous enough for the analyst's session (2 requests against a
    // burst of 4) but small enough for the 12-request flood below to hit
    // the wall.
    let mut registry = SnapshotRegistry::new();
    registry.insert("study", QueryEngine::new(snap), ServeConfig::default());
    let server = match NetServer::new(registry)
        .with_quota(QuotaConfig::limited(4, 2, 8))
        .spawn("127.0.0.1:0")
    {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cannot start the serving front-end: {e}");
            std::process::exit(1);
        }
    };
    let addr = server.addr();
    println!("serving snapshot \"study\" on {addr} (intertubes-wire/v1)\n");

    let mut analyst = match NetClient::new(addr, "analyst") {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect: {e}");
            std::process::exit(1);
        }
    };
    let mut next_id = 0u64;
    let mut ask = |client: &mut NetClient, query: &Query| -> Response {
        next_id += 1;
        let reply = match client.request("study", next_id, query) {
            Ok(reply) => reply,
            Err(e) => {
                eprintln!("request failed: {e}");
                std::process::exit(1);
            }
        };
        match serde_json::from_str(reply.payload()) {
            Ok(response) => response,
            Err(_) => {
                eprintln!("unexpected answer: {}", reply.payload());
                std::process::exit(1);
            }
        }
    };

    // Step 1: the §4.2 ranking — which trenches carry the most providers?
    println!("== The {k} most heavily shared conduits (§4.2) ==\n");
    let ranking = match ask(&mut analyst, &Query::TopShared { k }) {
        Response::TopShared(view) => view.ranking,
        other => {
            eprintln!("unexpected answer: {}", other.to_canonical_json());
            std::process::exit(1);
        }
    };
    for r in &ranking {
        println!(
            "  conduit {:>3}  {} — {}  ({} co-tenants)",
            r.conduit, r.a, r.b, r.shared
        );
    }

    // Step 2: the what-if — sever all of them at once.
    let cut: Vec<u32> = ranking.iter().map(|r| r.conduit).collect();
    println!("\n== What if all {k} were cut simultaneously? ==\n");
    let impact = match ask(&mut analyst, &Query::CutImpact { conduits: cut }) {
        Response::CutImpact(view) => view,
        other => {
            eprintln!("unexpected answer: {}", other.to_canonical_json());
            std::process::exit(1);
        }
    };
    let rep = &impact.report;
    println!(
        "providers losing at least one conduit: {} — {}",
        rep.affected_isps.len(),
        rep.affected_isps.join(", ")
    );
    println!("tenancies (links) lost: {}", rep.links_lost);
    println!(
        "fraction of conduits shared by ≥4 providers: {:.1} % → {:.1} %",
        rep.ge4_before * 100.0,
        rep.ge4_after * 100.0
    );
    println!(
        "worst single-conduit sharing: {} → {}",
        rep.max_sharing_before, rep.max_sharing_after
    );
    println!(
        "mean per-provider average risk: {:.2} → {:.2}",
        rep.mean_avg_risk_before, rep.mean_avg_risk_after
    );

    // Step 3: the §5.3 reading — what do the cuts cost in delay?
    println!("\n== City pairs whose best route crossed a severed conduit ==\n");
    if impact.pair_deltas.is_empty() {
        println!("  (none — no precomputed best route used those conduits)");
    }
    for d in impact.pair_deltas.iter().take(12) {
        match (d.after_us, d.delta_us) {
            (Some(after), Some(delta)) => println!(
                "  {} — {}: {:.0} µs → {:.0} µs (+{:.0} µs)",
                d.a, d.b, d.before_us, after, delta
            ),
            _ => println!(
                "  {} — {}: {:.0} µs → no stored route survives",
                d.a, d.b, d.before_us
            ),
        }
    }
    if impact.pair_deltas.len() > 12 {
        println!("  … and {} more pairs", impact.pair_deltas.len() - 12);
    }

    // Step 4: a second tenant floods past its token bucket. The analyst's
    // session above spent the analyst's tokens, not ops' — quotas are per
    // tenant — and the over-quota answers are typed rejections, not drops.
    println!("\n== A second tenant (\"ops\") floods past its quota ==\n");
    let mut ops = match NetClient::new(addr, "ops") {
        Ok(c) => c,
        Err(e) => {
            eprintln!("cannot connect: {e}");
            std::process::exit(1);
        }
    };
    let mut admitted = 0usize;
    let mut rejected = 0usize;
    let mut first_rejection: Option<String> = None;
    for i in 0..12u64 {
        match ask(&mut ops, &Query::TopShared { k: 1 }) {
            Response::Rejected { reason } => {
                rejected += 1;
                if first_rejection.is_none() {
                    first_rejection = Some(reason);
                }
            }
            _ => admitted += 1,
        }
        let _ = i;
    }
    println!("12 rapid-fire requests: {admitted} admitted, {rejected} rejected");
    if let Some(reason) = first_rejection {
        println!("first rejection: {reason}");
    }

    analyst.close();
    ops.close();
    match server.stop() {
        Ok(report) => println!(
            "\nserver report: {} frame(s), {} response(s), {} quota rejection(s), \
             {} session(s)",
            report.frames, report.responses, report.quota_rejected, report.sessions_closed
        ),
        Err(e) => eprintln!("server stop failed: {e}"),
    }
}
