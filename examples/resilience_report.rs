//! Physical resilience report: how many fiber cuts partition the US
//! long-haul infrastructure? (The §4 future-work question, with the §6.2
//! Title-II angle: more sharing means common fate.)
//!
//! ```sh
//! cargo run --release --example resilience_report
//! ```

use intertubes::risk::{isp_resilience, map_resilience};
use intertubes::Study;

fn main() {
    let study = Study::reference();
    let rm = study.risk_matrix();

    let r = map_resilience(&study.built.map);
    println!("== National map ==");
    println!("connected components: {}", r.components);
    println!(
        "bridge conduits (single cut partitions the map): {}",
        r.bridge_conduits.len()
    );
    for id in r.bridge_conduits.iter().take(5) {
        let c = &study.built.map.conduits[id.index()];
        println!(
            "  {} — {}",
            study.built.map.nodes[c.a.index()].label,
            study.built.map.nodes[c.b.index()].label
        );
    }
    println!("articulation cities: {}", r.articulation_cities.len());
    for c in r.articulation_cities.iter().take(5) {
        println!("  {c}");
    }
    println!(
        "minimum simultaneous conduit cuts to partition the map: {}",
        r.min_cut_conduits
    );
    if !r.min_cut_side.is_empty() {
        println!(
            "  cutting them strands: {}{}",
            r.min_cut_side
                .iter()
                .take(4)
                .cloned()
                .collect::<Vec<_>>()
                .join(", "),
            if r.min_cut_side.len() > 4 {
                ", …"
            } else {
                ""
            }
        );
    }

    println!("\n== Per-provider sub-networks ==");
    println!(
        "{:<18} {:>11} {:>8} {:>8}   note",
        "provider", "components", "bridges", "min cut"
    );
    let mut rows = isp_resilience(&study.built.map, &rm);
    rows.sort_by(|a, b| a.components.cmp(&b.components).then(a.isp.cmp(&b.isp)));
    for r in rows {
        let note = if r.components > 8 {
            "fragmented: leans on others' conduits between islands"
        } else if r.min_cut == 1 {
            "one cut splits it"
        } else {
            ""
        };
        println!(
            "{:<18} {:>11} {:>8} {:>8}   {note}",
            r.isp, r.components, r.bridges, r.min_cut
        );
    }
    println!(
        "\nthe paper's Suddenlink observation generalizes: a fragmented footprint \
         must transit shared conduits to reach its own islands — low average \
         sharing does not mean low exposure."
    );
}
