//! Risk audit: the paper's §4 analysis for a single provider — where does
//! its shared-risk exposure come from, who shares its trenches, and which
//! conduits are its chokepoints?
//!
//! ```sh
//! cargo run --release --example risk_audit -- "Sprint"
//! ```

use intertubes::risk::{hamming_heatmap, isp_sharing_ranking};
use intertubes::Study;

fn main() {
    let isp = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "Sprint".to_string());
    let study = Study::reference();
    let rm = study.risk_matrix();
    let Some(idx) = rm.isp_index(&isp) else {
        eprintln!(
            "unknown provider {isp:?}; choose one of: {}",
            rm.isps.join(", ")
        );
        std::process::exit(1);
    };

    println!("== Risk audit: {isp} ==\n");
    let conduits = rm.conduits_of(idx);
    println!("long-haul links (conduit tenancies): {}", conduits.len());

    // Exposure histogram.
    let mut exposure: Vec<u16> = conduits.iter().map(|&c| rm.shared[c]).collect();
    exposure.sort_unstable();
    let avg = exposure.iter().map(|&v| v as f64).sum::<f64>() / exposure.len().max(1) as f64;
    println!("average co-tenants per conduit: {avg:.2}");
    println!(
        "quartiles: p25 {} · median {} · p75 {} · worst {}",
        exposure[exposure.len() / 4],
        exposure[exposure.len() / 2],
        exposure[3 * exposure.len() / 4],
        exposure.last().copied().unwrap_or(0),
    );

    // Where does this provider sit in the Fig. 6 ranking?
    let ranking = isp_sharing_ranking(&rm);
    let pos = ranking
        .iter()
        .position(|r| r.isp == isp)
        .expect("isp is in the ranking");
    println!(
        "\nFig. 6 ranking position: {} of {} (1 = least infrastructure sharing)",
        pos + 1,
        ranking.len()
    );

    // The provider's own chokepoints.
    println!("\nmost-shared conduits in the footprint:");
    let mut worst: Vec<usize> = conduits.clone();
    worst.sort_by(|&a, &b| rm.shared[b].cmp(&rm.shared[a]));
    for &c in worst.iter().take(5) {
        let conduit = &study.built.map.conduits[c];
        let a = &study.built.map.nodes[conduit.a.index()].label;
        let b = &study.built.map.nodes[conduit.b.index()].label;
        println!("  {a} — {b}: {} co-tenants", rm.shared[c]);
    }

    // Closest risk profiles (Fig. 8 reading).
    let hm = hamming_heatmap(&rm);
    let mut similar: Vec<(String, u32)> = hm
        .isps
        .iter()
        .enumerate()
        .filter(|(j, _)| *j != idx)
        .map(|(j, name)| (name.clone(), hm.distance[idx][j]))
        .collect();
    similar.sort_by_key(|(_, d)| *d);
    println!("\nproviders with the most similar risk profile (low Hamming distance):");
    for (name, d) in similar.iter().take(3) {
        println!("  {name:<18} distance {d}");
    }

    // §5.1: what would rerouting the twelve heavy links buy this provider?
    let rob = study.robustness(12);
    if let Some(r) = rob.per_isp.iter().find(|r| r.isp == isp) {
        if r.cases > 0 {
            println!(
                "\nrobustness suggestion (12 heavy links): {} affected, \
                 avg path inflation {:.1} hops, avg shared-risk reduction {:.1}",
                r.cases, r.avg_pi, r.avg_srr
            );
        } else {
            println!("\nrobustness suggestion: {isp} uses none of the 12 heavy links");
        }
    }
    if let Some((_, peers)) = rob.peering.iter().find(|(n, _)| n == &isp) {
        if !peers.is_empty() {
            println!("suggested peers (Table 5): {}", peers.join(" | "));
        }
    }
}
