//! Network planning: the §5 mitigation toolkit — reroute the heavy links
//! (robustness suggestion), then evaluate up-to-k new conduits (eq. 2).
//!
//! ```sh
//! cargo run --release --example network_planning -- 12 10
//! ```
//! First argument: number of heavy links to optimize (paper: 12).
//! Second: maximum new conduits for the augmentation sweep (paper: 10).

use intertubes::mitigation::already_optimal_fraction;
use intertubes::Study;

fn main() {
    let heavy_k: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(12);
    let max_new: usize = std::env::args()
        .nth(2)
        .and_then(|s| s.parse().ok())
        .unwrap_or(10);

    let mut cfg = intertubes::StudyConfig::default();
    cfg.augmentation.max_new_conduits = max_new;
    let study = Study::new(cfg);
    let rm = study.risk_matrix();

    println!("== §5.1 robustness suggestion over the {heavy_k} most-shared conduits ==\n");
    let rob = study.robustness(heavy_k);
    println!("heavy conduits optimized:");
    for hc in &rob.heavy_conduits {
        let c = &study.built.map.conduits[hc.index()];
        println!(
            "  {:<22} — {:<22} shared by {}",
            study.built.map.nodes[c.a.index()].label,
            study.built.map.nodes[c.b.index()].label,
            rm.shared[hc.index()]
        );
    }
    println!("\nper-provider outcome (Fig. 10): PI = extra hops, SRR = risk drop");
    println!(
        "  {:<18} {:>5} {:>8} {:>8}",
        "provider", "cases", "avg PI", "avg SRR"
    );
    for r in &rob.per_isp {
        println!(
            "  {:<18} {:>5} {:>8.2} {:>8.2}",
            r.isp, r.cases, r.avg_pi, r.avg_srr
        );
    }
    println!("\nbest peering suggestions (Table 5):");
    for (isp, peers) in rob.peering.iter().filter(|(_, p)| !p.is_empty()) {
        println!("  {isp:<18} {}", peers.join(" | "));
    }

    let frac = already_optimal_fraction(&study.built.map, &rm);
    println!(
        "\nwhole-network scan: {:.0} % of conduits are already minimum-shared-risk \
         routes (the paper found most were — hence targeting the heavy few).",
        frac * 100.0
    );

    println!("\n== §5.2 conduit augmentation (greedy eq. 2, k = 1..{max_new}) ==\n");
    let aug = study.augmentation();
    println!("additions in greedy order:");
    for (i, a) in aug.added.iter().enumerate() {
        println!(
            "  k={:<2} parallel trench {:<20} — {:<20} {:>5.0} km of ROW, SRR {:.0}",
            i + 1,
            a.a,
            a.b,
            a.row_km,
            a.srr
        );
    }
    println!("\nimprovement ratio after k additions (Fig. 11; 0 = none):");
    let ks = aug.added.len();
    println!(
        "  {:<18} {}",
        "provider",
        (1..=ks).map(|k| format!("k={k:<4}")).collect::<String>()
    );
    let mut rows: Vec<(String, Vec<f64>)> = aug
        .isps
        .iter()
        .cloned()
        .zip(aug.improvement.iter().cloned())
        .collect();
    rows.sort_by(|a, b| {
        b.1.last()
            .unwrap_or(&0.0)
            .total_cmp(a.1.last().unwrap_or(&0.0))
    });
    for (isp, series) in rows {
        let cells: String = series.iter().map(|v| format!("{v:<5.2} ")).collect();
        println!("  {isp:<18} {cells}");
    }
}
