//! Export the constructed long-haul map as GeoJSON (the Fig. 1 artifact,
//! loadable in any GIS viewer or geojson.io).
//!
//! ```sh
//! cargo run --release --example export_geojson -- map.geojson
//! ```

use intertubes::map::to_geojson;
use intertubes::Study;

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "intertubes-map.geojson".to_string());
    let study = Study::reference();
    let gj = to_geojson(&study.built.map);
    let text = serde_json::to_string_pretty(&gj).expect("GeoJSON serializes");
    std::fs::write(&path, &text).expect("write GeoJSON file");
    println!(
        "wrote {} ({} features, {:.1} kB) — nodes as Points, conduits as LineStrings \
         with tenant/validation properties",
        path,
        gj["features"].as_array().map(Vec::len).unwrap_or(0),
        text.len() as f64 / 1024.0
    );
}
