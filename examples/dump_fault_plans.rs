//! Writes every built-in fault scenario — the input-facing plans and the
//! serving-runtime chaos plans — as a `<name>.json` plan file.
//!
//! ```sh
//! cargo run --example dump_fault_plans -- plans/
//! cargo run --bin intertubes -- --faults plans/dirty-maps.json summary
//! cargo run --bin intertubes -- serve --snapshot study.snap --chaos plans/flaky-io.json
//! ```

use intertubes::faults::FaultPlan;

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "plans".into());
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("cannot create {dir}: {e}");
        std::process::exit(3);
    }
    let scenarios = FaultPlan::built_in_scenarios()
        .into_iter()
        .chain(FaultPlan::built_in_chaos_scenarios());
    for (name, plan) in scenarios {
        let path = std::path::Path::new(&dir).join(format!("{name}.json"));
        if let Err(e) = std::fs::write(&path, plan.to_json()) {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(3);
        }
        println!("wrote {}", path.display());
    }
}
