//! Conduit-exchange economics (§6.3) plus the what-if loop: price the
//! eq.-2 additions as consortium builds, apply the plan, and show the
//! §4 metrics before and after.
//!
//! ```sh
//! cargo run --release --example conduit_exchange -- 0.5   # 50 % subsidy
//! ```

use intertubes::mitigation::{exchange_analysis, what_if, ExchangeConfig, ExchangeReport};
use intertubes::Study;

fn main() {
    let subsidy: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.0);
    let study = Study::reference();
    let rm = study.risk_matrix();
    let plan = study.augmentation();

    let cfg = ExchangeConfig {
        subsidy,
        ..ExchangeConfig::default()
    };
    let report = exchange_analysis(&rm, &plan, &cfg);

    println!(
        "== Link-exchange offers (subsidy {:.0} %) ==",
        subsidy * 100.0
    );
    println!(
        "{:<20} {:<20} {:>6} {:>12} {:>9} {:>10}",
        "a", "b", "km", "build cost", "eligible", "break-even"
    );
    for o in &report.offers {
        println!(
            "{:<20} {:<20} {:>6.0} {:>12.0} {:>9} {:>10}",
            o.a,
            o.b,
            o.row_km,
            o.total_cost,
            o.eligible,
            o.break_even_members.map_or("—".into(), |n| n.to_string()),
        );
    }
    println!(
        "{} of {} offers close at this subsidy level",
        report.viable().count(),
        report.offers.len()
    );
    if let Some(o) = report
        .offers
        .iter()
        .find(|o| o.break_even_members.is_none())
    {
        let needed = ExchangeReport::required_subsidy(o, o.eligible, &cfg);
        println!(
            "e.g. {} — {} needs a {:.0} % subsidy even with all {} tenants on board",
            o.a,
            o.b,
            needed * 100.0,
            o.eligible
        );
    }

    println!("\n== What-if: apply all {} additions ==", plan.added.len());
    let wi = what_if(&study.built.map, &study.mapped_isp_names(), &plan);
    println!(
        "conduits shared by >=4 ISPs: {:.1} % → {:.1} %",
        wi.ge4_before * 100.0,
        wi.ge4_after * 100.0
    );
    println!(
        "worst conduit co-tenancy:    {} → {}",
        wi.max_sharing_before, wi.max_sharing_after
    );
    println!(
        "mean per-ISP average risk:   {:.2} → {:.2}",
        wi.mean_avg_risk_before, wi.mean_avg_risk_after
    );
    println!(
        "\nthe dozen chokepoints dominate national shared risk: relieving them \
         moves the worst-case numbers far more than the averages — the paper's \
         'modest additions capture most of the gains' in before/after form."
    );
}
