//! Quickstart: build the long-haul fiber map and print its headline
//! statistics — the §2.5 summary of the paper.
//!
//! ```sh
//! cargo run --release --example quickstart [seed]
//! ```

use intertubes::{map::summarize, Study, StudyConfig};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(1504);
    let mut cfg = StudyConfig::default();
    cfg.world.seed = seed;

    println!("Generating the synthetic US long-haul world (seed {seed}) …");
    let study = Study::new(cfg);

    println!("\n== Four-step construction (paper §2) ==");
    for r in &study.built.reports {
        println!(
            "  after step {}: {:>3} nodes, {:>4} links, {:>3} conduits ({} validated)",
            r.step, r.nodes, r.links, r.conduits, r.validated_conduits
        );
    }
    println!("  paper reference:  step 1 → 267/1258/512, final → 273/2411/542");

    let s = summarize(&study.built.map);
    println!("\n== Final map (Fig. 1 analogue) ==");
    println!(
        "  nodes: {}   links: {}   conduits: {}",
        s.nodes, s.links, s.conduits
    );
    println!(
        "  documented (validated) conduits: {}",
        s.validated_conduits
    );
    println!("  total trench mileage: {:.0} km", s.total_km);
    println!("  long-haul hubs (conduit degree):");
    for (label, deg) in s.hubs.iter().take(6) {
        println!("    {label:<22} {deg}");
    }

    let rm = study.risk_matrix();
    println!("\n== Sharing at a glance (paper §4.2) ==");
    for k in [2u16, 3, 4] {
        println!(
            "  conduits shared by >= {k} ISPs: {:5.1} %",
            intertubes::risk::sharing_fraction(&rm, k) * 100.0
        );
    }
    println!("  (paper: 89.7 %, 63.3 %, 53.5 %)");
}
