//! Latency study: the §5.3 propagation-delay comparison (Fig. 12) — best
//! existing conduit path vs average existing path vs best right-of-way vs
//! line of sight.
//!
//! ```sh
//! cargo run --release --example latency_study
//! ```

use intertubes::Study;

fn main() {
    let study = Study::reference();
    let report = study.latency();

    println!("city pairs with deployed conduits: {}", report.pairs.len());
    println!(
        "best existing path == best ROW path for {:.0} % of pairs (paper: ~65 %)\n",
        report.best_equals_row_fraction * 100.0
    );

    // Empirical CDF table at fixed latency grid (the Fig. 12 series).
    let series: [(&str, Vec<f64>); 4] = [
        ("best", report.series_ms(|p| p.best_us)),
        ("LOS", report.series_ms(|p| p.los_us)),
        ("avg", report.series_ms(|p| p.avg_us)),
        ("ROW", report.series_ms(|p| p.row_us)),
    ];
    println!("== Fig. 12 — CDF of one-way delay (ms) ==");
    print!("{:>8}", "ms");
    for (name, _) in &series {
        print!("{name:>8}");
    }
    println!();
    for grid in [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 6.0] {
        print!("{grid:>8.1}");
        for (_, s) in &series {
            let frac = s.partition_point(|&v| v <= grid) as f64 / s.len().max(1) as f64;
            print!("{:>8.2}", frac);
        }
        println!();
    }

    println!("\n== LOS vs ROW gap (what trenching along rights-of-way gives up) ==");
    for q in [0.25, 0.5, 0.75, 0.9] {
        let gap = report.los_row_gap_quantile(q);
        println!(
            "  p{:>2.0}: {:>6.0} µs  (≈ {:>4.0} km of extra fiber)",
            q * 100.0,
            gap,
            gap / intertubes::geo::FIBER_US_PER_KM
        );
    }
    println!("\npaper: gap < 100 µs for ~50 % of pairs, > 500 µs for ~25 % —");
    println!("rights-of-way, not line-of-sight, bound achievable latency improvements.");

    // The worst detours: pairs whose average path is far above the best.
    let mut detours: Vec<_> = report.pairs.iter().collect();
    detours.sort_by(|a, b| (b.avg_us / b.best_us).total_cmp(&(a.avg_us / a.best_us)));
    println!("\nworst existing-path detours (avg vs best):");
    for p in detours.iter().take(5) {
        println!(
            "  {:<22} {:<22} best {:>6.2} ms, avg {:>6.2} ms ({:.1}×)",
            p.a,
            p.b,
            p.best_us / 1000.0,
            p.avg_us / 1000.0,
            p.avg_us / p.best_us
        );
    }
}
