//! Traceroute overlay: the §4.3 pipeline — run a probe campaign, overlay it
//! on the constructed map, and print the traffic-weighted risk picture
//! (Tables 2, 3, 4 and the Fig. 9 CDF shift).
//!
//! ```sh
//! cargo run --release --example traceroute_overlay -- 100000
//! ```

use intertubes::probes::Direction;
use intertubes::risk::traffic_risk;
use intertubes::Study;

fn main() {
    let probes: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("probe count must be an integer"))
        .unwrap_or(50_000);

    let study = Study::reference();
    println!("launching {probes} traceroutes (paper: 4.9 M over 3 months) …");
    let campaign = study.campaign(Some(probes));
    println!(
        "routed {} probes ({} unroutable), overlaying on the map …",
        campaign.traces.len(),
        campaign.unrouted
    );
    let overlay = study.overlay(&campaign);
    println!(
        "overlaid {} traces ({} skipped)\n",
        overlay.overlaid, overlay.skipped
    );

    for (dir, label) in [
        (Direction::WestToEast, "Table 2 — west-origin, east-bound"),
        (Direction::EastToWest, "Table 3 — east-origin, west-bound"),
    ] {
        println!("== {label} ==");
        for row in overlay.top_conduits(&study.built.map, Some(dir), 10) {
            println!("  {:<22} {:<22} {:>8} probes", row.a, row.b, row.probes);
        }
        println!();
    }

    println!("== Table 4 — providers by conduits observed carrying traffic ==");
    for (isp, n) in overlay.isp_usage_ranking().into_iter().take(10) {
        println!("  {isp:<22} {n:>3} conduits");
    }

    let tr = traffic_risk(&study.built.map, &overlay);
    println!("\n== Fig. 9 — tenants per conduit, before vs after the overlay ==");
    println!(
        "  mean tenants (physical map only):     {:.2}",
        tr.map_only.mean()
    );
    println!(
        "  mean tenants (with observed carriers): {:.2}",
        tr.with_traffic.mean()
    );
    for x in [2usize, 5, 10, 15, 20] {
        println!(
            "  P(tenants <= {x:>2}): map {:.2} → overlaid {:.2}",
            tr.map_only.at(x),
            tr.with_traffic.at(x)
        );
    }
    println!("\nthe overlay only ever raises the sharing estimate — the paper's");
    println!("conclusion: risk from infrastructure sharing is *understated* by maps alone.");
}
