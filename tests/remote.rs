//! The remote serving front-end's contract (DESIGN.md §14): the framed
//! TCP transport answers byte-identically no matter how many clients
//! carry the workload, which snapshot the frames route to, whether the
//! cache is on, or what transport chaos is injected along the way — and
//! every malformed frame maps to a typed error frame, never a hang or a
//! process exit.
//!
//! This is the wire analogue of `tests/serve.rs`: the scheduler battery
//! proved local replay thread- and cache-independent; here the same
//! workload rides `intertubes-wire/v1` frames through the poll loop,
//! split over 1/2/8 concurrent connections.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::OnceLock;
use std::time::Duration;

use intertubes::faults::FaultPlan;
use intertubes::net::{
    encode_frame, run_clients, Frame, FrameKind, NetClient, NetReply, NetServer, RunningServer,
    SnapshotRegistry, MAX_FRAME_LEN,
};
use intertubes::serve::{
    canonicalize_stats, mixed_workload, run_batch, Query, QueryEngine, QuotaConfig, ResultCache,
    ServeConfig, ServeTelemetry, StudySnapshot,
};
use intertubes::Study;

/// The frozen reference study, built once per process (shared with the
/// same probe sizing as tests/serve.rs so the freeze dominates only once).
fn reference_snapshot() -> &'static StudySnapshot {
    static SNAP: OnceLock<StudySnapshot> = OnceLock::new();
    SNAP.get_or_init(|| Study::reference().snapshot(Some(2_000)))
}

/// A two-node, one-conduit world — the registry's cheap second snapshot,
/// mirroring the container-test idiom in tests/serialization.rs.
fn tiny_snapshot() -> StudySnapshot {
    use intertubes::geo::{GeoPoint, Polyline};
    use intertubes::map::{FiberMap, MapConduit, Provenance, Tenancy, TenancySource};
    let dallas = GeoPoint::new_unchecked(32.78, -96.80);
    let houston = GeoPoint::new_unchecked(29.76, -95.37);
    let mut map = FiberMap::default();
    let a = map.ensure_node("Dallas, TX", dallas);
    let b = map.ensure_node("Houston, TX", houston);
    map.conduits.push(MapConduit {
        a,
        b,
        geometry: Polyline::straight(dallas, houston),
        tenants: vec![Tenancy {
            isp: "AT&T".into(),
            source: TenancySource::PublishedMap,
        }],
        provenance: Provenance::Step1,
        validated: true,
        row: None,
    });
    let landmarks = intertubes::serve::build_landmarks(&map);
    let paths = intertubes::serve::PathIndex::build(
        &map,
        2,
        3.0,
        &std::collections::BTreeMap::new(),
        landmarks.as_ref(),
    );
    StudySnapshot {
        config: serde_json::Value::Null,
        map,
        isps: vec!["AT&T".into()],
        risk: intertubes::risk::RiskMatrix {
            isps: vec!["AT&T".into()],
            uses: vec![vec![true]],
            shared: vec![1],
        },
        hamming: intertubes::risk::HammingHeatmap {
            isps: vec!["AT&T".into()],
            distance: vec![vec![0]],
        },
        overlay: intertubes::probes::Overlay {
            conduit_freq: vec![0],
            west_east: vec![0],
            east_west: vec![0],
            observed_isps: vec![Default::default()],
            isp_conduits: Default::default(),
            overlaid: 0,
            skipped: 0,
        },
        paths,
        landmarks,
    }
}

/// Spawns a front-end serving the reference snapshot as `"ref"` and the
/// tiny world as `"tiny"`.
fn spawn_two_snapshots(cache: bool, chaos: Option<&FaultPlan>) -> RunningServer {
    let cfg = ServeConfig {
        cache: intertubes::serve::CacheConfig {
            enabled: cache,
            ..intertubes::serve::CacheConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut registry = SnapshotRegistry::new();
    registry.insert("ref", QueryEngine::new(reference_snapshot().clone()), cfg);
    registry.insert("tiny", QueryEngine::new(tiny_snapshot()), cfg);
    let mut server = NetServer::new(registry);
    if let Some(plan) = chaos {
        server = server.with_chaos(plan);
    }
    server.spawn("127.0.0.1:0").unwrap()
}

const REPLAY: usize = 120;
const SEED: u64 = 7;

/// Local replay baseline with the scheduler defaults the registry uses.
fn local_baseline(snap: &StudySnapshot, queries: &[Query]) -> Vec<String> {
    let engine = QueryEngine::new(snap.clone());
    let cfg = ServeConfig::default();
    let cache = ResultCache::new(cfg.cache);
    let (responses, _) = run_batch(&engine, queries, &cfg, &cache);
    responses
}

#[test]
fn multi_client_responses_are_byte_identical_across_snapshots_and_cache_modes() {
    let ref_queries = mixed_workload(reference_snapshot(), REPLAY, SEED);
    let tiny = tiny_snapshot();
    let tiny_queries = mixed_workload(&tiny, REPLAY, SEED);
    let ref_expect = local_baseline(reference_snapshot(), &ref_queries);
    let tiny_expect = local_baseline(&tiny, &tiny_queries);

    for cache in [true, false] {
        let server = spawn_two_snapshots(cache, None);
        let addr = server.addr();
        for clients in [1usize, 2, 8] {
            let got = run_clients(addr, "tester", "ref", &ref_queries, clients).unwrap();
            assert_eq!(
                got, ref_expect,
                "ref responses diverged at {clients} clients, cache={cache}"
            );
            let got = run_clients(addr, "tester", "tiny", &tiny_queries, clients).unwrap();
            assert_eq!(
                got, tiny_expect,
                "tiny responses diverged at {clients} clients, cache={cache}"
            );
        }
        let report = server.stop().unwrap();
        assert_eq!(report.frames, (2 * 3 * REPLAY) as u64);
        assert_eq!(report.quota_rejected, 0);
        // 1+2+8 clients × two snapshots closed cleanly; the stop flag may
        // beat the last EOFs to the poll loop, so this is an upper bound
        // (`serve --listen --sessions`, which has no stop flag, pins the
        // exact count in scripts/remote_gate.sh).
        assert!(report.sessions_closed <= 22);
    }
}

#[test]
fn transport_chaos_cannot_change_a_response_byte() {
    let queries = mixed_workload(reference_snapshot(), REPLAY, SEED);
    let expect = local_baseline(reference_snapshot(), &queries);
    let plan = FaultPlan::built_in_chaos_scenarios()
        .into_iter()
        .find(|(name, _)| *name == "torn-frame")
        .map(|(_, plan)| plan)
        .unwrap();
    let server = spawn_two_snapshots(true, Some(&plan));
    let got = run_clients(server.addr(), "tester", "ref", &queries, 2).unwrap();
    assert_eq!(got, expect, "chaos must be invisible in the response bytes");
    let report = server.stop().unwrap();
    assert!(
        report.chaos_injected > 0,
        "the torn-frame scenario must actually fire over {REPLAY} frames"
    );
}

#[test]
fn hot_tenant_quota_exhaustion_cannot_reject_a_quiet_tenant() {
    let telemetry = std::sync::Arc::new(ServeTelemetry::new());
    let mut registry = SnapshotRegistry::with_telemetry(telemetry.clone());
    registry.insert("tiny", QueryEngine::new(tiny_snapshot()), ServeConfig::default());
    let server = NetServer::new(registry)
        // 5 requests per 10, per tenant — the hog will burn through this.
        .with_quota(QuotaConfig::limited(5, 5, 10))
        .spawn("127.0.0.1:0")
        .unwrap();
    let addr = server.addr();
    let query = Query::TopShared { k: 1 };

    let mut hog = NetClient::new(addr, "hog").unwrap();
    let mut quiet = NetClient::new(addr, "quiet").unwrap();
    let mut hog_rejected = 0usize;
    for i in 0..50u64 {
        // The hog floods; the quiet tenant stays within its own budget
        // (5 requests against a burst of 5).
        let reply = hog.request("tiny", i, &query).unwrap();
        if reply.payload().contains("\"Rejected\"") {
            hog_rejected += 1;
        }
        if i % 10 == 0 {
            let reply = quiet.request("tiny", 1_000 + i, &query).unwrap();
            assert!(
                matches!(reply, NetReply::Response(_)),
                "quiet tenant got a non-response: {reply:?}"
            );
            assert!(
                !reply.payload().contains("\"Rejected\""),
                "quiet tenant was rejected at hog request {i}: {}",
                reply.payload()
            );
        }
    }
    assert!(hog_rejected > 0, "the hog must saturate its bucket");
    hog.close();
    quiet.close();
    let report = server.stop().unwrap();
    assert_eq!(report.quota_rejected, hog_rejected as u64);

    // The per-tenant aggregates in the canonical count plane agree.
    let stats = canonicalize_stats(&telemetry.stats_document(None));
    let tenants = &stats["counts"]["tenants"];
    assert_eq!(
        tenants["quiet"]["quota_rejected"].as_u64(),
        Some(0),
        "a hot tenant's flood must never consume another tenant's quota"
    );
    assert_eq!(tenants["hog"]["quota_rejected"].as_u64(), Some(hog_rejected as u64));
    assert_eq!(tenants["quiet"]["submitted"].as_u64(), Some(5));
}

/// Sends raw bytes and reads whatever single frame (if any) comes back
/// before the peer closes or the deadline passes.
fn raw_exchange(addr: std::net::SocketAddr, bytes: &[u8]) -> Option<Frame> {
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).unwrap();
    let mut reader = intertubes::net::FrameReader::new();
    let mut buf = [0u8; 4096];
    loop {
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => return None,
            Ok(n) => {
                reader.feed(&buf[..n]);
                if let Ok(Some(frame)) = reader.next_frame() {
                    return Some(frame);
                }
            }
        }
    }
}

/// The error label of a frame's `{"error": ..., "detail": ...}` payload.
fn error_label(frame: &Frame) -> String {
    assert_eq!(frame.kind, FrameKind::Error, "payload: {}", frame.payload);
    let v: serde_json::Value = serde_json::from_str(&frame.payload).unwrap();
    v["error"].as_str().unwrap_or_default().to_string()
}

#[test]
fn malformed_frames_answer_with_typed_error_frames_and_the_server_survives() {
    let server = spawn_two_snapshots(true, None);
    let addr = server.addr();
    let query = serde_json::to_string(&Query::TopShared { k: 1 }).unwrap();
    let good = encode_frame(&Frame::request("tester", "tiny", 9, query.clone())).unwrap();

    // Oversized declared length: rejected from the prefix alone, before
    // any body byte arrives.
    let mut oversized = Vec::new();
    oversized.extend_from_slice(&((MAX_FRAME_LEN + 1) as u32).to_le_bytes());
    oversized.extend_from_slice(&good[4..]);
    let reply = raw_exchange(addr, &oversized).expect("an error frame");
    assert_eq!(error_label(&reply), "oversized");

    // Bad magic (body byte 0 = buffer byte 4).
    let mut bad_magic = good.clone();
    bad_magic[4] ^= 0xFF;
    let reply = raw_exchange(addr, &bad_magic).expect("an error frame");
    assert_eq!(error_label(&reply), "bad-magic");

    // Unknown protocol version.
    let mut bad_version = good.clone();
    bad_version[8] = 0x7F;
    let reply = raw_exchange(addr, &bad_version).expect("an error frame");
    assert_eq!(error_label(&reply), "unknown-version");

    // Payload corruption: the FNV-1a checksum catches the flip (the byte
    // stays ASCII, so UTF-8 validation passes and checksum is the stage
    // that fires).
    let mut bit_rot = good.clone();
    let last = bit_rot.len() - 1;
    bit_rot[last] ^= 0x01;
    let reply = raw_exchange(addr, &bit_rot).expect("an error frame");
    assert_eq!(error_label(&reply), "checksum-mismatch");

    // Well-formed frame for a snapshot nobody serves.
    let unrouted = encode_frame(&Frame::request("tester", "nope", 3, query.clone())).unwrap();
    let reply = raw_exchange(addr, &unrouted).expect("an error frame");
    assert_eq!(error_label(&reply), "unknown-snapshot");
    assert_eq!(reply.request_id, 3, "error frames echo the request id");

    // A stalled half-frame must not wedge the loop: with the truncated
    // length prefix still pending on one connection, a healthy client on
    // another connection gets its answer.
    let mut stalled = TcpStream::connect(addr).unwrap();
    stalled.write_all(&good[..2]).unwrap();
    let reply = raw_exchange(addr, &good).expect("a response frame");
    assert_eq!(reply.kind, FrameKind::Response);
    assert_eq!(reply.request_id, 9);
    assert!(reply.payload.contains("TopShared"), "payload: {}", reply.payload);
    drop(stalled);

    let report = server.stop().unwrap();
    assert_eq!(report.errors, 5, "five corruption modes, five error frames");
    assert_eq!(report.responses, 1, "one healthy request answered");
}
