//! Cross-crate integration tests: the full paper pipeline, end to end.

use std::sync::OnceLock;

use intertubes::risk::{sharing_fraction, traffic_risk};
use intertubes::Study;

fn study() -> &'static Study {
    static S: OnceLock<Study> = OnceLock::new();
    S.get_or_init(Study::reference)
}

#[test]
fn headline_map_statistics_match_paper_scale() {
    let s = study();
    let map = &s.built.map;
    // Paper: 273 nodes, 2411 links, 542 conduits. Our world has ~215
    // candidate cities, so nodes land lower; links/conduits are calibrated.
    assert!(
        (190..=280).contains(&map.nodes.len()),
        "nodes {}",
        map.nodes.len()
    );
    assert!(
        (2100..=2700).contains(&map.link_count()),
        "links {}",
        map.link_count()
    );
    assert!(
        (480..=560).contains(&map.conduits.len()),
        "conduits {}",
        map.conduits.len()
    );
}

#[test]
fn sharing_distribution_matches_paper() {
    let rm = study().risk_matrix();
    let ge2 = sharing_fraction(&rm, 2);
    let ge3 = sharing_fraction(&rm, 3);
    let ge4 = sharing_fraction(&rm, 4);
    assert!((0.80..=0.95).contains(&ge2), ">=2 {ge2}");
    assert!((0.52..=0.72).contains(&ge3), ">=3 {ge3}");
    assert!((0.43..=0.63).contains(&ge4), ">=4 {ge4}");
    // A heavily-shared tail exists.
    let heavy = rm.shared.iter().filter(|&&c| c >= 16).count();
    assert!(heavy >= 6, "heavy tail {heavy}");
}

#[test]
fn step_reports_tell_papers_story() {
    let s = study();
    let [r1, r2, r3, r4]: [_; 4] = s.built.reports.clone().try_into().expect("four steps");
    // Step 2 validates without changing the topology.
    assert_eq!(r1.conduits, r2.conduits);
    assert!(r2.validated_conduits > r1.validated_conduits);
    // Step 3 adds mostly tenancies, few conduits (paper: +30 conduits).
    assert!(r3.conduits - r2.conduits < 100);
    assert!(
        r3.links - r2.links > 700,
        "step 3 adds the POP-only ISPs' links"
    );
    // Step 4 only validates and infers.
    assert_eq!(r3.conduits, r4.conduits);
    assert!(r4.validated_conduits >= r3.validated_conduits);
}

#[test]
fn traceroute_overlay_increases_perceived_risk() {
    let s = study();
    let campaign = s.campaign(Some(20_000));
    let overlay = s.overlay(&campaign);
    let tr = traffic_risk(&s.built.map, &overlay);
    assert!(
        tr.with_traffic.mean() > tr.map_only.mean() + 0.5,
        "overlay should reveal additional carriers: {} vs {}",
        tr.with_traffic.mean(),
        tr.map_only.mean()
    );
    // Unpublished carriers show up.
    let ranking = overlay.isp_usage_ranking();
    assert!(ranking.iter().any(|(n, _)| n == "SoftLayer" || n == "MFN"));
    // Level 3 dominates usage (Table 4's headline).
    let level3 = ranking.iter().position(|(n, _)| n == "Level 3").unwrap();
    assert!(level3 <= 2, "Level 3 rank {level3}");
}

#[test]
fn mitigation_beats_status_quo() {
    let s = study();
    let rob = s.robustness(12);
    // Rerouting the heavy links must yield positive SRR for most affected
    // providers at modest path inflation.
    let affected: Vec<_> = rob.per_isp.iter().filter(|r| r.cases > 0).collect();
    assert!(affected.len() >= 15, "most providers use the heavy dozen");
    for r in &affected {
        assert!(r.avg_srr > 0.0, "{} gains nothing", r.isp);
        assert!(
            r.avg_pi < 15.0,
            "{} pays absurd inflation {}",
            r.isp,
            r.avg_pi
        );
    }
    let aug = s.augmentation();
    assert!(!aug.added.is_empty());
    let any_gain = aug
        .improvement
        .iter()
        .any(|series| series.last().copied().unwrap_or(0.0) > 0.05);
    assert!(any_gain, "augmentation should help somebody substantially");
}

#[test]
fn latency_figures_are_internally_consistent() {
    let s = study();
    let lat = s.latency();
    assert!((0.45..=0.95).contains(&lat.best_equals_row_fraction));
    // The LOS-ROW gap tail: median modest, p90 heavy (paper's qualitative
    // shape).
    let p50 = lat.los_row_gap_quantile(0.5);
    let p90 = lat.los_row_gap_quantile(0.9);
    assert!(
        p90 > p50,
        "gap distribution should be skewed: p50 {p50}, p90 {p90}"
    );
    assert!(p90 > 100.0, "a heavy tail exists (µs): {p90}");
}

#[test]
fn whole_study_is_deterministic() {
    let a = Study::reference();
    let b = Study::reference();
    assert_eq!(a.built.reports, b.built.reports);
    assert_eq!(a.built.map.link_count(), b.built.map.link_count());
    let ca = a.campaign(Some(2_000));
    let cb = b.campaign(Some(2_000));
    assert_eq!(ca.traces, cb.traces);
}

#[test]
fn geojson_export_round_trips() {
    let s = study();
    let gj = intertubes::map::to_geojson(&s.built.map);
    let text = serde_json::to_string(&gj).unwrap();
    let back: serde_json::Value = serde_json::from_str(&text).unwrap();
    assert_eq!(back["type"], "FeatureCollection");
    let features = back["features"].as_array().unwrap();
    assert_eq!(
        features.len(),
        s.built.map.nodes.len() + s.built.map.conduits.len()
    );
}

#[test]
fn annotated_geojson_and_what_if_extensions_work() {
    let s = study();
    let overlay = s.overlay(&s.campaign(Some(5_000)));
    let gj = s.annotated_geojson(&overlay);
    let line = gj["features"]
        .as_array()
        .unwrap()
        .iter()
        .find(|f| f["geometry"]["type"] == "LineString")
        .expect("conduit features exist");
    assert!(line["properties"]["delay_us"].as_f64().unwrap() > 0.0);
    assert!(line["properties"].get("traffic_probes").is_some());
    assert!(line["properties"].get("shared_risk").is_some());

    let wi = s.what_if_augmented();
    assert!(wi.conduits_added > 0);
    assert!(wi.mean_avg_risk_after < wi.mean_avg_risk_before);
    assert!(wi.max_sharing_after <= wi.max_sharing_before);
}
