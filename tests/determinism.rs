//! The determinism contract (DESIGN.md §7): every parallel hot path must
//! produce output byte-identical to the serial formulation, at any thread
//! count, for clean and faulted inputs alike.
//!
//! One thread is the serial baseline — `intertubes_parallel` short-circuits
//! every fan-out to an inline loop at `threads == 1` — so comparing
//! serialized stage outputs across 1, 2, and 8 threads exercises both the
//! code-path equivalence and the shard-merge algebra.

use std::collections::BTreeMap;

use intertubes::degrade::DegradationPolicy;
use intertubes::faults::FaultPlan;
use intertubes::mitigation::already_optimal_fraction;
use intertubes::parallel::with_threads;
use intertubes::risk::hamming_heatmap;
use intertubes::{Study, StudyConfig};

/// Probe volume for the overlay stage — small enough to keep the battery
/// fast, large enough to touch every accumulator field.
const PROBES: usize = 5_000;

/// Serialized outputs of every parallel stage, computed at `threads`.
fn stage_snapshot(threads: usize) -> BTreeMap<&'static str, String> {
    with_threads(threads, || {
        let mut out = BTreeMap::new();
        let (study, report) =
            Study::new_checked(StudyConfig::default()).expect("default config builds");
        out.insert(
            "pipeline.map",
            serde_json::to_string(&study.built.map).expect("map serializes"),
        );
        out.insert(
            "pipeline.report",
            serde_json::to_string(&report).expect("report serializes"),
        );
        let campaign = study.campaign(Some(PROBES));
        let (overlay, overlay_report) = study
            .overlay_checked(&campaign)
            .expect("clean campaign overlays");
        out.insert(
            "overlay",
            serde_json::to_string(&overlay).expect("overlay serializes"),
        );
        out.insert(
            "overlay.report",
            serde_json::to_string(&overlay_report).expect("report serializes"),
        );
        let rm = study.risk_matrix();
        out.insert(
            "risk.matrix",
            serde_json::to_string(&rm).expect("matrix serializes"),
        );
        out.insert(
            "risk.hamming",
            serde_json::to_string(&hamming_heatmap(&rm)).expect("heatmap serializes"),
        );
        out.insert(
            "risk.already_optimal",
            format!("{:.17}", already_optimal_fraction(&study.built.map, &rm)),
        );
        out.insert(
            "mitigation.latency",
            serde_json::to_string(&study.latency()).expect("latency serializes"),
        );
        out
    })
}

#[test]
fn all_stages_are_thread_count_invariant() {
    let serial = stage_snapshot(1);
    for threads in [2, 8] {
        let parallel = stage_snapshot(threads);
        assert_eq!(
            serial.keys().collect::<Vec<_>>(),
            parallel.keys().collect::<Vec<_>>()
        );
        for (stage, expected) in &serial {
            let got = &parallel[stage];
            assert_eq!(
                expected, got,
                "stage {stage} diverged between 1 and {threads} threads"
            );
        }
    }
}

/// One faulted build's observable output, serialized: either the full
/// (map, report, ledger) triple or the error's display string.
fn faulted_snapshot(plan: &FaultPlan, policy: DegradationPolicy, threads: usize) -> String {
    with_threads(threads, || {
        let mut cfg = StudyConfig::default();
        cfg.policy = policy;
        match Study::new_faulted(cfg, plan) {
            Ok((study, report, ledger)) => format!(
                "map:{}\nreport:{}\nledger:{}",
                serde_json::to_string(&study.built.map).expect("map serializes"),
                serde_json::to_string(&report).expect("report serializes"),
                serde_json::to_string(&ledger).expect("ledger serializes"),
            ),
            Err(e) => format!("error:{e}"),
        }
    })
}

#[test]
fn faulted_builds_are_thread_count_invariant() {
    for (name, plan) in FaultPlan::built_in_scenarios() {
        for policy in [DegradationPolicy::Lenient, DegradationPolicy::Strict] {
            let serial = faulted_snapshot(&plan, policy, 1);
            let parallel = faulted_snapshot(&plan, policy, 4);
            assert_eq!(
                serial, parallel,
                "scenario {name:?} under {policy} diverged between 1 and 4 threads"
            );
        }
    }
}

#[test]
fn thread_override_env_var_is_respected() {
    // with_threads pins both the override and RAYON_NUM_THREADS; the
    // resolved count must follow it exactly.
    for n in [1, 3, 8] {
        let seen = with_threads(n, intertubes::parallel::thread_count);
        assert_eq!(seen, n);
    }
}
