//! The determinism contract (DESIGN.md §7): every parallel hot path must
//! produce output byte-identical to the serial formulation, at any thread
//! count, for clean and faulted inputs alike.
//!
//! One thread is the serial baseline — `intertubes_parallel` short-circuits
//! every fan-out to an inline loop at `threads == 1` — so comparing
//! serialized stage outputs across 1, 2, and 8 threads exercises both the
//! code-path equivalence and the shard-merge algebra.

use std::collections::BTreeMap;
use std::sync::Mutex;

use intertubes::degrade::DegradationPolicy;
use intertubes::faults::FaultPlan;
use intertubes::mitigation::already_optimal_fraction;
use intertubes::obs;
use intertubes::parallel::with_threads;
use intertubes::risk::hamming_heatmap;
use intertubes::{Study, StudyConfig};

/// Serializes every test in this binary. The observability session is
/// process-exclusive, and an instrumented `Study` build in one test would
/// otherwise bleed spans and counters into another test's run record.
/// Lock ordering everywhere: `BATTERY` → `with_threads` → `Session::begin`.
static BATTERY: Mutex<()> = Mutex::new(());

fn battery_lock() -> std::sync::MutexGuard<'static, ()> {
    BATTERY.lock().unwrap_or_else(|e| e.into_inner())
}

/// Probe volume for the overlay stage — small enough to keep the battery
/// fast, large enough to touch every accumulator field.
const PROBES: usize = 5_000;

/// Serialized outputs of every parallel stage, computed at `threads`.
fn stage_snapshot(threads: usize) -> BTreeMap<&'static str, String> {
    with_threads(threads, || {
        let mut out = BTreeMap::new();
        let (study, report) =
            Study::new_checked(StudyConfig::default()).expect("default config builds");
        out.insert(
            "pipeline.map",
            serde_json::to_string(&study.built.map).expect("map serializes"),
        );
        out.insert(
            "pipeline.report",
            serde_json::to_string(&report).expect("report serializes"),
        );
        let campaign = study.campaign(Some(PROBES));
        let (overlay, overlay_report) = study
            .overlay_checked(&campaign)
            .expect("clean campaign overlays");
        out.insert(
            "overlay",
            serde_json::to_string(&overlay).expect("overlay serializes"),
        );
        out.insert(
            "overlay.report",
            serde_json::to_string(&overlay_report).expect("report serializes"),
        );
        let rm = study.risk_matrix();
        out.insert(
            "risk.matrix",
            serde_json::to_string(&rm).expect("matrix serializes"),
        );
        out.insert(
            "risk.hamming",
            serde_json::to_string(&hamming_heatmap(&rm)).expect("heatmap serializes"),
        );
        out.insert(
            "risk.already_optimal",
            format!("{:.17}", already_optimal_fraction(&study.built.map, &rm)),
        );
        out.insert(
            "mitigation.latency",
            serde_json::to_string(&study.latency()).expect("latency serializes"),
        );
        out
    })
}

#[test]
fn all_stages_are_thread_count_invariant() {
    let _guard = battery_lock();
    let serial = stage_snapshot(1);
    for threads in [2, 8] {
        let parallel = stage_snapshot(threads);
        assert_eq!(
            serial.keys().collect::<Vec<_>>(),
            parallel.keys().collect::<Vec<_>>()
        );
        for (stage, expected) in &serial {
            let got = &parallel[stage];
            assert_eq!(
                expected, got,
                "stage {stage} diverged between 1 and {threads} threads"
            );
        }
    }
}

/// One faulted build's observable output, serialized: either the full
/// (map, report, ledger) triple or the error's display string.
fn faulted_snapshot(plan: &FaultPlan, policy: DegradationPolicy, threads: usize) -> String {
    with_threads(threads, || {
        let mut cfg = StudyConfig::default();
        cfg.policy = policy;
        match Study::new_faulted(cfg, plan) {
            Ok((study, report, ledger)) => format!(
                "map:{}\nreport:{}\nledger:{}",
                serde_json::to_string(&study.built.map).expect("map serializes"),
                serde_json::to_string(&report).expect("report serializes"),
                serde_json::to_string(&ledger).expect("ledger serializes"),
            ),
            Err(e) => format!("error:{e}"),
        }
    })
}

#[test]
fn faulted_builds_are_thread_count_invariant() {
    let _guard = battery_lock();
    for (name, plan) in FaultPlan::built_in_scenarios() {
        for policy in [DegradationPolicy::Lenient, DegradationPolicy::Strict] {
            let serial = faulted_snapshot(&plan, policy, 1);
            let parallel = faulted_snapshot(&plan, policy, 4);
            assert_eq!(
                serial, parallel,
                "scenario {name:?} under {policy} diverged between 1 and 4 threads"
            );
        }
    }
}

/// Canonical run manifest + merged metrics for a full instrumented clean
/// run at `threads`. The canonical form strips wall-clock fields and the
/// environment section (DESIGN.md §8), so everything that remains —
/// stage set, item counts, outcomes, counters, histograms, topology —
/// must be byte-identical at every thread count.
fn canonical_run(threads: usize) -> (String, String) {
    with_threads(threads, || {
        let session = obs::Session::begin(obs::ObsConfig::default());
        let cfg = StudyConfig::default();
        let seed = cfg.world.seed;
        let policy = cfg.policy.to_string();
        let (study, _report) =
            Study::new_checked(cfg).expect("default config builds");
        let campaign = study.campaign(Some(PROBES));
        let _overlay = study
            .overlay_checked(&campaign)
            .expect("clean campaign overlays");
        let rm = study.risk_matrix();
        let _heat = hamming_heatmap(&rm);
        let _rob = study.robustness(6);
        let _aug = study.augmentation();
        let _lat = study.latency();
        let record = session.finish();

        let s = intertubes::map::summarize(&study.built.map);
        let info = obs::RunInfo {
            command: "determinism-test".to_string(),
            seed,
            policy,
            fault_plan: None,
            threads: intertubes::parallel::thread_count(),
            exit_status: 0,
            health: None,
            serve_stats: None,
            tenants: None,
        };
        let topology = obs::TopologyCounts {
            nodes: s.nodes,
            links: s.links,
            conduits: s.conduits,
            validated_conduits: s.validated_conduits,
        };
        let manifest = obs::build_manifest(&info, &record, Some(&topology));
        let canonical = serde_json::to_string(&obs::canonicalize(&manifest))
            .expect("canonical manifest serializes");
        let metrics = serde_json::to_string(&record.metrics.to_json())
            .expect("metrics serialize");
        (canonical, metrics)
    })
}

#[test]
fn canonical_manifests_are_thread_count_invariant() {
    let _guard = battery_lock();
    let (serial_manifest, serial_metrics) = canonical_run(1);
    for threads in [2, 8] {
        let (manifest, metrics) = canonical_run(threads);
        assert_eq!(
            serial_manifest, manifest,
            "canonical manifest diverged between 1 and {threads} threads"
        );
        assert_eq!(
            serial_metrics, metrics,
            "merged metrics diverged between 1 and {threads} threads"
        );
    }
}

/// Canonical manifest for one instrumented faulted build: spans, injected
/// fault events, degradation events, and the exit status all land in the
/// record, so this asserts the observability layer itself is deterministic
/// under every fault scenario and both policies.
fn canonical_faulted_run(
    plan: &FaultPlan,
    policy: DegradationPolicy,
    threads: usize,
) -> String {
    with_threads(threads, || {
        let session = obs::Session::begin(obs::ObsConfig::default());
        let mut cfg = StudyConfig::default();
        cfg.policy = policy;
        let seed = cfg.world.seed;
        let exit_status = match Study::new_faulted(cfg, plan) {
            Ok(_) => 0,
            Err(_) => 3,
        };
        let record = session.finish();
        let info = obs::RunInfo {
            command: "determinism-test-faulted".to_string(),
            seed,
            policy: policy.to_string(),
            fault_plan: None,
            threads: intertubes::parallel::thread_count(),
            exit_status,
            health: None,
            serve_stats: None,
            tenants: None,
        };
        let manifest = obs::build_manifest(&info, &record, None);
        serde_json::to_string(&obs::canonicalize(&manifest))
            .expect("canonical manifest serializes")
    })
}

#[test]
fn faulted_manifests_are_thread_count_invariant() {
    let _guard = battery_lock();
    for (name, plan) in FaultPlan::built_in_scenarios() {
        for policy in [DegradationPolicy::Lenient, DegradationPolicy::Strict] {
            let serial = canonical_faulted_run(&plan, policy, 1);
            let parallel = canonical_faulted_run(&plan, policy, 4);
            assert_eq!(
                serial, parallel,
                "manifest for scenario {name:?} under {policy} diverged \
                 between 1 and 4 threads"
            );
        }
    }
}

#[test]
fn thread_override_env_var_is_respected() {
    let _guard = battery_lock();
    // with_threads pins both the override and RAYON_NUM_THREADS; the
    // resolved count must follow it exactly.
    for n in [1, 3, 8] {
        let seen = with_threads(n, intertubes::parallel::thread_count);
        assert_eq!(seen, n);
    }
}
