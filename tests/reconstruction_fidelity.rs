//! Fidelity of the constructed map against the hidden ground truth — the
//! evaluation the paper could not run (it had no ground truth; we do).
//!
//! Besides the statistical precision/recall checks, this file pins the
//! reference study's headline numbers to a golden snapshot
//! (`tests/goldens/reference.json`). Any drift — an accidental behavior
//! change in the pipeline, overlay, or risk analyses — fails the build
//! with a diff. After an *intentional* change, regenerate with:
//!
//! ```text
//! REGENERATE_GOLDENS=1 cargo test --test reconstruction_fidelity
//! ```

use std::collections::HashSet;
use std::sync::OnceLock;

use intertubes::risk::{conduits_shared_by_at_least, isp_sharing_ranking};
use intertubes::Study;
use serde_json::json;

fn study() -> &'static Study {
    static S: OnceLock<Study> = OnceLock::new();
    S.get_or_init(Study::reference)
}

type PairTenancy = (String, String, String); // (isp, city_a, city_b) normalized

fn truth_tenancies(s: &Study) -> HashSet<PairTenancy> {
    let mut out = HashSet::new();
    for (i, fp) in s.world.mapped_footprints().iter().enumerate() {
        let isp = s.world.roster[i].name.clone();
        for c in &fp.conduits {
            let cd = s.world.system.conduit(*c);
            let (a, b) = (s.world.city_label(cd.a), s.world.city_label(cd.b));
            let (a, b) = if a <= b { (a, b) } else { (b, a) };
            out.insert((isp.clone(), a, b));
        }
    }
    out
}

fn built_tenancies(s: &Study) -> HashSet<PairTenancy> {
    let mut out = HashSet::new();
    let map = &s.built.map;
    for c in &map.conduits {
        let (a, b) = (
            map.nodes[c.a.index()].label.clone(),
            map.nodes[c.b.index()].label.clone(),
        );
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        for t in &c.tenants {
            out.insert((t.isp.clone(), a.clone(), b.clone()));
        }
    }
    out
}

#[test]
fn tenancy_reconstruction_has_high_precision_and_recall() {
    let s = study();
    let truth = truth_tenancies(s);
    let built = built_tenancies(s);
    let tp = built.intersection(&truth).count() as f64;
    let precision = tp / built.len() as f64;
    let recall = tp / truth.len() as f64;
    println!("pair-level tenancy: precision {precision:.3} recall {recall:.3}");
    assert!(precision > 0.9, "precision {precision}");
    assert!(recall > 0.8, "recall {recall}");
}

#[test]
fn conduit_count_reconstruction_is_close() {
    let s = study();
    let truth = s.world.system.conduits.len() as i64;
    let built = s.built.map.conduits.len() as i64;
    let err = (truth - built).abs() as f64 / truth as f64;
    println!("conduits: truth {truth}, built {built} (relative error {err:.3})");
    assert!(err < 0.08, "conduit count off by {err:.3}");
}

#[test]
fn parallel_conduits_are_partially_recovered() {
    // Ground truth has parallel conduits between some pairs; clustering on
    // published geometry should recover a meaningful share of them.
    let s = study();
    let count_parallel = |pairs: Vec<(String, String)>| -> usize {
        let mut sorted = pairs;
        sorted.sort();
        let mut parallel = 0;
        let mut i = 0;
        while i < sorted.len() {
            let j = sorted[i..].iter().take_while(|p| **p == sorted[i]).count();
            if j > 1 {
                parallel += j - 1;
            }
            i += j;
        }
        parallel
    };
    let truth_pairs: Vec<(String, String)> = s
        .world
        .system
        .conduits
        .iter()
        .map(|c| {
            let (a, b) = (s.world.city_label(c.a), s.world.city_label(c.b));
            if a <= b {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect();
    let built_pairs: Vec<(String, String)> = s
        .built
        .map
        .conduits
        .iter()
        .map(|c| {
            let a = s.built.map.nodes[c.a.index()].label.clone();
            let b = s.built.map.nodes[c.b.index()].label.clone();
            if a <= b {
                (a, b)
            } else {
                (b, a)
            }
        })
        .collect();
    let truth_parallel = count_parallel(truth_pairs);
    let built_parallel = count_parallel(built_pairs);
    println!("parallel conduits: truth {truth_parallel}, reconstructed {built_parallel}");
    assert!(
        truth_parallel > 0,
        "world should contain parallel deployments"
    );
    assert!(
        built_parallel * 3 >= truth_parallel,
        "clustering should recover a meaningful share ({built_parallel}/{truth_parallel})"
    );
}

#[test]
fn validation_flags_reflect_corpus_coverage() {
    let s = study();
    let validated = s.built.map.conduits.iter().filter(|c| c.validated).count() as f64;
    let frac = validated / s.built.map.conduits.len() as f64;
    // Corpus coverage is 92 % per conduit; validation lands near it.
    assert!((0.80..=1.00).contains(&frac), "validated fraction {frac}");
}

#[test]
fn records_inferred_tenants_are_mostly_correct() {
    let s = study();
    let truth = truth_tenancies(s);
    let map = &s.built.map;
    let mut inferred = 0usize;
    let mut correct = 0usize;
    for c in &map.conduits {
        let (a, b) = (
            map.nodes[c.a.index()].label.clone(),
            map.nodes[c.b.index()].label.clone(),
        );
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        for t in &c.tenants {
            if t.source == intertubes::map::TenancySource::Records {
                inferred += 1;
                correct += truth.contains(&(t.isp.clone(), a.clone(), b.clone())) as usize;
            }
        }
    }
    println!("records-inferred tenancies: {inferred}, correct {correct}");
    if inferred > 20 {
        let precision = correct as f64 / inferred as f64;
        assert!(precision > 0.8, "records inference precision {precision}");
    }
}

/// Probe volume for the golden overlay tables; fixed forever — changing it
/// changes the snapshot.
const GOLDEN_PROBES: usize = 20_000;

/// Computes the golden snapshot of the reference study: topology counts,
/// the §4.2 sharing distribution, the per-ISP risk ranking, and the
/// overlay's Table 3/4 reconstructions.
fn golden_snapshot(s: &Study) -> serde_json::Value {
    let map = &s.built.map;
    let rm = s.risk_matrix();
    let ranking: Vec<serde_json::Value> = isp_sharing_ranking(&rm)
        .into_iter()
        .map(|r| {
            json!({
                "isp": r.isp,
                "mean": format!("{:.6}", r.mean),
                "conduits": r.conduits,
            })
        })
        .collect();
    let campaign = s.campaign(Some(GOLDEN_PROBES));
    let overlay = s.overlay(&campaign);
    let table = |dir| -> Vec<serde_json::Value> {
        overlay
            .top_conduits(map, Some(dir), 10)
            .into_iter()
            .map(|row| json!({ "a": row.a, "b": row.b, "probes": row.probes }))
            .collect()
    };
    let table4: Vec<serde_json::Value> = overlay
        .isp_usage_ranking()
        .into_iter()
        .take(15)
        .map(|(isp, conduits)| json!({ "isp": isp, "conduits": conduits }))
        .collect();
    json!({
        "topology": {
            "nodes": map.nodes.len(),
            "conduits": map.conduits.len(),
            "links": map.link_count(),
            "validated": map.conduits.iter().filter(|c| c.validated).count(),
        },
        "sharing_bars": conduits_shared_by_at_least(&rm),
        "risk_ranking": ranking,
        "table3_west_east": table(intertubes::probes::Direction::WestToEast),
        "table3_east_west": table(intertubes::probes::Direction::EastToWest),
        "table4_isp_usage": table4,
    })
}

#[test]
fn reference_study_matches_golden_snapshot() {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/goldens/reference.json");
    let computed = serde_json::to_string_pretty(&golden_snapshot(study()))
        .expect("snapshot serializes");
    if std::env::var_os("REGENERATE_GOLDENS").is_some() {
        std::fs::write(path, format!("{computed}\n")).expect("golden file writable");
        println!("regenerated {path}");
        return;
    }
    let stored = std::fs::read_to_string(path).unwrap_or_else(|e| {
        panic!("missing golden snapshot {path} ({e}); run REGENERATE_GOLDENS=1 cargo test")
    });
    assert_eq!(
        stored.trim_end(),
        computed,
        "reference study drifted from {path}; if the change is intentional, \
         regenerate with REGENERATE_GOLDENS=1 cargo test --test reconstruction_fidelity"
    );
}
