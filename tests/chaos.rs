//! The chaos determinism contract (DESIGN.md §11): for a fixed chaos
//! plan, seed, and workload, the response vector, the injection ledger,
//! and the health transition trace are **byte-identical at 1, 2, and 8
//! threads**, under both degradation policies — and no injected fault
//! ever silently drops a query or corrupts a published snapshot.
//!
//! Scheduler chaos (overload shedding, cache poisoning) is exercised
//! through [`run_batch_chaos`]; persistence chaos (torn writes, bit
//! flips, transient I/O) through [`save_with`] / [`load_with`] over a
//! [`ChaosSession`] acting as the `SnapshotIo` layer.

use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};

use intertubes::degrade::DegradationPolicy;
use intertubes::faults::{FaultFamily, FaultPlan};
use intertubes::parallel::with_threads;
use intertubes::serve::{
    load_with, mixed_workload, run_batch, run_batch_chaos, run_batch_chaos_telemetry, save_with,
    CacheConfig, ChaosSession, Health, HealthTrace, QueryEngine, RealIo, ResultCache, RetryPolicy,
    ServeConfig, ServeTelemetry, StudySnapshot,
};
use intertubes::Study;

/// Serializes every test in this binary: `with_threads` pins the
/// process-global pool (same discipline as tests/serve.rs).
static BATTERY: Mutex<()> = Mutex::new(());

fn battery_lock() -> std::sync::MutexGuard<'static, ()> {
    BATTERY.lock().unwrap_or_else(|e| e.into_inner())
}

/// The frozen reference study, built once per process.
fn snapshot() -> &'static StudySnapshot {
    static SNAP: OnceLock<StudySnapshot> = OnceLock::new();
    SNAP.get_or_init(|| Study::reference().snapshot(Some(2_000)))
}

fn engine() -> QueryEngine {
    QueryEngine::new(snapshot().clone())
}

const REPLAY: usize = 300;
const SEED: u64 = 7;

/// A fresh per-arm serve config: small waves so every scenario sees many
/// chaos decision points.
fn serve_cfg() -> ServeConfig {
    ServeConfig {
        queue_capacity: 32,
        cache: CacheConfig {
            enabled: true,
            ..CacheConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// One chaos replay arm: fresh session, fresh cache (chaos state is
/// per-run; reuse would entangle the RNG streams across arms).
fn chaos_replay(
    plan: &FaultPlan,
    policy: DegradationPolicy,
    threads: usize,
) -> (Vec<String>, String) {
    let eng = engine();
    let queries = mixed_workload(snapshot(), REPLAY, SEED);
    let cfg = serve_cfg();
    let cache = ResultCache::new(cfg.cache);
    let session = ChaosSession::new(plan.clone(), policy);
    let (responses, _, report) =
        with_threads(threads, || run_batch_chaos(&eng, &queries, &cfg, &cache, &session));
    (responses, report.to_canonical_json())
}

/// The acceptance battery: every built-in chaos scenario × both policies
/// must produce byte-identical responses *and* chaos reports at 1, 2,
/// and 8 threads — and must never drop a query.
#[test]
fn chaos_battery_is_byte_identical_across_threads_and_policies() {
    let _guard = battery_lock();
    for (name, plan) in FaultPlan::built_in_chaos_scenarios() {
        for policy in [DegradationPolicy::Strict, DegradationPolicy::Lenient] {
            let (baseline, base_report) = chaos_replay(&plan, policy, 1);
            assert_eq!(
                baseline.len(),
                REPLAY,
                "{name}/{policy:?}: a chaos run must answer every query"
            );
            for threads in [2usize, 8] {
                let (responses, report) = chaos_replay(&plan, policy, threads);
                assert_eq!(
                    responses, baseline,
                    "{name}/{policy:?}: responses diverged at {threads} threads"
                );
                assert_eq!(
                    report, base_report,
                    "{name}/{policy:?}: chaos report diverged at {threads} threads"
                );
            }
        }
    }
}

/// A scratch file path under the OS temp dir, unique per test.
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("intertubes-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

/// Kill-during-save acceptance: with every write torn, the crash-safe
/// save exhausts its retries — and the previously published snapshot is
/// untouched and still loads.
#[test]
fn torn_writes_never_corrupt_the_published_snapshot() {
    let path = scratch("torn.snap");
    let snap = snapshot();
    snap.save(&path).unwrap();
    let good_bytes = std::fs::read(&path).unwrap();

    let plan = FaultPlan::new(11).with(FaultFamily::TornSnapshotWrite, 1.0);
    let session = ChaosSession::new(plan, DegradationPolicy::Lenient);
    let err = save_with(&session, snap, &path, &RetryPolicy::lenient())
        .expect_err("every write is torn; the save must exhaust");
    assert!(err.to_string().contains("exhausted"), "{err}");
    // The published file never entered the torn-write path: the protocol
    // only writes to `.tmp` until a verified rename.
    assert_eq!(std::fs::read(&path).unwrap(), good_bytes);
    StudySnapshot::load(&path).expect("the published snapshot must still load");
    // The session recorded every injection.
    assert_eq!(
        session.ledger().total(),
        3,
        "three torn attempts under the lenient retry budget"
    );
    assert_eq!(session.health(), Health::Degraded);
}

/// The crash-window salvage paths: a corrupt primary falls back to
/// `.tmp` (a verified-but-unpublished save), then `.bak` (the previous
/// good file) — under the lenient policy only.
#[test]
fn corrupt_primary_salvages_tmp_then_bak() {
    let good = snapshot().to_bytes().unwrap();

    // tmp candidate wins when present.
    let p1 = scratch("salvage-tmp.snap");
    std::fs::write(&p1, b"garbage, not a snapshot").unwrap();
    std::fs::write(p1.with_extension("snap.tmp"), &good).unwrap();
    let report = load_with(&RealIo, &p1, &RetryPolicy::lenient()).unwrap();
    assert_eq!(report.source, "tmp");
    assert!(report.salvaged());

    // bak candidate when there is no tmp.
    let p2 = scratch("salvage-bak.snap");
    std::fs::write(&p2, b"garbage, not a snapshot").unwrap();
    std::fs::write(p2.with_extension("snap.bak"), &good).unwrap();
    let report = load_with(&RealIo, &p2, &RetryPolicy::lenient()).unwrap();
    assert_eq!(report.source, "bak");

    // Strict mode fails fast: no salvage, the primary's error surfaces.
    let err = load_with(&RealIo, &p2, &RetryPolicy::strict())
        .expect_err("strict must not salvage");
    assert!(err.to_string().contains("bad magic"), "{err}");
}

/// A successful save through the crash-safe protocol publishes the new
/// bytes and keeps the previous file as `.bak`.
#[test]
fn successful_save_preserves_the_previous_snapshot_as_bak() {
    let path = scratch("atomic.snap");
    let snap = snapshot();
    snap.save(&path).unwrap();
    let first = std::fs::read(&path).unwrap();
    snap.save(&path).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), first);
    let bak = path.with_extension("snap.bak");
    assert!(bak.exists(), "the second save must keep the first as .bak");
    assert_eq!(std::fs::read(&bak).unwrap(), first);
}

/// Transient I/O faults retry (bounded, attempt-indexed) and succeed
/// within the budget when the fault misses a later draw.
#[test]
fn transient_io_faults_retry_and_recover() {
    let path = scratch("transient.snap");
    snapshot().save(&path).unwrap();
    let mut recovered = false;
    for seed in 0..64u64 {
        let plan = FaultPlan::new(seed).with(FaultFamily::TransientIo, 0.5);
        let session = ChaosSession::new(plan, DegradationPolicy::Lenient);
        if let Ok(report) = load_with(&session, &path, &RetryPolicy::lenient()) {
            if report.attempts > 1 {
                // The retry (not salvage) path: first read faulted, a
                // later attempt on the same candidate succeeded.
                assert_eq!(report.source, "primary");
                assert!(report.backoff_us > 0, "retries charge virtual backoff");
                recovered = true;
                break;
            }
        }
    }
    assert!(
        recovered,
        "no seed in 0..64 exercised the retry-then-success path"
    );
}

/// Overload bursts shed deterministically by queue position into
/// `Degraded` responses — never silent drops — and the lenient policy
/// attaches stale cached answers where it can.
#[test]
fn overload_shedding_degrades_but_never_drops() {
    let _guard = battery_lock();
    let eng = engine();
    let queries = mixed_workload(snapshot(), REPLAY, SEED);
    let cfg = serve_cfg();

    // Warm the cache with a clean pass so shed queries can be served
    // stale under the lenient policy.
    let cache = ResultCache::new(cfg.cache);
    let (clean, _) = run_batch(&eng, &queries, &cfg, &cache);

    let plan = FaultPlan::new(5).with(FaultFamily::OverloadBurst, 1.0);
    let session = ChaosSession::new(plan.clone(), DegradationPolicy::Lenient);
    let (responses, stats, report) = run_batch_chaos(&eng, &queries, &cfg, &cache, &session);
    assert_eq!(responses.len(), REPLAY, "shed queries still get responses");
    assert!(stats.degraded > 0, "a rate-1.0 burst plan must shed");
    assert_eq!(stats.degraded, report.degraded);
    // Rate 1.0 sheds the tail of every wave: positions >= depth/2 (the
    // final partial wave sheds from its own half-depth).
    let expect_shed = |i: usize| -> bool {
        let wave_start = (i / cfg.queue_capacity) * cfg.queue_capacity;
        let depth = (REPLAY - wave_start).min(cfg.queue_capacity);
        i - wave_start >= depth / 2
    };
    let shed_expected = (0..REPLAY).filter(|&i| expect_shed(i)).count();
    assert_eq!(
        stats.degraded, shed_expected,
        "shedding must be exactly the tail half of each wave"
    );
    assert!(
        stats.stale_served > 0,
        "a warm cache must serve some shed queries stale"
    );
    for (i, r) in responses.iter().enumerate() {
        assert_eq!(
            r.contains("\"Degraded\""),
            expect_shed(i),
            "query {i}: {r}"
        );
        // The non-shed head of each wave answers with the clean bytes.
        if !expect_shed(i) {
            assert_eq!(r, &clean[i], "query {i} head-of-wave answer changed");
        }
    }
    // Strict mode sheds without stale answers.
    let cache = ResultCache::new(cfg.cache);
    let session = ChaosSession::new(plan, DegradationPolicy::Strict);
    let (_, strict_stats, _) = run_batch_chaos(&eng, &queries, &cfg, &cache, &session);
    assert_eq!(strict_stats.stale_served, 0, "strict never serves stale");
}

/// Cache poisoning is detected (checksummed entries), evicted, and
/// recomputed: the response vector matches a clean run byte for byte.
#[test]
fn poisoned_cache_recomputes_identical_bytes() {
    let _guard = battery_lock();
    let eng = engine();
    let queries = mixed_workload(snapshot(), REPLAY, SEED);
    let cfg = serve_cfg();

    let cache = ResultCache::new(cfg.cache);
    let (clean, _) = run_batch(&eng, &queries, &cfg, &cache);

    let plan = FaultPlan::new(3).with(FaultFamily::CachePoison, 1.0);
    let cache = ResultCache::new(cfg.cache);
    let session = ChaosSession::new(plan, DegradationPolicy::Lenient);
    let telemetry = ServeTelemetry::new();
    let (responses, _, report) =
        run_batch_chaos_telemetry(&eng, &queries, &cfg, &cache, &session, &telemetry);
    assert_eq!(
        responses, clean,
        "poisoned entries must be recomputed, not served"
    );
    assert!(
        report.ledger.total() > 0,
        "a rate-1.0 poison plan over many waves must corrupt entries"
    );
    assert!(
        report.cache_poison_detected > 0,
        "poisoned entries must be detected on lookup"
    );

    // The poison counters flow end to end: the cache separates injected
    // corruption from detected corruption, the chaos report agrees with
    // the cache's own ledger, and the stats document surfaces both.
    assert!(
        cache.poison_injected() > 0,
        "poison_shard must count the entries it corrupts"
    );
    let detected = cache.stats().poison_detected();
    assert_eq!(
        detected, report.cache_poison_detected,
        "cache shard stats and the chaos report must agree on detections"
    );
    assert!(
        detected <= cache.poison_injected(),
        "an entry is detected at most once per injection"
    );
    let doc = telemetry.stats_document(Some(&cache));
    let cache_block = doc.get("cache").expect("stats document has a cache block");
    assert_eq!(
        cache_block.get("poison_injected").and_then(|v| v.as_u64()),
        Some(cache.poison_injected())
    );
    assert_eq!(
        cache_block.get("poison_detected").and_then(|v| v.as_u64()),
        Some(detected)
    );
    // ...and stays out of the canonical form, like every cache-mode-
    // dependent counter (a disabled cache cannot be poisoned).
    let canon = intertubes::serve::canonicalize_stats(&doc);
    assert!(canon.get("cache").is_none(), "cache block is non-canonical");
}

/// The health machine: a fault degrades, two clean waves recover, and
/// the batch end drains — with the full transition trace retained.
#[test]
fn health_machine_degrades_recovers_and_drains() {
    let mut trace = HealthTrace::new();
    assert_eq!(trace.state(), Health::Ready);
    trace.note_fault(1, "transient-io");
    assert_eq!(trace.state(), Health::Degraded);
    trace.note_clean_wave(2);
    assert_eq!(trace.state(), Health::Degraded, "one clean wave is not enough");
    trace.note_clean_wave(3);
    assert_eq!(trace.state(), Health::Ready, "two clean waves recover");
    trace.drain(4);
    assert_eq!(trace.state(), Health::Draining);
    let kinds: Vec<(u64, Health, Health)> = trace
        .transitions()
        .iter()
        .map(|t| (t.wave, t.from, t.to))
        .collect();
    assert_eq!(
        kinds,
        vec![
            (1, Health::Ready, Health::Degraded),
            (3, Health::Degraded, Health::Ready),
            (4, Health::Ready, Health::Draining),
        ]
    );
}

/// End-to-end CLI chaos: `serve --chaos <builtin>` exits 0, writes the
/// chaos report artifact, and embeds the health trace in the manifest.
#[test]
fn cli_serve_chaos_writes_report_and_manifest_health() {
    let dir = std::env::temp_dir().join(format!("intertubes-chaos-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap_path = dir.join("study.snap");
    // A tiny world keeps the pipeline build fast enough for a CLI test.
    snapshot().save(&snap_path).unwrap();

    let report_path = dir.join("chaos.json");
    let trace_path = dir.join("trace.jsonl");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_intertubes"))
        .args([
            "--trace-json",
            trace_path.to_str().unwrap(),
            "serve",
            "--snapshot",
            snap_path.to_str().unwrap(),
            "--replay",
            "200",
            "--queue",
            "32",
            "--chaos",
            "overload",
            "--chaos-report",
            report_path.to_str().unwrap(),
            "--out",
            dir.join("responses.jsonl").to_str().unwrap(),
            "--stats",
            dir.join("stats.json").to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "serve --chaos failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&report_path).unwrap()).unwrap();
    assert!(report.get("final_health").is_some(), "report: {report:?}");
    assert!(report.get("ledger").is_some());
    assert!(report.get("transitions").is_some());

    // The run manifest (last trace line) carries run.health.
    let trace = std::fs::read_to_string(&trace_path).unwrap();
    let last = trace.lines().last().unwrap();
    let manifest: serde_json::Value = serde_json::from_str(last).unwrap();
    let health = manifest
        .get("run")
        .and_then(|r| r.get("health"))
        .expect("manifest must carry run.health");
    assert!(health.is_object(), "run.health must be the health document");
    assert!(health.get("state").is_some());

    // An unknown chaos spec is a data error (exit 3), not a panic.
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_intertubes"))
        .args([
            "serve",
            "--snapshot",
            snap_path.to_str().unwrap(),
            "--replay",
            "10",
            "--chaos",
            "no-such-scenario",
        ])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(!stderr.contains("panicked"), "{stderr}");
}
