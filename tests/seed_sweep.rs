//! Seed robustness: the paper's qualitative findings must hold across
//! synthetic worlds, not just the reference seed. (The reference seed's
//! numbers are pinned in `end_to_end.rs`; here we assert the *shape*
//! invariants on other seeds.)

use intertubes::degrade::DegradationPolicy;
use intertubes::risk::{sharing_fraction, traffic_risk};
use intertubes::scenario::ScenarioPlan;
use intertubes::serve::QueryEngine;
use intertubes::{Study, StudyConfig};

fn shape_invariants(seed: u64) {
    let study = Study::with_seed(seed);
    let map = &study.built.map;

    // Scale: the calibrated world always lands near the paper's counts.
    assert!(
        (450..=600).contains(&map.conduits.len()),
        "seed {seed}: conduits {}",
        map.conduits.len()
    );
    assert!(
        (2_000..=2_800).contains(&map.link_count()),
        "seed {seed}: links {}",
        map.link_count()
    );

    // §4.2 sharing monotonicity and rough level.
    let rm = study.risk_matrix();
    let (ge2, ge3, ge4) = (
        sharing_fraction(&rm, 2),
        sharing_fraction(&rm, 3),
        sharing_fraction(&rm, 4),
    );
    assert!(ge2 > ge3 && ge3 > ge4, "seed {seed}");
    assert!(ge2 > 0.7, "seed {seed}: ge2 {ge2}");
    assert!(ge4 > 0.35, "seed {seed}: ge4 {ge4}");

    // Diverse domestic giants sit below backbone renters in the ranking.
    let ranking = intertubes::risk::isp_sharing_ranking(&rm);
    let rank = |name: &str| ranking.iter().position(|r| r.isp == name).unwrap();
    assert!(
        rank("EarthLink") < rank("Deutsche Telekom"),
        "seed {seed}: EarthLink {} vs DT {}",
        rank("EarthLink"),
        rank("Deutsche Telekom")
    );
    assert!(rank("Level 3") < rank("Inteliquent"), "seed {seed}");

    // §4.3: traffic overlay only raises perceived sharing.
    let overlay = study.overlay(&study.campaign(Some(10_000)));
    let tr = traffic_risk(map, &overlay);
    assert!(tr.with_traffic.mean() >= tr.map_only.mean(), "seed {seed}");

    // §5.1: rerouting the heavy dozen always produces positive SRR.
    let rob = study.robustness(12);
    let affected = rob.per_isp.iter().filter(|r| r.cases > 0).count();
    assert!(
        affected >= 12,
        "seed {seed}: only {affected} providers affected"
    );
    assert!(
        rob.per_isp
            .iter()
            .filter(|r| r.cases > 0)
            .all(|r| r.avg_srr > 0.0),
        "seed {seed}"
    );

    // §5.3: the CDF ordering LOS ≤ ROW and best ≤ avg per pair.
    let lat = study.latency();
    for p in lat.pairs.iter().take(200) {
        assert!(
            p.los_us <= p.row_us + 1e-6,
            "seed {seed}: {} – {}",
            p.a,
            p.b
        );
        assert!(
            p.best_us <= p.avg_us + 1e-6,
            "seed {seed}: {} – {}",
            p.a,
            p.b
        );
    }
}

#[test]
fn shapes_hold_on_seed_7() {
    shape_invariants(7);
}

/// Scenario-engine seed sweep (DESIGN.md §12.5): for a fixed frozen
/// snapshot, the ensemble digest is a pure function of the plan seed —
/// stable under re-evaluation, identical whether the study was built
/// under the strict or the lenient degradation policy (clean input makes
/// them equivalent), and distinct across seeds (different seeds sample
/// different failure sets, not just a different label).
#[test]
fn scenario_digests_sweep_seeds_across_both_policies() {
    let mut strict_cfg = StudyConfig::default();
    strict_cfg.policy = DegradationPolicy::Strict;
    let (strict, _) = Study::new_checked(strict_cfg).expect("clean input builds strictly");
    let (lenient, _) =
        Study::new_checked(StudyConfig::default()).expect("lenient build never fails");
    let strict_engine = QueryEngine::new(strict.snapshot(Some(2_000)));
    let lenient_engine = QueryEngine::new(lenient.snapshot(Some(2_000)));

    // The hurricane corridor at a sweep-friendly ensemble size.
    let mut plan = ScenarioPlan::built_in_scenarios()[0].1.clone();
    plan.draws = 500;

    let seeds = [11u64, 22, 33, 44, 55];
    let mut digests = Vec::new();
    let mut means = Vec::new();
    for seed in seeds {
        plan.seed = seed;
        let report = lenient_engine.conditional_risk(&plan).expect("valid plan");
        let digest = report.digest();
        let again = lenient_engine.conditional_risk(&plan).expect("valid plan");
        assert_eq!(again.digest(), digest, "seed {seed}: re-evaluation drifted");
        let strict_report = strict_engine.conditional_risk(&plan).expect("valid plan");
        assert_eq!(
            strict_report.digest(),
            digest,
            "seed {seed}: strict and lenient snapshots disagree"
        );
        digests.push(digest);
        means.push(report.mean_conduits_cut);
    }
    for i in 0..digests.len() {
        for j in i + 1..digests.len() {
            assert_ne!(
                digests[i], digests[j],
                "seeds {} and {} collided",
                seeds[i], seeds[j]
            );
        }
    }
    // Distinctness must come from the sampling, not merely the seed field
    // echoed into the report.
    assert!(
        means.windows(2).any(|w| w[0] != w[1]),
        "every seed sampled identical ensembles: {means:?}"
    );
}

#[test]
fn shapes_hold_on_seed_20150817() {
    // The paper's presentation date.
    shape_invariants(20_150_817);
}
