//! Seed robustness: the paper's qualitative findings must hold across
//! synthetic worlds, not just the reference seed. (The reference seed's
//! numbers are pinned in `end_to_end.rs`; here we assert the *shape*
//! invariants on other seeds.)

use intertubes::risk::{sharing_fraction, traffic_risk};
use intertubes::Study;

fn shape_invariants(seed: u64) {
    let study = Study::with_seed(seed);
    let map = &study.built.map;

    // Scale: the calibrated world always lands near the paper's counts.
    assert!(
        (450..=600).contains(&map.conduits.len()),
        "seed {seed}: conduits {}",
        map.conduits.len()
    );
    assert!(
        (2_000..=2_800).contains(&map.link_count()),
        "seed {seed}: links {}",
        map.link_count()
    );

    // §4.2 sharing monotonicity and rough level.
    let rm = study.risk_matrix();
    let (ge2, ge3, ge4) = (
        sharing_fraction(&rm, 2),
        sharing_fraction(&rm, 3),
        sharing_fraction(&rm, 4),
    );
    assert!(ge2 > ge3 && ge3 > ge4, "seed {seed}");
    assert!(ge2 > 0.7, "seed {seed}: ge2 {ge2}");
    assert!(ge4 > 0.35, "seed {seed}: ge4 {ge4}");

    // Diverse domestic giants sit below backbone renters in the ranking.
    let ranking = intertubes::risk::isp_sharing_ranking(&rm);
    let rank = |name: &str| ranking.iter().position(|r| r.isp == name).unwrap();
    assert!(
        rank("EarthLink") < rank("Deutsche Telekom"),
        "seed {seed}: EarthLink {} vs DT {}",
        rank("EarthLink"),
        rank("Deutsche Telekom")
    );
    assert!(rank("Level 3") < rank("Inteliquent"), "seed {seed}");

    // §4.3: traffic overlay only raises perceived sharing.
    let overlay = study.overlay(&study.campaign(Some(10_000)));
    let tr = traffic_risk(map, &overlay);
    assert!(tr.with_traffic.mean() >= tr.map_only.mean(), "seed {seed}");

    // §5.1: rerouting the heavy dozen always produces positive SRR.
    let rob = study.robustness(12);
    let affected = rob.per_isp.iter().filter(|r| r.cases > 0).count();
    assert!(
        affected >= 12,
        "seed {seed}: only {affected} providers affected"
    );
    assert!(
        rob.per_isp
            .iter()
            .filter(|r| r.cases > 0)
            .all(|r| r.avg_srr > 0.0),
        "seed {seed}"
    );

    // §5.3: the CDF ordering LOS ≤ ROW and best ≤ avg per pair.
    let lat = study.latency();
    for p in lat.pairs.iter().take(200) {
        assert!(
            p.los_us <= p.row_us + 1e-6,
            "seed {seed}: {} – {}",
            p.a,
            p.b
        );
        assert!(
            p.best_us <= p.avg_us + 1e-6,
            "seed {seed}: {} – {}",
            p.a,
            p.b
        );
    }
}

#[test]
fn shapes_hold_on_seed_7() {
    shape_invariants(7);
}

#[test]
fn shapes_hold_on_seed_20150817() {
    // The paper's presentation date.
    shape_invariants(20_150_817);
}
