//! Property tests: no panic and no lenient-mode error under *arbitrary*
//! fault plans.
//!
//! The full study build is too slow to run per proptest case, so the
//! properties drive the individual injectors plus their consuming checked
//! stages against shared fixtures (a subset of the published maps keeps
//! the pipeline stage fast); the full-pipeline composition is covered by
//! the built-in-scenario integration tests.

use std::sync::OnceLock;

use intertubes::atlas::{MapKind, PublishedMap, World, WorldConfig};
use intertubes::degrade::DegradationPolicy;
use intertubes::faults::{
    inject_campaign, inject_corpus, inject_published_maps, inject_transport, FaultFamily,
    FaultPlan, InjectionLedger,
};
use intertubes::map::{build_map_checked, PipelineConfig};
use intertubes::probes::{overlay_campaign_checked, run_campaign, Campaign, ProbeConfig};
use intertubes::records::{generate_corpus, sanitize_corpus, Corpus, CorpusConfig};
use intertubes::Study;
use proptest::prelude::*;

struct Fixture {
    world: World,
    corpus: Corpus,
    published: Vec<PublishedMap>,
    campaign: Campaign,
    study: Study,
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let world = World::generate(WorldConfig::default());
        let corpus = generate_corpus(&world, &CorpusConfig::default());
        // A 4-provider subset keeps per-case pipeline builds fast while
        // still exercising both geocoded and POP-only ingestion (the
        // roster front-loads geocoded publishers, so pick by kind).
        let all = world.publish_maps();
        let mut published: Vec<PublishedMap> = all
            .iter()
            .filter(|m| m.kind == MapKind::Geocoded)
            .take(3)
            .cloned()
            .collect();
        published.extend(all.iter().filter(|m| m.kind == MapKind::PopOnly).take(1).cloned());
        let campaign = run_campaign(
            &world,
            &ProbeConfig {
                probes: 500,
                ..ProbeConfig::default()
            },
        );
        let study = Study::reference();
        Fixture {
            world,
            corpus,
            published,
            campaign,
            study,
        }
    })
}

/// Strategy: an arbitrary plan — any seed, any subset of families, any
/// rates in [0, 1.5] (over-unit rates must clamp, not break).
fn arb_plan() -> impl Strategy<Value = FaultPlan> {
    (
        0u64..u64::MAX,
        prop::collection::vec((0usize..FaultFamily::ALL.len(), 0.0f64..1.5), 0..8),
    )
        .prop_map(|(seed, faults)| {
            let mut plan = FaultPlan::new(seed);
            for (idx, rate) in faults {
                plan = plan.with(FaultFamily::ALL[idx], rate);
            }
            plan
        })
}

proptest! {
    #[test]
    fn map_injection_and_build_never_panic(plan in arb_plan()) {
        let f = fixture();
        let mut published = f.published.clone();
        let mut ledger = InjectionLedger::new();
        inject_published_maps(&mut published, &plan, &mut ledger);
        let (built, _report) = build_map_checked(
            &published,
            &f.corpus,
            &f.world.cities,
            &f.world.roads,
            &f.world.rails,
            &PipelineConfig::default(),
            DegradationPolicy::Lenient,
        )
        .expect("lenient build never errors");
        prop_assert_eq!(built.reports.len(), 4);
    }

    #[test]
    fn corpus_injection_and_sanitize_never_panic(plan in arb_plan()) {
        let f = fixture();
        let mut ledger = InjectionLedger::new();
        let corpus = inject_corpus(&f.corpus, &plan, &mut ledger);
        let (clean, report) = sanitize_corpus(&corpus, DegradationPolicy::Lenient)
            .expect("lenient sanitize never errors");
        prop_assert!(clean.len() <= corpus.len());
        prop_assert_eq!(
            clean.len() + report.total_for_reason("corrupt-city-label"),
            corpus.len()
        );
    }

    #[test]
    fn campaign_injection_and_overlay_never_panic(plan in arb_plan()) {
        let f = fixture();
        let mut campaign = f.campaign.clone();
        let mut ledger = InjectionLedger::new();
        inject_campaign(&mut campaign, f.world.cities.len(), &plan, &mut ledger);
        let (overlay, report) = overlay_campaign_checked(
            &f.study.world,
            &f.study.built.map,
            &campaign,
            DegradationPolicy::Lenient,
        )
        .expect("lenient overlay never errors");
        let dropped = report.total_for_reason("endpoint-out-of-range");
        prop_assert_eq!(overlay.overlaid + overlay.skipped + dropped, campaign.traces.len());
    }

    #[test]
    fn transport_injection_and_validation_never_panic(plan in arb_plan()) {
        let f = fixture();
        let mut roads = f.world.roads.clone();
        let mut ledger = InjectionLedger::new();
        inject_transport(&mut roads, &plan, &mut ledger);
        let report = roads
            .validate(DegradationPolicy::Lenient)
            .expect("lenient validation never errors");
        prop_assert_eq!(roads.graph.node_count(), f.world.roads.graph.node_count());
        if ledger.count(FaultFamily::DisconnectTransport) == 0 {
            prop_assert!(report.is_clean());
        }
    }
}
