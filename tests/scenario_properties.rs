//! Property battery for the scenario engine (DESIGN.md §12.5), pinning
//! the four contracts the ensemble rests on:
//!
//! 1. footprint containment agrees with an independent brute-force point
//!    check (half-plane test for convex polygons, direct distance for
//!    discs) on random footprints;
//! 2. same-seed evaluation is bit-identical across runs *and* across
//!    1/2/8 threads — the sampling streams depend only on
//!    `(seed, draw index)`, never on chunking;
//! 3. the `EnsembleAccumulator` merge is associative, commutative, and
//!    shard-split invariant (fold of the whole == fold of any split);
//! 4. a probability-1.0 footprint over exactly one conduit reproduces
//!    `what_if_cut` for that conduit bit-for-bit.
//!
//! The full study is far too slow per proptest case, so the evaluation
//! properties drive a toy map shaped like the mitigation crate's whatif
//! fixtures; the full-map path is covered by `tests/scenario_goldens.rs`.

use std::sync::{Mutex, OnceLock};

use intertubes::geo::{GeoPoint, Polyline};
use intertubes::map::{
    FiberMap, MapConduit, MapConduitId, Provenance, Tenancy, TenancySource,
};
use intertubes::mitigation::what_if_cut;
use intertubes::parallel::with_threads;
use intertubes::scenario::{
    evaluate, EnsembleAccumulator, EvalContext, Footprint, HazardModel, PairRoutes, RouteSummary,
    ScenarioPlan,
};
use proptest::prelude::*;

/// Serializes the thread-count property: `with_threads` pins the
/// process-global pool (lock ordering as in tests/serve.rs).
static BATTERY: Mutex<()> = Mutex::new(());

/// Toy fixture: a conduit square A–B–C–D with an A–C diagonal, plus a
/// remote, geographically isolated conduit E–F that a small footprint can
/// cover alone (the probability-1.0 property needs exactly one exposed
/// conduit).
struct Fixture {
    map: FiberMap,
    isps: Vec<String>,
    pairs: Vec<PairRoutes>,
    km: Vec<f64>,
    shared: Vec<u16>,
}

fn straight(a: (f64, f64), b: (f64, f64)) -> Polyline {
    Polyline::straight(
        GeoPoint::new_unchecked(a.0, a.1),
        GeoPoint::new_unchecked(b.0, b.1),
    )
    .densify(40.0)
    .expect("positive step")
}

fn fixture() -> &'static Fixture {
    static F: OnceLock<Fixture> = OnceLock::new();
    F.get_or_init(|| {
        let mut map = FiberMap::default();
        let coords = [
            ("A, XX", (40.0, -100.0)),
            ("B, XX", (40.0, -98.0)),
            ("C, XX", (38.0, -98.0)),
            ("D, XX", (38.0, -100.0)),
            ("E, YY", (45.0, -80.0)),
            ("F, YY", (45.0, -78.0)),
        ];
        let ids: Vec<_> = coords
            .iter()
            .map(|(label, (lat, lon))| {
                map.ensure_node(label, GeoPoint::new_unchecked(*lat, *lon))
            })
            .collect();
        let t = |isp: &str| Tenancy {
            isp: isp.into(),
            source: TenancySource::PublishedMap,
        };
        let spans: [(usize, usize, Vec<Tenancy>); 6] = [
            (0, 1, vec![t("W"), t("X"), t("Y"), t("Z")]), // 0: A–B
            (1, 2, vec![t("W"), t("X")]),                 // 1: B–C
            (2, 3, vec![t("X"), t("Y")]),                 // 2: C–D
            (3, 0, vec![t("W")]),                         // 3: D–A
            (0, 2, vec![t("Z")]),                         // 4: A–C diagonal
            (4, 5, vec![t("W"), t("X"), t("Y")]),         // 5: E–F (remote)
        ];
        for (a, b, tenants) in spans {
            map.conduits.push(MapConduit {
                a: ids[a],
                b: ids[b],
                geometry: straight(coords[a].1, coords[b].1),
                tenants,
                provenance: Provenance::Step1,
                validated: true,
                row: None,
            });
        }
        let km: Vec<f64> = map.conduits.iter().map(|c| c.geometry.length_km()).collect();
        let shared: Vec<u16> = map.conduits.iter().map(|c| c.tenants.len() as u16).collect();
        let route = |conduits: Vec<u32>| RouteSummary {
            km: conduits.iter().map(|&c| km[c as usize]).sum(),
            conduits,
        };
        // Stored routes, cheapest first (the diagonal beats the two-hop
        // detour; E–F has exactly one route, so severing conduit 5
        // disconnects the pair).
        let pairs = vec![
            PairRoutes {
                a: ids[0].0,
                b: ids[2].0,
                routes: vec![route(vec![4]), route(vec![0, 1])],
            },
            PairRoutes {
                a: ids[1].0,
                b: ids[3].0,
                routes: vec![route(vec![1, 2]), route(vec![0, 3])],
            },
            PairRoutes {
                a: ids[4].0,
                b: ids[5].0,
                routes: vec![route(vec![5])],
            },
        ];
        Fixture {
            map,
            isps: ["W", "X", "Y", "Z"].iter().map(|s| s.to_string()).collect(),
            pairs,
            km,
            shared,
        }
    })
}

/// Evaluates `plan` over the toy fixture at the given thread count.
fn eval_at(threads: usize, plan: &ScenarioPlan) -> intertubes::scenario::ConditionalRisk {
    let f = fixture();
    let csr = f.map.graph().to_csr();
    let ctx = EvalContext {
        map: &f.map,
        isps: &f.isps,
        pairs: &f.pairs,
        csr: &csr,
        km: &f.km,
        shared: &f.shared,
        landmarks: None,
    };
    with_threads(threads, || evaluate(&ctx, plan)).expect("valid plan evaluates")
}

/// Brute-force convex containment: `p` is inside when the cross products
/// of every directed edge with the edge-to-point vector share a sign.
fn convex_contains(ring: &[GeoPoint], p: &GeoPoint) -> bool {
    let n = ring.len();
    let mut sign = 0.0f64;
    for i in 0..n {
        let (a, b) = (&ring[i], &ring[(i + 1) % n]);
        let cross = (b.lon - a.lon) * (p.lat - a.lat) - (b.lat - a.lat) * (p.lon - a.lon);
        if cross == 0.0 {
            continue;
        }
        if sign == 0.0 {
            sign = cross.signum();
        } else if cross.signum() != sign {
            return false;
        }
    }
    true
}

/// A random convex ring: vertices of a squashed circle around `(lat,
/// lon)` in angular order (convex by construction), plus the closing
/// repeat.
fn convex_ring(lat: f64, lon: f64, r: f64, squash: f64, k: usize) -> Vec<GeoPoint> {
    let mut ring: Vec<GeoPoint> = (0..k)
        .map(|i| {
            let theta = std::f64::consts::TAU * i as f64 / k as f64;
            GeoPoint {
                lat: lat + r * squash * theta.sin(),
                lon: lon + r * theta.cos(),
            }
        })
        .collect();
    ring.push(ring[0]);
    ring
}

proptest! {
    #[test]
    fn polygon_containment_agrees_with_half_plane_check(
        lat in 30.0f64..42.0,
        lon in -110.0f64..-85.0,
        r in 1.0f64..6.0,
        squash in 0.3f64..1.0,
        k in 3usize..9,
        pu in 0.0f64..1.0,
        pv in 0.0f64..1.0,
    ) {
        let ring = convex_ring(lat, lon, r, squash, k);
        let probe = GeoPoint {
            lat: lat + (pu * 4.0 - 2.0) * r,
            lon: lon + (pv * 4.0 - 2.0) * r,
        };
        let expected = convex_contains(&ring[..ring.len() - 1], &probe);
        // Discard probes within ~1e-9 deg of an edge, where the two
        // formulations may legitimately disagree on the boundary.
        let clearance = (0..ring.len() - 1)
            .map(|i| {
                let (a, b) = (&ring[i], &ring[i + 1]);
                let cross = (b.lon - a.lon) * (probe.lat - a.lat)
                    - (b.lat - a.lat) * (probe.lon - a.lon);
                let len = ((b.lon - a.lon).powi(2) + (b.lat - a.lat).powi(2)).sqrt();
                (cross / len.max(1e-12)).abs()
            })
            .fold(f64::INFINITY, f64::min);
        prop_assume!(clearance > 1e-9);
        let poly = Footprint::Polygon { vertices: ring };
        prop_assert_eq!(poly.contains(&probe), expected);
    }

    #[test]
    fn disc_containment_agrees_with_distance(
        lat in 25.0f64..48.0,
        lon in -120.0f64..-70.0,
        radius_km in 1.0f64..800.0,
        plat in 25.0f64..48.0,
        plon in -120.0f64..-70.0,
    ) {
        let center = GeoPoint { lat, lon };
        let probe = GeoPoint { lat: plat, lon: plon };
        let disc = Footprint::Disc { center, radius_km };
        prop_assert_eq!(
            disc.contains(&probe),
            center.distance_km(&probe) <= radius_km
        );
    }

    #[test]
    fn same_seed_evaluation_is_bit_identical_across_runs_and_threads(
        seed in 0u64..u64::MAX,
        p in 0.0f64..1.5,
        draws in 1u64..200,
        lat in 37.0f64..41.0,
        lon in -101.0f64..-97.0,
        radius_km in 50.0f64..500.0,
    ) {
        let _guard = BATTERY.lock().unwrap_or_else(|e| e.into_inner());
        let plan = ScenarioPlan {
            name: "prop".to_string(),
            seed,
            draws,
            footprint: Footprint::Disc {
                center: GeoPoint { lat, lon },
                radius_km,
            },
            model: HazardModel::Fixed { p },
        };
        let baseline = eval_at(1, &plan);
        prop_assert_eq!(&eval_at(1, &plan), &baseline, "same-seed rerun drifted");
        let bytes = serde_json::to_string(&baseline).expect("serializes");
        for threads in [2usize, 8] {
            let report = eval_at(threads, &plan);
            prop_assert_eq!(&report, &baseline, "diverged at {} threads", threads);
            prop_assert_eq!(
                serde_json::to_string(&report).expect("serializes"),
                bytes.clone(),
                "bytes diverged at {} threads",
                threads
            );
            prop_assert_eq!(report.digest(), baseline.digest());
        }
    }

    #[test]
    fn accumulator_merge_is_associative_commutative_and_shard_splittable(
        raw in prop::collection::vec(
            prop::collection::vec(0u64..1_000_000, 9..12),
            2..8
        ),
        split_frac in 0.0f64..1.0,
    ) {
        let accs: Vec<EnsembleAccumulator> = raw
            .iter()
            .map(|vals| {
                let mut a = EnsembleAccumulator::identity(2);
                a.draws = vals[0];
                a.severed_total = vals[1];
                a.disconnected_total = vals[2];
                a.max_disconnected = vals[3];
                a.affected_total = vals[4];
                a.survived_total = vals[5];
                a.inflation_ppm_total = vals[6];
                a.failures = vec![vals[7], vals[8]];
                a.disconnect_weight = vec![vals[8], vals[7]];
                a
            })
            .collect();
        // Associativity and commutativity on the first pair/triple.
        let (a, b) = (&accs[0], &accs[1]);
        let mut ab = a.clone();
        ab.merge(b);
        let mut ba = b.clone();
        ba.merge(a);
        prop_assert_eq!(&ab, &ba, "merge is not commutative");
        if let Some(c) = accs.get(2) {
            let mut left = ab.clone();
            left.merge(c);
            let mut bc = b.clone();
            bc.merge(c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(&left, &right, "merge is not associative");
        }
        // Shard-split equivalence: folding everything equals folding two
        // arbitrary shards and merging the shard results.
        let fold = |items: &[EnsembleAccumulator]| {
            let mut acc = EnsembleAccumulator::identity(2);
            for item in items {
                acc.merge(item);
            }
            acc
        };
        let whole = fold(&accs);
        let split = ((accs.len() as f64) * split_frac) as usize;
        let mut sharded = fold(&accs[..split]);
        sharded.merge(&fold(&accs[split..]));
        prop_assert_eq!(whole, sharded, "shard split changed the fold");
    }

    #[test]
    fn probability_one_single_conduit_reproduces_what_if_cut(
        seed in 0u64..u64::MAX,
        draws in 1u64..100,
    ) {
        let _guard = BATTERY.lock().unwrap_or_else(|e| e.into_inner());
        let f = fixture();
        // A disc over the remote E–F conduit only: every sampled point of
        // conduit 5 is within 200 km of (45, -79); every other conduit is
        // hundreds of km away.
        let plan = ScenarioPlan {
            name: "certain".to_string(),
            seed,
            draws,
            footprint: Footprint::Disc {
                center: GeoPoint { lat: 45.0, lon: -79.0 },
                radius_km: 200.0,
            },
            model: HazardModel::Fixed { p: 1.0 },
        };
        let report = eval_at(1, &plan);
        prop_assert_eq!(report.exposed_conduits, 1, "footprint must cover exactly conduit 5");
        prop_assert_eq!(report.certain_conduits, 1);
        // Probability 1 severs the conduit in every draw, and the E–F
        // pair's only route dies with it.
        prop_assert_eq!(report.mean_conduits_cut, 1.0);
        prop_assert_eq!(report.mean_pairs_disconnected, 1.0);
        prop_assert_eq!(report.max_pairs_disconnected, 1);
        prop_assert_eq!(report.criticality[0].conduit, 5);
        prop_assert_eq!(report.criticality[0].failures, draws);
        // The embedded certain-cut report is what_if_cut, bit for bit.
        let direct = what_if_cut(&f.map, &f.isps, &[MapConduitId(5)]);
        let embedded = report.certain_cut.as_ref().expect("certain cut present");
        prop_assert_eq!(embedded, &direct);
        prop_assert_eq!(
            serde_json::to_string(embedded).expect("serializes"),
            serde_json::to_string(&direct).expect("serializes"),
            "certain_cut bytes diverged from what_if_cut"
        );
    }
}
