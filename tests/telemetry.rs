//! The serving-telemetry contract (DESIGN.md §13): the **count plane** is
//! part of the determinism surface — its canonicalized form is
//! byte-identical at 1, 2, and 8 threads with the result cache enabled or
//! disabled — while the **timing plane** (latency histograms, queue
//! depth, deadline slack) is measurement, present in the full stats
//! document but stripped from every canonical comparison, exactly like
//! `canonicalize` strips wall-clock from the run manifest.
//!
//! The battery also pins the `Stats` query family (answered serially in
//! the decide phase from completed-wave state, never cached, never
//! deduplicated) and the flight recorder's dump triggers (drain always;
//! fault injection and health departures under chaos), which are
//! functions of the plan, seed, and wave — not of thread count.

use std::sync::{Mutex, OnceLock};

use intertubes::degrade::DegradationPolicy;
use intertubes::faults::{FaultFamily, FaultPlan};
use intertubes::parallel::with_threads;
use intertubes::serve::{
    canonicalize_stats, mixed_workload, run_batch_chaos_telemetry, run_batch_telemetry,
    CacheConfig, ChaosSession, Query, QueryEngine, ResultCache, ServeConfig, ServeTelemetry,
    StudySnapshot, NONCANONICAL_STATS_KEYS, STATS_SCHEMA,
};
use intertubes::Study;
use serde_json::Value;

/// Serializes every test in this binary: `with_threads` pins the
/// process-global pool (same discipline as tests/serve.rs).
static BATTERY: Mutex<()> = Mutex::new(());

fn battery_lock() -> std::sync::MutexGuard<'static, ()> {
    BATTERY.lock().unwrap_or_else(|e| e.into_inner())
}

/// The frozen reference study, built once per process.
fn snapshot() -> &'static StudySnapshot {
    static SNAP: OnceLock<StudySnapshot> = OnceLock::new();
    SNAP.get_or_init(|| Study::reference().snapshot(Some(2_000)))
}

fn engine() -> QueryEngine {
    QueryEngine::new(snapshot().clone())
}

const REPLAY: usize = 400;
const SEED: u64 = 7;

fn serve_cfg(cache_on: bool) -> ServeConfig {
    ServeConfig {
        queue_capacity: 64,
        cache: CacheConfig {
            enabled: cache_on,
            ..CacheConfig::default()
        },
        ..ServeConfig::default()
    }
}

/// One clean telemetry arm over the fixed mixed workload, with a `Stats`
/// probe spliced in mid-stream so every arm also exercises the serial
/// stats-answer path. Returns the responses, the full stats document, and
/// its canonicalized byte form.
fn telemetry_arm(threads: usize, cache_on: bool) -> (Vec<String>, Value, String) {
    let eng = engine();
    let mut queries = mixed_workload(snapshot(), REPLAY, SEED);
    queries.insert(queries.len() / 2, Query::Stats);
    queries.push(Query::Stats);
    let cfg = serve_cfg(cache_on);
    let cache = ResultCache::new(cfg.cache);
    let telemetry = ServeTelemetry::new();
    let (responses, _) =
        with_threads(threads, || run_batch_telemetry(&eng, &queries, &cfg, &cache, &telemetry));
    let doc = telemetry.stats_document(Some(&cache));
    let canon = serde_json::to_string(&canonicalize_stats(&doc))
        .expect("canonical stats serialize");
    (responses, doc, canon)
}

/// Whether any non-canonical key survives anywhere in the value.
fn forbidden_key_in(value: &Value) -> Option<String> {
    match value {
        Value::Object(map) => {
            for (k, v) in map.iter() {
                if NONCANONICAL_STATS_KEYS.contains(&k.as_str()) {
                    return Some(k.clone());
                }
                if let Some(found) = forbidden_key_in(v) {
                    return Some(found);
                }
            }
            None
        }
        Value::Array(items) => items.iter().find_map(forbidden_key_in),
        _ => None,
    }
}

/// The tentpole contract: responses AND the canonicalized count plane are
/// byte-identical at 1, 2, and 8 threads, cache on or off — including the
/// serially answered `Stats` probes spliced into the stream.
#[test]
fn canonical_count_plane_is_byte_identical_across_arms() {
    let _guard = battery_lock();
    let (base_responses, base_doc, base_canon) = telemetry_arm(1, true);
    assert_eq!(base_responses.len(), REPLAY + 2);
    for threads in [1usize, 2, 8] {
        for cache_on in [true, false] {
            if threads == 1 && cache_on {
                continue;
            }
            let (responses, _, canon) = telemetry_arm(threads, cache_on);
            assert_eq!(
                responses, base_responses,
                "responses diverged at {threads} threads, cache={cache_on}"
            );
            assert_eq!(
                canon, base_canon,
                "canonical stats diverged at {threads} threads, cache={cache_on}"
            );
        }
    }

    // Sanity on the canonical survivor: the count plane is intact.
    let counts = &base_doc["counts"];
    assert_eq!(counts["submitted"].as_u64(), Some(REPLAY as u64 + 2));
    assert_eq!(
        counts["admitted"].as_u64().unwrap_or(0) + counts["rejected"].as_u64().unwrap_or(0),
        REPLAY as u64 + 2,
    );
    assert!(counts["waves"].as_u64().unwrap_or(0) > 1, "multi-wave replay");
    let families = counts["families"].as_object().expect("families object");
    assert_eq!(families.get("stats").and_then(Value::as_u64), Some(2));
}

/// The timing plane is measurement, not contract: present (with quantile
/// annotations) in the full document, provably absent — along with every
/// cache-mode-dependent counter — from the canonical form.
#[test]
fn timing_plane_is_present_in_full_doc_and_absent_from_canonical() {
    let _guard = battery_lock();
    let (_, doc, canon) = telemetry_arm(1, true);

    assert_eq!(doc["schema"].as_str(), Some(STATS_SCHEMA));
    let per_family = doc["timing"]["per_family"]
        .as_object()
        .expect("timing.per_family object");
    assert!(!per_family.is_empty(), "replayed families must be timed");
    for (family, hist) in per_family.iter() {
        for q in ["p50_us", "p95_us", "p99_us"] {
            assert!(
                hist.get(q).and_then(Value::as_u64).is_some(),
                "timing.per_family.{family}.{q} missing"
            );
        }
    }
    assert!(doc["cache"].is_object(), "full doc carries the cache block");
    assert!(
        doc["cache"]["hits"].as_u64().unwrap_or(0) > 0,
        "the mixed workload must repeat some queries"
    );

    let canon: Value = serde_json::from_str(&canon).expect("canonical form is JSON");
    assert_eq!(
        forbidden_key_in(&canon),
        None,
        "no non-canonical key may survive canonicalization"
    );
    assert!(canon.get("timing").is_none());
    assert!(canon.get("cache").is_none());
    assert!(canon.get("counts").is_some(), "the count plane survives");
    assert!(canon.get("flight").is_some(), "the flight recorder survives");
}

/// `Stats` answers come from the decide phase's completed-wave snapshot:
/// both probes parse, carry the schema tag, and the later probe has seen
/// at least as many waves as the earlier one.
#[test]
fn stats_query_reports_completed_wave_state() {
    let _guard = battery_lock();
    let (responses, _, _) = telemetry_arm(1, true);
    let mid: Value =
        serde_json::from_str(&responses[REPLAY / 2]).expect("mid-stream Stats parses");
    let last: Value = serde_json::from_str(&responses[REPLAY + 1]).expect("final Stats parses");
    for probe in [&mid, &last] {
        assert_eq!(probe["Stats"]["schema"].as_str(), Some(STATS_SCHEMA));
    }
    let mid_waves = mid["Stats"]["waves"].as_u64().expect("waves counter");
    let last_waves = last["Stats"]["waves"].as_u64().expect("waves counter");
    assert!(
        mid_waves < last_waves,
        "a later probe must have seen more completed waves ({mid_waves} vs {last_waves})"
    );
}

/// Chaos arms: under the seeded overload scenario the canonical stats —
/// including every flight-recorder dump the injected faults trigger — are
/// byte-identical across thread counts and cache modes, and the dump
/// triggers actually fired.
#[test]
fn chaos_flight_dumps_are_byte_identical_across_arms() {
    let _guard = battery_lock();
    let plan = FaultPlan::new(5).with(FaultFamily::OverloadBurst, 1.0);

    let mut baseline: Option<(String, String)> = None;
    for threads in [1usize, 2, 8] {
        for cache_on in [true, false] {
            let eng = engine();
            let queries = mixed_workload(snapshot(), REPLAY, SEED);
            let cfg = serve_cfg(cache_on);
            let cache = ResultCache::new(cfg.cache);
            let session = ChaosSession::new(plan.clone(), DegradationPolicy::Lenient);
            let telemetry = ServeTelemetry::new();
            let (_, _, report) = with_threads(threads, || {
                run_batch_chaos_telemetry(&eng, &queries, &cfg, &cache, &session, &telemetry)
            });
            assert!(report.ledger.total() > 0, "rate-1.0 overload must inject");

            let doc = telemetry.stats_document(Some(&cache));
            let canon = serde_json::to_string(&canonicalize_stats(&doc))
                .expect("canonical stats serialize");
            let jsonl = telemetry.flight_jsonl(true);
            match &baseline {
                None => {
                    // The dump triggers fired: at least one fault dump plus
                    // the unconditional drain dump.
                    let dumps = doc["flight"]["dumps"].as_array().expect("dumps array");
                    let reasons: Vec<&str> =
                        dumps.iter().filter_map(|d| d["reason"].as_str()).collect();
                    assert!(reasons.contains(&"fault_injected"), "got {reasons:?}");
                    assert_eq!(reasons.last(), Some(&"drain"), "drain dump is last");
                    assert!(doc["counts"]["degraded"].as_u64().unwrap_or(0) > 0);
                    baseline = Some((canon, jsonl));
                }
                Some((base_canon, base_jsonl)) => {
                    assert_eq!(
                        &canon, base_canon,
                        "chaos canonical stats diverged at {threads} threads, cache={cache_on}"
                    );
                    assert_eq!(
                        &jsonl, base_jsonl,
                        "chaos flight JSONL diverged at {threads} threads, cache={cache_on}"
                    );
                }
            }
        }
    }
}
