//! Golden scenario reports (DESIGN.md §12.4): the two built-in scenarios
//! — a hurricane landfall corridor and an earthquake disc — are frozen as
//! plan files plus full `ConditionalRisk` reports under `tests/goldens/`.
//! Any drift in the DSL, the exposure geometry, the sampling streams, or
//! the ensemble merge shows up as a golden mismatch here. To accept an
//! intentional change:
//!
//! ```text
//! REGENERATE_GOLDENS=1 cargo test --test scenario_goldens
//! ```
//!
//! The battery also pins the error paths: malformed plans produce typed
//! [`ScenarioError`]s from `from_json`, and the CLI's `scenario`
//! subcommand exits 2 (the usage/invalid-invocation class) on them.

use std::process::Command;
use std::sync::OnceLock;

use intertubes::scenario::{ScenarioError, ScenarioPlan};
use intertubes::serve::{QueryEngine, StudySnapshot};
use intertubes::Study;

/// The frozen reference snapshot at the CLI's probe count (10 k): golden
/// reports must digest-match what `intertubes snapshot` + `intertubes
/// scenario` produce, and what `bench_scenario` measures.
fn snapshot() -> &'static StudySnapshot {
    static SNAP: OnceLock<StudySnapshot> = OnceLock::new();
    SNAP.get_or_init(|| Study::reference().snapshot(Some(10_000)))
}

fn golden_path(name: &str, kind: &str) -> String {
    format!(
        "{}/tests/goldens/{name}.{kind}.json",
        env!("CARGO_MANIFEST_DIR")
    )
}

#[test]
fn golden_plan_files_match_built_ins() {
    for (name, plan) in ScenarioPlan::built_in_scenarios() {
        let path = golden_path(name, "scenario");
        if std::env::var_os("REGENERATE_GOLDENS").is_some() {
            std::fs::write(&path, plan.to_json()).expect("write golden plan");
            continue;
        }
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden plan {path} ({e}); run REGENERATE_GOLDENS=1 cargo test")
        });
        let parsed = ScenarioPlan::from_json(&text).expect("golden plan parses");
        assert_eq!(
            parsed, plan,
            "{path} drifted from ScenarioPlan::built_in_scenarios(); \
             regenerate with REGENERATE_GOLDENS=1 cargo test --test scenario_goldens"
        );
    }
}

#[test]
fn golden_reports_are_stable() {
    let engine = QueryEngine::new(snapshot().clone());
    for (name, plan) in ScenarioPlan::built_in_scenarios() {
        let report = engine.conditional_risk(&plan).expect("golden plan is valid");
        let text = serde_json::to_string_pretty(&report).expect("report serializes");
        let path = golden_path(name, "conditional");
        if std::env::var_os("REGENERATE_GOLDENS").is_some() {
            std::fs::write(&path, format!("{text}\n")).expect("write golden report");
            continue;
        }
        let stored = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!("missing golden report {path} ({e}); run REGENERATE_GOLDENS=1 cargo test")
        });
        let stored_report: intertubes::scenario::ConditionalRisk =
            serde_json::from_str(&stored).expect("golden report parses");
        assert_eq!(
            stored_report.digest(),
            report.digest(),
            "{name} ConditionalRisk digest drifted from {path}; \
             regenerate with REGENERATE_GOLDENS=1 cargo test --test scenario_goldens"
        );
        assert_eq!(
            stored.trim(),
            text.trim(),
            "{name} full report drifted from {path} (digest unchanged?!)"
        );
    }
}

/// A valid disc plan in JSON text form, for splicing error cases into.
fn valid_plan_json() -> String {
    ScenarioPlan::built_in_scenarios()[1].1.to_json()
}

#[test]
fn from_json_rejects_malformed_plans_with_typed_errors() {
    // Negative probability.
    let bad = valid_plan_json().replace(
        "\"Weibull\": { \"shape\": 1.8, \"scale\": 0.6 }",
        "\"Fixed\": { \"p\": -0.25 }",
    );
    assert_eq!(
        ScenarioPlan::from_json(&bad),
        Err(ScenarioError::InvalidProbability {
            what: "p",
            value: -0.25
        })
    );
    // NaN probability: JSON cannot carry NaN, so the non-finite channel is
    // `null` (what `to_json` emits for NaN), which deserializes back to
    // NaN — and validation rejects it with the typed probability error.
    let bad = valid_plan_json().replace(
        "\"Weibull\": { \"shape\": 1.8, \"scale\": 0.6 }",
        "\"Fixed\": { \"p\": null }",
    );
    assert!(matches!(
        ScenarioPlan::from_json(&bad),
        Err(ScenarioError::InvalidProbability { what: "p", value }) if value.is_nan()
    ));
    // Unclosed polygon ring.
    let bad = valid_plan_json().replace(
        "\"Disc\": { \"center\": { \"lat\": 36.5, \"lon\": -89.5 }, \"radius_km\": 450.0 }",
        "\"Polygon\": { \"vertices\": [ { \"lat\": 30.0, \"lon\": -98.0 }, \
         { \"lat\": 30.0, \"lon\": -90.0 }, { \"lat\": 34.0, \"lon\": -90.0 }, \
         { \"lat\": 34.0, \"lon\": -98.0 } ] }",
    );
    assert_eq!(
        ScenarioPlan::from_json(&bad),
        Err(ScenarioError::UnclosedPolygon)
    );
    // Empty ensemble.
    let bad = valid_plan_json().replace("\"draws\": 10000", "\"draws\": 0");
    assert_eq!(
        ScenarioPlan::from_json(&bad),
        Err(ScenarioError::EmptyEnsemble)
    );
}

/// The CLI exits 2 (invalid invocation) on a malformed plan — before any
/// snapshot is loaded, so a placeholder snapshot path suffices — and 3
/// (data error) when the plan file itself is unreadable.
#[test]
fn cli_scenario_exits_2_on_invalid_plan() {
    let dir = std::env::temp_dir().join("intertubes-scenario-goldens");
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let bad_path = dir.join("bad-plan.json");
    let bad = valid_plan_json().replace(
        "\"Weibull\": { \"shape\": 1.8, \"scale\": 0.6 }",
        "\"Fixed\": { \"p\": -1.0 }",
    );
    std::fs::write(&bad_path, bad).expect("write bad plan");
    let out = Command::new(env!("CARGO_BIN_EXE_intertubes"))
        .args([
            "scenario",
            bad_path.to_str().expect("utf-8 temp path"),
            "--snapshot",
            "/nonexistent.snap",
        ])
        .output()
        .expect("run CLI");
    assert_eq!(out.status.code(), Some(2), "invalid plan must exit 2");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("invalid scenario plan"),
        "stderr should name the plan error, got: {stderr}"
    );

    let out = Command::new(env!("CARGO_BIN_EXE_intertubes"))
        .args([
            "scenario",
            dir.join("no-such-plan.json").to_str().expect("utf-8"),
            "--snapshot",
            "/nonexistent.snap",
        ])
        .output()
        .expect("run CLI");
    assert_eq!(out.status.code(), Some(3), "unreadable plan must exit 3");
}
