//! Serde round-trips for the public model types: a downstream user must be
//! able to persist and reload maps, reports and configs without loss.
//!
//! The snapshot-container tests additionally pin the serving layer's
//! on-disk contract (DESIGN.md §9.1): save→load→re-save is byte-identical,
//! and every corruption mode — truncation, bad magic, mangled header,
//! schema skew, payload bit rot — surfaces as a typed [`SnapshotError`]
//! that maps into the PR-1 taxonomy and exits the CLI with the data-error
//! code 3, never a panic.
//!
//! [`SnapshotError`]: intertubes::serve::SnapshotError

use intertubes::serve::{
    section_bounds, SnapshotError, StudySnapshot, SNAPSHOT_SCHEMA, SNAPSHOT_SCHEMA_V2,
};
use intertubes::{IntertubesError, Study, StudyConfig};

#[test]
fn study_config_round_trips() {
    let cfg = StudyConfig::default();
    let text = serde_json::to_string(&cfg).unwrap();
    let back: StudyConfig = serde_json::from_str(&text).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn fiber_map_round_trips_losslessly() {
    let s = Study::reference();
    let text = serde_json::to_string(&s.built.map).unwrap();
    let back: intertubes::map::FiberMap = serde_json::from_str(&text).unwrap();
    assert_eq!(back.nodes.len(), s.built.map.nodes.len());
    assert_eq!(back.conduits.len(), s.built.map.conduits.len());
    assert_eq!(back.link_count(), s.built.map.link_count());
    // Spot-check a conduit in depth.
    let a = &s.built.map.conduits[7];
    let b = &back.conduits[7];
    assert_eq!(a, b);
}

#[test]
fn built_map_reports_round_trip() {
    let s = Study::reference();
    let text = serde_json::to_string(&s.built.reports).unwrap();
    let back: Vec<intertubes::map::StepReport> = serde_json::from_str(&text).unwrap();
    assert_eq!(back, s.built.reports);
}

#[test]
fn risk_matrix_round_trips() {
    let s = Study::reference();
    let rm = s.risk_matrix();
    let text = serde_json::to_string(&rm).unwrap();
    let back: intertubes::risk::RiskMatrix = serde_json::from_str(&text).unwrap();
    assert_eq!(back.isps, rm.isps);
    assert_eq!(back.shared, rm.shared);
    assert_eq!(back.uses, rm.uses);
}

#[test]
fn analysis_reports_serialize() {
    let s = Study::reference();
    // Every report type a user might archive.
    let rob = s.robustness(4);
    let aug = s.augmentation();
    let lat = s.latency();
    let overlay = s.overlay(&s.campaign(Some(2_000)));
    for value in [
        serde_json::to_value(&rob).unwrap(),
        serde_json::to_value(&aug).unwrap(),
        serde_json::to_value(&lat).unwrap(),
        serde_json::to_value(&overlay).unwrap(),
    ] {
        assert!(value.is_object());
    }
    // Reports reload into their own types.
    let rob2: intertubes::mitigation::RobustnessReport =
        serde_json::from_value(serde_json::to_value(&rob).unwrap()).unwrap();
    assert_eq!(rob2.heavy_conduits, rob.heavy_conduits);
    let lat2: intertubes::mitigation::LatencyReport =
        serde_json::from_value(serde_json::to_value(&lat).unwrap()).unwrap();
    assert_eq!(lat2.pairs.len(), lat.pairs.len());
}

/// A header-only container with the given schema over an empty-object
/// payload. Enough structure to reach (exactly) the validation stage a
/// test wants to probe.
fn container_with_schema(schema: &str) -> Vec<u8> {
    let payload = b"{}";
    let checksum = intertubes::serve::fnv1a64(payload);
    let header = format!(
        "{{\"schema\":\"{schema}\",\"payload_len\":{},\"checksum\":\"{checksum:016x}\"}}",
        payload.len()
    );
    let mut bytes = Vec::new();
    bytes.extend_from_slice(intertubes::serve::SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&(header.len() as u64).to_le_bytes());
    bytes.extend_from_slice(header.as_bytes());
    bytes.extend_from_slice(payload);
    bytes
}

/// A two-node, one-conduit snapshot with landmark tables — cheap enough
/// for the container tests to build real v2 bytes without running the full
/// pipeline.
fn tiny_snapshot() -> StudySnapshot {
    use intertubes::geo::{GeoPoint, Polyline};
    use intertubes::map::{FiberMap, MapConduit, Provenance, Tenancy, TenancySource};
    let dallas = GeoPoint::new_unchecked(32.78, -96.80);
    let houston = GeoPoint::new_unchecked(29.76, -95.37);
    let mut map = FiberMap::default();
    let a = map.ensure_node("Dallas, TX", dallas);
    let b = map.ensure_node("Houston, TX", houston);
    map.conduits.push(MapConduit {
        a,
        b,
        geometry: Polyline::straight(dallas, houston),
        tenants: vec![Tenancy {
            isp: "AT&T".into(),
            source: TenancySource::PublishedMap,
        }],
        provenance: Provenance::Step1,
        validated: true,
        row: None,
    });
    let landmarks = intertubes::serve::build_landmarks(&map);
    assert!(landmarks.is_some(), "landmark build failed on a connected map");
    let paths = intertubes::serve::PathIndex::build(
        &map,
        2,
        3.0,
        &std::collections::BTreeMap::new(),
        landmarks.as_ref(),
    );
    StudySnapshot {
        config: serde_json::Value::Null,
        map,
        isps: vec!["AT&T".into()],
        risk: intertubes::risk::RiskMatrix {
            isps: vec!["AT&T".into()],
            uses: vec![vec![true]],
            shared: vec![1],
        },
        hamming: intertubes::risk::HammingHeatmap {
            isps: vec!["AT&T".into()],
            distance: vec![vec![0]],
        },
        overlay: intertubes::probes::Overlay {
            conduit_freq: vec![0],
            west_east: vec![0],
            east_west: vec![0],
            observed_isps: vec![Default::default()],
            isp_conduits: Default::default(),
            overlaid: 0,
            skipped: 0,
        },
        paths,
        landmarks,
    }
}

/// The header JSON text of a container.
fn header_text(bytes: &[u8]) -> &str {
    let len = u64::from_le_bytes(bytes[8..16].try_into().unwrap()) as usize;
    std::str::from_utf8(&bytes[16..16 + len]).unwrap()
}

#[test]
fn snapshot_saves_loads_and_resaves_byte_identically() {
    let s = Study::reference();
    let snap = s.snapshot(Some(2_000));
    let bytes = snap.to_bytes().unwrap();
    let back = StudySnapshot::from_bytes(&bytes).unwrap();
    // The reloaded snapshot serves the same study...
    assert_eq!(back.isps, snap.isps);
    assert_eq!(back.map.conduits.len(), snap.map.conduits.len());
    assert_eq!(back.paths.pairs.len(), snap.paths.pairs.len());
    // ...and re-saving it reproduces the container bit for bit — the
    // determinism guarantee checksums and goldens rely on.
    assert_eq!(back.to_bytes().unwrap(), bytes);
}

#[test]
fn v2_container_names_the_schema_and_round_trips_landmarks() {
    let snap = tiny_snapshot();
    let bytes = snap.to_bytes().unwrap();
    let header = header_text(&bytes);
    assert!(header.contains(SNAPSHOT_SCHEMA_V2), "header was {header}");
    assert!(header.contains("landmarks_checksum"), "header was {header}");
    let back = StudySnapshot::from_bytes(&bytes).unwrap();
    assert_eq!(back.landmarks, snap.landmarks);
    assert_eq!(back.to_bytes().unwrap(), bytes);
}

#[test]
fn v1_containers_load_without_landmarks() {
    // A snapshot without landmark tables is exactly what a pre-v2 writer
    // produced: the same payload bytes under the v1 schema.
    let mut snap = tiny_snapshot();
    snap.landmarks = None;
    let bytes = snap.to_bytes().unwrap();
    assert!(header_text(&bytes).contains(SNAPSHOT_SCHEMA));
    let back = StudySnapshot::from_bytes(&bytes).unwrap();
    assert!(back.landmarks.is_none());
    assert_eq!(back.map.conduits.len(), snap.map.conduits.len());
    // Re-saving a v1 load stays v1, byte for byte.
    assert_eq!(back.to_bytes().unwrap(), bytes);
}

#[test]
fn corrupt_landmarks_section_is_a_section_checksum_mismatch() {
    let mut bytes = tiny_snapshot().to_bytes().unwrap();
    let last = bytes.len() - 1; // the landmarks section is the tail
    bytes[last] ^= 0x20;
    match StudySnapshot::from_bytes(&bytes).unwrap_err() {
        SnapshotError::SectionChecksumMismatch { section, .. } => {
            assert_eq!(section, "landmarks");
        }
        other => panic!("expected SectionChecksumMismatch, got {other}"),
    }
}

#[test]
fn truncated_landmarks_section_reports_missing_bytes() {
    let bytes = tiny_snapshot().to_bytes().unwrap();
    let cut = &bytes[..bytes.len() - 1];
    match StudySnapshot::from_bytes(cut).unwrap_err() {
        SnapshotError::Truncated { needed, have } => {
            assert_eq!(needed, bytes.len());
            assert_eq!(have, bytes.len() - 1);
        }
        other => panic!("expected Truncated, got {other}"),
    }
}

#[test]
fn corrupted_payload_is_a_checksum_mismatch_not_a_panic() {
    let bytes = container_with_schema(SNAPSHOT_SCHEMA);
    let mut corrupt = bytes.clone();
    let last = corrupt.len() - 1;
    corrupt[last] ^= 0x20; // flip one payload bit
    let err = StudySnapshot::from_bytes(&corrupt).unwrap_err();
    assert!(matches!(err, SnapshotError::ChecksumMismatch { .. }), "{err}");
}

#[test]
fn corrupted_header_is_a_bad_header_error() {
    let mut bytes = container_with_schema(SNAPSHOT_SCHEMA);
    bytes[17] = b'!'; // mangle the header JSON just past the opening brace
    let err = StudySnapshot::from_bytes(&bytes).unwrap_err();
    assert!(matches!(err, SnapshotError::BadHeader(_)), "{err}");
}

#[test]
fn wrong_schema_version_is_rejected_by_name() {
    let bytes = container_with_schema("intertubes-snapshot/v9");
    match StudySnapshot::from_bytes(&bytes).unwrap_err() {
        SnapshotError::WrongSchema { found } => {
            assert_eq!(found, "intertubes-snapshot/v9");
        }
        other => panic!("expected WrongSchema, got {other}"),
    }
}

/// Truncation at *every* structural boundary of a v2 container — inside
/// the magic/length prefix, at the header end, mid-payload, at the
/// payload end (landmarks missing entirely), mid-landmarks, and one byte
/// short — is always the typed `Truncated` error, never a panic.
#[test]
fn truncation_at_every_section_boundary_is_typed_never_a_panic() {
    let bytes = tiny_snapshot().to_bytes().unwrap();
    let bounds = section_bounds(&bytes).expect("a fresh container must locate its sections");
    let (_, header_end) = bounds.header;
    let (payload_start, payload_end) = bounds.payload;
    let (lm_start, lm_end) = bounds.landmarks.expect("tiny_snapshot is v2");
    assert_eq!(lm_end, bytes.len(), "landmarks are the container tail");
    let cuts = [
        0,
        7,                                  // inside the magic
        8,                                  // magic only
        15,                                 // inside the header-length word
        16,                                 // prefix only, no header
        (16 + header_end) / 2,              // mid-header
        header_end,                         // header only, no payload
        (payload_start + payload_end) / 2,  // mid-payload
        payload_end,                        // payload only, no landmarks
        (lm_start + lm_end) / 2,            // mid-landmarks
        bytes.len() - 1,                    // one byte short
    ];
    for cut in cuts {
        match StudySnapshot::from_bytes(&bytes[..cut]) {
            Err(SnapshotError::Truncated { needed, have }) => {
                assert_eq!(have, cut, "cut at {cut}: wrong `have`");
                assert!(needed > cut, "cut at {cut}: needed {needed} not past the cut");
            }
            Err(other) => panic!("cut at {cut}: expected Truncated, got {other}"),
            Ok(_) => panic!("cut at {cut}: a truncated container must not load"),
        }
    }
}

#[test]
fn truncated_container_reports_how_much_is_missing() {
    let bytes = container_with_schema(SNAPSHOT_SCHEMA);
    let cut = &bytes[..bytes.len() - 1];
    match StudySnapshot::from_bytes(cut).unwrap_err() {
        SnapshotError::Truncated { needed, have } => {
            assert_eq!(needed, bytes.len());
            assert_eq!(have, bytes.len() - 1);
        }
        other => panic!("expected Truncated, got {other}"),
    }
}

#[test]
fn snapshot_errors_join_the_workspace_taxonomy() {
    let err: IntertubesError = SnapshotError::BadMagic.into();
    assert!(matches!(err, IntertubesError::Snapshot(_)));
    assert!(err.to_string().starts_with("snapshot:"));
    // The layered source chain survives the wrapping.
    let source = std::error::Error::source(&err).expect("snapshot errors carry a source");
    assert_eq!(source.to_string(), SnapshotError::BadMagic.to_string());
}

/// Corrupt snapshots reaching the CLI exit with the data-error code 3 and
/// a diagnostic — never a panic (PR-1 contract).
#[test]
fn cli_rejects_bad_snapshots_with_exit_3() {
    let dir = std::env::temp_dir().join("intertubes-serialization-test");
    std::fs::create_dir_all(&dir).unwrap();
    let v2 = tiny_snapshot().to_bytes().unwrap();
    let mut v2_corrupt = v2.clone();
    let last = v2_corrupt.len() - 1;
    v2_corrupt[last] ^= 0x20; // flip a bit inside the landmarks section
    let bounds = section_bounds(&v2).unwrap();
    let cases = [
        ("notsnap.bin", b"this is not a snapshot".to_vec()),
        ("wrong_schema.snap", container_with_schema("intertubes-snapshot/v9")),
        ("truncated.snap", container_with_schema(SNAPSHOT_SCHEMA)[..12].to_vec()),
        ("corrupt_landmarks.snap", v2_corrupt),
        ("truncated_landmarks.snap", v2[..v2.len() - 1].to_vec()),
        // Truncation at each structural boundary.
        ("cut_at_header_end.snap", v2[..bounds.header.1].to_vec()),
        ("cut_at_payload_end.snap", v2[..bounds.payload.1].to_vec()),
    ];
    for (name, bytes) in cases {
        let path = dir.join(name);
        std::fs::write(&path, &bytes).unwrap();
        for sub in ["serve", "query"] {
            let mut cmd = std::process::Command::new(env!("CARGO_BIN_EXE_intertubes"));
            cmd.arg(sub).arg("--snapshot").arg(&path);
            if sub == "query" {
                cmd.arg("{\"TopShared\":{\"k\":1}}");
            }
            let out = cmd.output().unwrap();
            assert_eq!(out.status.code(), Some(3), "{sub} on {name}: wrong exit code");
            let stderr = String::from_utf8_lossy(&out.stderr);
            assert!(stderr.contains("snapshot"), "{sub} on {name}: stderr was {stderr:?}");
            assert!(!stderr.contains("panicked"), "{sub} on {name} panicked: {stderr}");
        }
    }
}

#[test]
fn campaign_round_trips() {
    let s = Study::reference();
    let campaign = s.campaign(Some(500));
    let text = serde_json::to_string(&campaign).unwrap();
    let back: intertubes::probes::Campaign = serde_json::from_str(&text).unwrap();
    assert_eq!(back.traces, campaign.traces);
    assert_eq!(back.unrouted, campaign.unrouted);
}
