//! Serde round-trips for the public model types: a downstream user must be
//! able to persist and reload maps, reports and configs without loss.

use intertubes::{Study, StudyConfig};

#[test]
fn study_config_round_trips() {
    let cfg = StudyConfig::default();
    let text = serde_json::to_string(&cfg).unwrap();
    let back: StudyConfig = serde_json::from_str(&text).unwrap();
    assert_eq!(cfg, back);
}

#[test]
fn fiber_map_round_trips_losslessly() {
    let s = Study::reference();
    let text = serde_json::to_string(&s.built.map).unwrap();
    let back: intertubes::map::FiberMap = serde_json::from_str(&text).unwrap();
    assert_eq!(back.nodes.len(), s.built.map.nodes.len());
    assert_eq!(back.conduits.len(), s.built.map.conduits.len());
    assert_eq!(back.link_count(), s.built.map.link_count());
    // Spot-check a conduit in depth.
    let a = &s.built.map.conduits[7];
    let b = &back.conduits[7];
    assert_eq!(a, b);
}

#[test]
fn built_map_reports_round_trip() {
    let s = Study::reference();
    let text = serde_json::to_string(&s.built.reports).unwrap();
    let back: Vec<intertubes::map::StepReport> = serde_json::from_str(&text).unwrap();
    assert_eq!(back, s.built.reports);
}

#[test]
fn risk_matrix_round_trips() {
    let s = Study::reference();
    let rm = s.risk_matrix();
    let text = serde_json::to_string(&rm).unwrap();
    let back: intertubes::risk::RiskMatrix = serde_json::from_str(&text).unwrap();
    assert_eq!(back.isps, rm.isps);
    assert_eq!(back.shared, rm.shared);
    assert_eq!(back.uses, rm.uses);
}

#[test]
fn analysis_reports_serialize() {
    let s = Study::reference();
    // Every report type a user might archive.
    let rob = s.robustness(4);
    let aug = s.augmentation();
    let lat = s.latency();
    let overlay = s.overlay(&s.campaign(Some(2_000)));
    for value in [
        serde_json::to_value(&rob).unwrap(),
        serde_json::to_value(&aug).unwrap(),
        serde_json::to_value(&lat).unwrap(),
        serde_json::to_value(&overlay).unwrap(),
    ] {
        assert!(value.is_object());
    }
    // Reports reload into their own types.
    let rob2: intertubes::mitigation::RobustnessReport =
        serde_json::from_value(serde_json::to_value(&rob).unwrap()).unwrap();
    assert_eq!(rob2.heavy_conduits, rob.heavy_conduits);
    let lat2: intertubes::mitigation::LatencyReport =
        serde_json::from_value(serde_json::to_value(&lat).unwrap()).unwrap();
    assert_eq!(lat2.pairs.len(), lat.pairs.len());
}

#[test]
fn campaign_round_trips() {
    let s = Study::reference();
    let campaign = s.campaign(Some(500));
    let text = serde_json::to_string(&campaign).unwrap();
    let back: intertubes::probes::Campaign = serde_json::from_str(&text).unwrap();
    assert_eq!(back.traces, campaign.traces);
    assert_eq!(back.unrouted, campaign.unrouted);
}
