//! Fault-injection integration tests: every fault family is injected into
//! a real study build and the degradation report is matched against the
//! injection ledger.
//!
//! Count-exactness holds for *single-family* plans (composed families
//! interact: a dropped link can carry the NaN another family injected, so
//! combined ledgers over-count what survives to the detector).

use std::sync::OnceLock;

use intertubes::degrade::{DegradationPolicy, DegradationReport};
use intertubes::faults::{inject_campaign, FaultFamily, FaultPlan, InjectionLedger};
use intertubes::probes::Campaign;
use intertubes::{IntertubesError, Study, StudyConfig};

const PLAN_SEED: u64 = 77;

fn plan(family: FaultFamily, rate: f64) -> FaultPlan {
    FaultPlan::new(PLAN_SEED).with(family, rate)
}

fn faulted(family: FaultFamily, rate: f64) -> (Study, DegradationReport, InjectionLedger) {
    Study::new_faulted(StudyConfig::default(), &plan(family, rate))
        .unwrap_or_else(|e| panic!("lenient faulted build failed for {family}: {e}"))
}

fn strict_config() -> StudyConfig {
    let mut cfg = StudyConfig::default();
    cfg.policy = DegradationPolicy::Strict;
    cfg
}

/// Shared clean baseline: the reference study plus a 5000-probe campaign.
fn baseline() -> &'static (Study, DegradationReport, Campaign) {
    static S: OnceLock<(Study, DegradationReport, Campaign)> = OnceLock::new();
    S.get_or_init(|| {
        let (study, report) =
            Study::new_checked(StudyConfig::default()).expect("clean build succeeds");
        let campaign = study.campaign(Some(5_000));
        (study, report, campaign)
    })
}

#[test]
fn clean_input_reports_clean_under_both_policies() {
    let (_, report, _) = baseline();
    assert!(report.is_clean(), "clean world must degrade nothing: {report:?}");
    let (_, strict_report) = Study::new_checked(strict_config()).expect("strict on clean input");
    assert!(strict_report.is_clean());
}

#[test]
fn lenient_checked_build_is_byte_identical_to_default() {
    let default = Study::new(StudyConfig::default());
    let checked = &baseline().0;
    assert_eq!(default.built.reports, checked.built.reports);
    let a = serde_json::to_string(&intertubes::map::to_geojson(&default.built.map))
        .expect("serializes");
    let b = serde_json::to_string(&intertubes::map::to_geojson(&checked.built.map))
        .expect("serializes");
    assert_eq!(a, b, "lenient checked map must match the default path byte for byte");
}

#[test]
fn nan_coordinates_are_dropped_and_counted() {
    let (_, report, ledger) = faulted(FaultFamily::NanCoordinates, 0.05);
    let injected = ledger.count(FaultFamily::NanCoordinates);
    assert!(injected > 0, "rate 0.05 must land some faults");
    assert_eq!(report.total_for_reason("invalid-geometry"), injected);
}

#[test]
fn out_of_range_coordinates_are_dropped_and_counted() {
    let (_, report, ledger) = faulted(FaultFamily::OutOfRangeCoordinates, 0.05);
    let injected = ledger.count(FaultFamily::OutOfRangeCoordinates);
    assert!(injected > 0);
    assert_eq!(report.total_for_reason("invalid-geometry"), injected);
}

#[test]
fn stripped_geometry_is_repaired_or_dropped_and_counted() {
    let (_, report, ledger) = faulted(FaultFamily::StripGeometry, 0.08);
    let injected = ledger.count(FaultFamily::StripGeometry);
    assert!(injected > 0);
    let handled = report.total_for_reason("missing-geometry")
        + report.total_for_reason("missing-geometry-unresolvable");
    assert_eq!(handled, injected);
    // The gazetteer covers published endpoints, so repair dominates.
    assert!(report.total_for_reason("missing-geometry") > 0);
}

#[test]
fn duplicate_links_are_deduplicated_and_counted() {
    let (_, report, ledger) = faulted(FaultFamily::DuplicateLinks, 0.1);
    let injected = ledger.count(FaultFamily::DuplicateLinks);
    assert!(injected > 0);
    assert_eq!(report.total_for_reason("duplicate-link"), injected);
}

#[test]
fn dropped_links_shrink_the_map_silently() {
    let (study, report, ledger) = faulted(FaultFamily::DropLinks, 0.1);
    assert!(ledger.count(FaultFamily::DropLinks) > 0);
    // Absent links are undetectable — the map is smaller, not dirtier.
    assert!(report.is_clean(), "{report:?}");
    let (clean, _, _) = baseline();
    assert!(study.built.map.link_count() < clean.built.map.link_count());
}

#[test]
fn corrupt_documents_are_dropped_and_counted() {
    let (study, report, ledger) = faulted(FaultFamily::CorruptDocuments, 0.05);
    let injected = ledger.count(FaultFamily::CorruptDocuments);
    assert!(injected > 0);
    assert_eq!(report.total_for_reason("corrupt-city-label"), injected);
    let (clean, _, _) = baseline();
    assert_eq!(study.corpus.len() + injected, clean.corpus.len());
}

#[test]
fn contradictory_documents_are_flagged_and_counted() {
    let (_, clean_report, _) = baseline();
    let natural = clean_report.total_for_reason("contradictory-row-claim");
    let (_, report, ledger) = faulted(FaultFamily::ContradictoryDocuments, 0.05);
    let injected = ledger.count(FaultFamily::ContradictoryDocuments);
    assert!(injected > 0);
    assert_eq!(
        report.total_for_reason("contradictory-row-claim") - natural,
        injected
    );
}

#[test]
fn disconnected_transport_degrades_but_builds() {
    let (study, report, ledger) = faulted(FaultFamily::DisconnectTransport, 0.35);
    assert!(ledger.count(FaultFamily::DisconnectTransport) > 0);
    assert!(
        report.total_for_reason("disconnected-component") >= 1,
        "removing a third of road corridors must strand components: {report:?}"
    );
    // ROW snapping degrades but the pipeline still produces a map.
    assert!(study.built.map.conduits.len() > 100);
}

#[test]
fn corrupt_trace_endpoints_are_dropped_and_counted() {
    let (study, _, campaign) = baseline();
    let mut campaign = campaign.clone();
    let mut ledger = InjectionLedger::new();
    inject_campaign(
        &mut campaign,
        study.world.cities.len(),
        &plan(FaultFamily::CorruptTraceEndpoints, 0.02),
        &mut ledger,
    );
    let injected = ledger.count(FaultFamily::CorruptTraceEndpoints);
    assert!(injected > 0);
    let (overlay, report) = study.overlay_checked(&campaign).expect("lenient overlay");
    assert_eq!(report.total_for_reason("endpoint-out-of-range"), injected);
    // Conservation: every trace is overlaid, skipped, or dropped.
    assert_eq!(
        overlay.overlaid + overlay.skipped + injected,
        campaign.traces.len()
    );
}

#[test]
fn truncated_traces_only_lose_coverage() {
    let (study, _, campaign) = baseline();
    let clean_overlay = study.overlay(campaign);
    let mut faulty = campaign.clone();
    let mut ledger = InjectionLedger::new();
    inject_campaign(
        &mut faulty,
        study.world.cities.len(),
        &plan(FaultFamily::TruncateTraces, 0.3),
        &mut ledger,
    );
    assert!(ledger.count(FaultFamily::TruncateTraces) > 0);
    let (overlay, report) = study.overlay_checked(&faulty).expect("lenient overlay");
    assert!(report.is_clean(), "truncation is invisible, not an input error");
    // Removing hops can only remove conduit observations.
    assert!(overlay.overlaid <= clean_overlay.overlaid);
    assert_eq!(overlay.overlaid + overlay.skipped, faulty.traces.len());
}

#[test]
fn misgeolocated_hops_never_panic_and_conserve_traces() {
    let (study, _, campaign) = baseline();
    let mut faulty = campaign.clone();
    let mut ledger = InjectionLedger::new();
    inject_campaign(
        &mut faulty,
        study.world.cities.len(),
        &plan(FaultFamily::MisgeolocateHops, 0.2),
        &mut ledger,
    );
    assert!(ledger.count(FaultFamily::MisgeolocateHops) > 0);
    let (overlay, _) = study.overlay_checked(&faulty).expect("lenient overlay");
    assert_eq!(overlay.overlaid + overlay.skipped, faulty.traces.len());
}

#[test]
fn strict_mode_fails_with_the_right_layer() {
    let cfg = strict_config();
    let err = Study::new_faulted(cfg, &plan(FaultFamily::NanCoordinates, 0.05)).unwrap_err();
    assert!(matches!(err, IntertubesError::Map(_)), "{err}");
    let err = Study::new_faulted(cfg, &plan(FaultFamily::CorruptDocuments, 0.05)).unwrap_err();
    assert!(matches!(err, IntertubesError::Records(_)), "{err}");
    let err = Study::new_faulted(cfg, &plan(FaultFamily::DisconnectTransport, 0.35)).unwrap_err();
    assert!(matches!(err, IntertubesError::Atlas(_)), "{err}");
}

#[test]
fn strict_overlay_rejects_corrupt_endpoints() {
    let (study, _) = Study::new_checked(strict_config()).expect("clean strict build");
    let campaign = study.campaign(Some(2_000));
    let mut faulty = campaign.clone();
    let mut ledger = InjectionLedger::new();
    inject_campaign(
        &mut faulty,
        study.world.cities.len(),
        &plan(FaultFamily::CorruptTraceEndpoints, 0.05),
        &mut ledger,
    );
    assert!(ledger.count(FaultFamily::CorruptTraceEndpoints) > 0);
    let err = study.overlay_checked(&faulty).unwrap_err();
    assert!(matches!(err, IntertubesError::Probe(_)), "{err}");
    // The clean campaign still overlays fine under strict.
    study.overlay_checked(&campaign).expect("clean campaign");
}

#[test]
fn strict_risk_matrix_rejects_duplicate_providers() {
    use intertubes::risk::{RiskError, RiskMatrix};
    let (study, _, _) = baseline();
    let mut isps = study.mapped_isp_names();
    isps.push(isps[0].clone());
    let err =
        RiskMatrix::build_checked(&study.built.map, &isps, DegradationPolicy::Strict).unwrap_err();
    assert!(matches!(err, RiskError::DuplicateProvider { .. }));
    let (rm, report) =
        RiskMatrix::build_checked(&study.built.map, &isps, DegradationPolicy::Lenient)
            .expect("lenient dedups");
    assert_eq!(report.total_for_reason("duplicate-provider"), 1);
    assert_eq!(rm.isp_count(), study.mapped_isp_names().len());
    // Deduplication keeps the matrix identical to the clean-roster one.
    let clean_rm = study.risk_matrix();
    assert_eq!(rm.shared, clean_rm.shared);
}

#[test]
fn every_built_in_scenario_completes_leniently() {
    for (name, plan) in FaultPlan::built_in_scenarios() {
        let (study, report, mut ledger) = Study::new_faulted(StudyConfig::default(), &plan)
            .unwrap_or_else(|e| panic!("scenario {name} failed: {e}"));
        // Probe-family faults land on the campaign, not the build — run the
        // full lifecycle so every scenario exercises its whole plan.
        let mut campaign = study.campaign(Some(2_000));
        inject_campaign(&mut campaign, study.world.cities.len(), &plan, &mut ledger);
        let (overlay, overlay_report) = study
            .overlay_checked(&campaign)
            .unwrap_or_else(|e| panic!("scenario {name} overlay failed: {e}"));
        if plan.is_empty() {
            assert!(report.is_clean(), "scenario {name} injects nothing");
            assert!(overlay_report.is_clean());
            assert_eq!(ledger.total(), 0);
        } else {
            assert!(ledger.total() > 0, "scenario {name} must land faults");
        }
        assert!(
            study.built.map.conduits.len() > 50,
            "scenario {name} should still yield a usable map"
        );
        assert!(
            overlay.overlaid + overlay.skipped <= campaign.traces.len(),
            "scenario {name} must conserve traces"
        );
    }
}

#[test]
fn faulted_builds_are_deterministic() {
    let p = FaultPlan::built_in_scenarios()
        .into_iter()
        .find(|(name, _)| *name == "everything")
        .map(|(_, p)| p)
        .expect("everything scenario exists");
    let (a, ra, la) = Study::new_faulted(StudyConfig::default(), &p).expect("first run");
    let (b, rb, lb) = Study::new_faulted(StudyConfig::default(), &p).expect("second run");
    assert_eq!(ra, rb);
    assert_eq!(la.render(), lb.render());
    assert_eq!(a.built.reports, b.built.reports);
    assert_eq!(a.built.map.link_count(), b.built.map.link_count());
}
