//! The serving-layer contract (DESIGN.md §9): a frozen snapshot answers
//! the fixed mixed workload byte-identically at any thread count, with the
//! result cache enabled or disabled, and admission control rejects — never
//! drops — the overflow.
//!
//! This is the serving analogue of `tests/determinism.rs`: one thread is
//! the serial baseline (`intertubes_parallel` short-circuits fan-outs at
//! `threads == 1`), so comparing replay outputs across 1, 2, and 8 threads
//! exercises both the pure-engine equivalence and the scheduler's
//! decide–compute–assemble phase discipline.

use std::sync::{Mutex, OnceLock};

use intertubes::parallel::with_threads;
use intertubes::serve::{
    mixed_workload, run_batch, CacheConfig, Query, QueryEngine, ResultCache, ServeConfig,
    StudySnapshot,
};
use intertubes::Study;

/// Serializes every test in this binary: `with_threads` pins the
/// process-global pool. Lock ordering matches tests/determinism.rs:
/// `BATTERY` → `with_threads`.
static BATTERY: Mutex<()> = Mutex::new(());

fn battery_lock() -> std::sync::MutexGuard<'static, ()> {
    BATTERY.lock().unwrap_or_else(|e| e.into_inner())
}

/// The frozen reference study, built once per process (the snapshot build
/// dominates the battery's cost; every test serves from the same freeze).
fn snapshot() -> &'static StudySnapshot {
    static SNAP: OnceLock<StudySnapshot> = OnceLock::new();
    SNAP.get_or_init(|| Study::reference().snapshot(Some(2_000)))
}

fn engine() -> QueryEngine {
    QueryEngine::new(snapshot().clone())
}

const REPLAY: usize = 600;
const SEED: u64 = 7;

fn replay(threads: usize, cache_on: bool) -> (Vec<String>, intertubes::serve::ServeStats) {
    let eng = engine();
    let queries = mixed_workload(snapshot(), REPLAY, SEED);
    let cfg = ServeConfig {
        queue_capacity: 64,
        cache: CacheConfig {
            enabled: cache_on,
            ..CacheConfig::default()
        },
        ..ServeConfig::default()
    };
    let cache = ResultCache::new(cfg.cache);
    with_threads(threads, || run_batch(&eng, &queries, &cfg, &cache))
}

#[test]
fn replay_is_byte_identical_across_threads_and_cache_modes() {
    let _guard = battery_lock();
    let (baseline, base_stats) = replay(1, true);
    assert_eq!(baseline.len(), REPLAY);
    assert!(
        base_stats.cache_hits > 0,
        "the mixed workload must repeat some queries"
    );
    for threads in [2usize, 8] {
        for cache_on in [true, false] {
            let (responses, stats) = replay(threads, cache_on);
            assert_eq!(
                responses, baseline,
                "responses diverged at {threads} threads, cache={cache_on}"
            );
            assert_eq!(stats.admitted, REPLAY);
            if !cache_on {
                assert_eq!(stats.cache_hits, 0, "a disabled cache must never hit");
            }
        }
    }
}

#[test]
fn admission_control_rejects_past_the_limit() {
    let _guard = battery_lock();
    let eng = engine();
    let queries = mixed_workload(snapshot(), 100, SEED);
    let cfg = ServeConfig {
        queue_capacity: 16,
        admit_max: 25,
        ..ServeConfig::default()
    };
    let cache = ResultCache::new(cfg.cache);
    let (responses, stats) = run_batch(&eng, &queries, &cfg, &cache);
    assert_eq!(responses.len(), 100, "rejected queries still get responses");
    assert_eq!(stats.admitted, 25);
    assert_eq!(stats.rejected, 75);
    for (i, r) in responses.iter().enumerate() {
        let is_rejection = r.contains("\"Rejected\"");
        assert_eq!(
            is_rejection,
            i >= 25,
            "query {i} should {}be rejected: {r}",
            if i >= 25 { "" } else { "not " }
        );
    }
    // Backpressure is bounded-queue-shaped: no wave exceeds capacity.
    assert!(stats.max_queue_depth <= 16);
    assert_eq!(stats.waves, 2, "25 admitted / 16 per wave = 2 waves");
}

#[test]
fn workload_generation_is_seed_deterministic() {
    let a = mixed_workload(snapshot(), 200, 42);
    let b = mixed_workload(snapshot(), 200, 42);
    assert_eq!(a, b, "same seed must replay the same workload");
    let c = mixed_workload(snapshot(), 200, 43);
    assert_ne!(a, c, "different seeds must explore different workloads");
}

#[test]
fn warm_cache_serves_a_repeat_batch_entirely_from_memory() {
    let _guard = battery_lock();
    let eng = engine();
    let queries = mixed_workload(snapshot(), 150, SEED);
    let cfg = ServeConfig {
        // Roomy enough that nothing from the first batch is evicted.
        cache: CacheConfig {
            enabled: true,
            shards: 8,
            capacity_per_shard: 1024,
        },
        ..ServeConfig::default()
    };
    let cache = ResultCache::new(cfg.cache);
    let (cold, cold_stats) = run_batch(&eng, &queries, &cfg, &cache);
    let (warm, warm_stats) = run_batch(&eng, &queries, &cfg, &cache);
    assert_eq!(warm, cold, "a cache hit must return the exact cold bytes");
    assert!(cold_stats.cache_misses > 0);
    assert_eq!(
        warm_stats.cache_misses, 0,
        "every repeat query must hit the warm cache"
    );
    assert!((warm_stats.hit_rate - 1.0).abs() < f64::EPSILON);
}

#[test]
fn engine_answers_match_after_a_container_round_trip() {
    let _guard = battery_lock();
    let bytes = snapshot().to_bytes().unwrap();
    let reloaded = QueryEngine::new(StudySnapshot::from_bytes(&bytes).unwrap());
    let eng = engine();
    for q in mixed_workload(snapshot(), 50, 99) {
        assert_eq!(
            eng.answer(&q).to_canonical_json(),
            reloaded.answer(&q).to_canonical_json(),
            "snapshot round-trip changed the answer to {q:?}"
        );
    }
}

#[test]
fn deadlines_are_accounted_but_never_drop_responses() {
    let _guard = battery_lock();
    let eng = engine();
    let queries = mixed_workload(snapshot(), 80, SEED);
    // A deadline of 0 disables accounting entirely...
    let relaxed = ServeConfig::default();
    let cache = ResultCache::new(relaxed.cache);
    let (full, stats) = run_batch(&eng, &queries, &relaxed, &cache);
    assert_eq!(stats.deadline_overruns, 0);
    // ...an absurdly tight one counts overruns without changing output.
    let tight = ServeConfig {
        deadline_us: 1,
        ..ServeConfig::default()
    };
    let cache = ResultCache::new(tight.cache);
    let (tight_responses, tight_stats) = run_batch(&eng, &queries, &tight, &cache);
    assert_eq!(tight_responses, full, "deadlines must not alter responses");
    assert!(tight_stats.deadline_overruns <= stats.admitted);
}

#[test]
fn unknown_names_get_not_found_not_errors() {
    let _guard = battery_lock();
    let eng = engine();
    for q in [
        Query::IspRisk {
            isp: "No Such Carrier".into(),
        },
        Query::Similarity {
            isp: "No Such Carrier".into(),
        },
        Query::Latency {
            a: "Atlantis, XX".into(),
            b: "El Dorado, YY".into(),
        },
    ] {
        let json = eng.answer(&q).to_canonical_json();
        assert!(json.contains("\"NotFound\""), "expected NotFound for {q:?}: {json}");
    }
}
