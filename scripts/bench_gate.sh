#!/usr/bin/env sh
# Speedup gate for the rayon-parallel hot paths (DESIGN.md §7).
#
# Runs the `bench_parallel` harness (crates/bench/src/bin/bench_parallel.rs),
# which times each parallelised stage pinned to one thread and again at the
# environment's thread count, and records the result to BENCH_parallel.json.
#
# The numbers are always recorded; the speedup floor is only enforced on
# machines with at least MIN_CORES cores. On smaller boxes (CI runners are
# often 1–2 vCPUs) the parallel arms legitimately tie the serial ones — the
# determinism battery (tests/determinism.rs) still proves they compute the
# same bytes.
set -eu

MIN_CORES=4      # enforce the floor only at this parallelism or above
MIN_SPEEDUP=2    # required speedup ...
MIN_STAGES=2     # ... on at least this many of the four stages

cd "$(dirname "$0")/.."

cargo build --release -q -p intertubes-bench --bin bench_parallel
./target/release/bench_parallel > BENCH_parallel.json
echo "bench_gate: wrote BENCH_parallel.json"

cores=$(getconf _NPROCESSORS_ONLN 2>/dev/null || nproc 2>/dev/null || echo 1)
if [ "$cores" -lt "$MIN_CORES" ]; then
    echo "bench_gate: OK (recorded only — $cores core(s) < $MIN_CORES, floor not enforced)"
    exit 0
fi

fast=$(grep '"speedup"' BENCH_parallel.json |
    awk -v min="$MIN_SPEEDUP" '
        { gsub(/[^0-9.]/, "", $2); if ($2 + 0 >= min) n++ }
        END { print n + 0 }')

echo "bench_gate: $fast stage(s) at >= ${MIN_SPEEDUP}x (need $MIN_STAGES of 4)"
if [ "$fast" -lt "$MIN_STAGES" ]; then
    echo "bench_gate: FAIL — parallel hot paths regressed below the floor." >&2
    echo "See BENCH_parallel.json for per-stage timings." >&2
    exit 1
fi
echo "bench_gate: OK"
