#!/usr/bin/env sh
# Speedup gate for the rayon-parallel hot paths (DESIGN.md §7).
#
# Runs the `bench_parallel` harness (crates/bench/src/bin/bench_parallel.rs),
# which times each parallelised stage pinned to one thread and again at the
# environment's thread count, and records the result to BENCH_parallel.json.
#
# The numbers are always recorded; the speedup floor is only enforced when
# the harness marked the host eligible (`"floor_eligible": true`, i.e. at
# least MIN_CORES cores detected once, inside the bench — this script does
# not re-detect the host). On smaller boxes (CI runners are often 1–2
# vCPUs) the parallel arms legitimately tie the serial ones — the
# determinism battery (tests/determinism.rs) still proves they compute the
# same bytes.
#
# Two further checks ride along:
#   * the `latency_paths` row must carry the per-query path-engine fields
#     (`path_query_us`: legacy vs CSR vs bidirectional vs ALT timings);
#   * `latency_paths` serial wall-clock must not regress more than
#     MAX_REGRESSION_PCT over the committed BENCH_parallel.json baseline.
set -eu

MIN_CORES=4            # floor eligibility threshold (applied in the bench)
MIN_SPEEDUP=2          # required speedup ...
MIN_STAGES=2           # ... on at least this many of the four stages
MAX_REGRESSION_PCT=20  # latency_paths serial_ms budget vs committed baseline

cd "$(dirname "$0")/.."

# The serial_ms of the latency_paths row in a BENCH_parallel.json file.
latency_serial_ms() {
    awk '/"latency_paths"/ { f = 1 }
         f && /"serial_ms"/ { gsub(/[^0-9.]/, ""); print; exit }' "$1"
}

# Capture the committed baseline before the run overwrites the file.
baseline=""
if [ -f BENCH_parallel.json ]; then
    baseline=$(latency_serial_ms BENCH_parallel.json)
fi

cargo build --release -q -p intertubes-bench --bin bench_parallel
./target/release/bench_parallel > BENCH_parallel.json
echo "bench_gate: wrote BENCH_parallel.json"

# The per-query path-engine breakdown must be present and complete.
for field in path_query_us multigraph_dijkstra csr_dijkstra_cold \
             csr_dijkstra_warm bidirectional_cold bidirectional_warm \
             csr_alt_cold csr_alt_warm; do
    if ! grep -q "\"$field\"" BENCH_parallel.json; then
        echo "bench_gate: FAIL — BENCH_parallel.json is missing \"$field\"." >&2
        exit 1
    fi
done

# latency_paths must stay within the regression budget of the committed
# baseline (when one existed).
current=$(latency_serial_ms BENCH_parallel.json)
if [ -n "$baseline" ] && [ -n "$current" ]; then
    within=$(awk -v b="$baseline" -v c="$current" -v m="$MAX_REGRESSION_PCT" \
        'BEGIN { print (c <= b * (1 + m / 100)) ? "yes" : "no" }')
    if [ "$within" != "yes" ]; then
        echo "bench_gate: FAIL — latency_paths serial ${current} ms is more than" \
             "${MAX_REGRESSION_PCT}% over the committed baseline ${baseline} ms." >&2
        exit 1
    fi
    echo "bench_gate: latency_paths serial ${current} ms (baseline ${baseline} ms, budget +${MAX_REGRESSION_PCT}%)"
fi

# The bench records the host honestly; trust its eligibility flag.
if ! grep -q '"floor_eligible": *true' BENCH_parallel.json; then
    cores=$(awk '/"cores"/ { gsub(/[^0-9]/, ""); print; exit }' BENCH_parallel.json)
    echo "bench_gate: OK (recorded only — ${cores:-?} core(s) < $MIN_CORES, floor not enforced)"
    exit 0
fi

fast=$(grep '"speedup"' BENCH_parallel.json |
    awk -v min="$MIN_SPEEDUP" '
        { gsub(/[^0-9.]/, "", $2); if ($2 + 0 >= min) n++ }
        END { print n + 0 }')

echo "bench_gate: $fast stage(s) at >= ${MIN_SPEEDUP}x (need $MIN_STAGES of 4)"
if [ "$fast" -lt "$MIN_STAGES" ]; then
    echo "bench_gate: FAIL — parallel hot paths regressed below the floor." >&2
    echo "See BENCH_parallel.json for per-stage timings." >&2
    exit 1
fi
echo "bench_gate: OK"
