#!/usr/bin/env sh
# Chaos determinism gate for the serving layer (DESIGN.md §11).
#
# Freezes the reference study, then runs every built-in chaos scenario
# (torn-write, flaky-io, bit-rot, poisoned-cache, overload,
# chaos-everything) under both degradation policies at 1, 2, and 8
# threads. For each (scenario, policy) pair, all thread counts must
# agree on the exit code and — when the run succeeds — produce
# byte-identical response vectors and chaos reports (injection ledger +
# health trace). A scenario that deterministically fails to load (e.g.
# bit-rot under --strict) must fail identically in every arm with the
# data-error code 3, never a panic.
#
# Finally, a crash-safety probe: a `snapshot --chaos torn-write` save
# against an existing snapshot must leave that snapshot byte-identical
# and loadable, whether or not the chaotic save succeeds.
set -eu

WORK=chaos-gate
REPLAY=2000

cd "$(dirname "$0")/.."
mkdir -p "$WORK"

cargo build --release -q --bin intertubes

echo "chaos_gate: freezing the reference study..."
./target/release/intertubes snapshot "$WORK/study.snap"
# Give the lenient arms a salvage candidate: with a `.bak` present, a
# fatally corrupted primary read (bit-rot) can fail over instead of
# exhausting — the same state a second `snapshot` save would leave.
cp "$WORK/study.snap" "$WORK/study.snap.bak"

fail() {
    echo "chaos_gate: FAIL — $1" >&2
    exit 1
}

for scenario in torn-write flaky-io bit-rot poisoned-cache overload chaos-everything; do
    for policy in strict lenient; do
        codes=""
        for threads in 1 2 8; do
            arm="$WORK/${scenario}_${policy}_t${threads}"
            code=0
            ./target/release/intertubes --"$policy" --threads "$threads" \
                serve --snapshot "$WORK/study.snap" \
                --replay "$REPLAY" --queue 64 \
                --chaos "$scenario" \
                --chaos-report "$arm.chaos.json" \
                --out "$arm.jsonl" --stats /dev/null \
                2> "$arm.stderr" || code=$?
            [ "$code" -eq 0 ] || [ "$code" -eq 3 ] ||
                fail "$scenario/$policy/t$threads exited $code (want 0 or 3)"
            grep -q panicked "$arm.stderr" &&
                fail "$scenario/$policy/t$threads panicked"
            codes="$codes $code"
        done
        set -- $codes
        [ "$1" = "$2" ] && [ "$2" = "$3" ] ||
            fail "$scenario/$policy exit codes diverged across threads:$codes"
        if [ "$1" -eq 0 ]; then
            for threads in 2 8; do
                cmp -s "$WORK/${scenario}_${policy}_t1.jsonl" \
                       "$WORK/${scenario}_${policy}_t${threads}.jsonl" ||
                    fail "$scenario/$policy responses diverged at $threads threads"
                cmp -s "$WORK/${scenario}_${policy}_t1.chaos.json" \
                       "$WORK/${scenario}_${policy}_t${threads}.chaos.json" ||
                    fail "$scenario/$policy chaos report diverged at $threads threads"
            done
        fi
        echo "chaos_gate: $scenario/$policy OK (exit $1, byte-identical at 1/2/8 threads)"
    done
done

echo "chaos_gate: probing crash-safe save under torn writes..."
cp "$WORK/study.snap" "$WORK/victim.snap"
./target/release/intertubes snapshot "$WORK/victim.snap" --chaos torn-write \
    2> "$WORK/victim.stderr" || true
grep -q panicked "$WORK/victim.stderr" && fail "chaotic snapshot save panicked"
# Whatever the chaotic save did, a loadable snapshot must remain: either
# the original (failed save) or the freshly published one (which is the
# same deterministic bytes).
cmp -s "$WORK/study.snap" "$WORK/victim.snap" ||
    fail "torn-write save corrupted the published snapshot"
./target/release/intertubes query --snapshot "$WORK/victim.snap" \
    '{"TopShared":{"k":1}}' > /dev/null ||
    fail "snapshot unloadable after a chaotic save"
echo "chaos_gate: published snapshot survived the torn-write save"

echo "chaos_gate: OK"
