#!/usr/bin/env sh
# Determinism gate for the remote serving front-end (DESIGN.md §14).
#
# Freezes two distinct study worlds into snapshots, stands up one framed-
# TCP server routing both ids, and replays the fixed mixed workload over
# the wire at 1, 2, and 8 concurrent client connections — every arm must
# byte-match the local (in-process) replay of the same snapshot. A second
# server runs with the result cache disabled, and a third with the seeded
# `torn-frame` chaos plan injecting transport faults; neither may change
# a response byte. Finally the `bench_remote` harness re-checks digests
# internally and records multi-client throughput to BENCH_remote.json;
# the gate fails if any required field is missing from the record.
#
# The servers exit on their own: `--sessions N` counts client-initiated
# closes, and every `query --connect --clients K` run contributes exactly
# K of them (chaos disconnects are server-initiated and do not count).
set -eu

WORK=remote-gate
REPLAY=2000

cd "$(dirname "$0")/.."
mkdir -p "$WORK"
rm -f "$WORK"/*.addr

cargo build --release -q --bin intertubes
cargo build --release -q -p intertubes-bench --bin bench_remote

echo "remote_gate: freezing two study worlds..."
./target/release/intertubes snapshot "$WORK/ref.snap"
./target/release/intertubes --seed 42 snapshot "$WORK/alt.snap"

echo "remote_gate: local replay baselines..."
./target/release/intertubes serve --snapshot "$WORK/ref.snap" \
    --replay "$REPLAY" --out "$WORK/local_ref.jsonl" --stats /dev/null
./target/release/intertubes serve --snapshot "$WORK/alt.snap" \
    --replay "$REPLAY" --out "$WORK/local_alt.jsonl" --stats /dev/null

# Waits for --addr-file to appear, then echoes the bound address.
wait_addr() {
    i=0
    while [ ! -s "$1" ]; do
        i=$((i + 1))
        if [ "$i" -gt 300 ]; then
            echo "remote_gate: FAIL — server never wrote $1" >&2
            exit 1
        fi
        sleep 0.1
    done
    cat "$1"
}

# One server per cache mode (the cache is a server-side property); each
# serves BOTH snapshots and expects (1+2+8) sessions x 2 snapshots = 22.
for mode in cache nocache; do
    extra=""
    [ "$mode" = "nocache" ] && extra="--no-cache"
    echo "remote_gate: $mode server, 1/2/8 clients x 2 snapshots..."
    timeout 600 ./target/release/intertubes serve \
        --snapshot "ref=$WORK/ref.snap" --snapshot "alt=$WORK/alt.snap" \
        --listen 127.0.0.1:0 --addr-file "$WORK/$mode.addr" \
        --sessions 22 --stats /dev/null $extra &
    server=$!
    addr=$(wait_addr "$WORK/$mode.addr")
    for snap in ref alt; do
        for clients in 1 2 8; do
            ./target/release/intertubes query --connect "$addr" \
                --tenant gate --snapshot-id "$snap" \
                --workload-from "$WORK/$snap.snap" --replay "$REPLAY" \
                --clients "$clients" --out "$WORK/${mode}_${snap}_c${clients}.jsonl"
            if ! cmp -s "$WORK/local_$snap.jsonl" \
                        "$WORK/${mode}_${snap}_c${clients}.jsonl"; then
                echo "remote_gate: FAIL — ${mode}_${snap}_c${clients}.jsonl differs" >&2
                echo "from the local replay. Remote responses must be" >&2
                echo "byte-identical at any client count, with the cache on" >&2
                echo "or off, for every routed snapshot (DESIGN.md §14)." >&2
                kill "$server" 2>/dev/null || true
                exit 1
            fi
        done
    done
    wait "$server"
done
echo "remote_gate: responses byte-identical across 1/2/8 clients, 2 snapshots, cache on/off"

# Chaos arm: the seeded torn-frame plan tears frames, stalls reads, and
# drops connections mid-session; the client retries and the merged
# responses must still byte-match the clean local replay.
echo "remote_gate: seeded torn-frame chaos arm..."
timeout 600 ./target/release/intertubes serve \
    --snapshot "ref=$WORK/ref.snap" \
    --listen 127.0.0.1:0 --addr-file "$WORK/chaos.addr" \
    --sessions 2 --chaos torn-frame --stats /dev/null &
server=$!
addr=$(wait_addr "$WORK/chaos.addr")
./target/release/intertubes query --connect "$addr" \
    --tenant gate --snapshot-id ref \
    --workload-from "$WORK/ref.snap" --replay "$REPLAY" \
    --clients 2 --out "$WORK/chaos_ref_c2.jsonl"
wait "$server"
if ! cmp -s "$WORK/local_ref.jsonl" "$WORK/chaos_ref_c2.jsonl"; then
    echo "remote_gate: FAIL — torn-frame chaos changed a response byte." >&2
    echo "Transport faults may slow a session but must never alter" >&2
    echo "what the engine answers (DESIGN.md §14.6)." >&2
    exit 1
fi
echo "remote_gate: chaos arm byte-identical to the clean local replay"

./target/release/bench_remote > BENCH_remote.json
echo "remote_gate: wrote BENCH_remote.json"

# bench_remote exits nonzero on a digest mismatch, so reaching this point
# means its six arms agreed too; still verify the record is complete.
for field in replay local_digest deterministic queries_per_sec frames; do
    if ! grep -q "\"$field\"" BENCH_remote.json; then
        echo "remote_gate: FAIL — BENCH_remote.json is missing \"$field\"." >&2
        exit 1
    fi
done
if grep -q '"deterministic": false' BENCH_remote.json; then
    echo "remote_gate: FAIL — bench_remote recorded a nondeterministic run." >&2
    exit 1
fi
echo "remote_gate: OK"
