#!/usr/bin/env sh
# Telemetry-plane determinism gate (DESIGN.md §13).
#
# Freezes the reference study, then replays a fixed workload at 1, 2, and
# 8 threads with the result cache on AND off — six arms. Each arm writes
# an `intertubes-stats/v1` document via --stats-out; the gate validates
# every document with `stats_check` (schema, count-plane consistency,
# timing-plane quantiles, flight-recorder shape) and byte-compares the
# **canonicalized** form across all six arms: the count plane and the
# flight-recorder dumps must be identical at any thread count and in
# either cache mode, while the timing plane must be present in the full
# document and provably absent from the canonical one.
#
# A second battery repeats the comparison under the seeded `overload`
# chaos scenario, which degrades deterministically by queue position —
# injected faults, health transitions, and their flight dumps must also
# canonicalize identically across all six arms. (The poisoned-cache
# scenario is deliberately NOT used here: poisoning is a no-op with the
# cache off, so its ledger legitimately differs across cache modes.)
#
# Artifacts land in STATS_DIR (default stats-gate/) so CI can upload them.
set -eu

STATS_DIR="${STATS_DIR:-stats-gate}"
REPLAY="${REPLAY:-6000}"

cd "$(dirname "$0")/.."
mkdir -p "$STATS_DIR"

cargo build --release -q --bin intertubes --bin stats_check

echo "stats_gate: freezing the reference study..."
./target/release/intertubes snapshot "$STATS_DIR/study.snap"

run_arm() {
    # run_arm <label> <threads> <cache-flag> [chaos args...]
    label="$1"; threads="$2"; cacheflag="$3"; shift 3
    ./target/release/intertubes --threads "$threads" serve \
        --snapshot "$STATS_DIR/study.snap" \
        --replay "$REPLAY" $cacheflag "$@" \
        --out "$STATS_DIR/resp_$label.jsonl" \
        --stats /dev/null \
        --stats-out "$STATS_DIR/stats_$label.json"
    ./target/release/stats_check "$STATS_DIR/stats_$label.json"
    ./target/release/stats_check --canonical "$STATS_DIR/stats_$label.json" \
        > "$STATS_DIR/canon_$label.json"
    # The timing plane must be in the full document...
    if ! grep -q '"timing"' "$STATS_DIR/stats_$label.json"; then
        echo "stats_gate: FAIL — $label: timing plane missing from the full document." >&2
        exit 1
    fi
    # ...and provably absent from the canonical form (stats_check already
    # walks for every non-canonical key; this greps the headline one).
    if grep -q '"timing"' "$STATS_DIR/canon_$label.json"; then
        echo "stats_gate: FAIL — $label: timing plane leaked into the canonical form." >&2
        exit 1
    fi
    # The Prometheus sibling must exist and carry the count plane.
    if ! grep -q '^intertubes_serve_submitted_total' "$STATS_DIR/stats_$label.json.prom"; then
        echo "stats_gate: FAIL — $label: missing or empty Prometheus exposition." >&2
        exit 1
    fi
}

compare_arms() {
    # compare_arms <baseline-label> <labels...>
    base="$1"; shift
    for arm in "$@"; do
        if ! cmp -s "$STATS_DIR/canon_$base.json" "$STATS_DIR/canon_$arm.json"; then
            echo "stats_gate: FAIL — canonical stats of $arm differ from $base." >&2
            echo "The canonicalized count plane (and flight dumps) must be" >&2
            echo "byte-identical at any thread count and in either cache mode." >&2
            exit 1
        fi
    done
}

echo "stats_gate: clean replay, $REPLAY queries x {1,2,8} threads x {cache,nocache}..."
run_arm cache_t1 1 ""
run_arm cache_t2 2 ""
run_arm cache_t8 8 ""
run_arm nocache_t1 1 --no-cache
run_arm nocache_t2 2 --no-cache
run_arm nocache_t8 8 --no-cache
compare_arms cache_t1 cache_t2 cache_t8 nocache_t1 nocache_t2 nocache_t8
echo "stats_gate: clean count plane byte-identical across all six arms"

echo "stats_gate: chaos (overload) replay across the same six arms..."
run_arm chaos_cache_t1 1 "" --chaos overload --chaos-report "$STATS_DIR/chaos_report_t1.json"
run_arm chaos_cache_t2 2 "" --chaos overload --chaos-report /dev/null
run_arm chaos_cache_t8 8 "" --chaos overload --chaos-report /dev/null
run_arm chaos_nocache_t1 1 --no-cache --chaos overload --chaos-report /dev/null
run_arm chaos_nocache_t2 2 --no-cache --chaos overload --chaos-report /dev/null
run_arm chaos_nocache_t8 8 --no-cache --chaos overload --chaos-report /dev/null
compare_arms chaos_cache_t1 chaos_cache_t2 chaos_cache_t8 \
    chaos_nocache_t1 chaos_nocache_t2 chaos_nocache_t8
echo "stats_gate: chaos count plane + flight dumps byte-identical across all six arms"

# The chaos arms must actually have exercised the fault path: the
# overload scenario degrades queries and dumps the flight recorder.
if ! grep -q '"fault_injected"' "$STATS_DIR/stats_chaos_cache_t1.json"; then
    echo "stats_gate: FAIL — chaos arm recorded no fault_injected flight dump." >&2
    exit 1
fi
if grep -q '"degraded": 0,' "$STATS_DIR/stats_chaos_cache_t1.json"; then
    echo "stats_gate: FAIL — chaos arm degraded nothing; overload injection is dead." >&2
    exit 1
fi

echo "stats_gate: OK"
