#!/usr/bin/env sh
# Determinism + throughput gate for the scenario ensemble engine
# (DESIGN.md §12).
#
# Freezes the reference study into a snapshot, then replays both golden
# scenario plans (the hurricane corridor and the earthquake disc,
# tests/goldens/*.scenario.json) through the CLI at 1, 2, and 8 threads.
# Every arm must produce a byte-identical ConditionalRisk report — the
# ensemble analogue of the serving replay gate. Then runs the
# `bench_scenario` harness, which re-checks the digests internally and
# records scenarios/sec to BENCH_scenario.json; the gate fails on any
# missing field, on a serial 10 k-draw run slower than 5 s, and — on
# 4+-core runners only (floor_eligible) — on a parallel speedup below 2x.
set -eu

WORK=scenario-gate

cd "$(dirname "$0")/.."
mkdir -p "$WORK"

cargo build --release -q --bin intertubes
cargo build --release -q -p intertubes-bench --bin bench_scenario

echo "scenario_gate: freezing the reference study..."
./target/release/intertubes snapshot "$WORK/study.snap"

for name in hurricane-corridor earthquake-disc; do
    plan="tests/goldens/$name.scenario.json"
    echo "scenario_gate: replaying $plan at 1/2/8 threads..."
    for threads in 1 2 8; do
        ./target/release/intertubes --threads "$threads" scenario "$plan" \
            --snapshot "$WORK/study.snap" --out "$WORK/$name.t$threads.json"
    done
    for arm in t2 t8; do
        if ! cmp -s "$WORK/$name.t1.json" "$WORK/$name.$arm.json"; then
            echo "scenario_gate: FAIL — $name $arm report differs from the" >&2
            echo "single-thread baseline. Ensemble reports must be" >&2
            echo "byte-identical at any thread count (DESIGN.md §12.5)." >&2
            exit 1
        fi
    done
done
echo "scenario_gate: reports byte-identical across 1/2/8 threads"

./target/release/bench_scenario > BENCH_scenario.json
echo "scenario_gate: wrote BENCH_scenario.json"

# bench_scenario exits nonzero on a digest mismatch, so reaching this
# point means its arms agreed too; still verify the record is complete.
for field in threads cores floor_eligible serial_ms parallel_ms speedup \
    scenarios_per_sec_serial scenarios_per_sec_parallel deterministic; do
    if ! grep -q "\"$field\"" BENCH_scenario.json; then
        echo "scenario_gate: FAIL — BENCH_scenario.json is missing \"$field\"." >&2
        exit 1
    fi
done
if grep -q '"deterministic": false' BENCH_scenario.json; then
    echo "scenario_gate: FAIL — bench_scenario recorded a nondeterministic run." >&2
    exit 1
fi

field() {
    awk -F'[:,]' -v key="\"$1\"" \
        '$0 ~ key { gsub(/[ }]/, "", $2); print $2; exit }' BENCH_scenario.json
}

serial_ms=$(field serial_ms)
if awk -v v="$serial_ms" 'BEGIN { exit !(v >= 5000) }'; then
    echo "scenario_gate: FAIL — serial 10k-draw ensemble took ${serial_ms} ms" >&2
    echo "(budget 5000 ms)." >&2
    exit 1
fi
echo "scenario_gate: serial 10k-draw ensemble in ${serial_ms} ms (< 5 s)"

if grep -q '"floor_eligible": true' BENCH_scenario.json; then
    speedup=$(field speedup)
    if awk -v v="$speedup" 'BEGIN { exit !(v < 2.0) }'; then
        echo "scenario_gate: FAIL — parallel speedup ${speedup}x is below the" >&2
        echo "2x floor on a 4+-core runner." >&2
        exit 1
    fi
    echo "scenario_gate: parallel speedup ${speedup}x (floor 2x)"
else
    echo "scenario_gate: under 4 cores; speedup floor not enforced"
fi
echo "scenario_gate: OK"
