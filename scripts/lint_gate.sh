#!/usr/bin/env sh
# Ratchet gate for panicking escape hatches in library code.
#
# The workspace lints (Cargo.toml [workspace.lints.clippy]) surface every
# `unwrap()` / `expect()` in the library crates as a clippy warning. Input-
# facing code must use the checked `_checked` variants and the degradation
# taxonomy instead; the sites that remain are construction invariants in
# trusted world-generation internals. This script pins their count so it
# can only go down: lower BUDGET when you remove one, never raise it.
set -eu

BUDGET=5

cd "$(dirname "$0")/.."

# The clippy sweep only counts crates that opt into the workspace lints.
# Require the opt-in in every first-party crate manifest, so adding a crate
# (e.g. crates/obs) cannot silently shrink the gate's coverage. Vendored
# stubs (vendor/*) are third-party stand-ins and stay out of the budget.
for manifest in Cargo.toml crates/*/Cargo.toml; do
    if ! grep -A1 '^\[lints\]' "$manifest" | grep -q '^workspace = true'; then
        echo "lint_gate: FAIL — $manifest does not opt into the workspace" >&2
        echo "lints ([lints] workspace = true), so its unwrap()/expect()" >&2
        echo "sites would escape the budget below." >&2
        exit 1
    fi
done

count=$(cargo clippy --workspace --all-targets 2>&1 |
    grep -c 'used `unwrap()`\|used `expect()`' || true)

echo "lint_gate: $count panicking call sites (budget $BUDGET)"
if [ "$count" -gt "$BUDGET" ]; then
    echo "lint_gate: FAIL — new unwrap()/expect() in library code." >&2
    echo "Use the checked degradation path (see DESIGN.md) or justify and" >&2
    echo "raise BUDGET in scripts/lint_gate.sh in the same change." >&2
    exit 1
fi
echo "lint_gate: OK"
