#!/usr/bin/env sh
# Determinism + throughput gate for the serving layer (DESIGN.md §9).
#
# Freezes the reference study into a snapshot, cold-loads it, and replays
# the fixed 10 k mixed-query workload at 1, 2, and 8 threads and with the
# result cache disabled. Every arm must produce byte-identical responses —
# the serving analogue of the PR-3 determinism battery. Then runs the
# `bench_serve` harness, which re-checks the digests internally and
# records throughput, latency quantiles, hit rate, and the load-vs-rebuild
# ratio to BENCH_serve.json; the gate fails if any required field is
# missing from the record.
set -eu

WORK=serve-gate
REPLAY=10000

cd "$(dirname "$0")/.."
mkdir -p "$WORK"

cargo build --release -q --bin intertubes
cargo build --release -q -p intertubes-bench --bin bench_serve

echo "serve_gate: freezing the reference study..."
./target/release/intertubes snapshot "$WORK/study.snap"

echo "serve_gate: replaying $REPLAY mixed queries..."
./target/release/intertubes --threads 1 serve --snapshot "$WORK/study.snap" \
    --replay "$REPLAY" --out "$WORK/resp_t1.jsonl" --stats "$WORK/stats.json"
./target/release/intertubes --threads 2 serve --snapshot "$WORK/study.snap" \
    --replay "$REPLAY" --out "$WORK/resp_t2.jsonl" --stats /dev/null
./target/release/intertubes --threads 8 serve --snapshot "$WORK/study.snap" \
    --replay "$REPLAY" --out "$WORK/resp_t8.jsonl" --stats /dev/null
./target/release/intertubes --threads 2 serve --snapshot "$WORK/study.snap" \
    --replay "$REPLAY" --no-cache --out "$WORK/resp_nocache.jsonl" --stats /dev/null

for arm in resp_t2 resp_t8 resp_nocache; do
    if ! cmp -s "$WORK/resp_t1.jsonl" "$WORK/$arm.jsonl"; then
        echo "serve_gate: FAIL — $arm.jsonl differs from the single-thread baseline." >&2
        echo "Serving responses must be byte-identical at any thread count" >&2
        echo "and with the cache on or off (DESIGN.md §9.5)." >&2
        exit 1
    fi
done
echo "serve_gate: responses byte-identical across 1/2/8 threads and cache off"

./target/release/bench_serve > BENCH_serve.json
echo "serve_gate: wrote BENCH_serve.json"

# bench_serve exits nonzero on a digest mismatch, so reaching this point
# means its four arms agreed too; still verify the record is complete.
for field in rebuild_ms load_ms p50_us p99_us hit_rate max_queue_depth deterministic; do
    if ! grep -q "\"$field\"" BENCH_serve.json; then
        echo "serve_gate: FAIL — BENCH_serve.json is missing \"$field\"." >&2
        exit 1
    fi
done
if grep -q '"deterministic": false' BENCH_serve.json; then
    echo "serve_gate: FAIL — bench_serve recorded a nondeterministic run." >&2
    exit 1
fi
echo "serve_gate: OK"
