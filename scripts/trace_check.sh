#!/usr/bin/env sh
# CI trace gate (DESIGN.md §8).
#
# Runs the full pipeline end to end with structured tracing enabled, then
# validates the resulting trace with the `trace_check` binary: every line
# must be JSON, the final line must be a run manifest with exit status 0,
# and every end-to-end stage — the four map-construction steps, the
# traceroute overlay, the risk analyses, and all three §5 mitigation
# solvers — must appear with a well-formed timing/outcome record.
#
# Artifacts land in TRACE_DIR (default trace-gate/) so CI can upload them:
#   trace-gate/out.jsonl      the structured log + manifest
#   trace-gate/metrics.json   the merged metrics registry
#   trace-gate/artifacts/     the exported study artifacts
set -eu

TRACE_DIR="${TRACE_DIR:-trace-gate}"

cd "$(dirname "$0")/.."

cargo build --release -q --bin intertubes --bin trace_check
mkdir -p "$TRACE_DIR"

./target/release/intertubes \
    --trace-json "$TRACE_DIR/out.jsonl" \
    --metrics-out "$TRACE_DIR/metrics.json" \
    export "$TRACE_DIR/artifacts"

./target/release/trace_check "$TRACE_DIR/out.jsonl"
echo "trace_gate: OK"
