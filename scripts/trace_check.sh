#!/usr/bin/env sh
# CI trace gate (DESIGN.md §8).
#
# Runs the full pipeline end to end with structured tracing enabled, then
# validates the resulting trace with the `trace_check` binary: every line
# must be JSON, the final line must be a run manifest with exit status 0,
# and every end-to-end stage — the four map-construction steps, the
# traceroute overlay, the risk analyses, and all three §5 mitigation
# solvers — must appear with a well-formed timing/outcome record.
#
# The gate then validates the serving-side span sets added since the
# export pipeline: a `serve` replay must record serve.load, serve.replay,
# and the scheduler's serve.schedule span; a `scenario` evaluation must
# record serve.load and scenario.ensemble; a `serve --listen` session
# driven by one remote query must record the transport spans net.accept,
# net.frame, and net.route alongside serve.load and serve.schedule
# (`trace_check --profile`).
#
# Artifacts land in TRACE_DIR (default trace-gate/) so CI can upload them:
#   trace-gate/out.jsonl      the structured log + manifest (export run)
#   trace-gate/serve.jsonl    the serving replay trace
#   trace-gate/scenario.jsonl the scenario evaluation trace
#   trace-gate/remote.jsonl   the framed-TCP front-end trace
#   trace-gate/metrics.json   the merged metrics registry
#   trace-gate/artifacts/     the exported study artifacts
set -eu

TRACE_DIR="${TRACE_DIR:-trace-gate}"

cd "$(dirname "$0")/.."

cargo build --release -q --bin intertubes --bin trace_check
mkdir -p "$TRACE_DIR"

./target/release/intertubes \
    --trace-json "$TRACE_DIR/out.jsonl" \
    --metrics-out "$TRACE_DIR/metrics.json" \
    export "$TRACE_DIR/artifacts"

./target/release/trace_check "$TRACE_DIR/out.jsonl"
echo "trace_gate: export profile OK"

echo "trace_gate: freezing a snapshot for the serving profiles..."
./target/release/intertubes snapshot "$TRACE_DIR/study.snap"

./target/release/intertubes \
    --trace-json "$TRACE_DIR/serve.jsonl" \
    serve --snapshot "$TRACE_DIR/study.snap" \
    --replay 2000 --out "$TRACE_DIR/serve-responses.jsonl" --stats /dev/null

./target/release/trace_check --profile serve "$TRACE_DIR/serve.jsonl"
echo "trace_gate: serve profile OK"

./target/release/intertubes \
    --trace-json "$TRACE_DIR/scenario.jsonl" \
    scenario tests/goldens/hurricane-corridor.scenario.json \
    --snapshot "$TRACE_DIR/study.snap" --out "$TRACE_DIR/scenario-report.json"

./target/release/trace_check --profile scenario "$TRACE_DIR/scenario.jsonl"
echo "trace_gate: scenario profile OK"

rm -f "$TRACE_DIR/remote.addr"
timeout 600 ./target/release/intertubes \
    --trace-json "$TRACE_DIR/remote.jsonl" \
    serve --snapshot "study=$TRACE_DIR/study.snap" \
    --listen 127.0.0.1:0 --addr-file "$TRACE_DIR/remote.addr" \
    --sessions 1 --stats /dev/null &
REMOTE_PID=$!
i=0
while [ ! -s "$TRACE_DIR/remote.addr" ]; do
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "trace_gate: FAIL — remote server never wrote its address" >&2
        exit 1
    fi
    sleep 0.1
done
./target/release/intertubes query \
    --connect "$(cat "$TRACE_DIR/remote.addr")" --snapshot-id study \
    '{"TopShared":{"k":3}}' > /dev/null
wait "$REMOTE_PID"

./target/release/trace_check --profile remote "$TRACE_DIR/remote.jsonl"
echo "trace_gate: remote profile OK"

echo "trace_gate: OK"
