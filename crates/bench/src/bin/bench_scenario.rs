//! Scenario-ensemble throughput recorder (DESIGN.md §12), written to
//! `BENCH_scenario.json` by `scripts/scenario_gate.sh`.
//!
//! Runs both built-in scenarios (the golden hurricane corridor and
//! earthquake disc, 10 k draws each) against a freshly frozen snapshot
//! at 1, 2, and the environment's thread count, recording
//! scenarios-per-second per arm. The report digest must be identical in
//! every arm — the ensemble analogue of the PR-3 determinism battery —
//! and a mismatch exits nonzero so the gate fails loudly. The ≥2×
//! speedup floor is enforced by the gate only when `floor_eligible`
//! (4+ cores) is true, mirroring `bench_parallel`.

use std::time::Instant;

use intertubes::parallel::{thread_count, with_threads};
use intertubes::scenario::ScenarioPlan;
use intertubes::serve::QueryEngine;
use intertubes_bench::study;

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn main() {
    let threads = thread_count().max(2);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let floor_eligible = cores >= 4;

    let snap = study().snapshot(Some(10_000));
    let engine = QueryEngine::new(snap);

    let mut scenarios = Vec::new();
    let mut deterministic = true;
    let mut headline: Option<(f64, f64, f64)> = None;
    for (name, plan) in ScenarioPlan::built_in_scenarios() {
        let mut digests: Vec<u64> = Vec::new();
        let mut wall_ms: Vec<f64> = Vec::new();
        for arm_threads in [1usize, 2, threads] {
            let t = Instant::now();
            let report = with_threads(arm_threads, || engine.conditional_risk(&plan));
            let ms = t.elapsed().as_secs_f64() * 1e3;
            let report = match report {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("bench_scenario: {name}: {e}");
                    std::process::exit(1);
                }
            };
            eprintln!(
                "{name:<20} threads {arm_threads:>2}  {ms:>8.1} ms  \
                 {:>7.0} scen/s  digest {:016x}",
                plan.draws as f64 / (ms / 1e3),
                report.digest()
            );
            digests.push(report.digest());
            wall_ms.push(ms);
        }
        let arm_ok = digests.windows(2).all(|w| w[0] == w[1]);
        deterministic &= arm_ok;
        let serial_ms = wall_ms[0];
        let parallel_ms = wall_ms[2];
        let speedup = if parallel_ms > 0.0 {
            serial_ms / parallel_ms
        } else {
            0.0
        };
        if headline.is_none() {
            headline = Some((serial_ms, parallel_ms, speedup));
        }
        scenarios.push(serde_json::json!({
            "scenario": name,
            "draws": plan.draws,
            "serial_ms": round3(serial_ms),
            "parallel_ms": round3(parallel_ms),
            "speedup": round3(speedup),
            "scenarios_per_sec_serial": round3(plan.draws as f64 / (serial_ms / 1e3)),
            "scenarios_per_sec_parallel": round3(plan.draws as f64 / (parallel_ms / 1e3)),
            "deterministic": arm_ok,
            "digest": format!("{:016x}", digests[0]),
        }));
    }

    // Headline fields mirror the first scenario (hurricane-corridor) so
    // the gate can grep them without digging into the array.
    let (serial_ms, parallel_ms, speedup) = headline.unwrap_or((0.0, 0.0, 0.0));
    let doc = serde_json::json!({
        "threads": threads,
        "cores": cores,
        "floor_eligible": floor_eligible,
        "serial_ms": round3(serial_ms),
        "parallel_ms": round3(parallel_ms),
        "speedup": round3(speedup),
        "deterministic": deterministic,
        "scenarios": scenarios,
    });
    match serde_json::to_string_pretty(&doc) {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("bench_scenario: failed to serialize results: {e}");
            std::process::exit(1);
        }
    }
    if !deterministic {
        eprintln!(
            "bench_scenario: report digests differ across thread counts — \
             the ensemble is nondeterministic"
        );
        std::process::exit(1);
    }
}
