//! Serial-vs-parallel wall-clock measurement for the four rayon-backed hot
//! paths (DESIGN.md §7), recorded to `BENCH_parallel.json` by
//! `scripts/bench_gate.sh`.
//!
//! Unlike the Criterion benches this binary is cheap enough to run in CI:
//! each stage is timed over a few iterations pinned to one thread and again
//! at the environment's thread count, and the speedups are printed as JSON
//! on stdout. On boxes with fewer than 4 cores the numbers are recorded but
//! the gate script does not enforce a speedup floor — with a single core
//! the parallel arms legitimately tie (or slightly trail) the serial ones.
//!
//! Each stage additionally runs once under an `intertubes-obs` session, and
//! the per-sub-stage wall times from the observability spans (DESIGN.md §8)
//! are embedded in the row as `"sub_stages"` — the breakdown EXPERIMENTS.md
//! quotes.

use std::time::Instant;

use intertubes::obs;

use intertubes::map::{build_map, PipelineConfig};
use intertubes::mitigation::latency_study;
use intertubes::parallel::{thread_count, with_threads};
use intertubes::probes::overlay_campaign;
use intertubes::risk::{hamming_heatmap, RiskMatrix};
use intertubes_bench::study;

const ITERS: usize = 3;

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Median wall-clock milliseconds over `ITERS` runs at `threads` threads.
fn time_ms<R>(threads: usize, mut run: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..ITERS)
        .map(|_| {
            with_threads(threads, || {
                let t0 = Instant::now();
                std::hint::black_box(run());
                t0.elapsed().as_secs_f64() * 1e3
            })
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let threads = thread_count().max(2);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    let s = study();
    let published = s.world.publish_maps();
    let campaign = s.campaign(Some(10_000));
    let isps = s.mapped_isp_names();

    let mut rows = Vec::new();
    let mut measure = |name: &str, run: &mut dyn FnMut()| {
        let serial_ms = time_ms(1, &mut *run);
        let parallel_ms = time_ms(threads, &mut *run);
        let speedup = if parallel_ms > 0.0 {
            serial_ms / parallel_ms
        } else {
            1.0
        };
        // One instrumented pass: the obs spans inside the stage give the
        // per-sub-stage timing breakdown (e.g. map.step1..step4 within
        // "pipeline").
        let session = obs::Session::begin(obs::ObsConfig::default());
        with_threads(threads, &mut *run);
        let record = session.finish();
        let mut sub_stages = serde_json::Map::new();
        for sub in record.stage_names() {
            let ms = record.stage_wall_ms(sub).unwrap_or(0.0);
            sub_stages.insert(
                sub.to_string(),
                serde_json::Value::Number(serde_json::Number::Float(round3(ms))),
            );
        }
        eprintln!(
            "{name:<14} serial {serial_ms:>8.1} ms  parallel({threads}) {parallel_ms:>8.1} ms  \
             speedup {speedup:.2}x"
        );
        rows.push(serde_json::json!({
            "stage": name,
            "serial_ms": round3(serial_ms),
            "parallel_ms": round3(parallel_ms),
            "speedup": round3(speedup),
            "sub_stages": serde_json::Value::Object(sub_stages),
        }));
    };

    measure("pipeline", &mut || {
        build_map(
            &published,
            &s.corpus,
            &s.world.cities,
            &s.world.roads,
            &s.world.rails,
            &PipelineConfig::default(),
        );
    });
    measure("overlay", &mut || {
        overlay_campaign(&s.world, &s.built.map, &campaign);
    });
    measure("risk_hamming", &mut || {
        let rm = RiskMatrix::build(&s.built.map, &isps);
        hamming_heatmap(&rm);
    });
    measure("latency_paths", &mut || {
        latency_study(
            &s.built.map,
            &s.world.cities,
            &s.world.roads,
            &s.world.rails,
            &s.config.latency,
        );
    });

    let doc = serde_json::json!({
        "threads": threads,
        "cores": cores,
        "iters_per_arm": ITERS,
        "stages": rows,
    });
    match serde_json::to_string_pretty(&doc) {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("bench_parallel: failed to serialize results: {e}");
            std::process::exit(1);
        }
    }
}
