//! Serial-vs-parallel wall-clock measurement for the four rayon-backed hot
//! paths (DESIGN.md §7), recorded to `BENCH_parallel.json` by
//! `scripts/bench_gate.sh`.
//!
//! Unlike the Criterion benches this binary is cheap enough to run in CI:
//! each stage is timed over a few iterations pinned to one thread and again
//! at the environment's thread count, and the speedups are printed as JSON
//! on stdout. On boxes with fewer than 4 cores the numbers are recorded but
//! the gate script does not enforce a speedup floor — with a single core
//! the parallel arms legitimately tie (or slightly trail) the serial ones.
//!
//! Each stage additionally runs once under an `intertubes-obs` session, and
//! the per-sub-stage wall times from the observability spans (DESIGN.md §8)
//! are embedded in the row as `"sub_stages"` — the breakdown EXPERIMENTS.md
//! quotes.
//!
//! The host is reported honestly: `"cores"` is the physical parallelism
//! detected once via `available_parallelism`, `"threads"` is the width the
//! parallel arms actually ran at (forced to ≥ 2 so the parallel code path
//! is exercised even on 1-core boxes), and `"floor_eligible"` says whether
//! the speedup floor is meaningful here — `bench_gate.sh` reads that flag
//! instead of re-detecting the host.
//!
//! The `latency_paths` row also carries `"path_query_us"`: per-query
//! wall-clock for one point-to-point shortest-path query under each search
//! engine (legacy `MultiGraph` Dijkstra, CSR Dijkstra, bidirectional, and
//! ALT-pruned CSR), cold (scratch allocated per query) and warm (scratch
//! reused) — the numbers EXPERIMENTS.md's path-engine table quotes.

use std::time::Instant;

use intertubes::obs;

use intertubes::graph::{
    bidirectional_dijkstra, csr_dijkstra, csr_dijkstra_filtered, dijkstra, EdgeId, Landmarks,
    NodeId, SearchState, DEFAULT_LANDMARK_COUNT,
};
use intertubes::map::{build_map, PipelineConfig};
use intertubes::mitigation::latency_study;
use intertubes::parallel::{thread_count, with_threads};
use intertubes::probes::overlay_campaign;
use intertubes::risk::{hamming_heatmap, RiskMatrix};
use intertubes_bench::study;

const ITERS: usize = 3;

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

/// Median wall-clock milliseconds over `ITERS` runs at `threads` threads.
fn time_ms<R>(threads: usize, mut run: impl FnMut() -> R) -> f64 {
    let mut samples: Vec<f64> = (0..ITERS)
        .map(|_| {
            with_threads(threads, || {
                let t0 = Instant::now();
                std::hint::black_box(run());
                t0.elapsed().as_secs_f64() * 1e3
            })
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Per-query microseconds for each point-to-point search engine over a
/// deterministic sample of conduit-joined pairs, cold (fresh scratch per
/// query) and warm (scratch reused across queries).
fn path_query_us(s: &intertubes::Study) -> serde_json::Value {
    let map = &s.built.map;
    let graph = map.graph();
    let csr = graph.to_csr();
    let lengths: Vec<f64> = map.conduits.iter().map(|c| c.geometry.length_km()).collect();
    let km = |e: EdgeId| lengths[e.index()];
    let landmarks = Landmarks::build(&csr, DEFAULT_LANDMARK_COUNT, km).ok();

    // The same pair enumeration the §5.3 study uses, thinned to a fixed
    // sample so the micro-bench stays cheap on any map size.
    let mut pairs: Vec<(u32, u32)> = map
        .conduits
        .iter()
        .map(|c| (c.a.0.min(c.b.0), c.a.0.max(c.b.0)))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();
    let stride = pairs.len().div_ceil(256).max(1);
    let sample: Vec<(u32, u32)> = pairs.into_iter().step_by(stride).collect();
    let n = sample.len().max(1);

    let time = |run: &mut dyn FnMut(u32, u32)| -> f64 {
        let t0 = Instant::now();
        for &(a, b) in &sample {
            run(a, b);
        }
        round3(t0.elapsed().as_secs_f64() * 1e6 / n as f64)
    };

    let multigraph = time(&mut |a, b| {
        std::hint::black_box(dijkstra(&graph, NodeId(a), NodeId(b), km).ok());
    });
    let csr_cold = time(&mut |a, b| {
        let mut st = SearchState::new();
        std::hint::black_box(csr_dijkstra(&csr, &mut st, NodeId(a), NodeId(b), km).ok());
    });
    let mut st = SearchState::new();
    let csr_warm = time(&mut |a, b| {
        std::hint::black_box(csr_dijkstra(&csr, &mut st, NodeId(a), NodeId(b), km).ok());
    });
    let bidi_cold = time(&mut |a, b| {
        let (mut fwd, mut bwd) = (SearchState::new(), SearchState::new());
        std::hint::black_box(
            bidirectional_dijkstra(&csr, &mut fwd, &mut bwd, NodeId(a), NodeId(b), km).ok(),
        );
    });
    let (mut fwd, mut bwd) = (SearchState::new(), SearchState::new());
    let bidi_warm = time(&mut |a, b| {
        std::hint::black_box(
            bidirectional_dijkstra(&csr, &mut fwd, &mut bwd, NodeId(a), NodeId(b), km).ok(),
        );
    });
    let no_nodes = vec![false; csr.node_count()];
    let no_edges = vec![false; csr.edge_count()];
    let alt_cold = time(&mut |a, b| {
        let mut st = SearchState::new();
        let (nodes, edges) = (vec![false; csr.node_count()], vec![false; csr.edge_count()]);
        std::hint::black_box(
            csr_dijkstra_filtered(
                &csr,
                &mut st,
                NodeId(a),
                NodeId(b),
                km,
                &nodes,
                &edges,
                landmarks.as_ref(),
            )
            .ok(),
        );
    });
    let mut st2 = SearchState::new();
    let alt_warm = time(&mut |a, b| {
        std::hint::black_box(
            csr_dijkstra_filtered(
                &csr,
                &mut st2,
                NodeId(a),
                NodeId(b),
                km,
                &no_nodes,
                &no_edges,
                landmarks.as_ref(),
            )
            .ok(),
        );
    });

    serde_json::json!({
        "sample_pairs": n,
        "multigraph_dijkstra": multigraph,
        "csr_dijkstra_cold": csr_cold,
        "csr_dijkstra_warm": csr_warm,
        "bidirectional_cold": bidi_cold,
        "bidirectional_warm": bidi_warm,
        "csr_alt_cold": alt_cold,
        "csr_alt_warm": alt_warm,
    })
}

fn main() {
    // The host is detected exactly once, here; everything downstream
    // (including bench_gate.sh) reads these recorded values.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let threads = thread_count().max(2);
    let floor_eligible = cores >= 4;

    let s = study();
    let published = s.world.publish_maps();
    let campaign = s.campaign(Some(10_000));
    let isps = s.mapped_isp_names();

    let mut rows = Vec::new();
    let mut measure = |name: &str, run: &mut dyn FnMut()| {
        let serial_ms = time_ms(1, &mut *run);
        let parallel_ms = time_ms(threads, &mut *run);
        let speedup = if parallel_ms > 0.0 {
            serial_ms / parallel_ms
        } else {
            1.0
        };
        // One instrumented pass: the obs spans inside the stage give the
        // per-sub-stage timing breakdown (e.g. map.step1..step4 within
        // "pipeline").
        let session = obs::Session::begin(obs::ObsConfig::default());
        with_threads(threads, &mut *run);
        let record = session.finish();
        let mut sub_stages = serde_json::Map::new();
        for sub in record.stage_names() {
            let ms = record.stage_wall_ms(sub).unwrap_or(0.0);
            sub_stages.insert(
                sub.to_string(),
                serde_json::Value::Number(serde_json::Number::Float(round3(ms))),
            );
        }
        eprintln!(
            "{name:<14} serial {serial_ms:>8.1} ms  parallel({threads}) {parallel_ms:>8.1} ms  \
             speedup {speedup:.2}x"
        );
        rows.push(serde_json::json!({
            "stage": name,
            "serial_ms": round3(serial_ms),
            "parallel_ms": round3(parallel_ms),
            "speedup": round3(speedup),
            "sub_stages": serde_json::Value::Object(sub_stages),
        }));
    };

    measure("pipeline", &mut || {
        build_map(
            &published,
            &s.corpus,
            &s.world.cities,
            &s.world.roads,
            &s.world.rails,
            &PipelineConfig::default(),
        );
    });
    measure("overlay", &mut || {
        overlay_campaign(&s.world, &s.built.map, &campaign);
    });
    measure("risk_hamming", &mut || {
        let rm = RiskMatrix::build(&s.built.map, &isps);
        hamming_heatmap(&rm);
    });
    measure("latency_paths", &mut || {
        latency_study(
            &s.built.map,
            &s.world.cities,
            &s.world.roads,
            &s.world.rails,
            &s.config.latency,
        );
    });

    // Attach the per-query search-engine breakdown to the latency row.
    let queries = path_query_us(&s);
    if let Some(row) = rows
        .iter_mut()
        .find(|r| r.get("stage").and_then(|v| v.as_str()) == Some("latency_paths"))
    {
        if let Some(obj) = row.as_object_mut() {
            obj.insert("path_query_us".into(), queries);
        }
    }

    let doc = serde_json::json!({
        "threads": threads,
        "cores": cores,
        "floor_eligible": floor_eligible,
        "iters_per_arm": ITERS,
        "stages": rows,
    });
    match serde_json::to_string_pretty(&doc) {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("bench_parallel: failed to serialize results: {e}");
            std::process::exit(1);
        }
    }
}
