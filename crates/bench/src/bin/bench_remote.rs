//! Remote serving front-end load generator (DESIGN.md §14), recorded to
//! `BENCH_remote.json` by `scripts/remote_gate.sh`.
//!
//! The binary answers the question the wire adds on top of `bench_serve`:
//! **does carrying the workload over framed TCP change a single response
//! byte, and how does throughput scale with concurrent clients?** The
//! fixed mixed workload is replayed through a live in-process front-end
//! at 1, 2, and 8 concurrent client connections, with the result cache on
//! and off, and the FNV-1a digest of every arm must equal the local
//! replay's digest — the wire must be invisible in the bytes.
//!
//! Each arm gets a fresh server (and therefore a cold result cache), so
//! the clients column is the only thing that varies within a cache mode.
//! Note the client poll tick (~0.5 ms) paces each connection; the
//! interesting column is how added connections amortize it, not the
//! absolute q/s, which local replay will always win.

use std::time::Instant;

use intertubes::net::{run_clients, NetServer, SnapshotRegistry};
use intertubes::serve::{
    fnv1a64, mixed_workload, run_batch, CacheConfig, Query, QueryEngine, ResultCache, ServeConfig,
    StudySnapshot,
};
use intertubes_bench::study;

const REPLAY: usize = 4_000;
const SEED: u64 = 2026;

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn fail(msg: &str) -> ! {
    eprintln!("bench_remote: {msg}");
    std::process::exit(1);
}

fn spawn_server(snap: &StudySnapshot, cache_on: bool) -> intertubes::net::RunningServer {
    let cfg = ServeConfig {
        cache: CacheConfig {
            enabled: cache_on,
            ..CacheConfig::default()
        },
        ..ServeConfig::default()
    };
    let mut registry = SnapshotRegistry::new();
    registry.insert("study", QueryEngine::new(snap.clone()), cfg);
    match NetServer::new(registry).spawn("127.0.0.1:0") {
        Ok(server) => server,
        Err(e) => fail(&format!("cannot spawn the front-end: {e}")),
    }
}

fn main() {
    let snap = study().snapshot(Some(10_000));
    let queries: Vec<Query> = mixed_workload(&snap, REPLAY, SEED);

    // The local replay digest every remote arm must reproduce.
    let cfg = ServeConfig::default();
    let cache = ResultCache::new(cfg.cache);
    let engine = QueryEngine::new(snap.clone());
    let t = Instant::now();
    let (local_responses, _) = run_batch(&engine, &queries, &cfg, &cache);
    let local_ms = t.elapsed().as_secs_f64() * 1e3;
    let local_digest = fnv1a64(local_responses.join("\n").as_bytes());

    let mut arms = Vec::new();
    let mut deterministic = true;
    for cache_on in [true, false] {
        for clients in [1usize, 2, 8] {
            let server = spawn_server(&snap, cache_on);
            let addr = server.addr();
            let t = Instant::now();
            let responses =
                match run_clients(addr, "bench", "study", &queries, clients) {
                    Ok(r) => r,
                    Err(e) => fail(&format!("remote replay failed: {e}")),
                };
            let wall_ms = t.elapsed().as_secs_f64() * 1e3;
            let report = match server.stop() {
                Ok(r) => r,
                Err(e) => fail(&format!("server stop failed: {e}")),
            };
            let digest = fnv1a64(responses.join("\n").as_bytes());
            deterministic &= digest == local_digest;
            let qps = if wall_ms > 0.0 {
                responses.len() as f64 / (wall_ms / 1e3)
            } else {
                0.0
            };
            eprintln!(
                "clients {clients}  cache {}  {wall_ms:>9.1} ms  {qps:>7.0} q/s  \
                 {} frame(s)  digest {digest:016x}",
                if cache_on { "on " } else { "off" },
                report.frames
            );
            arms.push(serde_json::json!({
                "clients": clients,
                "cache": cache_on,
                "wall_ms": round3(wall_ms),
                "queries_per_sec": round3(qps),
                "frames": report.frames,
                "responses": report.responses,
                "digest": format!("{digest:016x}"),
            }));
        }
    }

    let doc = serde_json::json!({
        "replay": REPLAY,
        "seed": SEED,
        "local_wall_ms": round3(local_ms),
        "local_digest": format!("{local_digest:016x}"),
        "deterministic": deterministic,
        "arms": arms,
    });
    match serde_json::to_string_pretty(&doc) {
        Ok(text) => println!("{text}"),
        Err(e) => fail(&format!("failed to serialize results: {e}")),
    }
    if !deterministic {
        fail("a remote arm's digest differs from local replay — the wire changed bytes");
    }
}
