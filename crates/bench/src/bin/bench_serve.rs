//! Serving-layer load generator (DESIGN.md §9), recorded to
//! `BENCH_serve.json` by `scripts/serve_gate.sh`.
//!
//! The binary answers the two questions the serving layer exists for:
//!
//! 1. **Is loading a snapshot cheaper than rebuilding the study?** The
//!    full §2–5 rebuild (world → corpus → four-step pipeline → risk →
//!    overlay → path index) is timed once, then the frozen snapshot is
//!    parsed from bytes a few times and the median is reported.
//! 2. **Is serving deterministic under concurrency and caching?** The
//!    same 10 k mixed-query replay runs at one thread and at the
//!    environment's thread count, with the result cache on and off, and
//!    an FNV-1a digest of the concatenated responses must be identical
//!    across all four arms — the serving analogue of the PR-3
//!    determinism battery.
//!
//! Per-arm throughput, latency quantiles (overall and per query family,
//! from the telemetry timing plane — DESIGN.md §13), hit rate, and peak
//! queue depth are printed as JSON on stdout; a digest mismatch exits
//! nonzero so the gate fails loudly rather than recording a
//! nondeterministic run.

use std::time::Instant;

use intertubes::parallel::{thread_count, with_threads};
use intertubes::serve::{
    fnv1a64, mixed_workload, run_batch_telemetry, CacheConfig, QueryEngine, ResultCache,
    ServeConfig, ServeTelemetry, StudySnapshot,
};
use intertubes_bench::study;

const REPLAY: usize = 10_000;
const SEED: u64 = 2026;
const LOAD_ITERS: usize = 3;

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn main() {
    let threads = thread_count().max(2);
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Arm 0: the full rebuild, timed cold. `study()` memoizes, so this is
    // the one and only pipeline construction in the process.
    let t0 = Instant::now();
    let snap = study().snapshot(Some(10_000));
    let rebuild_ms = t0.elapsed().as_secs_f64() * 1e3;

    let bytes = match snap.to_bytes() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("bench_serve: snapshot serialization failed: {e}");
            std::process::exit(1);
        }
    };

    // Arm 1: parsing the frozen container, median of a few runs.
    let mut load_samples: Vec<f64> = (0..LOAD_ITERS)
        .map(|_| {
            let t = Instant::now();
            match StudySnapshot::from_bytes(&bytes) {
                Ok(s) => std::hint::black_box(s),
                Err(e) => {
                    eprintln!("bench_serve: snapshot load failed: {e}");
                    std::process::exit(1);
                }
            };
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    load_samples.sort_by(f64::total_cmp);
    let load_ms = load_samples[load_samples.len() / 2];

    let loaded = match StudySnapshot::from_bytes(&bytes) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("bench_serve: snapshot load failed: {e}");
            std::process::exit(1);
        }
    };
    let engine = QueryEngine::new(loaded);
    let queries = mixed_workload(engine.snapshot(), REPLAY, SEED);

    // Arms 2–5: the replay matrix. Responses must be byte-identical in
    // every cell; only the timing columns may differ.
    let mut arms = Vec::new();
    let mut digests: Vec<u64> = Vec::new();
    for (label, arm_threads, cache_on) in [
        ("serial_cache", 1usize, true),
        ("parallel_cache", threads, true),
        ("serial_nocache", 1, false),
        ("parallel_nocache", threads, false),
    ] {
        let cfg = ServeConfig {
            cache: CacheConfig {
                enabled: cache_on,
                ..CacheConfig::default()
            },
            ..ServeConfig::default()
        };
        let cache = ResultCache::new(cfg.cache);
        let telemetry = ServeTelemetry::new();
        let t = Instant::now();
        let (responses, stats) = with_threads(arm_threads, || {
            run_batch_telemetry(&engine, &queries, &cfg, &cache, &telemetry)
        });
        let wall_ms = t.elapsed().as_secs_f64() * 1e3;
        // Per-family latency quantiles from the telemetry timing plane
        // (EXPERIMENTS.md's per-family table is generated from these).
        let stats_doc = telemetry.stats_document(Some(&cache));
        let per_family = stats_doc
            .get("timing")
            .and_then(|t| t.get("per_family"))
            .cloned()
            .unwrap_or(serde_json::json!({}));
        let digest = fnv1a64(responses.join("\n").as_bytes());
        let qps = if wall_ms > 0.0 {
            responses.len() as f64 / (wall_ms / 1e3)
        } else {
            0.0
        };
        eprintln!(
            "{label:<17} threads {arm_threads:>2}  {wall_ms:>8.1} ms  {qps:>9.0} q/s  \
             hit_rate {:.4}  p99 {} µs  digest {digest:016x}",
            stats.hit_rate, stats.p99_us
        );
        digests.push(digest);
        arms.push(serde_json::json!({
            "arm": label,
            "threads": arm_threads,
            "cache": cache_on,
            "wall_ms": round3(wall_ms),
            "queries_per_sec": round3(qps),
            "p50_us": stats.p50_us,
            "p99_us": stats.p99_us,
            "hit_rate": stats.hit_rate,
            "max_queue_depth": stats.max_queue_depth,
            "waves": stats.waves,
            "per_family": per_family,
            "digest": format!("{digest:016x}"),
        }));
    }
    let deterministic = digests.windows(2).all(|w| w[0] == w[1]);

    // Headline fields mirror the parallel+cache arm — the configuration
    // `intertubes serve` runs by default — so the gate can grep them
    // without digging into the arm array.
    let headline = &arms[1];
    let doc = serde_json::json!({
        "replay": REPLAY,
        "seed": SEED,
        "threads": threads,
        "cores": cores,
        "snapshot_bytes": bytes.len(),
        "rebuild_ms": round3(rebuild_ms),
        "load_ms": round3(load_ms),
        "load_speedup": round3(if load_ms > 0.0 { rebuild_ms / load_ms } else { 0.0 }),
        "p50_us": headline["p50_us"].clone(),
        "p99_us": headline["p99_us"].clone(),
        "hit_rate": headline["hit_rate"].clone(),
        "max_queue_depth": headline["max_queue_depth"].clone(),
        "per_family": headline["per_family"].clone(),
        "deterministic": deterministic,
        "arms": arms,
    });
    match serde_json::to_string_pretty(&doc) {
        Ok(text) => println!("{text}"),
        Err(e) => {
            eprintln!("bench_serve: failed to serialize results: {e}");
            std::process::exit(1);
        }
    }
    if !deterministic {
        eprintln!("bench_serve: response digests differ across arms — serving is nondeterministic");
        std::process::exit(1);
    }
}
