//! Regenerates the paper's tables and figures from the reference study.
//!
//! ```sh
//! cargo run -p intertubes-bench --release --bin figures -- all
//! cargo run -p intertubes-bench --release --bin figures -- fig6 fig9 tab4
//! INTERTUBES_PROBES=500000 cargo run -p intertubes-bench --release --bin figures -- tab2
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!(
            "usage: figures <experiment>... | all\nknown experiments: {}",
            intertubes_bench::EXPERIMENTS.join(", ")
        );
        std::process::exit(2);
    }
    let ids: Vec<&str> = if args.iter().any(|a| a == "all") {
        // Deduplicate combined printers (fig2/fig3, tab2/tab3, fig10/tab5).
        vec![
            "tab1",
            "fig1",
            "fig2",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "tab2",
            "tab4",
            "fig10",
            "fig11",
            "fig12",
            "ext-resilience",
            "ext-exchange",
        ]
    } else {
        args.iter().map(String::as_str).collect()
    };
    println!(
        "InterTubes reproduction harness — world seed {}, {} probes",
        intertubes_bench::study().world.config.seed,
        intertubes_bench::probe_count()
    );
    for id in ids {
        intertubes_bench::run(id);
    }
}
