//! Shared helpers for the benchmark harness and the `figures` binary.
//!
//! Every table and figure of the paper's evaluation has a regeneration
//! routine here; the `figures` binary prints them, the Criterion benches
//! time the underlying computations, and EXPERIMENTS.md records measured vs
//! paper values. See DESIGN.md §3 for the experiment index.

#![forbid(unsafe_code)]

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use intertubes::probes::{Campaign, Direction, Overlay};
use intertubes::risk::{
    conduits_shared_by_at_least, hamming_heatmap, isp_sharing_ranking, raw_shared_conduits,
    sharing_fraction, traffic_risk, RiskMatrix,
};
use intertubes::Study;

/// The shared reference study (built once per process).
pub fn study() -> &'static Study {
    static STUDY: OnceLock<Study> = OnceLock::new();
    STUDY.get_or_init(Study::reference)
}

/// A shared reference campaign + overlay at the given probe count.
///
/// Cached per probe count: callers asking for different volumes get
/// different campaigns (a single `OnceLock` here once served whatever
/// count happened to be requested first, silently mislabeling every later
/// experiment's probe volume).
pub fn overlay(probes: usize) -> &'static (Campaign, Overlay) {
    static CACHE: OnceLock<Mutex<HashMap<usize, &'static (Campaign, Overlay)>>> = OnceLock::new();
    let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
    let mut cache = cache.lock().unwrap_or_else(|e| e.into_inner());
    *cache.entry(probes).or_insert_with(|| {
        let s = study();
        let campaign = s.campaign(Some(probes));
        let overlay = s.overlay(&campaign);
        Box::leak(Box::new((campaign, overlay)))
    })
}

/// Probe count used by the harness (paper: 4.9 M; here sized to finish in
/// seconds — override with `INTERTUBES_PROBES`).
pub fn probe_count() -> usize {
    std::env::var("INTERTUBES_PROBES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(100_000)
}

fn hr(title: &str) {
    println!("\n──── {title} ────");
}

/// Table 1: nodes and links per step-1 ISP.
pub fn print_tab1() {
    let s = study();
    hr("Table 1 — initial (step 1) map per geocoded ISP");
    let paper = [
        ("AT&T", 25, 57),
        ("Comcast", 26, 71),
        ("Cogent", 69, 84),
        ("EarthLink", 248, 370),
        ("Integra", 27, 36),
        ("Level 3", 240, 336),
        ("Suddenlink", 39, 42),
        ("Verizon", 116, 151),
        ("Zayo", 98, 111),
    ];
    println!(
        "{:<12} {:>7} {:>7}   {:>11} {:>11}",
        "ISP", "nodes", "links", "paper nodes", "paper links"
    );
    for (isp, pn, pl) in paper {
        let (nodes, links) = s.built.map.provider_counts(isp);
        println!("{isp:<12} {nodes:>7} {links:>7}   {pn:>11} {pl:>11}");
    }
    let r1 = s.built.reports[0];
    println!(
        "step-1 totals: {} nodes, {} links, {} conduits (paper: 267/1258/512)",
        r1.nodes, r1.links, r1.conduits
    );
}

/// Figure 1: the final map.
pub fn print_fig1() {
    let s = study();
    hr("Figure 1 — the constructed US long-haul map");
    let summary = intertubes::map::summarize(&s.built.map);
    println!(
        "{} nodes, {} links, {} conduits (paper: 273 / 2411 / 542)",
        summary.nodes, summary.links, summary.conduits
    );
    println!("validated conduits: {}", summary.validated_conduits);
    println!("total mileage: {:.0} km", summary.total_km);
    println!(
        "step provenance: {} step-1 conduits, {} step-3",
        summary.step1_conduits, summary.step3_conduits
    );
    println!("long-haul hubs:");
    for (label, deg) in summary.hubs.iter().take(8) {
        println!("  {label:<24} degree {deg}");
    }
    for r in &s.built.reports {
        println!(
            "after step {}: {} nodes / {} links / {} conduits",
            r.step, r.nodes, r.links, r.conduits
        );
    }
}

/// Figures 2 and 3: the transport layers.
pub fn print_fig2_fig3() {
    let s = study();
    hr("Figures 2/3 — roadway and railway layers");
    for (name, net) in [
        ("roadway (Fig 2)", &s.world.roads),
        ("railway (Fig 3)", &s.world.rails),
    ] {
        println!(
            "{name}: {} corridors, {:.0} km total",
            net.graph.edge_count(),
            net.total_length_km()
        );
    }
    println!(
        "pipeline ROWs: {} corridors, {:.0} km",
        s.world.pipelines.graph.edge_count(),
        s.world.pipelines.total_length_km()
    );
}

/// Figure 4: co-location histograms.
pub fn print_fig4() {
    let s = study();
    hr("Figure 4 — fraction of conduits co-located with transport ROWs");
    let report = s.colocation().expect("overlap params are valid");
    println!("{:<12} {}", "bin", "road   rail   road∪rail");
    let road = report.road.relative();
    let rail = report.rail.relative();
    let both = report.road_or_rail.relative();
    for i in 0..road.len() {
        println!(
            "[{:.1},{:.1})     {:<6.2} {:<6.2} {:<6.2}",
            i as f64 / road.len() as f64,
            (i + 1) as f64 / road.len() as f64,
            road[i],
            rail[i],
            both[i]
        );
    }
    println!(
        "means: road {:.2}, rail {:.2}, union {:.2} (paper: road-dominated, union highest)",
        report.road.mean(),
        report.rail.mean(),
        report.road_or_rail.mean()
    );
}

/// Figure 5: off-corridor conduits and pipeline explanations.
pub fn print_fig5() {
    let s = study();
    hr("Figure 5 — conduits on no road/rail corridor (pipeline ROWs)");
    let report = s.colocation().expect("overlap params are valid");
    println!(
        "{} of {} conduits are predominantly off road/rail corridors",
        report.off_corridor, report.total
    );
    println!(
        "{} of those are explained by pipeline rights-of-way \
         (the paper's Laurel, MS and Anaheim–Las Vegas cases)",
        report.pipeline_explained
    );
}

/// Figure 6: sharing bars + ISP ranking.
pub fn print_fig6() {
    let s = study();
    let rm = s.risk_matrix();
    hr("Figure 6 (top) — conduits shared by at least k ISPs");
    let bars = conduits_shared_by_at_least(&rm);
    for (i, n) in bars.iter().enumerate() {
        println!("k={:<3} {:>4} {}", i + 1, n, "#".repeat(n / 6));
    }
    println!(
        "shared by >=2: {:.2} % (paper 89.67), >=3: {:.2} % (63.28), >=4: {:.2} % (53.50)",
        sharing_fraction(&rm, 2) * 100.0,
        sharing_fraction(&rm, 3) * 100.0,
        sharing_fraction(&rm, 4) * 100.0
    );
    let heavy = rm.shared.iter().filter(|&&c| c > 17).count();
    println!("conduits shared by >17 ISPs: {heavy} (paper: 12)");

    hr("Figure 6 (ranking) — ISPs by average shared risk");
    println!(
        "{:<18} {:>6} {:>8} {:>6} {:>6} {:>9}",
        "ISP", "mean", "stderr", "p25", "p75", "conduits"
    );
    for r in isp_sharing_ranking(&rm) {
        println!(
            "{:<18} {:>6.2} {:>8.3} {:>6.1} {:>6.1} {:>9}",
            r.isp, r.mean, r.std_error, r.p25, r.p75, r.conduits
        );
    }
    println!("(paper order: Suddenlink lowest, then EarthLink, Level 3; DT/NTT/XO highest)");
}

/// Figure 7: raw shared-conduit counts.
pub fn print_fig7() {
    let s = study();
    let rm = s.risk_matrix();
    hr("Figure 7 — raw number of shared conduits per ISP");
    for (isp, n) in raw_shared_conduits(&rm) {
        println!("{isp:<18} {n:>4} {}", "#".repeat(n / 6));
    }
}

/// Figure 8: Hamming heat map.
pub fn print_fig8() {
    let s = study();
    let rm = s.risk_matrix();
    let hm = hamming_heatmap(&rm);
    hr("Figure 8 — Hamming distance between ISP risk profiles");
    // Compact matrix: initials on columns.
    print!("{:<18}", "");
    for isp in &hm.isps {
        print!("{:>5}", &isp[..3.min(isp.len())]);
    }
    println!();
    for (i, isp) in hm.isps.iter().enumerate() {
        print!("{isp:<18}");
        for j in 0..hm.isps.len() {
            print!("{:>5}", hm.distance[i][j]);
        }
        println!();
    }
    println!("\nmean profile distance (low = exposed like the field):");
    for (isp, d) in hm.mean_distances().iter().take(6) {
        println!("  {isp:<18} {d:.1}");
    }
    if let Some((a, b, d)) = hm.most_similar_pair() {
        println!("most similar pair: {a} / {b} (distance {d})");
    }
}

/// Figure 9: the tenant-count CDFs before/after the traceroute overlay.
pub fn print_fig9() {
    let s = study();
    let (_, ov) = overlay(probe_count());
    let tr = traffic_risk(&s.built.map, ov);
    hr("Figure 9 — CDF of ISPs per conduit, map vs traceroute-overlaid");
    println!("{:>4} {:>10} {:>10}", "k", "map", "overlaid");
    for k in [1usize, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20, 24, 28] {
        println!(
            "{:>4} {:>10.3} {:>10.3}",
            k,
            tr.map_only.at(k),
            tr.with_traffic.at(k)
        );
    }
    println!(
        "means: {:.2} → {:.2} (risk only grows when traffic is considered)",
        tr.map_only.mean(),
        tr.with_traffic.mean()
    );
}

/// Tables 2/3: top conduits by probe frequency and direction.
pub fn print_tab2_tab3() {
    let s = study();
    let (campaign, ov) = overlay(probe_count());
    println!(
        "\ncampaign: {} traceroutes routed, {} overlaid (paper: 4.9 M probes)",
        campaign.traces.len(),
        ov.overlaid
    );
    for (dir, label) in [
        (Direction::WestToEast, "Table 2 — west-origin east-bound"),
        (Direction::EastToWest, "Table 3 — east-origin west-bound"),
    ] {
        hr(label);
        for row in ov.top_conduits(&s.built.map, Some(dir), 20) {
            println!("{:<24} {:<24} {:>8}", row.a, row.b, row.probes);
        }
    }
}

/// Table 4: ISPs by conduits carrying probe traffic.
pub fn print_tab4() {
    let (_, ov) = overlay(probe_count());
    hr("Table 4 — top ISPs by number of conduits carrying probe traffic");
    let ranking = ov.isp_usage_ranking();
    for (isp, n) in ranking.iter().take(10) {
        println!("{isp:<24} {n:>4}");
    }
    // The paper's headline comparisons.
    let get = |name: &str| {
        ranking
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(0)
    };
    println!(
        "\nLevel 3: {} conduits (paper: most used, 62); XO: {} (paper: ~25 % of Level 3)",
        get("Level 3"),
        get("XO")
    );
}

/// Figure 10 + Table 5: robustness suggestion outcomes.
pub fn print_fig10_tab5() {
    let s = study();
    let report = s.robustness(12);
    hr("Figure 10 — path inflation & shared-risk reduction (12 heavy links)");
    println!(
        "{:<18} {:>5} {:>7} {:>7} {:>7} {:>8} {:>8} {:>8}",
        "ISP", "cases", "maxPI", "minPI", "avgPI", "maxSRR", "minSRR", "avgSRR"
    );
    for r in &report.per_isp {
        println!(
            "{:<18} {:>5} {:>7.1} {:>7.1} {:>7.1} {:>8.1} {:>8.1} {:>8.1}",
            r.isp, r.cases, r.max_pi, r.min_pi, r.avg_pi, r.max_srr, r.min_srr, r.avg_srr
        );
    }
    println!("(paper: adding 1–2 conduits per ISP captures most of the SRR)");
    hr("Table 5 — top-3 suggested peerings per ISP");
    for (isp, peers) in &report.peering {
        if !peers.is_empty() {
            println!("{isp:<18} {}", peers.join(" | "));
        }
    }
    let rm = s.risk_matrix();
    println!(
        "\nwhole-network scan: {:.1} % of conduits already on min-shared-risk routes \
         (paper: most existing paths already best)",
        intertubes::mitigation::already_optimal_fraction(&s.built.map, &rm) * 100.0
    );
}

/// Figure 11: augmentation improvement ratios.
pub fn print_fig11() {
    let s = study();
    let report = s.augmentation();
    hr("Figure 11 — improvement ratio vs number of added conduits");
    let k = report.added.len();
    println!("additions: {k} (greedy, eq. 2)");
    for (i, a) in report.added.iter().enumerate() {
        println!(
            "  k={:<2} {:<22} — {:<22} {:>5.0} km ROW",
            i + 1,
            a.a,
            a.b,
            a.row_km
        );
    }
    println!(
        "\n{:<18} {}",
        "ISP",
        (1..=k).map(|i| format!("  k={i:<2}")).collect::<String>()
    );
    let mut rows: Vec<(String, Vec<f64>)> = report
        .isps
        .iter()
        .cloned()
        .zip(report.improvement.iter().cloned())
        .collect();
    rows.sort_by(|a, b| {
        b.1.last()
            .unwrap_or(&0.0)
            .total_cmp(a.1.last().unwrap_or(&0.0))
    });
    for (isp, series) in rows {
        print!("{isp:<18}");
        for v in series {
            print!("  {v:<4.2}");
        }
        println!();
    }
    println!(
        "(paper shape: Telia/Tata/NTT/DT gain most; Level 3/CenturyLink little; Suddenlink none)"
    );
}

/// Figure 12: the latency CDFs.
pub fn print_fig12() {
    let s = study();
    let report = s.latency();
    hr("Figure 12 — one-way delay CDFs across conduit-joined city pairs");
    let series: [(&str, Vec<f64>); 4] = [
        ("best", report.series_ms(|p| p.best_us)),
        ("LOS", report.series_ms(|p| p.los_us)),
        ("avg", report.series_ms(|p| p.avg_us)),
        ("ROW", report.series_ms(|p| p.row_us)),
    ];
    print!("{:>6}", "ms");
    for (n, _) in &series {
        print!("{n:>8}");
    }
    println!();
    for grid in [0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0] {
        print!("{grid:>6.2}");
        for (_, v) in &series {
            let f = v.partition_point(|&x| x <= grid) as f64 / v.len().max(1) as f64;
            print!("{f:>8.2}");
        }
        println!();
    }
    println!(
        "\nbest existing == best ROW for {:.0} % of pairs (paper: ~65 %)",
        report.best_equals_row_fraction * 100.0
    );
    for q in [0.5, 0.75, 0.9] {
        println!(
            "LOS→ROW gap p{:.0}: {:.0} µs (paper: <100 µs at p50, >500 µs at p75)",
            q * 100.0,
            report.los_row_gap_quantile(q)
        );
    }
}

/// Extension: physical resilience (the §4 future-work "fiber cuts to
/// partition" question).
pub fn print_ext_resilience() {
    let s = study();
    let rm = s.risk_matrix();
    hr("Extension — physical resilience of the constructed map");
    let r = intertubes::risk::map_resilience(&s.built.map);
    println!("connected components: {}", r.components);
    println!(
        "minimum simultaneous conduit cuts to partition the map: {}",
        r.min_cut_conduits
    );
    if !r.min_cut_side.is_empty() {
        let preview: Vec<&str> = r.min_cut_side.iter().take(5).map(String::as_str).collect();
        println!("  smaller shore of that cut: {} …", preview.join(", "));
    }
    println!(
        "bridge conduits (single points of partition): {}",
        r.bridge_conduits.len()
    );
    println!("articulation cities: {}", r.articulation_cities.len());
    println!("\nper-provider sub-networks (components / bridges / min cut):");
    let mut rows = intertubes::risk::isp_resilience(&s.built.map, &rm);
    rows.sort_by(|a, b| b.components.cmp(&a.components).then(a.isp.cmp(&b.isp)));
    for r in rows {
        println!(
            "  {:<18} {:>2} components, {:>3} bridges, min cut {}",
            r.isp, r.components, r.bridges, r.min_cut
        );
    }
}

/// Extension: the §6.3 link-exchange ("IXP for conduits") economics.
pub fn print_ext_exchange() {
    let s = study();
    let rm = s.risk_matrix();
    let aug = s.augmentation();
    let cfg = intertubes::mitigation::ExchangeConfig::default();
    let report = intertubes::mitigation::exchange_analysis(&rm, &aug, &cfg);
    hr("Extension — link-exchange consortium economics (§6.3)");
    println!(
        "assumptions: {:.0} cost units/km build, {:.0} units per unit of risk relief",
        cfg.cost_per_km, cfg.value_per_srr_unit
    );
    println!(
        "{:<22} {:<22} {:>7} {:>12} {:>9} {:>11}",
        "a", "b", "km", "build cost", "eligible", "break-even"
    );
    for o in &report.offers {
        println!(
            "{:<22} {:<22} {:>7.0} {:>12.0} {:>9} {:>11}",
            o.a,
            o.b,
            o.row_km,
            o.total_cost,
            o.eligible,
            o.break_even_members
                .map_or("—".to_string(), |n| n.to_string())
        );
    }
    let viable = report.viable().count();
    println!(
        "\n{viable} of {} candidate trenches close unsubsidised — the consortium \
         model funds the chokepoint relief the paper argues for",
        report.offers.len()
    );
}

/// Convenience: the risk matrix of the reference study.
pub fn risk_matrix() -> RiskMatrix {
    study().risk_matrix()
}

/// Every experiment id the harness understands.
pub const EXPERIMENTS: &[&str] = &[
    "tab1",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "fig8",
    "fig9",
    "tab2",
    "tab3",
    "tab4",
    "fig10",
    "tab5",
    "fig11",
    "fig12",
    "ext-resilience",
    "ext-exchange",
];

#[cfg(test)]
mod tests {
    use super::overlay;

    #[test]
    fn overlay_cache_is_keyed_by_probe_count() {
        let (small_campaign, _) = overlay(500);
        let (large_campaign, _) = overlay(2_000);
        assert!(
            small_campaign.traces.len() < large_campaign.traces.len(),
            "distinct probe counts must produce distinct campaigns \
             ({} vs {})",
            small_campaign.traces.len(),
            large_campaign.traces.len()
        );
        // Repeat lookups hit the cache: same allocation, not a rebuild.
        assert!(std::ptr::eq(small_campaign, &overlay(500).0));
    }
}

/// Runs one experiment by id.
pub fn run(id: &str) {
    match id {
        "tab1" => print_tab1(),
        "fig1" => print_fig1(),
        "fig2" | "fig3" => print_fig2_fig3(),
        "fig4" => print_fig4(),
        "fig5" => print_fig5(),
        "fig6" => print_fig6(),
        "fig7" => print_fig7(),
        "fig8" => print_fig8(),
        "fig9" => print_fig9(),
        "tab2" | "tab3" => print_tab2_tab3(),
        "tab4" => print_tab4(),
        "fig10" | "tab5" => print_fig10_tab5(),
        "fig11" => print_fig11(),
        "fig12" => print_fig12(),
        "ext-resilience" => print_ext_resilience(),
        "ext-exchange" => print_ext_exchange(),
        other => {
            eprintln!(
                "unknown experiment {other:?}; known: {}",
                EXPERIMENTS.join(", ")
            );
            std::process::exit(2);
        }
    }
}
