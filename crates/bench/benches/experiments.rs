//! Criterion benchmarks — one group per reproduced table/figure, timing the
//! computation that regenerates it (DESIGN.md §3 maps ids to experiments).
//!
//! The expensive one-time setup (world generation, corpus, pipeline,
//! campaign) is shared through `intertubes_bench::study()` / `overlay()`;
//! each bench then measures the experiment's own computation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use intertubes::map::{analyze_colocation, build_map, corridor_index, PipelineConfig};
use intertubes::mitigation::{
    augment, heaviest_conduits, latency_study, robustness_suggestion, AugmentationConfig,
    LatencyConfig,
};
use intertubes::probes::{overlay_campaign, run_campaign, ProbeConfig};
use intertubes::records::{generate_corpus, CorpusConfig};
use intertubes::risk::{
    conduits_shared_by_at_least, hamming_heatmap, isp_sharing_ranking, traffic_risk, RiskMatrix,
};
use intertubes_bench::study;

/// tab1 + fig1: the four-step map-construction pipeline (§2).
fn bench_pipeline(c: &mut Criterion) {
    let s = study();
    let published = s.world.publish_maps();
    let corpus = generate_corpus(&s.world, &CorpusConfig::default());
    c.bench_function("tab1_fig1_build_map_pipeline", |b| {
        b.iter(|| {
            black_box(build_map(
                &published,
                &corpus,
                &s.world.cities,
                &s.world.roads,
                &s.world.rails,
                &PipelineConfig::default(),
            ))
        })
    });
}

/// fig4/fig5: corridor co-location analysis (§3).
fn bench_colocation(c: &mut Criterion) {
    let s = study();
    let idx = corridor_index(&s.world.roads, &s.world.rails, &s.world.pipelines, 5.0).unwrap();
    let params = intertubes::geo::OverlapParams {
        buffer_km: 5.0,
        sample_step_km: 2.0,
    };
    c.bench_function("fig4_colocation", |b| {
        b.iter(|| black_box(analyze_colocation(&s.built.map, &idx, &params, 10).unwrap()))
    });
}

/// fig6/fig7: risk matrix construction and §4.2 metrics.
fn bench_risk_matrix(c: &mut Criterion) {
    let s = study();
    let isps = s.mapped_isp_names();
    c.bench_function("fig6_risk_matrix_build", |b| {
        b.iter(|| black_box(RiskMatrix::build(&s.built.map, &isps)))
    });
    let rm = s.risk_matrix();
    c.bench_function("fig6_sharing_metrics", |b| {
        b.iter(|| {
            black_box(conduits_shared_by_at_least(&rm));
            black_box(isp_sharing_ranking(&rm));
        })
    });
}

/// fig8: Hamming heat map.
fn bench_hamming(c: &mut Criterion) {
    let rm = study().risk_matrix();
    c.bench_function("fig8_hamming_heatmap", |b| {
        b.iter(|| black_box(hamming_heatmap(&rm)))
    });
}

/// fig9 + tab2/3/4: traceroute campaign and overlay (§4.3), swept over
/// campaign sizes.
fn bench_campaign_overlay(c: &mut Criterion) {
    let s = study();
    let mut group = c.benchmark_group("fig9_tab234_campaign");
    group.sample_size(10);
    for probes in [5_000usize, 20_000] {
        group.bench_function(format!("run_campaign_{probes}"), |b| {
            let cfg = ProbeConfig {
                probes,
                ..ProbeConfig::default()
            };
            b.iter(|| black_box(run_campaign(&s.world, &cfg)))
        });
    }
    let campaign = s.campaign(Some(20_000));
    group.bench_function("overlay_20000", |b| {
        b.iter(|| black_box(overlay_campaign(&s.world, &s.built.map, &campaign)))
    });
    let overlay = s.overlay(&campaign);
    group.bench_function("fig9_traffic_risk_cdf", |b| {
        b.iter(|| black_box(traffic_risk(&s.built.map, &overlay)))
    });
    group.finish();
}

/// fig10 + tab5: robustness suggestion over the 12 heavy links (§5.1).
fn bench_robustness(c: &mut Criterion) {
    let s = study();
    let rm = s.risk_matrix();
    let heavy = heaviest_conduits(&rm, 12);
    c.bench_function("fig10_tab5_robustness_suggestion", |b| {
        b.iter(|| black_box(robustness_suggestion(&s.built.map, &rm, &heavy)))
    });
}

/// fig11: greedy conduit augmentation (§5.2).
fn bench_augmentation(c: &mut Criterion) {
    let s = study();
    let rm = s.risk_matrix();
    c.bench_function("fig11_augmentation_k10", |b| {
        b.iter_batched(
            || rm.clone(),
            |rm| {
                black_box(augment(
                    &s.built.map,
                    &rm,
                    &s.world.cities,
                    &s.world.roads,
                    &AugmentationConfig::default(),
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

/// fig12: the latency study (§5.3).
fn bench_latency(c: &mut Criterion) {
    let s = study();
    let mut group = c.benchmark_group("fig12_latency");
    group.sample_size(10);
    group.bench_function("latency_study_k4", |b| {
        b.iter(|| {
            black_box(latency_study(
                &s.built.map,
                &s.world.cities,
                &s.world.roads,
                &s.world.rails,
                &LatencyConfig::default(),
            ))
        })
    });
    group.finish();
}

/// Substrate microbenches: the primitives everything above leans on.
fn bench_substrates(c: &mut Criterion) {
    let s = study();
    let graph = s.built.map.graph();
    let km = |e: intertubes::graph::EdgeId| {
        s.built.map.conduits[graph.edge(e).index()]
            .geometry
            .length_km()
    };
    c.bench_function("substrate_dijkstra_map", |b| {
        b.iter(|| {
            black_box(
                intertubes::graph::dijkstra(
                    &graph,
                    intertubes::graph::NodeId(0),
                    intertubes::graph::NodeId((graph.node_count() - 1) as u32),
                    km,
                )
                .unwrap(),
            )
        })
    });
    c.bench_function("substrate_yen_k4", |b| {
        b.iter(|| {
            black_box(
                intertubes::graph::yen_k_shortest(
                    &graph,
                    intertubes::graph::NodeId(0),
                    intertubes::graph::NodeId((graph.node_count() / 2) as u32),
                    4,
                    km,
                )
                .unwrap(),
            )
        })
    });
    c.bench_function("substrate_stoer_wagner_min_cut", |b| {
        b.iter(|| black_box(intertubes::graph::stoer_wagner_min_cut(&graph, |_| 1.0)))
    });
    let a = intertubes::geo::GeoPoint::new_unchecked(40.71, -74.01);
    let bpt = intertubes::geo::GeoPoint::new_unchecked(34.05, -118.24);
    c.bench_function("substrate_haversine", |b| {
        b.iter(|| black_box(intertubes::geo::haversine_km(&a, &bpt)))
    });
}

/// World generation end to end (the synthetic-substrate cost itself).
fn bench_world(c: &mut Criterion) {
    let mut group = c.benchmark_group("world_generation");
    group.sample_size(10);
    group.bench_function("generate_reference_world", |b| {
        b.iter(|| black_box(intertubes::atlas::World::reference()))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_colocation,
    bench_risk_matrix,
    bench_hamming,
    bench_campaign_overlay,
    bench_robustness,
    bench_augmentation,
    bench_latency,
    bench_substrates,
    bench_world,
);
criterion_main!(benches);
