//! Ablation benchmarks for the design choices DESIGN.md calls out:
//!
//! * spatial-grid cell size (and grid vs brute force) for the corridor
//!   overlap analysis,
//! * geometry-cluster threshold for conduit identification,
//! * Yen's k for the "average existing path" series,
//! * campaign noise parameters' cost impact.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use intertubes::geo::{
    CorridorIndex, CorridorLayer, GeoPoint, LocalProjection, OverlapParams, Polyline, SegmentGrid,
};
use intertubes::map::{build_map, PipelineConfig};
use intertubes::probes::{run_campaign, ProbeConfig};
use intertubes::records::{generate_corpus, CorpusConfig};
use intertubes_bench::study;

/// Grid cell-size ablation for the co-location query load.
fn bench_grid_cell_size(c: &mut Criterion) {
    let s = study();
    let mut group = c.benchmark_group("ablation_grid_cell_km");
    group.sample_size(10);
    for cell_km in [2.0, 5.0, 15.0, 40.0] {
        let mut idx = CorridorIndex::new(cell_km).unwrap();
        for (tag, g) in s.world.roads.geometries() {
            idx.add_corridor(CorridorLayer::Road, g, tag);
        }
        let params = OverlapParams {
            buffer_km: 5.0,
            sample_step_km: 2.0,
        };
        let routes: Vec<&Polyline> = s
            .built
            .map
            .conduits
            .iter()
            .take(60)
            .map(|c| &c.geometry)
            .collect();
        group.bench_function(format!("cell_{cell_km}km"), |b| {
            b.iter(|| {
                for r in &routes {
                    black_box(idx.colocation(r, &params).unwrap());
                }
            })
        });
    }
    group.finish();
}

/// Grid vs brute force for nearest-segment queries.
fn bench_grid_vs_brute(c: &mut Criterion) {
    let s = study();
    // Index every road segment once.
    let mut grid = SegmentGrid::new(5.0).unwrap();
    let mut segments: Vec<(GeoPoint, GeoPoint)> = Vec::new();
    for (tag, g) in s.world.roads.geometries() {
        grid.insert_polyline(g, tag);
        for (a, b) in g.segments() {
            segments.push((*a, *b));
        }
    }
    let queries: Vec<GeoPoint> = s
        .world
        .cities
        .iter()
        .take(64)
        .map(|city| city.location)
        .collect();
    let mut group = c.benchmark_group("ablation_grid_vs_brute");
    group.bench_function("grid_nearest_within_10km", |b| {
        b.iter(|| {
            for q in &queries {
                black_box(grid.nearest_within(q, 10.0));
            }
        })
    });
    group.sample_size(10);
    group.bench_function("brute_nearest_within_10km", |b| {
        b.iter(|| {
            for q in &queries {
                let proj = LocalProjection::new(*q);
                let best = segments
                    .iter()
                    .map(|(a, bseg)| proj.point_segment_distance_km(q, a, bseg))
                    .fold(f64::INFINITY, f64::min);
                black_box(best);
            }
        })
    });
    group.finish();
}

/// Cluster-threshold ablation: construction cost and resulting conduit
/// count at different merge thresholds.
fn bench_cluster_threshold(c: &mut Criterion) {
    let s = study();
    let published = s.world.publish_maps();
    let corpus = generate_corpus(&s.world, &CorpusConfig::default());
    let mut group = c.benchmark_group("ablation_cluster_km");
    group.sample_size(10);
    for cluster_km in [0.5, 2.5, 10.0] {
        group.bench_function(format!("cluster_{cluster_km}km"), |b| {
            let cfg = PipelineConfig {
                cluster_km,
                ..PipelineConfig::default()
            };
            b.iter(|| {
                black_box(build_map(
                    &published,
                    &corpus,
                    &s.world.cities,
                    &s.world.roads,
                    &s.world.rails,
                    &cfg,
                ))
            })
        });
    }
    group.finish();
}

/// Yen k ablation: the cost of widening the "existing paths" sample.
fn bench_yen_k(c: &mut Criterion) {
    let s = study();
    let graph = s.built.map.graph();
    let km = |e: intertubes::graph::EdgeId| {
        s.built.map.conduits[graph.edge(e).index()]
            .geometry
            .length_km()
    };
    let src = intertubes::graph::NodeId(0);
    let dst = intertubes::graph::NodeId((graph.node_count() / 2) as u32);
    let mut group = c.benchmark_group("ablation_yen_k");
    for k in [1usize, 2, 4, 8] {
        group.bench_function(format!("k_{k}"), |b| {
            b.iter(|| {
                black_box(intertubes::graph::yen_k_shortest(&graph, src, dst, k, km).unwrap())
            })
        });
    }
    group.finish();
}

/// Campaign noise ablation: MPLS and geolocation noise barely change the
/// simulation cost; retries for unroutable combinations dominate.
fn bench_campaign_noise(c: &mut Criterion) {
    let s = study();
    let mut group = c.benchmark_group("ablation_campaign_noise");
    group.sample_size(10);
    for (name, cfg) in [
        (
            "clean",
            ProbeConfig {
                probes: 5_000,
                mpls_rate: 0.0,
                geolocation_failure_rate: 0.0,
                ..ProbeConfig::default()
            },
        ),
        (
            "default",
            ProbeConfig {
                probes: 5_000,
                ..ProbeConfig::default()
            },
        ),
        (
            "noisy",
            ProbeConfig {
                probes: 5_000,
                mpls_rate: 0.6,
                geolocation_failure_rate: 0.4,
                ..ProbeConfig::default()
            },
        ),
    ] {
        group.bench_function(name, |b| b.iter(|| black_box(run_campaign(&s.world, &cfg))));
    }
    group.finish();
}

criterion_group!(
    ablation,
    bench_grid_cell_size,
    bench_grid_vs_brute,
    bench_cluster_threshold,
    bench_yen_k,
    bench_campaign_noise,
);
criterion_main!(ablation);
