//! Serial-vs-parallel Criterion benches for the four rayon-backed hot
//! paths (DESIGN.md §7). Each stage is timed twice: pinned to one thread
//! (the serial baseline — the fan-outs short-circuit to inline loops) and
//! at the session's default thread count. `scripts/bench_gate.sh` runs the
//! same stages through `bench_parallel` and records the speedups in
//! BENCH_parallel.json.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use intertubes::map::{build_map, PipelineConfig};
use intertubes::mitigation::latency_study;
use intertubes::parallel::{thread_count, with_threads};
use intertubes::probes::overlay_campaign;
use intertubes::risk::{hamming_heatmap, RiskMatrix};
use intertubes_bench::study;

/// Threads for the "parallel" arm: the environment's resolved count, but
/// at least 2 so the comparison is meaningful on single-core boxes.
fn parallel_threads() -> usize {
    thread_count().max(2)
}

fn bench_stage<R>(c: &mut Criterion, stage: &str, mut run: impl FnMut() -> R) {
    let mut group = c.benchmark_group(stage);
    group.bench_function("serial_1_thread", |b| {
        b.iter(|| with_threads(1, || black_box(run())))
    });
    group.bench_function(format!("parallel_{}_threads", parallel_threads()), |b| {
        b.iter(|| with_threads(parallel_threads(), || black_box(run())))
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let s = study();
    let published = s.world.publish_maps();
    bench_stage(c, "parallel_pipeline", || {
        build_map(
            &published,
            &s.corpus,
            &s.world.cities,
            &s.world.roads,
            &s.world.rails,
            &PipelineConfig::default(),
        )
    });
}

fn bench_overlay(c: &mut Criterion) {
    let s = study();
    let campaign = s.campaign(Some(10_000));
    bench_stage(c, "parallel_overlay", || {
        overlay_campaign(&s.world, &s.built.map, &campaign)
    });
}

fn bench_risk(c: &mut Criterion) {
    let s = study();
    let isps = s.mapped_isp_names();
    bench_stage(c, "parallel_risk_hamming", || {
        let rm = RiskMatrix::build(&s.built.map, &isps);
        hamming_heatmap(&rm)
    });
}

fn bench_paths(c: &mut Criterion) {
    let s = study();
    bench_stage(c, "parallel_latency_paths", || {
        latency_study(
            &s.built.map,
            &s.world.cities,
            &s.world.roads,
            &s.world.rails,
            &s.config.latency,
        )
    });
}

criterion_group!(
    benches,
    bench_pipeline,
    bench_overlay,
    bench_risk,
    bench_paths
);
criterion_main!(benches);
