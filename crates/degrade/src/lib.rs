//! Graceful-degradation bookkeeping shared by every pipeline stage.
//!
//! The paper's map construction (§2) is an exercise in surviving dirty
//! data: incomplete public records, non-geocoded ISP maps, noisy
//! traceroutes. This crate gives every consuming layer a common vocabulary
//! for *what it did about* dirty input:
//!
//! * [`DegradationPolicy`] — should a stage fail fast (`Strict`) or repair /
//!   drop and continue (`Lenient`)?
//! * [`DegradationEvent`] — one aggregated observation: a stage dropped,
//!   repaired, or left unvalidated some number of items for a reason.
//! * [`DegradationReport`] — the ordered collection of events a run emits,
//!   with counting helpers used by the CLI (stderr rendering) and by tests
//!   that match drop/repair counts against injected fault counts.
//!
//! The crate sits below `atlas`/`records`/`probes` in the dependency graph
//! so that both the fault-injection harness and the hardened pipeline
//! stages can speak the same types without cycles.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// How a pipeline stage should respond to malformed input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum DegradationPolicy {
    /// Abort with an error on the first malformed item.
    Strict,
    /// Repair or drop malformed items, record what happened, and continue.
    /// This is the default: it matches the paper's methodology of building
    /// the best map the evidence supports.
    #[default]
    Lenient,
}

impl DegradationPolicy {
    /// Whether this policy aborts on malformed input.
    pub fn is_strict(self) -> bool {
        matches!(self, DegradationPolicy::Strict)
    }
}

impl std::fmt::Display for DegradationPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradationPolicy::Strict => write!(f, "strict"),
            DegradationPolicy::Lenient => write!(f, "lenient"),
        }
    }
}

/// What a stage did with the malformed items of one kind.
///
/// The `Ord` impl (variant order) is part of the report's canonical event
/// ordering — see [`DegradationReport::note`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum DegradationAction {
    /// Items were removed from the dataset.
    Dropped,
    /// Items were modified into a usable form (e.g. clamped coordinates,
    /// regenerated geometry) and kept.
    Repaired,
    /// Items were kept as-is but excluded from validation / corroboration,
    /// lowering confidence rather than coverage.
    Unvalidated,
}

impl std::fmt::Display for DegradationAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DegradationAction::Dropped => write!(f, "dropped"),
            DegradationAction::Repaired => write!(f, "repaired"),
            DegradationAction::Unvalidated => write!(f, "unvalidated"),
        }
    }
}

/// One aggregated degradation observation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DegradationEvent {
    /// Pipeline stage that observed the problem (e.g. `"map.step1"`,
    /// `"overlay"`).
    pub stage: String,
    /// What was done about it.
    pub action: DegradationAction,
    /// Stable machine-readable reason (e.g. `"invalid-coordinate"`).
    pub reason: String,
    /// Number of affected items.
    pub count: usize,
}

/// The canonical degradation log of one pipeline run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DegradationReport {
    /// Aggregated events, kept sorted by (stage, action, reason).
    pub events: Vec<DegradationEvent>,
}

impl DegradationReport {
    /// Creates an empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `count` items handled at `stage` via `action` for `reason`.
    /// A zero count is a no-op; repeated observations with the same
    /// (stage, action, reason) key aggregate into one event.
    ///
    /// Events are kept sorted by (stage, action, reason), so a report's
    /// content depends only on the multiset of observations — never on the
    /// order stages (or parallel shards) happened to record them. This
    /// makes [`DegradationReport::merge`] associative and commutative, a
    /// requirement of the parallel determinism contract (DESIGN.md §7).
    pub fn note(&mut self, stage: &str, action: DegradationAction, reason: &str, count: usize) {
        if count == 0 {
            return;
        }
        let key = (stage, action, reason);
        match self
            .events
            .binary_search_by(|ev| (ev.stage.as_str(), ev.action, ev.reason.as_str()).cmp(&key))
        {
            Ok(i) => self.events[i].count += count,
            Err(i) => self.events.insert(
                i,
                DegradationEvent {
                    stage: stage.to_string(),
                    action,
                    reason: reason.to_string(),
                    count,
                },
            ),
        }
    }

    /// Folds all events of `other` into `self` (aggregating same keys).
    ///
    /// Order-independent: `a.merge(b)` and `b.merge(a)` produce equal
    /// reports, and any grouping of shard reports merges to the same
    /// result.
    pub fn merge(&mut self, other: DegradationReport) {
        for ev in other.events {
            self.note(&ev.stage, ev.action, &ev.reason, ev.count);
        }
    }

    /// Whether no degradation was observed (clean input).
    pub fn is_clean(&self) -> bool {
        self.events.is_empty()
    }

    /// Total items subjected to `action` across all stages.
    pub fn total(&self, action: DegradationAction) -> usize {
        self.events
            .iter()
            .filter(|e| e.action == action)
            .map(|e| e.count)
            .sum()
    }

    /// Total items recorded under `reason` (any stage / action).
    pub fn total_for_reason(&self, reason: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.reason == reason)
            .map(|e| e.count)
            .sum()
    }

    /// Total items recorded at `stage` (any action / reason).
    pub fn total_for_stage(&self, stage: &str) -> usize {
        self.events
            .iter()
            .filter(|e| e.stage == stage)
            .map(|e| e.count)
            .sum()
    }

    /// Emits one structured observability event per aggregated degradation
    /// event (no-op outside an `intertubes-obs` session).
    ///
    /// Call from serial code only, after the final shard merge: the report
    /// itself is order-canonical, so emitting it once from the driving
    /// thread keeps the event log identical at every thread count.
    pub fn emit_events(&self) {
        use intertubes_obs::{FieldValue, Level};
        for ev in &self.events {
            intertubes_obs::event(
                Level::Warn,
                "degrade",
                &format!("{} {} {} ({})", ev.stage, ev.action, ev.count, ev.reason),
                &[
                    ("stage", FieldValue::Str(ev.stage.clone())),
                    ("action", FieldValue::Str(ev.action.to_string())),
                    ("reason", FieldValue::Str(ev.reason.clone())),
                    ("count", FieldValue::U64(ev.count as u64)),
                ],
            );
        }
    }

    /// Human-readable multi-line rendering (used by the CLI on stderr).
    pub fn render(&self) -> String {
        if self.is_clean() {
            return "degradation report: clean (no input problems observed)".to_string();
        }
        let mut out = format!(
            "degradation report: {} dropped, {} repaired, {} unvalidated\n",
            self.total(DegradationAction::Dropped),
            self.total(DegradationAction::Repaired),
            self.total(DegradationAction::Unvalidated),
        );
        for ev in &self.events {
            out.push_str(&format!(
                "  [{}] {} {} ({})\n",
                ev.stage, ev.action, ev.count, ev.reason
            ));
        }
        out.pop();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn notes_aggregate_by_key() {
        let mut r = DegradationReport::new();
        r.note("map.step1", DegradationAction::Dropped, "invalid-coordinate", 2);
        r.note("map.step1", DegradationAction::Dropped, "invalid-coordinate", 3);
        r.note("map.step1", DegradationAction::Repaired, "invalid-coordinate", 1);
        r.note("overlay", DegradationAction::Dropped, "unroutable", 0);
        assert_eq!(r.events.len(), 2);
        assert_eq!(r.total(DegradationAction::Dropped), 5);
        assert_eq!(r.total(DegradationAction::Repaired), 1);
        assert_eq!(r.total_for_reason("invalid-coordinate"), 6);
        assert_eq!(r.total_for_stage("map.step1"), 6);
        assert!(!r.is_clean());
    }

    #[test]
    fn merge_combines_reports() {
        let mut a = DegradationReport::new();
        a.note("x", DegradationAction::Dropped, "r", 1);
        let mut b = DegradationReport::new();
        b.note("x", DegradationAction::Dropped, "r", 2);
        b.note("y", DegradationAction::Unvalidated, "s", 4);
        a.merge(b);
        assert_eq!(a.total(DegradationAction::Dropped), 3);
        assert_eq!(a.total(DegradationAction::Unvalidated), 4);
        assert_eq!(a.events.len(), 2);
    }

    #[test]
    fn render_mentions_every_event() {
        let mut r = DegradationReport::new();
        assert!(r.render().contains("clean"));
        r.note("map.step2", DegradationAction::Unvalidated, "no-evidence", 7);
        let text = r.render();
        assert!(text.contains("map.step2"));
        assert!(text.contains("no-evidence"));
        assert!(text.contains('7'));
    }

    #[test]
    fn merge_is_order_independent() {
        let observations = [
            ("overlay", DegradationAction::Dropped, "unroutable", 3),
            ("map.step1", DegradationAction::Repaired, "geometry", 2),
            ("overlay", DegradationAction::Dropped, "unroutable", 1),
            ("map.step1", DegradationAction::Dropped, "geometry", 5),
        ];
        let mut forward = DegradationReport::new();
        for (s, a, r, c) in observations {
            forward.note(s, a, r, c);
        }
        let mut backward = DegradationReport::new();
        for (s, a, r, c) in observations.into_iter().rev() {
            backward.note(s, a, r, c);
        }
        assert_eq!(forward, backward);
        // Merging in either direction yields the same report too.
        let mut ab = forward.clone();
        ab.merge(backward.clone());
        let mut ba = backward;
        ba.merge(forward);
        assert_eq!(ab, ba);
        // And events come out in canonical key order.
        for w in ab.events.windows(2) {
            assert!(
                (&w[0].stage, w[0].action, &w[0].reason)
                    < (&w[1].stage, w[1].action, &w[1].reason)
            );
        }
    }

    #[test]
    fn policy_round_trips_and_defaults_lenient() {
        assert_eq!(DegradationPolicy::default(), DegradationPolicy::Lenient);
        assert!(DegradationPolicy::Strict.is_strict());
        assert!(!DegradationPolicy::Lenient.is_strict());
        let v = serde::Serialize::to_json_value(&DegradationPolicy::Strict);
        let back: DegradationPolicy = serde::Deserialize::from_json_value(&v).unwrap();
        assert_eq!(back, DegradationPolicy::Strict);
    }
}
