//! Corridor co-location analysis (paper §3, Fig. 4).
//!
//! The paper used ArcGIS "polygon overlap" between fiber routes and the
//! National Atlas road/rail layers to compute, per fiber link, the fraction
//! of the path co-located with transportation infrastructure. We reproduce
//! the computation directly: sample the fiber polyline at a fixed step and
//! test each sample against a buffer around each corridor layer.

use serde::{Deserialize, Serialize};

use crate::{GeoError, Polyline, SegmentGrid};

/// A transportation / right-of-way layer, mirroring the paper's data sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CorridorLayer {
    /// Roadways (National Atlas roadway layer, Fig. 2).
    Road,
    /// Railways (National Atlas railway layer, Fig. 3).
    Rail,
    /// Other rights-of-way: natural gas / refined-products pipelines, which
    /// the paper uses to explain conduits on neither road nor rail (Fig. 5).
    Pipeline,
}

impl CorridorLayer {
    /// All layers, in presentation order.
    pub const ALL: [CorridorLayer; 3] = [
        CorridorLayer::Road,
        CorridorLayer::Rail,
        CorridorLayer::Pipeline,
    ];
}

impl std::fmt::Display for CorridorLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorridorLayer::Road => write!(f, "road"),
            CorridorLayer::Rail => write!(f, "rail"),
            CorridorLayer::Pipeline => write!(f, "pipeline"),
        }
    }
}

/// Parameters of the overlap analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OverlapParams {
    /// Corridor buffer half-width in km. A fiber sample within this distance
    /// of a corridor segment counts as co-located. The paper does not state
    /// its buffer; 5 km absorbs digitization error in both layers.
    pub buffer_km: f64,
    /// Spacing of samples along the fiber route, km.
    pub sample_step_km: f64,
}

impl Default for OverlapParams {
    fn default() -> Self {
        OverlapParams {
            buffer_km: 5.0,
            sample_step_km: 1.0,
        }
    }
}

impl OverlapParams {
    /// Validates that both parameters are strictly positive.
    pub fn validate(&self) -> Result<(), GeoError> {
        if self.buffer_km <= 0.0 || self.buffer_km.is_nan() {
            return Err(GeoError::NonPositiveParameter {
                name: "buffer_km",
                value: self.buffer_km,
            });
        }
        if self.sample_step_km <= 0.0 || self.sample_step_km.is_nan() {
            return Err(GeoError::NonPositiveParameter {
                name: "sample_step_km",
                value: self.sample_step_km,
            });
        }
        Ok(())
    }
}

/// Per-route co-location result: the fraction of route samples lying inside
/// each layer's buffer (the quantity histogrammed in Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ColocationBreakdown {
    /// Fraction co-located with roadways.
    pub road: f64,
    /// Fraction co-located with railways.
    pub rail: f64,
    /// Fraction co-located with roadways or railways ("rail and road" series
    /// in Fig. 4 — the union, per the paper's "some combination" wording).
    pub road_or_rail: f64,
    /// Fraction co-located with pipeline rights-of-way.
    pub pipeline: f64,
    /// Fraction co-located with none of the layers.
    pub unexplained: f64,
    /// Number of samples tested.
    pub samples: usize,
}

/// Spatial index over the corridor layers.
#[derive(Debug, Clone)]
pub struct CorridorIndex {
    road: SegmentGrid,
    rail: SegmentGrid,
    pipeline: SegmentGrid,
}

impl CorridorIndex {
    /// Creates an empty index with grid cells sized to `cell_km`.
    ///
    /// Use a cell size close to the query buffer for best performance.
    pub fn new(cell_km: f64) -> Result<Self, GeoError> {
        Ok(CorridorIndex {
            road: SegmentGrid::new(cell_km)?,
            rail: SegmentGrid::new(cell_km)?,
            pipeline: SegmentGrid::new(cell_km)?,
        })
    }

    fn layer_mut(&mut self, layer: CorridorLayer) -> &mut SegmentGrid {
        match layer {
            CorridorLayer::Road => &mut self.road,
            CorridorLayer::Rail => &mut self.rail,
            CorridorLayer::Pipeline => &mut self.pipeline,
        }
    }

    fn layer(&self, layer: CorridorLayer) -> &SegmentGrid {
        match layer {
            CorridorLayer::Road => &self.road,
            CorridorLayer::Rail => &self.rail,
            CorridorLayer::Pipeline => &self.pipeline,
        }
    }

    /// Adds a corridor polyline to a layer. `tag` identifies the corridor for
    /// nearest-corridor queries (e.g. an index into the caller's edge table).
    pub fn add_corridor(&mut self, layer: CorridorLayer, pl: &Polyline, tag: u32) {
        self.layer_mut(layer).insert_polyline(pl, tag);
    }

    /// Number of indexed segments in `layer`.
    pub fn layer_len(&self, layer: CorridorLayer) -> usize {
        self.layer(layer).len()
    }

    /// The tag of the nearest corridor in `layer` within `radius_km` of the
    /// midpoint-sampled route, or `None`. Used by map-construction step 3 to
    /// snap a logical (POP-to-POP) link onto the closest known right-of-way.
    pub fn nearest_corridor(
        &self,
        layer: CorridorLayer,
        pl: &Polyline,
        radius_km: f64,
    ) -> Option<(u32, f64)> {
        // One bump per query: safe from worker threads (shards merge by
        // addition), and the total is the same at every thread count.
        intertubes_obs::counter("geo.corridor_queries", 1);
        // Score candidate corridors by mean distance over a few route samples.
        let samples = [0.25, 0.5, 0.75].map(|t| pl.point_at_fraction(t));
        let grid = self.layer(layer);
        let mut best: Option<(u32, f64)> = None;
        for s in &samples {
            if let Some(hit) = grid.nearest_within(s, radius_km) {
                if best.map_or(true, |(_, d)| hit.distance_km < d) {
                    best = Some((hit.tag, hit.distance_km));
                }
            }
        }
        best
    }

    /// Computes the co-location breakdown of a fiber route against all
    /// layers (the Fig. 4 statistic).
    pub fn colocation(
        &self,
        route: &Polyline,
        params: &OverlapParams,
    ) -> Result<ColocationBreakdown, GeoError> {
        params.validate()?;
        intertubes_obs::counter("geo.overlap_queries", 1);
        let samples = route.sample_every_km(params.sample_step_km)?;
        let mut road = 0usize;
        let mut rail = 0usize;
        let mut either = 0usize;
        let mut pipe = 0usize;
        let mut none = 0usize;
        for s in &samples {
            let on_road = self.road.any_within(s, params.buffer_km);
            let on_rail = self.rail.any_within(s, params.buffer_km);
            let on_pipe = self.pipeline.any_within(s, params.buffer_km);
            road += on_road as usize;
            rail += on_rail as usize;
            either += (on_road || on_rail) as usize;
            pipe += on_pipe as usize;
            none += (!on_road && !on_rail && !on_pipe) as usize;
        }
        let n = samples.len().max(1) as f64;
        Ok(ColocationBreakdown {
            road: road as f64 / n,
            rail: rail as f64 / n,
            road_or_rail: either as f64 / n,
            pipeline: pipe as f64 / n,
            unexplained: none as f64 / n,
            samples: samples.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GeoPoint;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new_unchecked(lat, lon)
    }

    fn east_west_road() -> Polyline {
        Polyline::straight(p(40.0, -105.0), p(40.0, -100.0))
    }

    #[test]
    fn route_on_road_is_fully_colocated() {
        let mut idx = CorridorIndex::new(5.0).unwrap();
        idx.add_corridor(CorridorLayer::Road, &east_west_road(), 0);
        // Fiber route hugging the road 1 km to the north.
        let route = Polyline::straight(p(40.009, -105.0), p(40.009, -100.0));
        let b = idx.colocation(&route, &OverlapParams::default()).unwrap();
        assert!(b.road > 0.99, "road fraction {}", b.road);
        assert_eq!(b.rail, 0.0);
        assert!((b.road_or_rail - b.road).abs() < 1e-12);
        assert!(b.unexplained < 0.01);
    }

    #[test]
    fn distant_route_is_unexplained() {
        let mut idx = CorridorIndex::new(5.0).unwrap();
        idx.add_corridor(CorridorLayer::Road, &east_west_road(), 0);
        let route = Polyline::straight(p(42.0, -105.0), p(42.0, -100.0));
        let b = idx.colocation(&route, &OverlapParams::default()).unwrap();
        assert_eq!(b.road, 0.0);
        assert_eq!(b.unexplained, 1.0);
    }

    #[test]
    fn partial_overlap_is_fractional() {
        let mut idx = CorridorIndex::new(5.0).unwrap();
        // Road covers only the western half of the route.
        idx.add_corridor(
            CorridorLayer::Road,
            &Polyline::straight(p(40.0, -105.0), p(40.0, -102.5)),
            0,
        );
        let route = Polyline::straight(p(40.0, -105.0), p(40.0, -100.0));
        let b = idx.colocation(&route, &OverlapParams::default()).unwrap();
        assert!(b.road > 0.4 && b.road < 0.6, "road fraction {}", b.road);
    }

    #[test]
    fn union_counts_either_layer() {
        let mut idx = CorridorIndex::new(5.0).unwrap();
        idx.add_corridor(
            CorridorLayer::Road,
            &Polyline::straight(p(40.0, -105.0), p(40.0, -102.5)),
            0,
        );
        idx.add_corridor(
            CorridorLayer::Rail,
            &Polyline::straight(p(40.0, -102.5), p(40.0, -100.0)),
            1,
        );
        let route = Polyline::straight(p(40.0, -105.0), p(40.0, -100.0));
        let b = idx.colocation(&route, &OverlapParams::default()).unwrap();
        assert!(b.road_or_rail > 0.95, "union {}", b.road_or_rail);
        assert!(b.road < 0.65 && b.rail < 0.65);
    }

    #[test]
    fn pipeline_layer_explains_off_road_routes() {
        let mut idx = CorridorIndex::new(5.0).unwrap();
        idx.add_corridor(CorridorLayer::Pipeline, &east_west_road(), 0);
        let route = Polyline::straight(p(40.01, -105.0), p(40.01, -100.0));
        let b = idx.colocation(&route, &OverlapParams::default()).unwrap();
        assert!(b.pipeline > 0.99);
        assert_eq!(b.road_or_rail, 0.0);
        assert!(b.unexplained < 0.01);
    }

    #[test]
    fn nearest_corridor_snaps_to_closest() {
        let mut idx = CorridorIndex::new(5.0).unwrap();
        idx.add_corridor(CorridorLayer::Road, &east_west_road(), 10);
        idx.add_corridor(
            CorridorLayer::Road,
            &Polyline::straight(p(40.5, -105.0), p(40.5, -100.0)),
            11,
        );
        let link = Polyline::straight(p(40.05, -104.0), p(40.05, -101.0));
        let (tag, d) = idx
            .nearest_corridor(CorridorLayer::Road, &link, 60.0)
            .unwrap();
        assert_eq!(tag, 10);
        assert!(d < 7.0);
    }

    #[test]
    fn invalid_params_rejected() {
        let idx = CorridorIndex::new(5.0).unwrap();
        let route = east_west_road();
        let bad = OverlapParams {
            buffer_km: 0.0,
            sample_step_km: 1.0,
        };
        assert!(idx.colocation(&route, &bad).is_err());
        let bad = OverlapParams {
            buffer_km: 5.0,
            sample_step_km: -1.0,
        };
        assert!(idx.colocation(&route, &bad).is_err());
    }
}
