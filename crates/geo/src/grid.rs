//! Uniform spatial hash over polyline segments.
//!
//! The corridor co-location analysis must answer millions of "is there a
//! road/rail segment within *r* km of this point?" queries. A uniform grid
//! keyed on latitude/longitude cells retrieves candidate segments; exact
//! distances are then recomputed with a locally-centered projection, so the
//! grid can be conservative without affecting correctness.

use std::collections::HashMap;

use crate::projection::KM_PER_DEG_LAT;
use crate::{GeoError, GeoPoint, LocalProjection, Polyline};

/// Cosine of the highest CONUS latitude we index (49.5° N). Using the
/// smallest km-per-degree-of-longitude in scope makes longitude cells *at
/// least* `cell_km` wide everywhere, which keeps the neighbourhood search
/// conservative.
const MIN_COS_LAT: f64 = 0.649_448; // cos(49.5°)

#[derive(Debug, Clone)]
struct Segment {
    a: GeoPoint,
    b: GeoPoint,
    tag: u32,
}

/// A candidate segment returned by a radius query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentHit {
    /// Caller-supplied tag identifying the polyline the segment belongs to.
    pub tag: u32,
    /// Exact geodesic distance from the query point to the segment, km.
    pub distance_km: f64,
}

/// Occupancy statistics, useful for tuning the cell size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridStats {
    /// Number of stored segments.
    pub segments: usize,
    /// Number of non-empty cells.
    pub cells: usize,
    /// Mean number of segment references per non-empty cell.
    pub mean_occupancy: f64,
}

/// Spatial hash grid over geographic segments. See the module docs.
#[derive(Debug, Clone)]
pub struct SegmentGrid {
    cell_km: f64,
    deg_lat: f64,
    deg_lon: f64,
    cells: HashMap<(i32, i32), Vec<u32>>,
    segments: Vec<Segment>,
}

impl SegmentGrid {
    /// Maximum stored piece length: segments longer than this are split
    /// along the great circle on insertion.
    pub const DENSIFY_KM: f64 = 20.0;

    /// Creates an empty grid with cells roughly `cell_km` across.
    ///
    /// Queries with `radius_km <= cell_km` inspect only the 3×3
    /// neighbourhood; larger radii expand the search ring accordingly.
    pub fn new(cell_km: f64) -> Result<Self, GeoError> {
        if cell_km <= 0.0 || cell_km.is_nan() {
            return Err(GeoError::NonPositiveParameter {
                name: "cell_km",
                value: cell_km,
            });
        }
        Ok(SegmentGrid {
            cell_km,
            deg_lat: cell_km / KM_PER_DEG_LAT,
            deg_lon: cell_km / (KM_PER_DEG_LAT * MIN_COS_LAT),
            cells: HashMap::new(),
            segments: Vec::new(),
        })
    }

    fn cell_of(&self, p: &GeoPoint) -> (i32, i32) {
        (
            (p.lat / self.deg_lat).floor() as i32,
            (p.lon / self.deg_lon).floor() as i32,
        )
    }

    /// Inserts one segment under `tag`.
    ///
    /// Long segments are split into ≤ [`SegmentGrid::DENSIFY_KM`] great-circle
    /// pieces before storage: distance queries use a locally-centered planar
    /// projection, which is only accurate for short chords near the query
    /// point. Splitting keeps stored geometry on the geodesic and bounds the
    /// planar error to centimeters.
    pub fn insert_segment(&mut self, a: GeoPoint, b: GeoPoint, tag: u32) {
        // Non-finite endpoints would hash into nonsense cells and poison
        // every later distance computation with NaN; refuse them here so a
        // single bad vertex upstream cannot disable the whole index.
        if !a.lat.is_finite() || !a.lon.is_finite() || !b.lat.is_finite() || !b.lon.is_finite() {
            return;
        }
        let d = a.distance_km(&b);
        let pieces = (d / Self::DENSIFY_KM).ceil().max(1.0) as usize;
        let mut prev = a;
        for i in 1..=pieces {
            let next = if i == pieces {
                b
            } else {
                a.interpolate(&b, i as f64 / pieces as f64)
            };
            self.insert_piece(prev, next, tag);
            prev = next;
        }
    }

    fn insert_piece(&mut self, a: GeoPoint, b: GeoPoint, tag: u32) {
        let idx = self.segments.len() as u32;
        self.segments.push(Segment { a, b, tag });
        // Register the piece in every cell it passes through by walking it
        // at half-cell resolution (conservative: a cell is never skipped).
        let d = a.distance_km(&b);
        let steps = (d / (self.cell_km / 2.0)).ceil().max(1.0) as usize;
        let mut last = None;
        for i in 0..=steps {
            let p = a.interpolate(&b, i as f64 / steps as f64);
            let c = self.cell_of(&p);
            if last != Some(c) {
                self.cells.entry(c).or_default().push(idx);
                last = Some(c);
            }
        }
    }

    /// Inserts every segment of `pl` under `tag`.
    pub fn insert_polyline(&mut self, pl: &Polyline, tag: u32) {
        for (a, b) in pl.segments() {
            self.insert_segment(*a, *b, tag);
        }
    }

    fn candidates(&self, p: &GeoPoint, radius_km: f64) -> impl Iterator<Item = &Segment> {
        let rings = (radius_km / self.cell_km).ceil().max(1.0) as i32;
        let (ci, cj) = self.cell_of(p);
        let mut seen: Vec<u32> = Vec::new();
        let ring_cells = (2 * rings as i64 + 1).pow(2);
        if ring_cells > self.cells.len() as i64 {
            // A degenerate query (huge or non-finite radius, far-out-of-range
            // point) would walk an enormous ring neighbourhood; scanning the
            // occupied cells directly is then both faster and bounded.
            for (&(i, j), list) in &self.cells {
                if (i.saturating_sub(ci)).abs() <= rings && (j.saturating_sub(cj)).abs() <= rings {
                    seen.extend_from_slice(list);
                }
            }
        } else {
            for di in -rings..=rings {
                for dj in -rings..=rings {
                    if let Some(list) = self.cells.get(&(ci + di, cj + dj)) {
                        seen.extend_from_slice(list);
                    }
                }
            }
        }
        seen.sort_unstable();
        seen.dedup();
        seen.into_iter()
            // Indexing invariant: every id stored in `cells` was pushed into
            // `segments` by `insert_piece` before registration.
            .map(move |i| &self.segments[i as usize])
            .collect::<Vec<_>>()
            .into_iter()
    }

    /// The closest stored segment within `radius_km` of `p`, if any.
    pub fn nearest_within(&self, p: &GeoPoint, radius_km: f64) -> Option<SegmentHit> {
        let proj = LocalProjection::new(*p);
        let mut best: Option<SegmentHit> = None;
        for seg in self.candidates(p, radius_km) {
            let d = proj.point_segment_distance_km(p, &seg.a, &seg.b);
            if d <= radius_km && best.map_or(true, |b| d < b.distance_km) {
                best = Some(SegmentHit {
                    tag: seg.tag,
                    distance_km: d,
                });
            }
        }
        best
    }

    /// Whether any stored segment lies within `radius_km` of `p`.
    pub fn any_within(&self, p: &GeoPoint, radius_km: f64) -> bool {
        let proj = LocalProjection::new(*p);
        self.candidates(p, radius_km)
            .any(|seg| proj.point_segment_distance_km(p, &seg.a, &seg.b) <= radius_km)
    }

    /// All distinct tags with a segment within `radius_km` of `p`, each with
    /// its minimum distance, unordered.
    pub fn tags_within(&self, p: &GeoPoint, radius_km: f64) -> Vec<SegmentHit> {
        let proj = LocalProjection::new(*p);
        let mut best: HashMap<u32, f64> = HashMap::new();
        for seg in self.candidates(p, radius_km) {
            let d = proj.point_segment_distance_km(p, &seg.a, &seg.b);
            if d <= radius_km {
                let e = best.entry(seg.tag).or_insert(f64::INFINITY);
                if d < *e {
                    *e = d;
                }
            }
        }
        best.into_iter()
            .map(|(tag, distance_km)| SegmentHit { tag, distance_km })
            .collect()
    }

    /// Number of stored pieces (after densification of long segments).
    pub fn len(&self) -> usize {
        self.segments.len()
    }

    /// Whether the grid holds no segments.
    pub fn is_empty(&self) -> bool {
        self.segments.is_empty()
    }

    /// Occupancy statistics.
    pub fn stats(&self) -> GridStats {
        let refs: usize = self.cells.values().map(Vec::len).sum();
        GridStats {
            segments: self.segments.len(),
            cells: self.cells.len(),
            mean_occupancy: if self.cells.is_empty() {
                0.0
            } else {
                refs as f64 / self.cells.len() as f64
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new_unchecked(lat, lon)
    }

    #[test]
    fn rejects_bad_cell_size() {
        assert!(SegmentGrid::new(0.0).is_err());
        assert!(SegmentGrid::new(-3.0).is_err());
        assert!(SegmentGrid::new(f64::NAN).is_err());
    }

    #[test]
    fn finds_nearby_segment() {
        let mut g = SegmentGrid::new(5.0).unwrap();
        g.insert_segment(p(40.0, -100.0), p(40.0, -99.0), 7);
        // ~1.1 km north of the segment's interior.
        let q = p(40.01, -99.5);
        let hit = g.nearest_within(&q, 5.0).expect("should find the segment");
        assert_eq!(hit.tag, 7);
        assert!(hit.distance_km < 2.0, "{}", hit.distance_km);
        assert!(g.any_within(&q, 5.0));
    }

    #[test]
    fn misses_far_segment() {
        let mut g = SegmentGrid::new(5.0).unwrap();
        g.insert_segment(p(40.0, -100.0), p(40.0, -99.0), 7);
        // ~55 km north.
        let q = p(40.5, -99.5);
        assert!(g.nearest_within(&q, 5.0).is_none());
        assert!(!g.any_within(&q, 5.0));
    }

    #[test]
    fn large_radius_expands_search() {
        let mut g = SegmentGrid::new(5.0).unwrap();
        g.insert_segment(p(40.0, -100.0), p(40.0, -99.0), 7);
        let q = p(40.5, -99.5); // ~55 km away
        let hit = g
            .nearest_within(&q, 60.0)
            .expect("should reach with big radius");
        assert!((hit.distance_km - 55.6).abs() < 2.0, "{}", hit.distance_km);
    }

    #[test]
    fn nearest_picks_the_closer_of_two() {
        let mut g = SegmentGrid::new(5.0).unwrap();
        g.insert_segment(p(40.0, -100.0), p(40.0, -99.0), 1);
        g.insert_segment(p(40.2, -100.0), p(40.2, -99.0), 2);
        let q = p(40.05, -99.5);
        let hit = g.nearest_within(&q, 50.0).unwrap();
        assert_eq!(hit.tag, 1);
    }

    #[test]
    fn tags_within_reports_each_tag_once() {
        let mut g = SegmentGrid::new(5.0).unwrap();
        let pl = Polyline::new(vec![p(40.0, -100.0), p(40.0, -99.5), p(40.0, -99.0)]).unwrap();
        g.insert_polyline(&pl, 3);
        g.insert_segment(p(40.02, -99.7), p(40.02, -99.6), 4);
        let hits = g.tags_within(&p(40.01, -99.65), 10.0);
        let mut tags: Vec<u32> = hits.iter().map(|h| h.tag).collect();
        tags.sort_unstable();
        assert_eq!(tags, vec![3, 4]);
    }

    #[test]
    fn long_segment_is_findable_along_its_whole_length() {
        let mut g = SegmentGrid::new(5.0).unwrap();
        // 500+ km segment; rasterization must cover all intermediate cells.
        g.insert_segment(p(40.0, -105.0), p(40.0, -99.0), 9);
        for lon in [-104.7, -103.0, -101.3, -99.2] {
            let q = p(40.02, lon);
            assert!(g.any_within(&q, 5.0), "miss at lon {lon}");
        }
    }

    #[test]
    fn stats_reflect_contents() {
        let mut g = SegmentGrid::new(10.0).unwrap();
        assert!(g.is_empty());
        g.insert_segment(p(40.0, -100.0), p(40.0, -99.0), 0);
        let s = g.stats();
        // An ~85 km segment is stored as ceil(85/20) = 5 densified pieces.
        assert_eq!(s.segments, 5);
        assert!(
            s.cells >= 8,
            "a ~85 km segment should span several 10 km cells"
        );
        assert!(!g.is_empty());
        assert_eq!(g.len(), 5);
    }
}
