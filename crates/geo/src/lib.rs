//! Geospatial substrate for the InterTubes reproduction.
//!
//! The paper's geographic analysis (fiber-route lengths, right-of-way
//! co-location, line-of-sight lower bounds) was performed with commercial GIS
//! tooling (ArcGIS). This crate implements the required subset from scratch:
//!
//! * [`GeoPoint`] — WGS84 latitude/longitude positions with geodesic
//!   (haversine) distances and destination-point math.
//! * [`Polyline`] — geographic paths (fiber routes, roads, rails) with
//!   length, resampling and interpolation.
//! * [`LocalProjection`] — an equirectangular projection for accurate local
//!   (≤ ~100 km) planar computations such as point-to-segment distance.
//! * [`SegmentGrid`] — a uniform spatial hash over polyline segments for
//!   radius queries; the grid only retrieves candidates, exact distances are
//!   always recomputed geodesically, so index error never leaks into results.
//! * [`CorridorIndex`] — the paper's "polygon overlap" analysis (§3, Fig. 4):
//!   the fraction of a fiber route lying within a buffer of a transport
//!   corridor layer (road / rail / pipeline).
//! * Latency constants and helpers (§5.3): propagation delay along fiber at
//!   4.9 µs/km, consistent with the paper's "100 µs ≈ 20 km".
//!
//! All angles are degrees externally and radians internally. Distances are
//! kilometers, delays are microseconds.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bbox;
mod distance;
mod grid;
mod overlap;
mod point;
mod polyline;
mod projection;

pub use bbox::BoundingBox;
pub use distance::{
    fiber_delay_us, haversine_km, los_delay_us, EARTH_RADIUS_KM, FIBER_US_PER_KM,
    SPEED_OF_LIGHT_KM_PER_S,
};
pub use grid::{GridStats, SegmentGrid, SegmentHit};
pub use overlap::{ColocationBreakdown, CorridorIndex, CorridorLayer, OverlapParams};
pub use point::{point_in_ring, GeoPoint};
pub use polyline::Polyline;
pub use projection::LocalProjection;

/// Errors produced by geometric constructors and queries.
#[derive(Debug, Clone, PartialEq)]
pub enum GeoError {
    /// A latitude outside [-90, 90] or longitude outside [-180, 180].
    InvalidCoordinate {
        /// Offending latitude in degrees.
        lat: f64,
        /// Offending longitude in degrees.
        lon: f64,
    },
    /// A polyline needs at least two points.
    DegeneratePolyline {
        /// Number of points supplied.
        points: usize,
    },
    /// A parameter (buffer width, sample step, …) must be strictly positive.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Supplied value.
        value: f64,
    },
}

impl std::fmt::Display for GeoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeoError::InvalidCoordinate { lat, lon } => {
                write!(f, "invalid coordinate: lat={lat}, lon={lon}")
            }
            GeoError::DegeneratePolyline { points } => {
                write!(f, "polyline needs at least 2 points, got {points}")
            }
            GeoError::NonPositiveParameter { name, value } => {
                write!(f, "parameter `{name}` must be > 0, got {value}")
            }
        }
    }
}

impl std::error::Error for GeoError {}
