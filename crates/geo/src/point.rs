use serde::{Deserialize, Serialize};

use crate::{haversine_km, GeoError, EARTH_RADIUS_KM};

/// A WGS84 position: latitude and longitude in degrees.
///
/// Latitude is positive north, longitude positive east. Continental-US
/// longitudes are therefore negative (e.g. Madison, WI ≈ `(43.07, -89.40)`).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeoPoint {
    /// Latitude in degrees, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, in `[-180, 180]`.
    pub lon: f64,
}

impl GeoPoint {
    /// Creates a point, validating the coordinate ranges.
    pub fn new(lat: f64, lon: f64) -> Result<Self, GeoError> {
        if !(-90.0..=90.0).contains(&lat) || !(-180.0..=180.0).contains(&lon) || lat.is_nan() {
            return Err(GeoError::InvalidCoordinate { lat, lon });
        }
        Ok(GeoPoint { lat, lon })
    }

    /// Creates a point without range validation.
    ///
    /// Use only for compile-time constants known to be valid (e.g. the
    /// embedded city table).
    pub const fn new_unchecked(lat: f64, lon: f64) -> Self {
        GeoPoint { lat, lon }
    }

    /// Great-circle (haversine) distance to `other` in kilometers.
    pub fn distance_km(&self, other: &GeoPoint) -> f64 {
        haversine_km(self, other)
    }

    /// Initial great-circle bearing towards `other`, degrees clockwise from
    /// north in `[0, 360)`.
    pub fn bearing_deg(&self, other: &GeoPoint) -> f64 {
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let dlon = lon2 - lon1;
        let y = dlon.sin() * lat2.cos();
        let x = lat1.cos() * lat2.sin() - lat1.sin() * lat2.cos() * dlon.cos();
        (y.atan2(x).to_degrees() + 360.0) % 360.0
    }

    /// The point reached by travelling `distance_km` along the great circle
    /// with initial bearing `bearing_deg` (degrees clockwise from north).
    pub fn destination(&self, bearing_deg: f64, distance_km: f64) -> GeoPoint {
        let delta = distance_km / EARTH_RADIUS_KM;
        let theta = bearing_deg.to_radians();
        let lat1 = self.lat.to_radians();
        let lon1 = self.lon.to_radians();
        let lat2 = (lat1.sin() * delta.cos() + lat1.cos() * delta.sin() * theta.cos()).asin();
        let lon2 = lon1
            + (theta.sin() * delta.sin() * lat1.cos()).atan2(delta.cos() - lat1.sin() * lat2.sin());
        let lon2 = (lon2.to_degrees() + 540.0) % 360.0 - 180.0;
        GeoPoint {
            lat: lat2.to_degrees(),
            lon: lon2,
        }
    }

    /// Great-circle midpoint between `self` and `other`.
    pub fn midpoint(&self, other: &GeoPoint) -> GeoPoint {
        self.interpolate(other, 0.5)
    }

    /// Point at fraction `t ∈ [0,1]` along the great circle from `self`
    /// (`t = 0`) to `other` (`t = 1`), using spherical linear interpolation.
    pub fn interpolate(&self, other: &GeoPoint, t: f64) -> GeoPoint {
        let d = self.distance_km(other) / EARTH_RADIUS_KM;
        if d < 1e-12 {
            return *self;
        }
        let (lat1, lon1) = (self.lat.to_radians(), self.lon.to_radians());
        let (lat2, lon2) = (other.lat.to_radians(), other.lon.to_radians());
        let a = ((1.0 - t) * d).sin() / d.sin();
        let b = (t * d).sin() / d.sin();
        let x = a * lat1.cos() * lon1.cos() + b * lat2.cos() * lon2.cos();
        let y = a * lat1.cos() * lon1.sin() + b * lat2.cos() * lon2.sin();
        let z = a * lat1.sin() + b * lat2.sin();
        let lat = z.atan2((x * x + y * y).sqrt());
        let lon = y.atan2(x);
        GeoPoint {
            lat: lat.to_degrees(),
            lon: lon.to_degrees(),
        }
    }
}

/// Even-odd (ray-casting) containment test of `p` against a polygon ring
/// in the lat/lon plane.
///
/// `ring` lists the vertices without requiring the closing repeat (a
/// trailing vertex equal to the first is harmless: the zero-length edge
/// never toggles the crossing parity). The test is planar — adequate for
/// regional (e.g. CONUS) footprints away from the poles and the
/// antimeridian, where treating degrees as planar coordinates preserves
/// topology. Points exactly on an edge may land on either side; callers
/// needing closed semantics should buffer the ring.
pub fn point_in_ring(p: &GeoPoint, ring: &[GeoPoint]) -> bool {
    if ring.len() < 3 {
        return false;
    }
    let mut inside = false;
    let mut j = ring.len() - 1;
    for i in 0..ring.len() {
        let (vi, vj) = (&ring[i], &ring[j]);
        // Half-open vertical test per edge: each crossing of the
        // horizontal ray through `p.lat` toggles parity exactly once,
        // including at shared vertices.
        if (vi.lat > p.lat) != (vj.lat > p.lat) {
            let t = (p.lat - vi.lat) / (vj.lat - vi.lat);
            let lon_at = vi.lon + t * (vj.lon - vi.lon);
            if p.lon < lon_at {
                inside = !inside;
            }
        }
        j = i;
    }
    inside
}

impl std::fmt::Display for GeoPoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({:.4}, {:.4})", self.lat, self.lon)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MADISON: GeoPoint = GeoPoint::new_unchecked(43.0731, -89.4012);
    const CHICAGO: GeoPoint = GeoPoint::new_unchecked(41.8781, -87.6298);

    #[test]
    fn new_validates_ranges() {
        assert!(GeoPoint::new(91.0, 0.0).is_err());
        assert!(GeoPoint::new(-91.0, 0.0).is_err());
        assert!(GeoPoint::new(0.0, 181.0).is_err());
        assert!(GeoPoint::new(0.0, -181.0).is_err());
        assert!(GeoPoint::new(f64::NAN, 0.0).is_err());
        assert!(GeoPoint::new(43.07, -89.40).is_ok());
    }

    #[test]
    fn madison_chicago_distance_is_about_196_km() {
        let d = MADISON.distance_km(&CHICAGO);
        assert!((d - 196.0).abs() < 5.0, "got {d}");
    }

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        assert_eq!(MADISON.distance_km(&CHICAGO), CHICAGO.distance_km(&MADISON));
        assert!(MADISON.distance_km(&MADISON) < 1e-9);
    }

    #[test]
    fn destination_round_trip() {
        let b = MADISON.bearing_deg(&CHICAGO);
        let d = MADISON.distance_km(&CHICAGO);
        let reached = MADISON.destination(b, d);
        assert!(reached.distance_km(&CHICAGO) < 0.5, "reached {reached}");
    }

    #[test]
    fn interpolate_endpoints_and_midpoint() {
        let p0 = MADISON.interpolate(&CHICAGO, 0.0);
        let p1 = MADISON.interpolate(&CHICAGO, 1.0);
        assert!(p0.distance_km(&MADISON) < 1e-6);
        assert!(p1.distance_km(&CHICAGO) < 1e-6);
        let mid = MADISON.midpoint(&CHICAGO);
        let d0 = mid.distance_km(&MADISON);
        let d1 = mid.distance_km(&CHICAGO);
        assert!((d0 - d1).abs() < 0.01, "midpoint skewed: {d0} vs {d1}");
    }

    #[test]
    fn interpolate_degenerate_pair_returns_self() {
        let p = MADISON.interpolate(&MADISON, 0.7);
        assert_eq!(p, MADISON);
    }

    #[test]
    fn bearing_east_is_about_90() {
        let a = GeoPoint::new_unchecked(40.0, -100.0);
        let b = GeoPoint::new_unchecked(40.0, -99.0);
        let brg = a.bearing_deg(&b);
        assert!((brg - 90.0).abs() < 1.0, "got {brg}");
    }
}
