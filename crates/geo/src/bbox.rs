use serde::{Deserialize, Serialize};

use crate::{GeoPoint, Polyline};

/// An axis-aligned latitude/longitude bounding box.
///
/// Longitudes are assumed not to cross the antimeridian — valid for the
/// continental United States, the paper's (and this reproduction's) scope.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundingBox {
    /// Southern edge (minimum latitude), degrees.
    pub min_lat: f64,
    /// Western edge (minimum longitude), degrees.
    pub min_lon: f64,
    /// Northern edge (maximum latitude), degrees.
    pub max_lat: f64,
    /// Eastern edge (maximum longitude), degrees.
    pub max_lon: f64,
}

impl BoundingBox {
    /// The continental United States, generously padded.
    pub const CONUS: BoundingBox = BoundingBox {
        min_lat: 24.0,
        min_lon: -125.5,
        max_lat: 49.5,
        max_lon: -66.5,
    };

    /// An empty box, ready to be extended.
    pub fn empty() -> Self {
        BoundingBox {
            min_lat: f64::INFINITY,
            min_lon: f64::INFINITY,
            max_lat: f64::NEG_INFINITY,
            max_lon: f64::NEG_INFINITY,
        }
    }

    /// Whether any point has been added.
    pub fn is_valid(&self) -> bool {
        self.min_lat <= self.max_lat && self.min_lon <= self.max_lon
    }

    /// Extends the box to contain `p`.
    pub fn extend(&mut self, p: &GeoPoint) {
        self.min_lat = self.min_lat.min(p.lat);
        self.max_lat = self.max_lat.max(p.lat);
        self.min_lon = self.min_lon.min(p.lon);
        self.max_lon = self.max_lon.max(p.lon);
    }

    /// The bounding box of a polyline's vertices.
    pub fn of_polyline(pl: &Polyline) -> Self {
        let mut b = BoundingBox::empty();
        for p in pl.points() {
            b.extend(p);
        }
        b
    }

    /// Whether `p` lies inside (or on the edge of) the box.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        p.lat >= self.min_lat
            && p.lat <= self.max_lat
            && p.lon >= self.min_lon
            && p.lon <= self.max_lon
    }

    /// Center point of the box.
    pub fn center(&self) -> GeoPoint {
        GeoPoint {
            lat: (self.min_lat + self.max_lat) / 2.0,
            lon: (self.min_lon + self.max_lon) / 2.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_contains_nothing_and_is_invalid() {
        let b = BoundingBox::empty();
        assert!(!b.is_valid());
        assert!(!b.contains(&GeoPoint::new_unchecked(0.0, 0.0)));
    }

    #[test]
    fn extend_grows_to_fit() {
        let mut b = BoundingBox::empty();
        let p1 = GeoPoint::new_unchecked(40.0, -100.0);
        let p2 = GeoPoint::new_unchecked(35.0, -90.0);
        b.extend(&p1);
        b.extend(&p2);
        assert!(b.is_valid());
        assert!(b.contains(&p1) && b.contains(&p2));
        assert!(b.contains(&GeoPoint::new_unchecked(37.0, -95.0)));
        assert!(!b.contains(&GeoPoint::new_unchecked(41.0, -95.0)));
    }

    #[test]
    fn conus_contains_major_cities() {
        for (lat, lon) in [
            (40.71, -74.01),
            (34.05, -118.24),
            (47.61, -122.33),
            (25.76, -80.19),
        ] {
            assert!(BoundingBox::CONUS.contains(&GeoPoint::new_unchecked(lat, lon)));
        }
        // Honolulu and Anchorage are outside scope.
        assert!(!BoundingBox::CONUS.contains(&GeoPoint::new_unchecked(21.31, -157.86)));
        assert!(!BoundingBox::CONUS.contains(&GeoPoint::new_unchecked(61.22, -149.90)));
    }

    #[test]
    fn center_is_midpoint_of_extents() {
        let mut b = BoundingBox::empty();
        b.extend(&GeoPoint::new_unchecked(30.0, -110.0));
        b.extend(&GeoPoint::new_unchecked(40.0, -90.0));
        let c = b.center();
        assert_eq!(c.lat, 35.0);
        assert_eq!(c.lon, -100.0);
    }
}
