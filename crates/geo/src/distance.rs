//! Geodesic distance and fiber-latency constants.
//!
//! The paper reports propagation delays in milliseconds and converts between
//! distance and delay at roughly 5 µs/km ("100 microseconds, i.e.,
//! approximately 20 km", §5.3). We use the physically-derived value for
//! standard single-mode fiber (refractive index ≈ 1.468): 4.9 µs/km.

use crate::GeoPoint;

/// Mean Earth radius in kilometers (IUGG).
pub const EARTH_RADIUS_KM: f64 = 6371.0088;

/// Speed of light in vacuum, km/s.
pub const SPEED_OF_LIGHT_KM_PER_S: f64 = 299_792.458;

/// One-way propagation delay along single-mode fiber, microseconds per km.
///
/// `1e6 * n / c` with refractive index `n = 1.468`; ≈ 4.897 µs/km. The paper's
/// "100 µs ≈ 20 km" equivalence corresponds to 5 µs/km.
pub const FIBER_US_PER_KM: f64 = 1e6 * 1.468 / SPEED_OF_LIGHT_KM_PER_S;

/// Great-circle (haversine) distance between two points, in kilometers.
///
/// Accurate to ~0.5 % against the WGS84 ellipsoid, which is far below the
/// geographic uncertainty of any fiber-route data; the paper's analysis
/// tolerates tens of kilometers.
pub fn haversine_km(a: &GeoPoint, b: &GeoPoint) -> f64 {
    let lat1 = a.lat.to_radians();
    let lat2 = b.lat.to_radians();
    let dlat = (b.lat - a.lat).to_radians();
    let dlon = (b.lon - a.lon).to_radians();
    let h = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlon / 2.0).sin().powi(2);
    2.0 * EARTH_RADIUS_KM * h.sqrt().asin()
}

/// One-way propagation delay over `km` kilometers of fiber, in microseconds.
pub fn fiber_delay_us(km: f64) -> f64 {
    km * FIBER_US_PER_KM
}

/// One-way line-of-sight (great-circle) delay between two points assuming
/// fiber laid exactly along the geodesic — the paper's LOS lower bound.
pub fn los_delay_us(a: &GeoPoint, b: &GeoPoint) -> f64 {
    fiber_delay_us(haversine_km(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fiber_constant_matches_papers_rule_of_thumb() {
        // Paper: 100 µs ≈ 20 km → 5 µs/km. Physical value is within 3 %.
        assert!((FIBER_US_PER_KM - 5.0).abs() < 0.15, "{FIBER_US_PER_KM}");
    }

    #[test]
    fn nyc_la_is_about_3940_km() {
        let nyc = GeoPoint::new_unchecked(40.7128, -74.0060);
        let la = GeoPoint::new_unchecked(34.0522, -118.2437);
        let d = haversine_km(&nyc, &la);
        assert!((d - 3940.0).abs() < 30.0, "got {d}");
    }

    #[test]
    fn transcontinental_los_delay_is_about_19_ms() {
        let nyc = GeoPoint::new_unchecked(40.7128, -74.0060);
        let la = GeoPoint::new_unchecked(34.0522, -118.2437);
        let us = los_delay_us(&nyc, &la);
        assert!((us - 19_300.0).abs() < 500.0, "got {us} µs");
    }

    #[test]
    fn delay_is_linear_in_distance() {
        assert!((fiber_delay_us(200.0) - 2.0 * fiber_delay_us(100.0)).abs() < 1e-9);
        assert_eq!(fiber_delay_us(0.0), 0.0);
    }

    #[test]
    fn antipodal_distance_near_half_circumference() {
        let a = GeoPoint::new_unchecked(0.0, 0.0);
        let b = GeoPoint::new_unchecked(0.0, 180.0);
        let d = haversine_km(&a, &b);
        assert!((d - std::f64::consts::PI * EARTH_RADIUS_KM).abs() < 1.0);
    }
}
