//! Equirectangular local projection.
//!
//! All exact planar computations (point-to-segment distance, corridor
//! buffering) happen in a projection centered near the geometry of interest,
//! where the flat-Earth error over ≤ 100 km is far below 0.1 %.

use crate::{GeoPoint, EARTH_RADIUS_KM};

/// Kilometers per degree of latitude (constant on the sphere).
pub(crate) const KM_PER_DEG_LAT: f64 = EARTH_RADIUS_KM * std::f64::consts::PI / 180.0;

/// An equirectangular projection centered at a reference point.
///
/// `x` is kilometers east of the origin, `y` kilometers north. Longitude is
/// scaled by the cosine of the *origin* latitude, so accuracy degrades with
/// distance from the origin; keep usage local (the corridor analysis
/// re-centers per query point).
#[derive(Debug, Clone, Copy)]
pub struct LocalProjection {
    origin: GeoPoint,
    cos_lat: f64,
}

impl LocalProjection {
    /// Creates a projection centered at `origin`.
    pub fn new(origin: GeoPoint) -> Self {
        LocalProjection {
            origin,
            cos_lat: origin.lat.to_radians().cos(),
        }
    }

    /// The reference point of this projection.
    pub fn origin(&self) -> GeoPoint {
        self.origin
    }

    /// Projects a point to planar `(x, y)` kilometers.
    pub fn to_xy(&self, p: &GeoPoint) -> (f64, f64) {
        let x = (p.lon - self.origin.lon) * KM_PER_DEG_LAT * self.cos_lat;
        let y = (p.lat - self.origin.lat) * KM_PER_DEG_LAT;
        (x, y)
    }

    /// Inverse projection from planar kilometers back to lat/lon degrees.
    pub fn from_xy(&self, x: f64, y: f64) -> GeoPoint {
        GeoPoint {
            lat: self.origin.lat + y / KM_PER_DEG_LAT,
            lon: self.origin.lon + x / (KM_PER_DEG_LAT * self.cos_lat),
        }
    }

    /// Distance in kilometers from point `p` to the segment `a`–`b`,
    /// computed in this projection.
    pub fn point_segment_distance_km(&self, p: &GeoPoint, a: &GeoPoint, b: &GeoPoint) -> f64 {
        let (px, py) = self.to_xy(p);
        let (ax, ay) = self.to_xy(a);
        let (bx, by) = self.to_xy(b);
        let (dx, dy) = (bx - ax, by - ay);
        let len2 = dx * dx + dy * dy;
        let t = if len2 <= f64::EPSILON {
            0.0
        } else {
            (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0)
        };
        let (cx, cy) = (ax + t * dx, ay + t * dy);
        ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new_unchecked(lat, lon)
    }

    #[test]
    fn round_trip_is_exact() {
        let proj = LocalProjection::new(p(39.5, -98.0));
        let q = p(39.9, -97.2);
        let (x, y) = proj.to_xy(&q);
        let back = proj.from_xy(x, y);
        assert!((back.lat - q.lat).abs() < 1e-12);
        assert!((back.lon - q.lon).abs() < 1e-12);
    }

    #[test]
    fn projected_distance_matches_haversine_locally() {
        let a = p(39.5, -98.0);
        let b = p(39.8, -97.6);
        let proj = LocalProjection::new(a);
        let (x, y) = proj.to_xy(&b);
        let planar = (x * x + y * y).sqrt();
        let geo = a.distance_km(&b);
        assert!(
            (planar - geo).abs() / geo < 0.002,
            "planar {planar} vs geo {geo}"
        );
    }

    #[test]
    fn point_on_segment_has_zero_distance() {
        let proj = LocalProjection::new(p(40.0, -100.0));
        let a = p(40.0, -100.0);
        let b = p(40.0, -99.0);
        let mid = p(40.0, -99.5);
        assert!(proj.point_segment_distance_km(&mid, &a, &b) < 0.05);
    }

    #[test]
    fn distance_clamps_to_endpoints() {
        let proj = LocalProjection::new(p(40.0, -100.0));
        let a = p(40.0, -100.0);
        let b = p(40.0, -99.5);
        // A point beyond b projects onto the endpoint b.
        let q = p(40.0, -99.0);
        let d = proj.point_segment_distance_km(&q, &a, &b);
        let expected = q.distance_km(&b);
        assert!((d - expected).abs() < 0.3, "{d} vs {expected}");
    }

    #[test]
    fn degenerate_segment_measures_to_point() {
        let proj = LocalProjection::new(p(40.0, -100.0));
        let a = p(40.0, -100.0);
        let q = p(40.2, -100.0);
        let d = proj.point_segment_distance_km(&q, &a, &a);
        assert!((d - q.distance_km(&a)).abs() < 0.05);
    }
}
