use serde::{Deserialize, Serialize};

use crate::{GeoError, GeoPoint};

/// A geographic path: the geometry of a fiber route, road, or railway.
///
/// Invariant: at least two points (enforced by [`Polyline::new`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Polyline {
    points: Vec<GeoPoint>,
}

impl Polyline {
    /// Creates a polyline from at least two points.
    pub fn new(points: Vec<GeoPoint>) -> Result<Self, GeoError> {
        if points.len() < 2 {
            return Err(GeoError::DegeneratePolyline {
                points: points.len(),
            });
        }
        Ok(Polyline { points })
    }

    /// A straight (great-circle) two-point polyline.
    pub fn straight(a: GeoPoint, b: GeoPoint) -> Self {
        Polyline { points: vec![a, b] }
    }

    /// The vertices of the polyline.
    pub fn points(&self) -> &[GeoPoint] {
        &self.points
    }

    /// First vertex.
    pub fn start(&self) -> GeoPoint {
        self.points[0]
    }

    /// Last vertex.
    pub fn end(&self) -> GeoPoint {
        self.points[self.points.len() - 1]
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Always false: a polyline has at least two vertices.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterator over consecutive vertex pairs (the segments).
    pub fn segments(&self) -> impl Iterator<Item = (&GeoPoint, &GeoPoint)> {
        self.points.windows(2).map(|w| (&w[0], &w[1]))
    }

    /// Total geodesic length in kilometers.
    pub fn length_km(&self) -> f64 {
        self.segments().map(|(a, b)| a.distance_km(b)).sum()
    }

    /// The point at fraction `t ∈ [0, 1]` of the total length.
    ///
    /// Values outside `[0, 1]` are clamped.
    pub fn point_at_fraction(&self, t: f64) -> GeoPoint {
        let total = self.length_km();
        self.point_at_distance(t.clamp(0.0, 1.0) * total)
    }

    /// The point `km` kilometers along the polyline from its start.
    ///
    /// Clamped to the endpoints.
    pub fn point_at_distance(&self, km: f64) -> GeoPoint {
        if km <= 0.0 {
            return self.start();
        }
        let mut remaining = km;
        for (a, b) in self.segments() {
            let seg = a.distance_km(b);
            if remaining <= seg {
                if seg < 1e-12 {
                    return *a;
                }
                return a.interpolate(b, remaining / seg);
            }
            remaining -= seg;
        }
        self.end()
    }

    /// Evenly spaced sample points along the polyline, `step_km` apart,
    /// always including both endpoints.
    ///
    /// Used by the corridor co-location analysis: each sample is tested
    /// against the transport-layer buffer, and the co-located fraction is the
    /// fraction of samples inside the buffer.
    pub fn sample_every_km(&self, step_km: f64) -> Result<Vec<GeoPoint>, GeoError> {
        if step_km <= 0.0 || step_km.is_nan() {
            return Err(GeoError::NonPositiveParameter {
                name: "step_km",
                value: step_km,
            });
        }
        let total = self.length_km();
        let n = (total / step_km).ceil().max(1.0) as usize;
        let mut out = Vec::with_capacity(n + 1);
        for i in 0..=n {
            out.push(self.point_at_distance(total * i as f64 / n as f64));
        }
        Ok(out)
    }

    /// Returns a polyline with the same geometry but vertices no more than
    /// `max_seg_km` apart (splitting long segments along the great circle).
    pub fn densify(&self, max_seg_km: f64) -> Result<Polyline, GeoError> {
        if max_seg_km <= 0.0 || max_seg_km.is_nan() {
            return Err(GeoError::NonPositiveParameter {
                name: "max_seg_km",
                value: max_seg_km,
            });
        }
        let mut out = vec![self.start()];
        for (a, b) in self.segments() {
            let d = a.distance_km(b);
            let pieces = (d / max_seg_km).ceil().max(1.0) as usize;
            for i in 1..=pieces {
                out.push(a.interpolate(b, i as f64 / pieces as f64));
            }
        }
        Ok(Polyline { points: out })
    }

    /// Reverses the direction of the polyline in place.
    pub fn reverse(&mut self) {
        self.points.reverse();
    }

    /// Returns a copy displaced laterally by `km` (positive = right of the
    /// direction of travel), keeping the endpoints fixed and tapering the
    /// offset near them.
    ///
    /// Used to synthesize *parallel* infrastructure: a second trench dug a
    /// few kilometers from an existing conduit along the same corridor.
    pub fn offset_parallel(&self, km: f64) -> Polyline {
        let n = self.points.len();
        let mut out = Vec::with_capacity(n);
        for (i, p) in self.points.iter().enumerate() {
            if i == 0 || i == n - 1 {
                out.push(*p);
                continue;
            }
            // Local direction from the previous to the next vertex.
            let dir = self.points[i - 1].bearing_deg(&self.points[i + 1]);
            let t = i as f64 / (n - 1) as f64;
            let envelope = (std::f64::consts::PI * t).sin().max(0.25);
            let side = if km >= 0.0 { 90.0 } else { -90.0 };
            out.push(p.destination(dir + side, km.abs() * envelope));
        }
        Polyline { points: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint::new_unchecked(lat, lon)
    }

    fn l_shape() -> Polyline {
        Polyline::new(vec![p(40.0, -100.0), p(40.0, -99.0), p(41.0, -99.0)]).unwrap()
    }

    #[test]
    fn rejects_degenerate() {
        assert!(Polyline::new(vec![]).is_err());
        assert!(Polyline::new(vec![p(0.0, 0.0)]).is_err());
    }

    #[test]
    fn length_is_sum_of_segments() {
        let pl = l_shape();
        let expected = p(40.0, -100.0).distance_km(&p(40.0, -99.0))
            + p(40.0, -99.0).distance_km(&p(41.0, -99.0));
        assert!((pl.length_km() - expected).abs() < 1e-9);
    }

    #[test]
    fn point_at_distance_clamps() {
        let pl = l_shape();
        assert_eq!(pl.point_at_distance(-5.0), pl.start());
        let past = pl.point_at_distance(pl.length_km() + 100.0);
        assert!(past.distance_km(&pl.end()) < 1e-9);
    }

    #[test]
    fn point_at_fraction_half_is_on_path() {
        let pl = l_shape();
        let mid = pl.point_at_fraction(0.5);
        // Must lie within a small buffer of one of the segments.
        let proj = crate::LocalProjection::new(mid);
        let dmin = pl
            .segments()
            .map(|(a, b)| proj.point_segment_distance_km(&mid, a, b))
            .fold(f64::INFINITY, f64::min);
        assert!(dmin < 0.5, "midpoint {mid} is {dmin} km off the path");
    }

    #[test]
    fn sampling_includes_endpoints_and_respects_step() {
        let pl = l_shape();
        let samples = pl.sample_every_km(10.0).unwrap();
        assert!(samples.first().unwrap().distance_km(&pl.start()) < 1e-9);
        assert!(samples.last().unwrap().distance_km(&pl.end()) < 1e-9);
        for w in samples.windows(2) {
            assert!(w[0].distance_km(&w[1]) <= 10.5);
        }
        assert!(pl.sample_every_km(0.0).is_err());
        assert!(pl.sample_every_km(-1.0).is_err());
    }

    #[test]
    fn densify_preserves_length_and_endpoints() {
        let pl = Polyline::straight(p(40.0, -100.0), p(40.0, -95.0));
        let dense = pl.densify(10.0).unwrap();
        assert!(dense.len() > pl.len());
        assert!((dense.length_km() - pl.length_km()).abs() / pl.length_km() < 1e-3);
        assert!(dense.start().distance_km(&pl.start()) < 1e-9);
        assert!(dense.end().distance_km(&pl.end()) < 1e-9);
        for (a, b) in dense.segments() {
            assert!(a.distance_km(b) <= 10.01);
        }
    }

    #[test]
    fn offset_parallel_keeps_endpoints_and_displaces_interior() {
        let pl = Polyline::straight(p(40.0, -105.0), p(40.0, -100.0))
            .densify(40.0)
            .unwrap();
        let off = pl.offset_parallel(6.0);
        assert!(off.start().distance_km(&pl.start()) < 1e-9);
        assert!(off.end().distance_km(&pl.end()) < 1e-9);
        // Interior vertices move by 1.5–6 km (sin envelope, floor 0.25).
        let mid_orig = pl.points()[pl.len() / 2];
        let mid_off = off.points()[off.len() / 2];
        let d = mid_orig.distance_km(&mid_off);
        assert!(d > 3.0 && d < 6.5, "midpoint displaced {d} km");
        // Opposite sign goes the other way.
        let off2 = pl.offset_parallel(-6.0);
        let mid_off2 = off2.points()[off2.len() / 2];
        assert!(mid_off.distance_km(&mid_off2) > 6.0);
    }

    #[test]
    fn reverse_swaps_endpoints() {
        let mut pl = l_shape();
        let (s, e) = (pl.start(), pl.end());
        pl.reverse();
        assert_eq!(pl.start(), e);
        assert_eq!(pl.end(), s);
    }
}
