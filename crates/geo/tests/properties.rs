//! Property-based tests for the geospatial substrate.

use intertubes_geo::{
    haversine_km, GeoPoint, LocalProjection, OverlapParams, Polyline, SegmentGrid,
};
use proptest::prelude::*;

/// Strategy: points inside a generous CONUS box (the library's usage domain).
fn conus_point() -> impl Strategy<Value = GeoPoint> {
    (25.0f64..49.0, -124.0f64..-67.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon).unwrap())
}

proptest! {
    #[test]
    fn distance_symmetric(a in conus_point(), b in conus_point()) {
        let d1 = haversine_km(&a, &b);
        let d2 = haversine_km(&b, &a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!(d1 >= 0.0);
    }

    #[test]
    fn triangle_inequality(a in conus_point(), b in conus_point(), c in conus_point()) {
        // Great-circle distances on a sphere obey the triangle inequality.
        let ab = haversine_km(&a, &b);
        let bc = haversine_km(&b, &c);
        let ac = haversine_km(&a, &c);
        prop_assert!(ac <= ab + bc + 1e-6, "ac={ac} ab={ab} bc={bc}");
    }

    #[test]
    fn interpolation_stays_between(a in conus_point(), b in conus_point(), t in 0.0f64..1.0) {
        let p = a.interpolate(&b, t);
        let total = a.distance_km(&b);
        let da = a.distance_km(&p);
        let db = b.distance_km(&p);
        // The interpolated point splits the geodesic: da + db == total.
        prop_assert!((da + db - total).abs() < 1e-3, "da={da} db={db} total={total}");
        // And the split matches t.
        prop_assert!((da - t * total).abs() < 1e-3_f64.max(total * 1e-6));
    }

    #[test]
    fn destination_distance_matches(a in conus_point(), bearing in 0.0f64..360.0, d in 0.0f64..2000.0) {
        let q = a.destination(bearing, d);
        prop_assert!((a.distance_km(&q) - d).abs() < 0.5, "asked {d}, got {}", a.distance_km(&q));
    }

    #[test]
    fn projection_round_trip(origin in conus_point(), q in conus_point()) {
        let proj = LocalProjection::new(origin);
        let (x, y) = proj.to_xy(&q);
        let back = proj.from_xy(x, y);
        prop_assert!((back.lat - q.lat).abs() < 1e-9);
        prop_assert!((back.lon - q.lon).abs() < 1e-9);
    }

    #[test]
    fn polyline_length_at_least_endpoint_distance(pts in prop::collection::vec(conus_point(), 2..8)) {
        let pl = Polyline::new(pts.clone()).unwrap();
        let straight = pts[0].distance_km(pts.last().unwrap());
        prop_assert!(pl.length_km() + 1e-6 >= straight);
    }

    #[test]
    fn densify_preserves_length(a in conus_point(), b in conus_point(), step in 5.0f64..100.0) {
        let pl = Polyline::straight(a, b);
        let dense = pl.densify(step).unwrap();
        let (l1, l2) = (pl.length_km(), dense.length_km());
        prop_assert!((l1 - l2).abs() <= l1 * 1e-3 + 1e-6, "{l1} vs {l2}");
        for (u, v) in dense.segments() {
            prop_assert!(u.distance_km(v) <= step * 1.001);
        }
    }

    #[test]
    fn point_at_distance_monotone(pts in prop::collection::vec(conus_point(), 2..6), f1 in 0.0f64..1.0, f2 in 0.0f64..1.0) {
        let pl = Polyline::new(pts).unwrap();
        let (lo, hi) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        let total = pl.length_km();
        let p_lo = pl.point_at_distance(lo * total);
        // Distance from start along the chain to p_lo should be <= hi*total reachpoint.
        let p_hi = pl.point_at_distance(hi * total);
        let d_start_lo = pl.start().distance_km(&p_lo);
        let along_hi = hi * total;
        prop_assert!(d_start_lo <= along_hi + 1e-3 || (lo - hi).abs() < 1e-12,
            "start→p(lo) straight-line {d_start_lo} exceeds along-path {along_hi}");
        let _ = p_hi;
    }

    #[test]
    fn grid_agrees_with_brute_force(
        segs in prop::collection::vec((conus_point(), conus_point()), 1..12),
        q in conus_point(),
        radius in 1.0f64..120.0,
    ) {
        let mut grid = SegmentGrid::new(10.0).unwrap();
        for (i, (a, b)) in segs.iter().enumerate() {
            grid.insert_segment(*a, *b, i as u32);
        }
        // Brute force mirrors the grid's semantics: distance to a segment is
        // the minimum over its ≤ DENSIFY_KM great-circle pieces, measured in
        // a projection centered at the query point.
        let proj = LocalProjection::new(q);
        let brute: Vec<(u32, f64)> = segs
            .iter()
            .enumerate()
            .map(|(i, (a, b))| {
                let dense = Polyline::straight(*a, *b)
                    .densify(SegmentGrid::DENSIFY_KM)
                    .unwrap();
                let d = dense
                    .segments()
                    .map(|(u, v)| proj.point_segment_distance_km(&q, u, v))
                    .fold(f64::INFINITY, f64::min);
                (i as u32, d)
            })
            .filter(|(_, d)| *d <= radius)
            .collect();
        let hit = grid.nearest_within(&q, radius);
        match (brute.iter().cloned().reduce(|x, y| if x.1 <= y.1 { x } else { y }), hit) {
            (None, None) => {}
            (Some((_, bd)), Some(h)) => {
                prop_assert!((h.distance_km - bd).abs() < 1e-6,
                    "grid found {} vs brute {}", h.distance_km, bd);
            }
            (b, g) => prop_assert!(false, "mismatch brute={b:?} grid={g:?}"),
        }
    }

    #[test]
    fn colocation_fractions_are_consistent(
        a in conus_point(), b in conus_point(),
        buffer in 1.0f64..20.0,
    ) {
        prop_assume!(a.distance_km(&b) > 30.0);
        let mut idx = intertubes_geo::CorridorIndex::new(10.0).unwrap();
        idx.add_corridor(intertubes_geo::CorridorLayer::Road, &Polyline::straight(a, b), 0);
        let route = Polyline::straight(a, b);
        let br = idx
            .colocation(&route, &OverlapParams { buffer_km: buffer, sample_step_km: 5.0 })
            .unwrap();
        prop_assert!(br.road >= 0.0 && br.road <= 1.0);
        prop_assert!(br.road_or_rail >= br.road.max(br.rail) - 1e-12);
        prop_assert!(br.road_or_rail <= br.road + br.rail + 1e-12);
        prop_assert!((br.road_or_rail.max(br.pipeline) + br.unexplained) <= 1.0 + 1e-12);
        // A route identical to the corridor must be fully co-located.
        prop_assert!(br.road > 0.999, "self-overlap should be 1.0, got {}", br.road);
    }
}
