//! Calibration tests: the reference world must land inside windows around
//! the paper's headline statistics (see DESIGN.md §3, "Calibration
//! targets"). Run with `--nocapture` to see the measured values.

use intertubes_atlas::{tenant_counts, World, MAPPED_ISPS};

fn sharing_fractions(counts: &[u16]) -> (f64, f64, f64) {
    let n = counts.len() as f64;
    let at_least = |k: u16| counts.iter().filter(|&&c| c >= k).count() as f64 / n;
    (at_least(2), at_least(3), at_least(4))
}

#[test]
fn sharing_distribution_matches_paper_shape() {
    let w = World::reference();
    let counts = tenant_counts(&w.system, w.mapped_footprints());
    let (ge2, ge3, ge4) = sharing_fractions(&counts);
    let heavy = counts.iter().filter(|&&c| c > 17).count();
    let max = counts.iter().copied().max().unwrap_or(0);
    println!(
        "sharing: >=2 {:.1}% (paper 89.7), >=3 {:.1}% (63.3), >=4 {:.1}% (53.5), \
         >17 ISPs: {} conduits (paper 12), max {max}",
        ge2 * 100.0,
        ge3 * 100.0,
        ge4 * 100.0,
        heavy
    );
    // Windows: shape must hold, exact values are synthetic.
    assert!(ge2 > 0.75 && ge2 < 0.98, ">=2 sharing {ge2}");
    assert!(ge3 > 0.45 && ge3 < 0.85, ">=3 sharing {ge3}");
    assert!(ge4 > 0.35 && ge4 < 0.75, ">=4 sharing {ge4}");
    assert!(ge2 > ge3 && ge3 > ge4);
    assert!(
        (4..=30).contains(&heavy),
        "heavily-shared conduits: {heavy}"
    );
    assert!(max <= MAPPED_ISPS as u16);
}

#[test]
fn total_tenancy_near_2411() {
    let w = World::reference();
    let total: usize = w.mapped_footprints().iter().map(|f| f.conduits.len()).sum();
    println!("total mapped tenancies: {total} (paper 2411)");
    assert!((2170..=2660).contains(&total));
}

#[test]
fn isp_ranking_order_matches_paper_extremes() {
    let w = World::reference();
    let counts = tenant_counts(&w.system, w.mapped_footprints());
    let avg = |i: usize| -> f64 {
        let fp = &w.footprints[i];
        fp.conduits
            .iter()
            .map(|c| counts[c.index()] as f64)
            .sum::<f64>()
            / fp.conduits.len() as f64
    };
    let idx = |n: &str| w.roster.iter().position(|p| p.name == n).unwrap();
    let mut report: Vec<(String, f64)> = (0..MAPPED_ISPS)
        .map(|i| (w.roster[i].name.clone(), avg(i)))
        .collect();
    report.sort_by(|a, b| a.1.total_cmp(&b.1));
    for (n, v) in &report {
        println!("{n:>18}: avg sharing {v:.2}");
    }
    // Paper's extremes: Suddenlink lowest-ish; DT/NTT/XO near the top.
    let sudden = avg(idx("Suddenlink"));
    let rank = |name: &str| report.iter().position(|(n, _)| n == name).unwrap();
    assert!(
        rank("Suddenlink") <= 5,
        "Suddenlink rank {}",
        rank("Suddenlink")
    );
    assert!(rank("Deutsche Telekom") >= 12);
    assert!(rank("NTT") >= 12);
    // XO's footprint (128 links) is larger than the other backbone riders',
    // which dilutes its average; it must still sit in the upper half.
    assert!(rank("XO") >= 6, "XO rank {}", rank("XO"));
    assert!(sudden < avg(idx("Deutsche Telekom")));
}
