//! Property-based tests for the synthetic-world substrates.

use intertubes_atlas::{gabriel_pairs, knn_pairs, City};
use intertubes_geo::GeoPoint;
use proptest::prelude::*;

fn mk_cities(points: Vec<(f64, f64)>) -> Vec<City> {
    points
        .into_iter()
        .enumerate()
        .map(|(i, (lat, lon))| City {
            name: format!("P{i}"),
            state: "XX".into(),
            location: GeoPoint::new_unchecked(lat, lon),
            population: 100_000,
        })
        .collect()
}

/// Distinct CONUS points (coincident points break Gabriel assumptions).
fn arb_points() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((26.0f64..48.0, -122.0f64..-70.0), 3..14).prop_filter(
        "points must be pairwise distinct-ish",
        |pts| {
            for i in 0..pts.len() {
                for j in i + 1..pts.len() {
                    if (pts[i].0 - pts[j].0).abs() < 0.05 && (pts[i].1 - pts[j].1).abs() < 0.05 {
                        return false;
                    }
                }
            }
            true
        },
    )
}

/// Union-find connectivity over index pairs.
fn connected(n: usize, edges: &[(usize, usize)]) -> bool {
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut Vec<usize>, x: usize) -> usize {
        if parent[x] != x {
            let r = find(parent, parent[x]);
            parent[x] = r;
        }
        parent[x]
    }
    for &(u, v) in edges {
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        parent[ru] = rv;
    }
    let r0 = find(&mut parent, 0);
    (1..n).all(|i| find(&mut parent, i) == r0)
}

proptest! {
    #[test]
    fn gabriel_graph_is_connected_and_supersets_nn(points in arb_points()) {
        let cities = mk_cities(points);
        let pairs = gabriel_pairs(&cities);
        prop_assert!(connected(cities.len(), &pairs), "Gabriel graph must be connected");
        // Contains every point's nearest neighbour.
        for e in knn_pairs(&cities, 1) {
            prop_assert!(pairs.contains(&e), "NN pair {e:?} missing");
        }
    }

    #[test]
    fn gabriel_edges_have_empty_diametral_circles(points in arb_points()) {
        let cities = mk_cities(points);
        let pairs = gabriel_pairs(&cities);
        for (u, v) in pairs {
            let mid = cities[u].location.midpoint(&cities[v].location);
            let r = cities[u].location.distance_km(&cities[v].location) / 2.0;
            for (w, c) in cities.iter().enumerate() {
                if w == u || w == v {
                    continue;
                }
                prop_assert!(
                    c.location.distance_km(&mid) >= r - 1e-6,
                    "point {w} inside the diametral circle of ({u},{v})"
                );
            }
        }
    }

    #[test]
    fn knn_pairs_are_normalized_and_bounded(points in arb_points(), k in 1usize..4) {
        let cities = mk_cities(points);
        let pairs = knn_pairs(&cities, k);
        for (u, v) in &pairs {
            prop_assert!(u < v, "pairs must be normalized");
            prop_assert!(*v < cities.len());
        }
        // Each node appears in at least min(k, n-1) pairs.
        for i in 0..cities.len() {
            let deg = pairs.iter().filter(|(u, v)| *u == i || *v == i).count();
            prop_assert!(deg >= k.min(cities.len() - 1));
        }
        // Deduplicated.
        let mut sorted = pairs.clone();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), pairs.len());
    }
}

mod config_sweep {
    use intertubes_atlas::{tenant_counts, ConduitConfig, World, WorldConfig};

    #[test]
    fn conduit_target_is_respected_across_targets() {
        for target in [480usize, 542, 600] {
            let cfg = WorldConfig {
                seed: 99,
                conduits: ConduitConfig {
                    target_conduits: target,
                    ..ConduitConfig::default()
                },
            };
            let w = World::generate(cfg);
            let got = w.system.conduits.len();
            assert!(
                (got as i64 - target as i64).unsigned_abs() <= 3,
                "target {target}, got {got}"
            );
            // Tenancy calibration still lands.
            let counts = tenant_counts(&w.system, w.mapped_footprints());
            let ge2 = counts.iter().filter(|&&c| c >= 2).count() as f64 / counts.len() as f64;
            assert!(ge2 > 0.75, "target {target}: ge2 {ge2}");
        }
    }

    #[test]
    fn higher_rail_preference_means_more_rail_conduits() {
        use intertubes_atlas::RowType;
        let count_rail = |pref: f64| {
            let cfg = WorldConfig {
                seed: 5,
                conduits: ConduitConfig {
                    rail_preference: pref,
                    ..ConduitConfig::default()
                },
            };
            let w = World::generate(cfg);
            w.system
                .conduits
                .iter()
                .filter(|c| c.row == RowType::Rail)
                .count()
        };
        let low = count_rail(0.05);
        let high = count_rail(0.7);
        assert!(
            high > low * 2,
            "rail preference must matter: {low} vs {high}"
        );
    }
}
