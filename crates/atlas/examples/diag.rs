//! World diagnostics: the calibration dashboard used while tuning the
//! synthetic-world generator against the paper's targets (DESIGN.md §3).
//!
//! ```sh
//! cargo run -p intertubes-atlas --example diag
//! ```

use intertubes_atlas::{tenant_counts, ConduitId, MapKind, RowType, World, MAPPED_ISPS};

fn main() {
    let w = World::reference();
    let counts = tenant_counts(&w.system, w.mapped_footprints());

    // Tenant-count histogram (drives the paper's Fig. 6 calibration).
    let mut hist = vec![0usize; 21];
    for &c in &counts {
        hist[(c as usize).min(20)] += 1;
    }
    println!("tenant-count histogram (index = tenants, capped at 20):");
    println!("  {hist:?}");

    let n = counts.len() as f64;
    for k in [2u16, 3, 4] {
        let frac = counts.iter().filter(|&&c| c >= k).count() as f64 / n;
        println!("  shared by >= {k}: {:.1} %", frac * 100.0);
    }
    println!(
        "  shared by > 17: {} conduits (paper: 12)",
        counts.iter().filter(|&&c| c > 17).count()
    );

    // Right-of-way mix (drives Fig. 4 / Fig. 5).
    let mut by_row = [0usize; 4];
    for c in &w.system.conduits {
        by_row[match c.row {
            RowType::Road => 0,
            RowType::Rail => 1,
            RowType::Pipeline => 2,
            RowType::Unknown => 3,
        }] += 1;
    }
    println!(
        "rows: road {} rail {} pipeline {} unknown {}",
        by_row[0], by_row[1], by_row[2], by_row[3]
    );

    // Step-3 reservation check: conduits no geocoded map shows.
    let mut no_geo = 0;
    for ci in 0..w.system.conduits.len() {
        let geo = w
            .footprints
            .iter()
            .take(MAPPED_ISPS)
            .zip(&w.roster)
            .any(|(fp, p)| p.map_kind == MapKind::Geocoded && fp.uses(ConduitId(ci as u32)));
        no_geo += usize::from(!geo);
    }
    println!("conduits invisible to geocoded maps (step-3-only): {no_geo} (paper: 30)");

    // Footprint sizes of the headline ISPs.
    for name in ["EarthLink", "Level 3", "TWC", "Verizon", "Suddenlink"] {
        let i = w.roster.iter().position(|p| p.name == name).unwrap();
        println!("{name}: {} conduits", w.footprints[i].conduits.len());
    }
}
