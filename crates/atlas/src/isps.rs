//! The ISP roster.
//!
//! The paper studies 20 service providers: 9 with geocoded fiber maps
//! (step 1 of the mapping process, Table 1) and 11 whose published maps are
//! POP-level only (step 3). Additionally, traceroute analysis (§4.3,
//! Table 4) surfaces providers that publish no map at all but are visible in
//! DNS naming hints (SoftLayer, MFN, …); we model those as *unpublished*
//! tenants of the ground-truth conduit system.
//!
//! Per-ISP footprint-size targets reproduce Table 1 exactly for the step-1
//! ISPs and sum to the paper's §2.3 aggregate (1153 links) for the step-3
//! ISPs.

use serde::{Deserialize, Serialize};

/// Index of an ISP in the roster.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IspId(pub u32);

impl IspId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Provider class, used for reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IspTier {
    /// Tier-1 backbone provider.
    Tier1,
    /// Major cable provider.
    Cable,
    /// Regional provider.
    Regional,
}

/// How the provider's map is published — this decides which pipeline step
/// ingests it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MapKind {
    /// Full geocoded link geometry is public (step 1).
    Geocoded,
    /// Only POP-level (city-pair) connectivity is public (step 3).
    PopOnly,
    /// No public map; visible only via public records and traceroute naming
    /// hints (§4.3's "additional ISPs").
    Unpublished,
}

/// Static description of one provider used by the world generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IspProfile {
    /// Display name (as used in the paper's figures).
    pub name: String,
    /// Provider class.
    pub tier: IspTier,
    /// Map publication style.
    pub map_kind: MapKind,
    /// Target number of long-haul links (= conduit tenancies) in the
    /// synthetic footprint. Step-1 values are the paper's Table 1.
    pub target_links: usize,
    /// Target number of distinct cities in the footprint.
    pub target_cities: usize,
    /// Optional regional anchor `(lat, lon)`: presence decays with distance
    /// from here. `None` = national footprint.
    pub anchor: Option<(f64, f64)>,
    /// Decay length for the regional anchor, km.
    pub spread_km: f64,
    /// Preference in `[0, 1]` for popular (high-betweenness) conduits.
    /// High values concentrate the ISP onto the shared backbone — the
    /// "dig once / lease dark fiber" behaviour the paper attributes to
    /// non-US providers; low values produce geographically diverse paths
    /// (Suddenlink, EarthLink, Level 3).
    pub backbone_affinity: f64,
}

fn isp(
    name: &str,
    tier: IspTier,
    map_kind: MapKind,
    target_links: usize,
    target_cities: usize,
    anchor: Option<(f64, f64)>,
    spread_km: f64,
    backbone_affinity: f64,
) -> IspProfile {
    IspProfile {
        name: name.to_string(),
        tier,
        map_kind,
        target_links,
        target_cities,
        anchor,
        spread_km,
        backbone_affinity,
    }
}

/// The full provider roster: 9 geocoded + 11 POP-only (the paper's 20),
/// followed by unpublished traceroute-visible providers.
///
/// Ordering is stable; [`IspId`]s index into this list.
pub fn isp_roster() -> Vec<IspProfile> {
    use IspTier::*;
    use MapKind::*;
    vec![
        // --- Step 1: geocoded maps (Table 1 link counts) ---
        isp("AT&T", Tier1, Geocoded, 57, 25, None, 0.0, 0.75),
        isp("Comcast", Cable, Geocoded, 71, 26, None, 0.0, 0.60),
        isp("Cogent", Tier1, Geocoded, 84, 69, None, 0.0, 0.65),
        isp("EarthLink", Regional, Geocoded, 370, 190, None, 0.0, 0.25),
        isp(
            "Integra",
            Regional,
            Geocoded,
            36,
            27,
            Some((45.5, -122.6)),
            900.0,
            0.45,
        ),
        isp("Level 3", Tier1, Geocoded, 336, 180, None, 0.0, 0.30),
        isp(
            "Suddenlink",
            Cable,
            Geocoded,
            42,
            39,
            Some((33.4, -94.0)),
            1200.0,
            0.10,
        ),
        isp("Verizon", Tier1, Geocoded, 151, 110, None, 0.0, 0.60),
        isp("Zayo", Regional, Geocoded, 111, 95, None, 0.0, 0.50),
        // --- Step 3: POP-only maps (sum of links = 1153, §2.3) ---
        isp("CenturyLink", Tier1, PopOnly, 134, 90, None, 0.0, 0.55),
        isp("Sprint", Tier1, PopOnly, 102, 70, None, 0.0, 0.70),
        isp(
            "Cox",
            Cable,
            PopOnly,
            110,
            75,
            Some((34.0, -81.0)),
            1900.0,
            0.45,
        ),
        isp("Deutsche Telekom", Tier1, PopOnly, 75, 45, None, 0.0, 0.95),
        isp("HE", Tier1, PopOnly, 90, 60, None, 0.0, 0.80),
        isp("Inteliquent", Regional, PopOnly, 62, 40, None, 0.0, 0.85),
        isp("NTT", Tier1, PopOnly, 95, 55, None, 0.0, 0.95),
        isp("Tata", Tier1, PopOnly, 85, 50, None, 0.0, 0.90),
        isp("TeliaSonera", Tier1, PopOnly, 92, 55, None, 0.0, 0.90),
        isp("TWC", Cable, PopOnly, 180, 120, None, 0.0, 0.45),
        isp("XO", Tier1, PopOnly, 128, 80, None, 0.0, 0.93),
        // --- Unpublished, traceroute-visible providers (§4.3, Table 4) ---
        isp("SoftLayer", Regional, Unpublished, 70, 45, None, 0.0, 0.70),
        isp("MFN", Regional, Unpublished, 55, 35, None, 0.0, 0.75),
        isp(
            "Windstream",
            Regional,
            Unpublished,
            60,
            45,
            Some((34.7, -92.3)),
            1600.0,
            0.40,
        ),
        isp("Frontier", Regional, Unpublished, 55, 40, None, 0.0, 0.50),
        isp("GTT", Regional, Unpublished, 45, 30, None, 0.0, 0.85),
        isp(
            "FiberLight",
            Regional,
            Unpublished,
            35,
            25,
            Some((31.0, -97.0)),
            1100.0,
            0.45,
        ),
        isp(
            "Southern Light",
            Regional,
            Unpublished,
            30,
            22,
            Some((30.7, -88.0)),
            900.0,
            0.40,
        ),
        isp(
            "Unite Private Networks",
            Regional,
            Unpublished,
            30,
            22,
            Some((39.1, -94.6)),
            1100.0,
            0.45,
        ),
        isp(
            "Alpheus",
            Regional,
            Unpublished,
            25,
            18,
            Some((29.8, -95.4)),
            800.0,
            0.50,
        ),
        isp(
            "Birch",
            Regional,
            Unpublished,
            30,
            22,
            Some((33.7, -84.4)),
            1300.0,
            0.55,
        ),
    ]
}

/// Number of providers with published maps (the paper's 20).
pub const MAPPED_ISPS: usize = 20;

/// Returns ids of ISPs whose maps are geocoded (step-1 inputs).
pub fn geocoded_isps(roster: &[IspProfile]) -> Vec<IspId> {
    roster
        .iter()
        .enumerate()
        .filter(|(_, p)| p.map_kind == MapKind::Geocoded)
        .map(|(i, _)| IspId(i as u32))
        .collect()
}

/// Returns ids of ISPs whose maps are POP-only (step-3 inputs).
pub fn pop_only_isps(roster: &[IspProfile]) -> Vec<IspId> {
    roster
        .iter()
        .enumerate()
        .filter(|(_, p)| p.map_kind == MapKind::PopOnly)
        .map(|(i, _)| IspId(i as u32))
        .collect()
}

/// Returns ids of unpublished (traceroute-only) providers.
pub fn unpublished_isps(roster: &[IspProfile]) -> Vec<IspId> {
    roster
        .iter()
        .enumerate()
        .filter(|(_, p)| p.map_kind == MapKind::Unpublished)
        .map(|(i, _)| IspId(i as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_shape_matches_paper() {
        let roster = isp_roster();
        let geo = geocoded_isps(&roster);
        let pop = pop_only_isps(&roster);
        let unpub = unpublished_isps(&roster);
        assert_eq!(geo.len(), 9, "paper step 1 uses 9 ISPs");
        assert_eq!(pop.len(), 11, "paper step 3 uses 11 ISPs");
        assert_eq!(geo.len() + pop.len(), MAPPED_ISPS);
        assert!(unpub.len() >= 8, "need several traceroute-only providers");
    }

    #[test]
    fn step1_link_targets_match_table1() {
        let roster = isp_roster();
        let total: usize = geocoded_isps(&roster)
            .iter()
            .map(|id| roster[id.index()].target_links)
            .sum();
        assert_eq!(total, 1258, "Table 1 totals 1258 links");
        let find = |n: &str| roster.iter().find(|p| p.name == n).unwrap().target_links;
        assert_eq!(find("AT&T"), 57);
        assert_eq!(find("Comcast"), 71);
        assert_eq!(find("Cogent"), 84);
        assert_eq!(find("EarthLink"), 370);
        assert_eq!(find("Integra"), 36);
        assert_eq!(find("Level 3"), 336);
        assert_eq!(find("Suddenlink"), 42);
        assert_eq!(find("Verizon"), 151);
        assert_eq!(find("Zayo"), 111);
    }

    #[test]
    fn step3_link_targets_match_paper_aggregate() {
        let roster = isp_roster();
        let total: usize = pop_only_isps(&roster)
            .iter()
            .map(|id| roster[id.index()].target_links)
            .sum();
        assert_eq!(total, 1153, "paper: step-3 ISPs contribute 1153 links");
        // Named values from the paper's text.
        let find = |n: &str| roster.iter().find(|p| p.name == n).unwrap().target_links;
        assert_eq!(find("Sprint"), 102);
        assert_eq!(find("CenturyLink"), 134);
    }

    #[test]
    fn affinities_are_valid_and_shaped() {
        let roster = isp_roster();
        for p in &roster {
            assert!((0.0..=1.0).contains(&p.backbone_affinity), "{}", p.name);
            assert!(p.target_links >= 10, "{}", p.name);
            assert!(p.target_cities >= 10, "{}", p.name);
        }
        // The paper's ranking shape: Suddenlink lowest sharing; DT/NTT/XO high.
        let aff = |n: &str| {
            roster
                .iter()
                .find(|p| p.name == n)
                .unwrap()
                .backbone_affinity
        };
        assert!(aff("Suddenlink") < aff("EarthLink") || aff("Suddenlink") < 0.2);
        assert!(aff("Deutsche Telekom") > 0.8);
        assert!(aff("NTT") > 0.8);
        assert!(aff("XO") > 0.8);
        assert!(aff("EarthLink") < 0.4 && aff("Level 3") < 0.4);
    }

    #[test]
    fn unique_names() {
        let roster = isp_roster();
        let mut names: Vec<&str> = roster.iter().map(|p| p.name.as_str()).collect();
        names.sort_unstable();
        let n = names.len();
        names.dedup();
        assert_eq!(names.len(), n);
    }
}
