//! Footprint synthesis: which ISP rents fiber in which conduit.
//!
//! The paper's central empirical finding is heavy conduit sharing driven by
//! economics: providers pull fiber through existing conduits rather than
//! trench new ones. We reproduce the *mechanism*: each provider connects its
//! target cities over the ground-truth conduit graph, routing with a cost
//! function that discounts popular (high-attractiveness) conduits in
//! proportion to the provider's `backbone_affinity`. High-affinity providers
//! (Deutsche Telekom, NTT, XO, …) pile onto the same backbone; low-affinity
//! providers (Suddenlink, EarthLink, Level 3) spread out.
//!
//! Footprint sizes are calibrated to the paper's per-ISP link counts
//! (Table 1 / §2.3) by batch-unwinding overshoot and padding with adjacent
//! conduits.

use intertubes_graph::{shortest_path_tree, NodeId};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cities::{City, CityId};
use crate::conduits::{ConduitId, ConduitSystem};
use crate::isps::IspProfile;

/// One provider's physical footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Footprint {
    /// Conduits the provider has fiber in, sorted by id. Each entry is one
    /// "long-haul link" in the paper's counting.
    pub conduits: Vec<ConduitId>,
    /// The seed cities the footprint was grown from.
    pub seed_cities: Vec<CityId>,
}

impl Footprint {
    /// All cities touched by the footprint (endpoints of its conduits),
    /// sorted and deduplicated.
    pub fn cities(&self, sys: &ConduitSystem) -> Vec<CityId> {
        let mut out: Vec<CityId> = self
            .conduits
            .iter()
            .flat_map(|c| {
                let cd = sys.conduit(*c);
                [cd.a, cd.b]
            })
            .collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Whether the provider rents fiber in `c`.
    pub fn uses(&self, c: ConduitId) -> bool {
        self.conduits.binary_search(&c).is_ok()
    }
}

/// Scores each city for an ISP: population-weighted, regionally decayed.
fn presence_scores(cities: &[City], isp: &IspProfile, rng: &mut StdRng) -> Vec<f64> {
    // High-affinity providers stick to the biggest metros; low-affinity
    // providers serve smaller markets too.
    let pop_exp = 0.30 + 0.40 * isp.backbone_affinity;
    cities
        .iter()
        .map(|c| {
            let pop = (c.population as f64).powf(pop_exp);
            let regional = match isp.anchor {
                Some((lat, lon)) => {
                    let anchor = intertubes_geo::GeoPoint::new_unchecked(lat, lon);
                    let d = anchor.distance_km(&c.location);
                    (-d / isp.spread_km).exp()
                }
                None => 1.0,
            };
            let jitter: f64 = rng.gen_range(0.75..1.25);
            pop * regional * jitter
        })
        .collect()
}

/// Grows one provider's footprint. See the module docs for the scheme.
///
/// `prior_counts` holds the tenant count per conduit over the providers
/// already placed; low-affinity (diverse) providers preferentially pad into
/// little-used conduits. This mirrors how the real map was assembled: a
/// conduit appears at all because *some* provider's map shows it, and the
/// geographically diverse providers are the source of most unique conduits.
/// Conduits hidden from geocoded-map providers (`reserved[c] = true`):
/// these are the regional trenches that only surface in step 3 of the
/// paper's pipeline, when POP-only maps are added (+30 conduits in the
/// paper). Pass all-false to disable the mechanism.
pub fn grow_footprint(
    cities: &[City],
    sys: &ConduitSystem,
    isp: &IspProfile,
    prior_counts: &[u16],
    reserved: &[bool],
    rng: &mut StdRng,
) -> Footprint {
    let hidden = |c: usize| -> bool {
        isp.map_kind == crate::isps::MapKind::Geocoded && reserved.get(c).copied().unwrap_or(false)
    };
    let scores = presence_scores(cities, isp, rng);
    let mut order: Vec<usize> = (0..cities.len()).collect();
    order.sort_by(|&a, &b| scores[b].total_cmp(&scores[a]));
    let seeds: Vec<CityId> = order
        .iter()
        .take(isp.target_cities.max(2))
        .map(|&i| CityId(i as u32))
        .collect();

    // Per-(ISP, conduit) routing jitter: diversifies low-affinity routing.
    let jitter: Vec<f64> = (0..sys.conduits.len()).map(|_| rng.gen::<f64>()).collect();
    let affinity = isp.backbone_affinity;
    let cost = |e: intertubes_graph::EdgeId| -> f64 {
        let cid = *sys.graph.edge(e);
        if hidden(cid.index()) {
            return f64::INFINITY;
        }
        let attr = sys.attractiveness[cid.index()];
        // The backbone discount has a universal part (established conduits
        // are cheap for *everyone* — that is the economics the paper
        // describes) plus an affinity-scaled part; the diversity jitter
        // spreads low-affinity providers across alternate spurs, and the
        // coverage discount steers them through conduits that no or few
        // earlier providers have shown (diverse providers are the source of
        // most unique conduits in the real map).
        let coverage = match prior_counts.get(cid.index()).copied().unwrap_or(0) {
            0 => 0.5,
            1 => 0.35,
            _ => 0.0,
        };
        // The handful of top corridors (the Rockies crossings, the NE
        // corridor) are an order of magnitude cheaper to rent into than to
        // bypass — even diversity-seeking providers transit them, which is
        // what produces the paper's "12 conduits shared by >17 of 20 ISPs".
        let backbone_discount = if attr > 0.88 { 0.45 } else { 0.0 };
        let penalty = (1.6
            - (0.60 + 0.65 * affinity) * attr
            - backbone_discount
            - (1.0 - affinity) * (0.9 * jitter[cid.index()] + coverage))
            .max(0.2);
        sys.conduit(cid).length_km * penalty
    };

    let mut in_footprint = vec![false; sys.conduits.len()];
    let mut in_component = vec![false; cities.len()];
    let mut footprint_len = 0usize;
    let mut batches: Vec<Vec<ConduitId>> = Vec::new();
    in_component[seeds[0].index()] = true;

    for s in seeds.iter().skip(1) {
        if footprint_len >= isp.target_links {
            break;
        }
        if in_component[s.index()] {
            continue;
        }
        // The cost function is non-negative by construction; if that were
        // ever violated this seed is skipped rather than panicking.
        let Ok(tree) = shortest_path_tree(&sys.graph, NodeId(s.0), cost) else {
            continue;
        };
        // Nearest node already in the component.
        let target = (0..cities.len())
            .filter(|&i| in_component[i])
            .min_by(|&a, &b| {
                tree.distance(NodeId(a as u32))
                    .total_cmp(&tree.distance(NodeId(b as u32)))
            });
        let Some(target) = target else { break };
        let Some(path) = tree.path_to(NodeId(target as u32)) else {
            continue;
        };
        if !tree.reachable(NodeId(target as u32)) {
            continue;
        }
        let mut batch = Vec::new();
        for e in &path.edges {
            let cid = *sys.graph.edge(*e);
            if !in_footprint[cid.index()] {
                in_footprint[cid.index()] = true;
                footprint_len += 1;
                batch.push(cid);
            }
        }
        for n in &path.nodes {
            in_component[n.index()] = true;
        }
        batches.push(batch);
    }

    // Unwind overshoot batch-by-batch (last connections first).
    while footprint_len > isp.target_links {
        let Some(batch) = batches.pop() else { break };
        for cid in batch {
            in_footprint[cid.index()] = false;
            footprint_len -= 1;
        }
    }
    // Recompute the component from surviving conduits.
    in_component.iter_mut().for_each(|b| *b = false);
    in_component[seeds[0].index()] = true;
    for (i, used) in in_footprint.iter().enumerate() {
        if *used {
            let c = sys.conduit(ConduitId(i as u32));
            in_component[c.a.index()] = true;
            in_component[c.b.index()] = true;
        }
    }

    // Pad with adjacent conduits up to the target, preferring attractive
    // conduits in proportion to affinity.
    while footprint_len < isp.target_links {
        let mut best: Option<(ConduitId, f64)> = None;
        for (i, c) in sys.conduits.iter().enumerate() {
            if in_footprint[i] || hidden(i) {
                continue;
            }
            if !(in_component[c.a.index()] || in_component[c.b.index()]) {
                continue;
            }
            let attr = sys.attractiveness[i];
            // Diverse providers seek out conduits nobody has shown yet.
            let coverage_bonus = match prior_counts.get(i).copied().unwrap_or(0) {
                0 => 1.8 * (1.0 - affinity),
                1 => 1.2 * (1.0 - affinity),
                _ => 0.0,
            };
            let w = 0.3 + affinity * attr + (1.0 - affinity) * jitter[i] + coverage_bonus;
            if best.map_or(true, |(_, bw)| w > bw) {
                best = Some((ConduitId(i as u32), w));
            }
        }
        let Some((cid, _)) = best else { break };
        in_footprint[cid.index()] = true;
        footprint_len += 1;
        let c = sys.conduit(cid);
        in_component[c.a.index()] = true;
        in_component[c.b.index()] = true;
    }

    let conduits: Vec<ConduitId> = in_footprint
        .iter()
        .enumerate()
        .filter(|(_, u)| **u)
        .map(|(i, _)| ConduitId(i as u32))
        .collect();
    Footprint {
        conduits,
        seed_cities: seeds,
    }
}

/// Grows footprints for the whole roster, in roster order, threading the
/// running tenant counts so later (and diverse) providers fill coverage
/// holes.
pub fn assign_footprints(
    cities: &[City],
    sys: &ConduitSystem,
    roster: &[IspProfile],
    rng: &mut StdRng,
) -> (Vec<Footprint>, Vec<bool>) {
    let reserved = reserve_step3_conduits(sys, 30, rng);
    let mut counts = vec![0u16; sys.conduits.len()];
    let mut out = Vec::with_capacity(roster.len());
    for isp in roster {
        let fp = grow_footprint(cities, sys, isp, &counts, &reserved, rng);
        for c in &fp.conduits {
            counts[c.index()] += 1;
        }
        out.push(fp);
    }
    (out, reserved)
}

/// Picks `n` low-attractiveness, non-bridge conduits to hide from
/// geocoded-map providers (the paper's step-3-only conduits).
fn reserve_step3_conduits(sys: &ConduitSystem, n: usize, rng: &mut StdRng) -> Vec<bool> {
    let bridge_edges: std::collections::HashSet<usize> = intertubes_graph::bridges(&sys.graph)
        .into_iter()
        .map(|e| sys.graph.edge(e).index())
        .collect();
    let mut candidates: Vec<usize> = (0..sys.conduits.len())
        .filter(|i| !bridge_edges.contains(i))
        .collect();
    candidates.sort_by(|&a, &b| sys.attractiveness[a].total_cmp(&sys.attractiveness[b]));
    candidates.truncate((n * 3).min(candidates.len()));
    // Sample n of the 3n least attractive, for geographic spread.
    let mut reserved = vec![false; sys.conduits.len()];
    let mut picked = 0usize;
    while picked < n && !candidates.is_empty() {
        let i = rng.gen_range(0..candidates.len());
        reserved[candidates.swap_remove(i)] = true;
        picked += 1;
    }
    reserved
}

/// Sharing-distribution targets (fractions of conduits shared by ≥ k
/// providers). Defaults are the paper's §4.2 numbers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharingTargets {
    /// Fraction shared by at least 2 providers (paper: 0.8967).
    pub ge2: f64,
    /// Fraction shared by at least 3 providers (paper: 0.6328).
    pub ge3: f64,
    /// Fraction shared by at least 4 providers (paper: 0.5350).
    pub ge4: f64,
}

impl Default for SharingTargets {
    fn default() -> Self {
        SharingTargets {
            ge2: 0.8967,
            ge3: 0.6328,
            ge4: 0.5350,
        }
    }
}

/// IRU-swap calibration pass.
///
/// The growth model alone leaves too many lightly-shared conduits compared
/// to the paper. The real market fixes this with *indefeasible right of use
/// swaps*: carriers trade capacity in their over-provisioned backbone
/// conduits for presence in each other's unique conduits (the paper cites
/// several such agreements, e.g. [44, 45]). This pass performs exactly such
/// swaps: it moves single tenancies of heavily-shared conduits into
/// lightly-shared adjacent conduits until the ≥2/≥3/≥4 sharing fractions
/// meet `targets`, preserving every provider's footprint size.
///
/// Only the first `mapped` footprints participate (the paper's 20 ISPs);
/// the top-15 most attractive conduits are protected as donors so the
/// heavily-shared chokepoint tail survives.
pub fn calibrate_sharing(
    sys: &ConduitSystem,
    footprints: &mut [Footprint],
    mapped: usize,
    geocoded: usize,
    reserved: &[bool],
    targets: &SharingTargets,
    rng: &mut StdRng,
) {
    let n = sys.conduits.len();
    let mapped = mapped.min(footprints.len());
    let mut counts = tenant_counts_upto(sys, &footprints[..mapped]);
    let mut uses: Vec<Vec<bool>> = footprints[..mapped]
        .iter()
        .map(|f| {
            let mut u = vec![false; n];
            for c in &f.conduits {
                u[c.index()] = true;
            }
            u
        })
        .collect();
    // Per-ISP touched-city sets, for spatial plausibility of swaps.
    let mut touches: Vec<Vec<bool>> = (0..mapped)
        .map(|i| {
            let mut t = vec![false; sys.graph.node_count()];
            for c in &footprints[i].conduits {
                let cd = sys.conduit(*c);
                t[cd.a.index()] = true;
                t[cd.b.index()] = true;
            }
            t
        })
        .collect();
    let protected: std::collections::HashSet<usize> =
        sys.chokepoints(15).into_iter().map(|c| c.index()).collect();

    // The k = 1 pass guarantees every conduit has at least one mapped
    // tenant — a conduit with none could never have entered the paper's
    // map in the first place.
    for (k, target) in [
        (1u16, 1.0),
        (2, targets.ge2),
        (3, targets.ge3),
        (4, targets.ge4),
    ] {
        // Receivers one tenant short of k, least attractive first; retry the
        // sweep until the target is met or no receiver can be served.
        let mut need = ((target * n as f64).round() as usize)
            .saturating_sub(counts.iter().filter(|&&c| c >= k).count());
        let mut receivers: Vec<usize> = (0..n).filter(|&i| counts[i] == k - 1).collect();
        receivers.sort_by(|&a, &b| sys.attractiveness[a].total_cmp(&sys.attractiveness[b]));
        for receiver in receivers {
            if need == 0 {
                break;
            }
            if counts[receiver] != k - 1 {
                continue;
            }
            let rc = sys.conduit(crate::conduits::ConduitId(receiver as u32));
            // Candidate providers: adjacent to the receiver, not tenants,
            // with a drainable donor conduit.
            let mut placed = false;
            let mut isps: Vec<usize> = (0..mapped).collect();
            // Shuffle provider order so swaps spread across the roster.
            for i in (1..isps.len()).rev() {
                isps.swap(i, rng.gen_range(0..=i));
            }
            if k == 1 {
                // Sole-tenant coverage preferentially goes to the POP-only
                // providers (roster indices ≥ 9): in the paper, step 3 is
                // what surfaces the last ~30 conduits that no geocoded map
                // shows.
                isps.sort_by_key(|&i| usize::from(i < 9));
            }
            'isp: for &isp in &isps {
                if uses[isp][receiver] {
                    continue;
                }
                // Step-3-only conduits never gain geocoded-map tenants —
                // those providers' maps simply do not show them.
                if reserved.get(receiver).copied().unwrap_or(false) && isp < geocoded {
                    continue;
                }
                if !(touches[isp][rc.a.index()] || touches[isp][rc.b.index()]) {
                    continue;
                }
                // Donor: a random well-shared, unprotected conduit of the
                // provider (random choice spreads the drain across the
                // mid-range instead of carving a notch into the histogram).
                let eligible: Vec<crate::conduits::ConduitId> = footprints[isp]
                    .conduits
                    .iter()
                    .copied()
                    .filter(|c| {
                        let i = c.index();
                        counts[i] >= k + 6 && !protected.contains(&i) && i != receiver
                    })
                    .collect();
                if eligible.is_empty() {
                    continue 'isp;
                }
                let donor = eligible[rng.gen_range(0..eligible.len())];
                // Execute the swap.
                let di = donor.index();
                uses[isp][di] = false;
                uses[isp][receiver] = true;
                counts[di] -= 1;
                counts[receiver] += 1;
                touches[isp][rc.a.index()] = true;
                touches[isp][rc.b.index()] = true;
                let fp = &mut footprints[isp];
                fp.conduits.retain(|c| *c != donor);
                let pos = fp.conduits.partition_point(|c| *c < rc.id);
                fp.conduits.insert(pos, rc.id);
                placed = true;
                break;
            }
            if placed {
                need -= 1;
            }
        }
    }
}

fn tenant_counts_upto(sys: &ConduitSystem, footprints: &[Footprint]) -> Vec<u16> {
    let mut counts = vec![0u16; sys.conduits.len()];
    for f in footprints {
        for c in &f.conduits {
            counts[c.index()] += 1;
        }
    }
    counts
}

/// Per-conduit tenant count over a set of footprints.
pub fn tenant_counts(sys: &ConduitSystem, footprints: &[Footprint]) -> Vec<u16> {
    let mut counts = vec![0u16; sys.conduits.len()];
    for f in footprints {
        for c in &f.conduits {
            counts[c.index()] += 1;
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::load_cities;
    use crate::conduits::{build_conduit_system, ConduitConfig};
    use crate::isps::isp_roster;
    use crate::transport::{build_pipeline_network, build_rail_network, build_road_network};
    use rand::SeedableRng;

    fn world() -> (Vec<City>, ConduitSystem, Vec<IspProfile>, Vec<Footprint>) {
        let cities = load_cities();
        let mut rng = StdRng::seed_from_u64(1504);
        let road = build_road_network(&cities, &mut rng);
        let rail = build_rail_network(&cities, &road, &mut rng);
        let pipe = build_pipeline_network(&cities, &road, &mut rng);
        let sys = build_conduit_system(
            &cities,
            &road,
            &rail,
            &pipe,
            &ConduitConfig::default(),
            &mut rng,
        );
        let roster = isp_roster();
        let (fps, _) = assign_footprints(&cities, &sys, &roster, &mut rng);
        (cities, sys, roster, fps)
    }

    #[test]
    fn footprints_hit_link_targets() {
        let (_, _, roster, fps) = world();
        for (isp, fp) in roster.iter().zip(fps.iter()) {
            let got = fp.conduits.len();
            let want = isp.target_links;
            assert!(
                got == want || (got as i64 - want as i64).unsigned_abs() as usize <= want / 10,
                "{}: footprint {} vs target {}",
                isp.name,
                got,
                want
            );
        }
    }

    #[test]
    fn footprints_are_sorted_unique() {
        let (_, _, _, fps) = world();
        for fp in &fps {
            for w in fp.conduits.windows(2) {
                assert!(w[0] < w[1]);
            }
        }
    }

    #[test]
    fn high_affinity_isps_share_more() {
        let (_, sys, roster, fps) = world();
        // Restrict to the 20 mapped ISPs as the paper does.
        let counts = tenant_counts(&sys, &fps[..crate::isps::MAPPED_ISPS]);
        let avg_sharing = |fp: &Footprint| -> f64 {
            fp.conduits
                .iter()
                .map(|c| counts[c.index()] as f64)
                .sum::<f64>()
                / fp.conduits.len() as f64
        };
        let by_name = |n: &str| {
            let i = roster.iter().position(|p| p.name == n).unwrap();
            avg_sharing(&fps[i])
        };
        let dt = by_name("Deutsche Telekom");
        let ntt = by_name("NTT");
        let sudden = by_name("Suddenlink");
        let earthlink = by_name("EarthLink");
        assert!(
            dt > sudden && ntt > sudden,
            "backbone riders must out-share Suddenlink: DT {dt:.1}, NTT {ntt:.1}, Suddenlink {sudden:.1}"
        );
        assert!(
            dt > earthlink,
            "DT ({dt:.1}) should share more than diverse EarthLink ({earthlink:.1})"
        );
    }

    #[test]
    fn chokepoints_collect_many_tenants() {
        let (_, sys, _, fps) = world();
        let counts = tenant_counts(&sys, &fps[..crate::isps::MAPPED_ISPS]);
        let chokepoints = sys.chokepoints(12);
        let avg_choke: f64 = chokepoints
            .iter()
            .map(|c| counts[c.index()] as f64)
            .sum::<f64>()
            / chokepoints.len() as f64;
        let avg_all: f64 = counts.iter().map(|&c| c as f64).sum::<f64>() / counts.len() as f64;
        assert!(
            avg_choke > 2.0 * avg_all,
            "chokepoints ({avg_choke:.1}) should be far above average ({avg_all:.1})"
        );
    }

    #[test]
    fn footprint_cities_cover_seeds_mostly() {
        let (_, sys, _, fps) = world();
        for fp in &fps {
            let cities = fp.cities(&sys);
            assert!(!cities.is_empty());
            // Each conduit endpoint must be in the city list.
            for c in &fp.conduits {
                let cd = sys.conduit(*c);
                assert!(cities.binary_search(&cd.a).is_ok());
                assert!(cities.binary_search(&cd.b).is_ok());
            }
        }
    }

    #[test]
    fn deterministic() {
        let (_, _, _, a) = world();
        let (_, _, _, b) = world();
        assert_eq!(a, b);
    }
}
