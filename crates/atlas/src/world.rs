//! Top-level synthetic world: the ground truth every pipeline stage is
//! evaluated against, plus the *published* artifacts the map-construction
//! pipeline is allowed to see.

use intertubes_geo::{GeoPoint, Polyline};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::cities::{find_city, load_cities, City, CityId};
use crate::conduits::{build_conduit_system, ConduitConfig, ConduitSystem};
use crate::isps::{isp_roster, IspProfile, MapKind, MAPPED_ISPS};
use crate::tenancy::{assign_footprints, Footprint};
use crate::transport::{
    build_pipeline_network, build_rail_network, build_road_network, TransportNetwork,
};

/// Generation parameters. The default seed (1504) produces the reference
/// world used throughout the test suite and EXPERIMENTS.md.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Master RNG seed; everything downstream is a pure function of it.
    pub seed: u64,
    /// Conduit-system parameters.
    pub conduits: ConduitConfig,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 1504,
            conduits: ConduitConfig::default(),
        }
    }
}

/// One link in a provider's published map.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedLink {
    /// Endpoint label, `"City, ST"`.
    pub a: String,
    /// Endpoint label, `"City, ST"`.
    pub b: String,
    /// Link geometry as digitized from the provider's map — present only
    /// for geocoded maps, and perturbed by digitization noise.
    pub geometry: Option<Polyline>,
}

/// A provider's published fiber map — the only footprint information the
/// map-construction pipeline may read directly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PublishedMap {
    /// Provider name.
    pub isp: String,
    /// Publication style.
    pub kind: MapKind,
    /// Published links.
    pub links: Vec<PublishedLink>,
}

/// The complete synthetic world.
#[derive(Debug, Clone)]
pub struct World {
    /// Generation parameters.
    pub config: WorldConfig,
    /// City table.
    pub cities: Vec<City>,
    /// Roadway layer (Fig. 2 analogue).
    pub roads: TransportNetwork,
    /// Railway layer (Fig. 3 analogue).
    pub rails: TransportNetwork,
    /// Pipeline rights-of-way.
    pub pipelines: TransportNetwork,
    /// Ground-truth conduit system.
    pub system: ConduitSystem,
    /// Provider roster (mapped ISPs first, then unpublished).
    pub roster: Vec<IspProfile>,
    /// Ground-truth footprints, aligned with `roster`.
    pub footprints: Vec<Footprint>,
}

impl World {
    /// Generates the world deterministically from `config`.
    pub fn generate(config: WorldConfig) -> World {
        let mut span = intertubes_obs::stage("world.generate");
        let mut rng = StdRng::seed_from_u64(config.seed);
        let cities = load_cities();
        let roads = build_road_network(&cities, &mut rng);
        let rails = build_rail_network(&cities, &roads, &mut rng);
        let pipelines = build_pipeline_network(&cities, &roads, &mut rng);
        let system = build_conduit_system(
            &cities,
            &roads,
            &rails,
            &pipelines,
            &config.conduits,
            &mut rng,
        );
        let roster = isp_roster();
        let (mut footprints, reserved) = assign_footprints(&cities, &system, &roster, &mut rng);
        let geocoded = crate::isps::geocoded_isps(&roster).len();
        crate::tenancy::calibrate_sharing(
            &system,
            &mut footprints,
            MAPPED_ISPS,
            geocoded,
            &reserved,
            &crate::tenancy::SharingTargets::default(),
            &mut rng,
        );
        span.items("cities", cities.len());
        span.items("conduits", system.conduits.len());
        span.items("providers", roster.len());
        World {
            config,
            cities,
            roads,
            rails,
            pipelines,
            system,
            roster,
            footprints,
        }
    }

    /// Shorthand: the default reference world.
    pub fn reference() -> World {
        World::generate(WorldConfig::default())
    }

    /// The footprints of the 20 mapped providers (the paper's analysis set).
    pub fn mapped_footprints(&self) -> &[Footprint] {
        &self.footprints[..MAPPED_ISPS]
    }

    /// `"City, ST"` label of a city.
    pub fn city_label(&self, id: CityId) -> String {
        self.cities[id.index()].label()
    }

    /// City location.
    pub fn city_location(&self, id: CityId) -> GeoPoint {
        self.cities[id.index()].location
    }

    /// Finds a city by name/state.
    pub fn find_city(&self, name: &str, state: &str) -> Option<CityId> {
        find_city(&self.cities, name, state)
    }

    /// Produces the published maps for all *mapped* providers, with
    /// per-provider digitization noise on geocoded geometry.
    ///
    /// Deterministic: noise derives from the world seed and the provider
    /// index, not from generation-time RNG state.
    pub fn publish_maps(&self) -> Vec<PublishedMap> {
        let mut out = Vec::with_capacity(MAPPED_ISPS);
        for (i, isp) in self.roster.iter().take(MAPPED_ISPS).enumerate() {
            let mut rng = StdRng::seed_from_u64(self.config.seed ^ (0x9e37_79b9 + i as u64));
            let fp = &self.footprints[i];
            let mut links = Vec::new();
            let mut seen_pairs = std::collections::HashSet::new();
            for cid in &fp.conduits {
                let c = self.system.conduit(*cid);
                let (a, b) = (self.city_label(c.a), self.city_label(c.b));
                match isp.map_kind {
                    MapKind::Geocoded => {
                        let geometry = perturb_geometry(&mut rng, &c.geometry, 0.8);
                        links.push(PublishedLink {
                            a,
                            b,
                            geometry: Some(geometry),
                        });
                    }
                    MapKind::PopOnly => {
                        // POP maps list each city pair once, no geometry.
                        let pair_key = (c.a.min(c.b), c.a.max(c.b));
                        if seen_pairs.insert(pair_key) {
                            links.push(PublishedLink {
                                a,
                                b,
                                geometry: None,
                            });
                        }
                    }
                    MapKind::Unpublished => unreachable!("mapped ISPs only"),
                }
            }
            out.push(PublishedMap {
                isp: isp.name.clone(),
                kind: isp.map_kind,
                links,
            });
        }
        out
    }
}

/// Adds digitization noise: each interior vertex moves up to `max_km` in a
/// random direction; endpoints stay pinned to their cities.
fn perturb_geometry(rng: &mut StdRng, geometry: &Polyline, max_km: f64) -> Polyline {
    // The 60 km step is a positive constant, so densify cannot fail; fall
    // back to the undensified geometry rather than panicking regardless.
    let dense = geometry
        .densify(60.0)
        .unwrap_or_else(|_| geometry.clone());
    let pts = dense.points();
    let n = pts.len();
    let mut out = Vec::with_capacity(n);
    for (i, p) in pts.iter().enumerate() {
        if i == 0 || i == n - 1 {
            out.push(*p);
        } else {
            let bearing: f64 = rng.gen_range(0.0..360.0);
            let d: f64 = rng.gen_range(0.0..max_km);
            out.push(p.destination(bearing, d));
        }
    }
    // Same arity as the (valid) densified input, so construction cannot
    // fail; keep the unperturbed geometry rather than panicking regardless.
    Polyline::new(out).unwrap_or(dense)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> World {
        World::reference()
    }

    #[test]
    fn reference_world_has_paper_scale() {
        let w = world();
        assert_eq!(w.system.conduits.len(), 542);
        assert!(w.cities.len() >= 180);
        let mapped_links: usize = w.mapped_footprints().iter().map(|f| f.conduits.len()).sum();
        // Paper: 2411 links over the 20 mapped ISPs. Allow ±10 % slack for
        // footprints that could not hit their exact target.
        assert!(
            (2170..=2660).contains(&mapped_links),
            "mapped links {mapped_links} should be near 2411"
        );
    }

    #[test]
    fn published_maps_cover_mapped_isps_only() {
        let w = world();
        let maps = w.publish_maps();
        assert_eq!(maps.len(), MAPPED_ISPS);
        let geocoded = maps.iter().filter(|m| m.kind == MapKind::Geocoded).count();
        let pop_only = maps.iter().filter(|m| m.kind == MapKind::PopOnly).count();
        assert_eq!(geocoded, 9);
        assert_eq!(pop_only, 11);
    }

    #[test]
    fn geocoded_maps_have_geometry_pop_maps_do_not() {
        let w = world();
        for m in w.publish_maps() {
            match m.kind {
                MapKind::Geocoded => {
                    assert!(!m.links.is_empty());
                    assert!(m.links.iter().all(|l| l.geometry.is_some()), "{}", m.isp);
                }
                MapKind::PopOnly => {
                    assert!(!m.links.is_empty());
                    assert!(m.links.iter().all(|l| l.geometry.is_none()), "{}", m.isp);
                }
                MapKind::Unpublished => panic!("unpublished ISP in publish_maps"),
            }
        }
    }

    #[test]
    fn digitization_noise_is_small() {
        let w = world();
        let maps = w.publish_maps();
        // Find a geocoded map and verify its geometry stays within ~1 km of
        // the true conduit (sampled).
        let level3_idx = w.roster.iter().position(|p| p.name == "Level 3").unwrap();
        let m = &maps[level3_idx];
        let fp = &w.footprints[level3_idx];
        for (link, cid) in m.links.iter().zip(fp.conduits.iter()).take(10) {
            let truth = &w.system.conduit(*cid).geometry;
            let published = link.geometry.as_ref().unwrap();
            // Compare midpoints: digitization noise ≤ 0.8 km plus densify
            // discretization.
            let d = truth
                .point_at_fraction(0.5)
                .distance_km(&published.point_at_fraction(0.5));
            assert!(d < 5.0, "published geometry {d} km off the trench");
        }
    }

    #[test]
    fn publish_is_deterministic() {
        let w = world();
        assert_eq!(w.publish_maps(), w.publish_maps());
    }

    #[test]
    fn two_worlds_same_seed_identical_footprints() {
        let a = world();
        let b = world();
        assert_eq!(a.footprints, b.footprints);
    }

    #[test]
    fn different_seeds_differ() {
        let a = world();
        let b = World::generate(WorldConfig {
            seed: 7,
            ..WorldConfig::default()
        });
        // Same city table, but tenancy should differ somewhere.
        assert_eq!(a.cities.len(), b.cities.len());
        assert_ne!(a.footprints, b.footprints);
    }
}
