//! Ground-truth conduit system (the physical "series of tubes").
//!
//! The paper's final map contains 542 conduits over 273 nodes. Conduits are
//! trenches dug along existing rights-of-way; we generate them by selecting
//! transportation corridors:
//!
//! 1. Every road corridor becomes a candidate conduit; where a parallel rail
//!    corridor exists the conduit may follow the railway instead (the paper
//!    finds road co-location more common than rail).
//! 2. A small fraction follows pipeline rights-of-way or no known corridor
//!    at all (the paper's Fig. 5 cases).
//! 3. The set is trimmed / padded with parallel conduits to hit the target
//!    count while preserving connectivity.
//!
//! Each conduit gets an *attractiveness* score — sampled shortest-path
//! betweenness weighted by population gravity. Attractiveness drives tenancy
//! concentration (popular corridors collect many tenants) and emerges as the
//! paper's "chokepoint" phenomenon: a dozen conduits shared by nearly every
//! provider.

use intertubes_geo::{GeoPoint, Polyline};
use intertubes_graph::{bridges, dijkstra, MultiGraph, NodeId};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cities::{City, CityId};
use crate::transport::{jittered_route, TransportNetwork};

/// Index of a conduit in the ground-truth system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ConduitId(pub u32);

impl ConduitId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The right-of-way a conduit was trenched along.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RowType {
    /// Along a roadway.
    Road,
    /// Along a railway.
    Rail,
    /// Along a pipeline right-of-way.
    Pipeline,
    /// No known transportation corridor (direct trench).
    Unknown,
}

impl std::fmt::Display for RowType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RowType::Road => write!(f, "road"),
            RowType::Rail => write!(f, "rail"),
            RowType::Pipeline => write!(f, "pipeline"),
            RowType::Unknown => write!(f, "unknown"),
        }
    }
}

/// One physical conduit between two cities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conduit {
    /// Stable id (index into [`ConduitSystem::conduits`]).
    pub id: ConduitId,
    /// One endpoint city.
    pub a: CityId,
    /// The other endpoint city.
    pub b: CityId,
    /// Trench geometry.
    pub geometry: Polyline,
    /// The right-of-way followed.
    pub row: RowType,
    /// Cached geometry length, km.
    pub length_km: f64,
}

/// The ground-truth physical conduit network.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConduitSystem {
    /// All conduits, indexed by [`ConduitId`].
    pub conduits: Vec<Conduit>,
    /// Conduit graph: nodes are all cities (ids = [`CityId`] indices), edge
    /// payloads are [`ConduitId`]s. Parallel conduits appear as parallel
    /// edges.
    pub graph: MultiGraph<CityId, ConduitId>,
    /// Per-conduit attractiveness in `[0, 1]` (normalized log betweenness).
    pub attractiveness: Vec<f64>,
}

impl ConduitSystem {
    /// The `k` most attractive conduits — the shared-backbone chokepoints.
    pub fn chokepoints(&self, k: usize) -> Vec<ConduitId> {
        let mut ids: Vec<ConduitId> = (0..self.conduits.len() as u32).map(ConduitId).collect();
        ids.sort_by(|x, y| {
            self.attractiveness[y.index()].total_cmp(&self.attractiveness[x.index()])
        });
        ids.truncate(k);
        ids
    }

    /// Looks up a conduit.
    pub fn conduit(&self, id: ConduitId) -> &Conduit {
        &self.conduits[id.index()]
    }

    /// Total trench mileage, km.
    pub fn total_length_km(&self) -> f64 {
        self.conduits.iter().map(|c| c.length_km).sum()
    }
}

/// Parameters of conduit-system generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConduitConfig {
    /// Target conduit count (paper: 542).
    pub target_conduits: usize,
    /// Probability that a conduit with a parallel rail corridor follows the
    /// railway instead of the road.
    pub rail_preference: f64,
    /// Probability that a conduit near a pipeline corridor follows it.
    pub pipeline_preference: f64,
    /// Probability of a "direct trench" conduit on no known corridor.
    pub unknown_row_rate: f64,
    /// Probability that a conduit takes a *detour* right-of-way through an
    /// intermediate city instead of the direct corridor. The paper observes
    /// exactly this: "some long-haul fiber links ... traverse much longer
    /// distances than necessary between two cities, perhaps due to ease of
    /// deployment or lower costs in certain conduits" (§5.3) — only ~65 %
    /// of best existing paths are also best-ROW paths.
    pub detour_rate: f64,
}

impl Default for ConduitConfig {
    fn default() -> Self {
        ConduitConfig {
            target_conduits: 542,
            rail_preference: 0.28,
            pipeline_preference: 0.55,
            unknown_row_rate: 0.02,
            detour_rate: 0.30,
        }
    }
}

/// Pair key normalized to `(min, max)`.
fn key(u: NodeId, v: NodeId) -> (u32, u32) {
    (u.0.min(v.0), u.0.max(v.0))
}

/// Builds the ground-truth conduit system from the transport layers.
pub fn build_conduit_system(
    cities: &[City],
    road: &TransportNetwork,
    rail: &TransportNetwork,
    pipeline: &TransportNetwork,
    cfg: &ConduitConfig,
    rng: &mut StdRng,
) -> ConduitSystem {
    // Corridor lookup tables by endpoint pair.
    let rail_by_pair: std::collections::HashMap<(u32, u32), u32> = rail
        .graph
        .edge_refs()
        .map(|e| (key(e.u, e.v), e.id.0))
        .collect();
    let pipe_by_pair: std::collections::HashMap<(u32, u32), u32> = pipeline
        .graph
        .edge_refs()
        .map(|e| (key(e.u, e.v), e.id.0))
        .collect();

    // Step 1: one conduit per road corridor, with ROW selection.
    struct Draft {
        u: NodeId,
        v: NodeId,
        geometry: Polyline,
        row: RowType,
    }
    let mut drafts: Vec<Draft> = Vec::new();
    for e in road.graph.edge_refs() {
        let k = key(e.u, e.v);
        let (row, geometry) =
            if pipe_by_pair.contains_key(&k) && rng.gen_bool(cfg.pipeline_preference) {
                let pe = pipe_by_pair[&k];
                (
                    RowType::Pipeline,
                    pipeline
                        .graph
                        .edge(intertubes_graph::EdgeId(pe))
                        .geometry
                        .clone(),
                )
            } else if rail_by_pair.contains_key(&k) && rng.gen_bool(cfg.rail_preference) {
                let re = rail_by_pair[&k];
                (
                    RowType::Rail,
                    rail.graph
                        .edge(intertubes_graph::EdgeId(re))
                        .geometry
                        .clone(),
                )
            } else if rng.gen_bool(cfg.unknown_row_rate) {
                let a = cities[e.u.index()].location;
                let b = cities[e.v.index()].location;
                (RowType::Unknown, jittered_route(rng, a, b, 0.06, 2))
            } else if rng.gen_bool(cfg.detour_rate) {
                // Detour trench: the conduit reaches v the long way round,
                // through a common road neighbour w (u→w→v).
                match detour_geometry(road, e.u, e.v) {
                    Some(g) => (RowType::Road, g),
                    None => (RowType::Road, e.data.geometry.clone()),
                }
            } else {
                (RowType::Road, e.data.geometry.clone())
            };
        drafts.push(Draft {
            u: e.u,
            v: e.v,
            geometry,
            row,
        });
    }

    // Step 2: trim surplus low-value corridors (never bridges) or pad with
    // parallel conduits on the most attractive corridors.
    let gravity = |d: &Draft| {
        let pa = cities[d.u.index()].population as f64;
        let pb = cities[d.v.index()].population as f64;
        (pa * pb).sqrt() / (d.geometry.length_km() + 50.0)
    };
    while drafts.len() > cfg.target_conduits {
        // Build the current graph to find bridges.
        let mut g: MultiGraph<CityId, u32> = MultiGraph::new();
        for i in 0..cities.len() {
            g.add_node(CityId(i as u32));
        }
        for (i, d) in drafts.iter().enumerate() {
            g.add_edge(d.u, d.v, i as u32);
        }
        let bridge_set: std::collections::HashSet<usize> = bridges(&g)
            .into_iter()
            .map(|e| *g.edge(e) as usize)
            .collect();
        // Remove the lowest-gravity non-bridge draft.
        let victim = drafts
            .iter()
            .enumerate()
            .filter(|(i, _)| !bridge_set.contains(i))
            .min_by(|(_, a), (_, b)| gravity(a).total_cmp(&gravity(b)))
            .map(|(i, _)| i);
        match victim {
            Some(i) => {
                drafts.swap_remove(i);
            }
            None => break, // everything is a bridge; accept the surplus
        }
    }

    // Attractiveness over the current drafts (needed for padding too).
    let mut attr = sampled_betweenness(
        cities,
        &drafts
            .iter()
            .map(|d| (d.u, d.v, d.geometry.length_km()))
            .collect::<Vec<_>>(),
        rng,
    );

    if drafts.len() < cfg.target_conduits {
        // Pad: parallel conduits along the most attractive corridors, using
        // the other layer's right-of-way where available.
        let mut order: Vec<usize> = (0..drafts.len()).collect();
        order.sort_by(|&x, &y| attr[y].total_cmp(&attr[x]));
        // Skip the chokepoint ranks: the very top corridors in the real map
        // are single heavily-shared trenches (SLC–Denver at 19 tenants, …),
        // while parallel second trenches show up on strong-but-not-extreme
        // corridors (the paper's Kansas City–Denver example).
        let mut i = 30.min(order.len());
        while drafts.len() < cfg.target_conduits && i < order.len() {
            let src = order[i];
            i += 1;
            let (u, v) = (drafts[src].u, drafts[src].v);
            let k = key(u, v);
            let (row, geometry) =
                if drafts[src].row != RowType::Rail && rail_by_pair.contains_key(&k) {
                    let re = rail_by_pair[&k];
                    (
                        RowType::Rail,
                        rail.graph
                            .edge(intertubes_graph::EdgeId(re))
                            .geometry
                            .clone(),
                    )
                } else {
                    // Second trench a few km to the side of the existing one —
                    // far enough that map construction can tell them apart.
                    let side = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                    let offset_km = side * rng.gen_range(5.0..9.0);
                    // densify cannot refuse a positive constant step; fall
                    // back to the raw geometry rather than panic if it ever
                    // does.
                    let base = drafts[src]
                        .geometry
                        .densify(40.0)
                        .unwrap_or_else(|_| drafts[src].geometry.clone());
                    (RowType::Road, base.offset_parallel(offset_km))
                };
            let parent_attr = attr[src];
            drafts.push(Draft {
                u,
                v,
                geometry,
                row,
            });
            attr.push(parent_attr * 0.8);
        }
    }

    // Materialize.
    let mut conduits = Vec::with_capacity(drafts.len());
    let mut graph: MultiGraph<CityId, ConduitId> =
        MultiGraph::with_capacity(cities.len(), drafts.len());
    for i in 0..cities.len() {
        graph.add_node(CityId(i as u32));
    }
    for (i, d) in drafts.into_iter().enumerate() {
        let id = ConduitId(i as u32);
        let length_km = d.geometry.length_km();
        graph.add_edge(d.u, d.v, id);
        conduits.push(Conduit {
            id,
            a: CityId(d.u.0),
            b: CityId(d.v.0),
            geometry: d.geometry,
            row: d.row,
            length_km,
        });
    }
    // Normalize attractiveness to [0, 1].
    let max = attr.iter().copied().fold(f64::MIN, f64::max).max(1e-9);
    for a in &mut attr {
        *a = (*a / max).clamp(0.0, 1.0);
    }
    ConduitSystem {
        conduits,
        graph,
        attractiveness: attr,
    }
}

/// The cheapest two-hop road route u→w→v through a common neighbour `w`,
/// capped at 2.2× the direct corridor (longer detours don't get trenched).
fn detour_geometry(road: &TransportNetwork, u: NodeId, v: NodeId) -> Option<Polyline> {
    let direct_len = road
        .graph
        .edges_between(u, v)
        .next()
        .map(|e| road.graph.edge(e).length_km)?;
    let mut best: Option<(f64, intertubes_graph::EdgeId, intertubes_graph::EdgeId)> = None;
    for (e1, w) in road.graph.neighbors(u) {
        if w == v || w == u {
            continue;
        }
        for e2 in road.graph.edges_between(w, v) {
            let total = road.graph.edge(e1).length_km + road.graph.edge(e2).length_km;
            if total <= 2.2 * direct_len && best.map_or(true, |(b, _, _)| total < b) {
                best = Some((total, e1, e2));
            }
        }
    }
    let (_, e1, e2) = best?;
    // Concatenate the two corridor geometries with consistent orientation.
    let orient = |g: &Polyline, from: GeoPoint| -> Vec<GeoPoint> {
        if g.start().distance_km(&from) <= g.end().distance_km(&from) {
            g.points().to_vec()
        } else {
            let mut p = g.points().to_vec();
            p.reverse();
            p
        }
    };
    let from_u = cities_loc(road, u);
    let mut pts = orient(&road.graph.edge(e1).geometry, from_u);
    let w_loc = *pts.last()?;
    let seg2 = orient(&road.graph.edge(e2).geometry, w_loc);
    pts.extend_from_slice(&seg2[1..]);
    Polyline::new(pts).ok()
}

/// Location of a city node within a transport network (node payload order
/// matches the city table; geometry endpoints are authoritative).
fn cities_loc(net: &TransportNetwork, n: NodeId) -> GeoPoint {
    // Any incident corridor starts or ends at the city; pick the closer end.
    for (e, _) in net.graph.neighbors(n) {
        let g = &net.graph.edge(e).geometry;
        let (u, v) = net.graph.endpoints(e);
        return if u == n {
            g.start()
        } else if v == n {
            g.end()
        } else {
            g.start()
        };
    }
    GeoPoint::new_unchecked(0.0, 0.0)
}

/// Sampled, gravity-weighted shortest-path edge betweenness.
///
/// Samples city pairs with probability proportional to population product
/// and counts how often each draft conduit lies on the km-shortest path.
/// Returns log-compressed counts.
fn sampled_betweenness(
    cities: &[City],
    edges: &[(NodeId, NodeId, f64)],
    rng: &mut StdRng,
) -> Vec<f64> {
    let mut g: MultiGraph<(), f64> = MultiGraph::new();
    for _ in 0..cities.len() {
        g.add_node(());
    }
    for (u, v, len) in edges {
        g.add_edge(*u, *v, *len);
    }
    // Cumulative population weights for pair sampling.
    let total_pop: f64 = cities.iter().map(|c| c.population as f64).sum();
    let mut cumulative = Vec::with_capacity(cities.len());
    let mut acc = 0.0;
    for c in cities {
        acc += c.population as f64 / total_pop;
        cumulative.push(acc);
    }
    let sample_city = |rng: &mut StdRng| -> usize {
        let x: f64 = rng.gen();
        cumulative.partition_point(|&c| c < x).min(cities.len() - 1)
    };
    let mut counts = vec![0u32; edges.len()];
    const SAMPLES: usize = 800;
    for _ in 0..SAMPLES {
        let s = sample_city(rng);
        let t = sample_city(rng);
        if s == t {
            continue;
        }
        if let Ok(Some(p)) = dijkstra(&g, NodeId(s as u32), NodeId(t as u32), |e| *g.edge(e)) {
            for e in p.edges {
                counts[e.index()] += 1;
            }
        }
    }
    counts.iter().map(|&c| (1.0 + c as f64).ln()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::load_cities;
    use crate::transport::{build_pipeline_network, build_rail_network, build_road_network};
    use intertubes_graph::is_connected;
    use rand::SeedableRng;

    fn system() -> (Vec<City>, ConduitSystem) {
        let cities = load_cities();
        let mut rng = StdRng::seed_from_u64(1504);
        let road = build_road_network(&cities, &mut rng);
        let rail = build_rail_network(&cities, &road, &mut rng);
        let pipe = build_pipeline_network(&cities, &road, &mut rng);
        let sys = build_conduit_system(
            &cities,
            &road,
            &rail,
            &pipe,
            &ConduitConfig::default(),
            &mut rng,
        );
        (cities, sys)
    }

    #[test]
    fn hits_target_count_and_stays_connected() {
        let (_, sys) = system();
        assert_eq!(sys.conduits.len(), 542, "paper target: 542 conduits");
        assert_eq!(sys.graph.edge_count(), 542);
        assert!(is_connected(&sys.graph), "conduit system must be connected");
    }

    #[test]
    fn row_mix_is_road_dominated() {
        let (_, sys) = system();
        let count = |r: RowType| sys.conduits.iter().filter(|c| c.row == r).count();
        let road = count(RowType::Road);
        let rail = count(RowType::Rail);
        let pipe = count(RowType::Pipeline);
        let unk = count(RowType::Unknown);
        assert!(road > rail, "road ({road}) should dominate rail ({rail})");
        assert!(rail > pipe, "rail ({rail}) should exceed pipeline ({pipe})");
        assert!(
            unk < sys.conduits.len() / 10,
            "unknown should be rare ({unk})"
        );
    }

    #[test]
    fn attractiveness_is_normalized_and_varied() {
        let (_, sys) = system();
        assert_eq!(sys.attractiveness.len(), sys.conduits.len());
        let max = sys.attractiveness.iter().copied().fold(f64::MIN, f64::max);
        let min = sys.attractiveness.iter().copied().fold(f64::MAX, f64::min);
        assert!((max - 1.0).abs() < 1e-9);
        assert!(min >= 0.0);
        // Backbone vs spur spread must exist for tenancy concentration.
        assert!(max - min > 0.5);
    }

    #[test]
    fn chokepoints_are_top_attractiveness() {
        let (_, sys) = system();
        let ch = sys.chokepoints(12);
        assert_eq!(ch.len(), 12);
        let min_choke = ch
            .iter()
            .map(|c| sys.attractiveness[c.index()])
            .fold(f64::MAX, f64::min);
        let non_choke_max = (0..sys.conduits.len())
            .filter(|i| !ch.iter().any(|c| c.index() == *i))
            .map(|i| sys.attractiveness[i])
            .fold(f64::MIN, f64::max);
        assert!(min_choke >= non_choke_max - 1e-9);
    }

    #[test]
    fn geometry_endpoints_match_cities() {
        let (cities, sys) = system();
        for c in &sys.conduits {
            let a = cities[c.a.index()].location;
            let b = cities[c.b.index()].location;
            let ok_fwd =
                c.geometry.start().distance_km(&a) < 0.1 && c.geometry.end().distance_km(&b) < 0.1;
            let ok_rev =
                c.geometry.start().distance_km(&b) < 0.1 && c.geometry.end().distance_km(&a) < 0.1;
            assert!(ok_fwd || ok_rev, "conduit {:?} geometry detached", c.id);
            assert!(c.length_km >= a.distance_km(&b) - 1e-6);
        }
    }

    #[test]
    fn long_haul_definition_mostly_respected() {
        // Paper: a long-haul link spans >= 30 miles (~48 km) or joins big
        // population centers. Adjacent-metro corridors may be shorter.
        let (cities, sys) = system();
        let violating = sys
            .conduits
            .iter()
            .filter(|c| {
                c.length_km < 48.0
                    && cities[c.a.index()].population < 100_000
                    && cities[c.b.index()].population < 100_000
            })
            .count();
        assert!(
            violating * 20 < sys.conduits.len(),
            "too many sub-long-haul conduits: {violating}"
        );
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let (_, a) = system();
        let (_, b) = system();
        assert_eq!(a.conduits.len(), b.conduits.len());
        for (x, y) in a.conduits.iter().zip(b.conduits.iter()) {
            assert_eq!(x, y);
        }
        assert_eq!(a.attractiveness, b.attractiveness);
    }
}
