//! The embedded continental-US city table.
//!
//! The paper's map contains 273 nodes/cities, mixing major metros with
//! smaller waypoint towns that show up as conduit endpoints (Battle Creek MI,
//! Wichita Falls TX, Casper WY, …). This table embeds ~190 CONUS cities with
//! approximate coordinates and metro-area populations; it deliberately
//! includes every city named in the paper's Tables 2/3 and §2/§4 examples so
//! regenerated tables read like the originals. Coordinates are city centers
//! to ~0.01°, which is far below the corridor-analysis buffer.

use intertubes_geo::GeoPoint;
use serde::{Deserialize, Serialize};

/// Index of a city in the atlas city table (and, by construction, the node
/// id of that city in every graph the atlas builds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CityId(pub u32);

impl CityId {
    /// The id as a usize index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A continental-US city.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct City {
    /// City name, e.g. `"Salt Lake City"`.
    pub name: String,
    /// Two-letter state code.
    pub state: String,
    /// Approximate city-center location.
    pub location: GeoPoint,
    /// Approximate metro population (gravity weight for traffic and
    /// footprint synthesis).
    pub population: u32,
}

impl City {
    /// `"Name, ST"` display label used in published maps and tables.
    pub fn label(&self) -> String {
        format!("{}, {}", self.name, self.state)
    }
}

/// One row of the static table: name, state, lat, lon, metro population.
type Row = (&'static str, &'static str, f64, f64, u32);

/// The static city table. Populations are rough mid-2010s metro estimates —
/// they act only as gravity weights.
#[rustfmt::skip]
pub const CITY_TABLE: &[Row] = &[
    // --- Northeast ---
    ("New York", "NY", 40.71, -74.01, 19_800_000),
    ("Newark", "NJ", 40.74, -74.17, 2_800_000),
    ("Edison", "NJ", 40.52, -74.41, 1_200_000),
    ("Trenton", "NJ", 40.22, -74.76, 370_000),
    ("Philadelphia", "PA", 39.95, -75.17, 6_100_000),
    ("Allentown", "PA", 40.60, -75.47, 830_000),
    ("Scranton", "PA", 41.41, -75.66, 560_000),
    ("Harrisburg", "PA", 40.27, -76.88, 570_000),
    ("Pittsburgh", "PA", 40.44, -79.99, 2_350_000),
    ("Erie", "PA", 42.13, -80.09, 280_000),
    ("Boston", "MA", 42.36, -71.06, 4_800_000),
    ("Worcester", "MA", 42.26, -71.80, 930_000),
    ("Springfield", "MA", 42.10, -72.59, 630_000),
    ("Providence", "RI", 41.82, -71.41, 1_600_000),
    ("Hartford", "CT", 41.77, -72.67, 1_210_000),
    ("New Haven", "CT", 41.31, -72.92, 860_000),
    ("Stamford", "CT", 41.05, -73.54, 130_000),
    ("White Plains", "NY", 41.03, -73.76, 980_000),
    ("Albany", "NY", 42.65, -73.75, 880_000),
    ("Syracuse", "NY", 43.05, -76.15, 660_000),
    ("Rochester", "NY", 43.16, -77.61, 1_080_000),
    ("Buffalo", "NY", 42.89, -78.88, 1_130_000),
    ("Binghamton", "NY", 42.10, -75.91, 250_000),
    ("Utica", "NY", 43.10, -75.23, 290_000),
    ("Portland", "ME", 43.66, -70.26, 520_000),
    ("Manchester", "NH", 42.99, -71.46, 400_000),
    ("Burlington", "VT", 44.48, -73.21, 220_000),
    ("Baltimore", "MD", 39.29, -76.61, 2_800_000),
    ("Towson", "MD", 39.40, -76.60, 830_000),
    ("Washington", "DC", 38.91, -77.04, 6_100_000),
    ("Wilmington", "DE", 39.75, -75.55, 720_000),
    // --- Southeast ---
    ("Richmond", "VA", 37.54, -77.44, 1_260_000),
    ("Norfolk", "VA", 36.85, -76.29, 1_720_000),
    ("Charlottesville", "VA", 38.03, -78.48, 230_000),
    ("Lynchburg", "VA", 37.41, -79.14, 260_000),
    ("Roanoke", "VA", 37.27, -79.94, 310_000),
    ("Raleigh", "NC", 35.78, -78.64, 1_300_000),
    ("Durham", "NC", 35.99, -78.90, 560_000),
    ("Greensboro", "NC", 36.07, -79.79, 760_000),
    ("Charlotte", "NC", 35.23, -80.84, 2_470_000),
    ("Asheville", "NC", 35.60, -82.55, 450_000),
    ("Wilmington", "NC", 34.23, -77.94, 290_000),
    ("Columbia", "SC", 34.00, -81.03, 820_000),
    ("Charleston", "SC", 32.78, -79.93, 760_000),
    ("Greenville", "SC", 34.85, -82.40, 900_000),
    ("Atlanta", "GA", 33.75, -84.39, 5_800_000),
    ("Macon", "GA", 32.84, -83.63, 230_000),
    ("Savannah", "GA", 32.08, -81.09, 390_000),
    ("Augusta", "GA", 33.47, -81.97, 600_000),
    ("Jacksonville", "FL", 30.33, -81.66, 1_500_000),
    ("Gainesville", "FL", 29.65, -82.32, 290_000),
    ("Ocala", "FL", 29.19, -82.14, 360_000),
    ("Orlando", "FL", 28.54, -81.38, 2_450_000),
    ("Tampa", "FL", 27.95, -82.46, 3_100_000),
    ("Sarasota", "FL", 27.34, -82.53, 800_000),
    ("Fort Myers", "FL", 26.64, -81.87, 740_000),
    ("West Palm Beach", "FL", 26.72, -80.05, 1_500_000),
    ("Boca Raton", "FL", 26.37, -80.10, 960_000),
    ("Miami", "FL", 25.76, -80.19, 6_100_000),
    ("Tallahassee", "FL", 30.44, -84.28, 380_000),
    ("Pensacola", "FL", 30.42, -87.22, 490_000),
    ("Daytona Beach", "FL", 29.21, -81.02, 650_000),
    ("Nashville", "TN", 36.16, -86.78, 1_900_000),
    ("Memphis", "TN", 35.15, -90.05, 1_340_000),
    ("Knoxville", "TN", 35.96, -83.92, 870_000),
    ("Chattanooga", "TN", 35.05, -85.31, 550_000),
    ("Birmingham", "AL", 33.52, -86.81, 1_150_000),
    ("Montgomery", "AL", 32.38, -86.31, 370_000),
    ("Mobile", "AL", 30.69, -88.04, 410_000),
    ("Huntsville", "AL", 34.73, -86.59, 450_000),
    ("Jackson", "MS", 32.30, -90.18, 580_000),
    ("Laurel", "MS", 31.69, -89.13, 85_000),
    ("Meridian", "MS", 32.36, -88.70, 110_000),
    ("Louisville", "KY", 38.25, -85.76, 1_290_000),
    ("Lexington", "KY", 38.04, -84.50, 510_000),
    ("Charleston", "WV", 38.35, -81.63, 220_000),
    // --- Gulf / South Central ---
    ("New Orleans", "LA", 29.95, -90.07, 1_270_000),
    ("Baton Rouge", "LA", 30.45, -91.15, 830_000),
    ("Lafayette", "LA", 30.22, -92.02, 490_000),
    ("Shreveport", "LA", 32.53, -93.75, 440_000),
    ("Monroe", "LA", 32.51, -92.12, 180_000),
    ("Little Rock", "AR", 34.75, -92.29, 730_000),
    ("Fort Smith", "AR", 35.39, -94.40, 280_000),
    ("Houston", "TX", 29.76, -95.37, 6_600_000),
    ("Beaumont", "TX", 30.08, -94.13, 410_000),
    ("Bryan", "TX", 30.67, -96.37, 260_000),
    ("Austin", "TX", 30.27, -97.74, 2_060_000),
    ("San Antonio", "TX", 29.42, -98.49, 2_430_000),
    ("Corpus Christi", "TX", 27.80, -97.40, 450_000),
    ("Laredo", "TX", 27.51, -99.51, 270_000),
    ("Dallas", "TX", 32.78, -96.80, 7_100_000),
    ("Fort Worth", "TX", 32.76, -97.33, 2_400_000),
    ("Waco", "TX", 31.55, -97.15, 270_000),
    ("Tyler", "TX", 32.35, -95.30, 230_000),
    ("Wichita Falls", "TX", 33.91, -98.49, 150_000),
    ("Abilene", "TX", 32.45, -99.73, 170_000),
    ("Midland", "TX", 32.00, -102.08, 170_000),
    ("San Angelo", "TX", 31.46, -100.44, 120_000),
    ("El Paso", "TX", 31.76, -106.49, 840_000),
    ("Lubbock", "TX", 33.58, -101.86, 320_000),
    ("Amarillo", "TX", 35.19, -101.83, 270_000),
    ("Oklahoma City", "OK", 35.47, -97.52, 1_400_000),
    ("Tulsa", "OK", 36.15, -95.99, 990_000),
    // --- Midwest ---
    ("Chicago", "IL", 41.88, -87.63, 9_500_000),
    ("Rockford", "IL", 42.27, -89.09, 340_000),
    ("Peoria", "IL", 40.69, -89.59, 380_000),
    ("Springfield", "IL", 39.78, -89.65, 210_000),
    ("Urbana", "IL", 40.11, -88.21, 240_000),
    ("Detroit", "MI", 42.33, -83.05, 4_300_000),
    ("Livonia", "MI", 42.37, -83.35, 950_000),
    ("Southfield", "MI", 42.47, -83.22, 720_000),
    ("Ann Arbor", "MI", 42.28, -83.74, 370_000),
    ("Lansing", "MI", 42.73, -84.56, 480_000),
    ("Battle Creek", "MI", 42.32, -85.18, 135_000),
    ("Kalamazoo", "MI", 42.29, -85.59, 340_000),
    ("Grand Rapids", "MI", 42.96, -85.66, 1_080_000),
    ("Flint", "MI", 43.01, -83.69, 410_000),
    ("Saginaw", "MI", 43.42, -83.95, 190_000),
    ("Toledo", "OH", 41.65, -83.54, 650_000),
    ("Cleveland", "OH", 41.50, -81.69, 2_060_000),
    ("Akron", "OH", 41.08, -81.52, 700_000),
    ("Youngstown", "OH", 41.10, -80.65, 540_000),
    ("Columbus", "OH", 39.96, -82.99, 2_080_000),
    ("Dayton", "OH", 39.76, -84.19, 800_000),
    ("Cincinnati", "OH", 39.10, -84.51, 2_190_000),
    ("Indianapolis", "IN", 39.77, -86.16, 2_050_000),
    ("Fort Wayne", "IN", 41.08, -85.14, 430_000),
    ("South Bend", "IN", 41.68, -86.25, 320_000),
    ("Evansville", "IN", 37.97, -87.57, 360_000),
    ("Milwaukee", "WI", 43.04, -87.91, 1_570_000),
    ("Madison", "WI", 43.07, -89.40, 650_000),
    ("Green Bay", "WI", 44.51, -88.02, 320_000),
    ("Eau Claire", "WI", 44.81, -91.50, 165_000),
    ("La Crosse", "WI", 43.80, -91.24, 140_000),
    ("Wausau", "WI", 44.96, -89.63, 135_000),
    ("Minneapolis", "MN", 44.98, -93.27, 3_550_000),
    ("Duluth", "MN", 46.79, -92.10, 280_000),
    ("Rochester", "MN", 44.02, -92.47, 215_000),
    ("St. Louis", "MO", 38.63, -90.20, 2_800_000),
    ("Kansas City", "MO", 39.10, -94.58, 2_100_000),
    ("Springfield", "MO", 37.21, -93.29, 460_000),
    ("Columbia", "MO", 38.95, -92.33, 180_000),
    ("Joplin", "MO", 37.08, -94.51, 180_000),
    ("Des Moines", "IA", 41.59, -93.62, 640_000),
    ("Cedar Rapids", "IA", 41.98, -91.67, 270_000),
    ("Davenport", "IA", 41.52, -90.58, 380_000),
    ("Sioux City", "IA", 42.50, -96.40, 170_000),
    ("Omaha", "NE", 41.26, -95.93, 930_000),
    ("Lincoln", "NE", 40.81, -96.68, 330_000),
    ("Grand Island", "NE", 40.93, -98.34, 85_000),
    ("North Platte", "NE", 41.12, -100.77, 36_000),
    ("Wichita", "KS", 37.69, -97.34, 640_000),
    ("Topeka", "KS", 39.05, -95.68, 230_000),
    ("Salina", "KS", 38.84, -97.61, 56_000),
    ("Hays", "KS", 38.88, -99.33, 21_000),
    ("Fargo", "ND", 46.88, -96.79, 230_000),
    ("Bismarck", "ND", 46.81, -100.78, 130_000),
    ("Sioux Falls", "SD", 43.55, -96.73, 260_000),
    ("Rapid City", "SD", 44.08, -103.23, 140_000),
    // --- Mountain West ---
    ("Denver", "CO", 39.74, -104.99, 2_860_000),
    ("Colorado Springs", "CO", 38.83, -104.82, 710_000),
    ("Pueblo", "CO", 38.25, -104.61, 165_000),
    ("Fort Collins", "CO", 40.59, -105.08, 340_000),
    ("Grand Junction", "CO", 39.06, -108.55, 150_000),
    ("Cheyenne", "WY", 41.14, -104.82, 98_000),
    ("Casper", "WY", 42.87, -106.31, 80_000),
    ("Rock Springs", "WY", 41.59, -109.20, 44_000),
    ("Billings", "MT", 45.78, -108.50, 170_000),
    ("Bozeman", "MT", 45.68, -111.04, 100_000),
    ("Missoula", "MT", 46.87, -113.99, 115_000),
    ("Great Falls", "MT", 47.50, -111.30, 82_000),
    ("Helena", "MT", 46.59, -112.04, 78_000),
    ("Boise", "ID", 43.62, -116.20, 680_000),
    ("Pocatello", "ID", 42.87, -112.45, 90_000),
    ("Twin Falls", "ID", 42.56, -114.46, 105_000),
    ("Salt Lake City", "UT", 40.76, -111.89, 1_170_000),
    ("Provo", "UT", 40.23, -111.66, 590_000),
    ("Ogden", "UT", 41.22, -111.97, 650_000),
    ("St. George", "UT", 37.10, -113.58, 160_000),
    ("Wells", "NV", 41.11, -114.96, 1_300),
    ("Elko", "NV", 40.83, -115.76, 52_000),
    ("Reno", "NV", 39.53, -119.81, 450_000),
    ("Las Vegas", "NV", 36.17, -115.14, 2_110_000),
    ("Phoenix", "AZ", 33.45, -112.07, 4_570_000),
    ("Tucson", "AZ", 32.22, -110.97, 1_010_000),
    ("Flagstaff", "AZ", 35.20, -111.65, 140_000),
    ("Sedona", "AZ", 34.87, -111.76, 10_000),
    ("Camp Verde", "AZ", 34.56, -111.85, 11_000),
    ("Yuma", "AZ", 32.69, -114.63, 200_000),
    ("Albuquerque", "NM", 35.08, -106.65, 910_000),
    ("Santa Fe", "NM", 35.69, -105.94, 150_000),
    ("Las Cruces", "NM", 32.31, -106.78, 215_000),
    ("Gallup", "NM", 35.53, -108.74, 22_000),
    ("Tucumcari", "NM", 35.17, -103.72, 5_000),
    // --- Pacific ---
    ("Seattle", "WA", 47.61, -122.33, 3_800_000),
    ("Tacoma", "WA", 47.25, -122.44, 860_000),
    ("Spokane", "WA", 47.66, -117.43, 560_000),
    ("Yakima", "WA", 46.60, -120.51, 250_000),
    ("Vancouver", "WA", 45.64, -122.66, 470_000),
    ("Portland", "OR", 45.52, -122.68, 2_400_000),
    ("Hillsboro", "OR", 45.52, -122.99, 105_000),
    ("Salem", "OR", 44.94, -123.04, 420_000),
    ("Eugene", "OR", 44.05, -123.09, 370_000),
    ("Medford", "OR", 42.33, -122.87, 215_000),
    ("Bend", "OR", 44.06, -121.32, 180_000),
    ("Pendleton", "OR", 45.67, -118.79, 17_000),
    ("Sacramento", "CA", 38.58, -121.49, 2_300_000),
    ("Chico", "CA", 39.73, -121.84, 225_000),
    ("Redding", "CA", 40.59, -122.39, 180_000),
    ("San Francisco", "CA", 37.77, -122.42, 4_650_000),
    ("Oakland", "CA", 37.80, -122.27, 2_700_000),
    ("Palo Alto", "CA", 37.44, -122.14, 67_000),
    ("San Jose", "CA", 37.34, -121.89, 1_950_000),
    ("Stockton", "CA", 37.96, -121.29, 730_000),
    ("Modesto", "CA", 37.64, -120.99, 540_000),
    ("Fresno", "CA", 36.75, -119.77, 970_000),
    ("Bakersfield", "CA", 35.37, -119.02, 870_000),
    ("San Luis Obispo", "CA", 35.28, -120.66, 280_000),
    ("Lompoc", "CA", 34.64, -120.46, 43_000),
    ("Santa Barbara", "CA", 34.42, -119.70, 440_000),
    ("Los Angeles", "CA", 34.05, -118.24, 13_100_000),
    ("Anaheim", "CA", 33.84, -117.91, 3_150_000),
    ("Riverside", "CA", 33.95, -117.40, 4_400_000),
    ("San Diego", "CA", 32.72, -117.16, 3_280_000),
    ("Palm Springs", "CA", 33.83, -116.55, 450_000),
    ("Barstow", "CA", 34.90, -117.02, 24_000),
];

/// Builds the owned city list from the static table.
pub fn load_cities() -> Vec<City> {
    CITY_TABLE
        .iter()
        .map(|(name, state, lat, lon, pop)| City {
            name: (*name).to_string(),
            state: (*state).to_string(),
            location: GeoPoint::new_unchecked(*lat, *lon),
            population: *pop,
        })
        .collect()
}

/// Finds a city id by `name` and `state` (exact match).
pub fn find_city(cities: &[City], name: &str, state: &str) -> Option<CityId> {
    cities
        .iter()
        .position(|c| c.name == name && c.state == state)
        .map(|i| CityId(i as u32))
}

#[cfg(test)]
mod tests {
    use super::*;
    use intertubes_geo::BoundingBox;

    #[test]
    fn table_is_reasonably_sized() {
        // The paper's map has 273 nodes; the generator needs at least ~180
        // candidate cities to reach that order of magnitude.
        assert!(CITY_TABLE.len() >= 180, "only {} cities", CITY_TABLE.len());
    }

    #[test]
    fn all_cities_are_in_conus() {
        for c in load_cities() {
            assert!(
                BoundingBox::CONUS.contains(&c.location),
                "{} is outside CONUS at {}",
                c.label(),
                c.location
            );
        }
    }

    #[test]
    fn no_duplicate_city_state_pairs() {
        let cities = load_cities();
        let mut labels: Vec<String> = cities.iter().map(|c| c.label()).collect();
        labels.sort();
        let before = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), before, "duplicate city labels in table");
    }

    #[test]
    fn papers_table_cities_are_present() {
        let cities = load_cities();
        for (name, state) in [
            ("Trenton", "NJ"),
            ("Edison", "NJ"),
            ("Kalamazoo", "MI"),
            ("Battle Creek", "MI"),
            ("Dallas", "TX"),
            ("Fort Worth", "TX"),
            ("Baltimore", "MD"),
            ("Towson", "MD"),
            ("Baton Rouge", "LA"),
            ("New Orleans", "LA"),
            ("Livonia", "MI"),
            ("Southfield", "MI"),
            ("Topeka", "KS"),
            ("Lincoln", "NE"),
            ("Spokane", "WA"),
            ("Boise", "ID"),
            ("Bryan", "TX"),
            ("Shreveport", "LA"),
            ("Wichita Falls", "TX"),
            ("San Luis Obispo", "CA"),
            ("Lompoc", "CA"),
            ("Las Vegas", "NV"),
            ("Wichita", "KS"),
            ("Salt Lake City", "UT"),
            ("Lansing", "MI"),
            ("South Bend", "IN"),
            ("Philadelphia", "PA"),
            ("Allentown", "PA"),
            ("West Palm Beach", "FL"),
            ("Boca Raton", "FL"),
            ("Lynchburg", "VA"),
            ("Charlottesville", "VA"),
            ("Sedona", "AZ"),
            ("Camp Verde", "AZ"),
            ("Bozeman", "MT"),
            ("Billings", "MT"),
            ("Casper", "WY"),
            ("Cheyenne", "WY"),
            ("White Plains", "NY"),
            ("Stamford", "CT"),
            ("Amarillo", "TX"),
            ("Eugene", "OR"),
            ("Chico", "CA"),
            ("Phoenix", "AZ"),
            ("Provo", "UT"),
            ("Oklahoma City", "OK"),
            ("Eau Claire", "WI"),
            ("Madison", "WI"),
            ("Bakersfield", "CA"),
            ("Hillsboro", "OR"),
            ("Santa Barbara", "CA"),
            ("Tucson", "AZ"),
            ("Anaheim", "CA"),
            ("Gainesville", "FL"),
            ("Ocala", "FL"),
            ("Laurel", "MS"),
            ("Wells", "NV"),
            ("Palo Alto", "CA"),
        ] {
            assert!(
                find_city(&cities, name, state).is_some(),
                "paper city {name}, {state} missing from table"
            );
        }
    }

    #[test]
    fn find_city_is_exact() {
        let cities = load_cities();
        assert!(find_city(&cities, "Springfield", "IL").is_some());
        assert!(find_city(&cities, "Springfield", "MA").is_some());
        assert!(find_city(&cities, "Springfield", "ZZ").is_none());
        let il = find_city(&cities, "Springfield", "IL").unwrap();
        assert_eq!(cities[il.index()].state, "IL");
    }
}
