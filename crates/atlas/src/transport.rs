//! Synthetic transportation networks (the paper's Fig. 2 / Fig. 3 layers).
//!
//! The paper compares fiber-route geography against the National Atlas
//! roadway and railway layers and explains off-road conduits with pipeline
//! rights-of-way. Those shapefiles are not available here, so we synthesize
//! plausible corridor networks over the embedded city table:
//!
//! * **Roads** — the Gabriel graph over cities, unioned with each city's two
//!   nearest neighbours. Gabriel graphs are a standard proxy for road-like
//!   spatial networks: planar-ish, connected, denser where cities cluster.
//! * **Rails** — a seeded ~60 % subset of the road corridors with a bias
//!   toward long east–west corridors (rail followed settlement).
//! * **Pipelines** — a hand-picked set of Gulf-centric and mountain-west
//!   corridors, including the Houston→Atlanta chain through Laurel, MS and
//!   Anaheim→Las Vegas that the paper calls out (Fig. 5, §3).
//!
//! Corridor geometry is a jittered great-circle path (roads are nearly
//! direct; rails meander a little more), so the corridor-overlap analysis
//! has realistic, non-identical polylines to work with.

use intertubes_geo::{CorridorLayer, GeoPoint, Polyline};
use intertubes_graph::{MultiGraph, NodeId};
use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::cities::{find_city, City, CityId};

/// Payload of one corridor edge.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorridorEdge {
    /// The corridor's geographic path.
    pub geometry: Polyline,
    /// Cached geodesic length of `geometry`, km.
    pub length_km: f64,
}

/// One transportation layer: a multigraph whose nodes are all cities (node
/// ids equal [`CityId`] indices) and whose edges carry corridor geometry.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransportNetwork {
    /// Which layer this is.
    pub layer: CorridorLayer,
    /// The corridor graph. Node payloads are [`CityId`]s matching node ids.
    pub graph: MultiGraph<CityId, CorridorEdge>,
}

impl TransportNetwork {
    /// Total corridor mileage of the layer, km.
    pub fn total_length_km(&self) -> f64 {
        self.graph.edge_refs().map(|e| e.data.length_km).sum()
    }

    /// Validates the layer's connectivity with explicit degradation
    /// control.
    ///
    /// A fragmented layer (missing shapefile tiles, in our synthetic world
    /// the `disconnect-transport` fault) starves ROW snapping of
    /// corridors. Under [`DegradationPolicy::Lenient`] stranded components
    /// beyond the largest are counted (`"disconnected-component"`) and the
    /// layer is used as-is — corridor lookups simply miss more pairs.
    /// Under strict, validation aborts with
    /// [`AtlasError::DisconnectedTransport`](crate::AtlasError). A
    /// connected layer yields an empty report.
    pub fn validate(
        &self,
        policy: intertubes_degrade::DegradationPolicy,
    ) -> Result<intertubes_degrade::DegradationReport, crate::AtlasError> {
        use intertubes_degrade::{DegradationAction, DegradationReport};
        let (_, components) = intertubes_graph::connected_components(&self.graph);
        let stranded = components.saturating_sub(1);
        if stranded > 0 && policy.is_strict() {
            return Err(crate::AtlasError::DisconnectedTransport {
                layer: self.layer,
                components,
            });
        }
        let mut report = DegradationReport::new();
        report.note(
            "atlas.transport",
            DegradationAction::Unvalidated,
            "disconnected-component",
            stranded,
        );
        Ok(report)
    }

    /// Iterator over corridor geometries with their edge indices.
    pub fn geometries(&self) -> impl Iterator<Item = (u32, &Polyline)> {
        self.graph.edge_refs().map(|e| (e.id.0, &e.data.geometry))
    }
}

/// Returns all Gabriel-graph pairs over the cities: `(u, v)` is an edge iff
/// no third city lies inside the circle with diameter `uv`.
pub fn gabriel_pairs(cities: &[City]) -> Vec<(usize, usize)> {
    let n = cities.len();
    let mut out = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            let mid = cities[u].location.midpoint(&cities[v].location);
            let r = cities[u].location.distance_km(&cities[v].location) / 2.0;
            let blocked =
                (0..n).any(|w| w != u && w != v && cities[w].location.distance_km(&mid) < r - 1e-9);
            if !blocked {
                out.push((u, v));
            }
        }
    }
    out
}

/// Returns each city's `k` nearest-neighbour pairs (deduplicated,
/// normalized to `u < v`).
pub fn knn_pairs(cities: &[City], k: usize) -> Vec<(usize, usize)> {
    let n = cities.len();
    let mut out = Vec::new();
    for u in 0..n {
        let mut dists: Vec<(usize, f64)> = (0..n)
            .filter(|&v| v != u)
            .map(|v| (v, cities[u].location.distance_km(&cities[v].location)))
            .collect();
        dists.sort_by(|a, b| a.1.total_cmp(&b.1));
        for (v, _) in dists.into_iter().take(k) {
            out.push((u.min(v), u.max(v)));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// A corridor path between `a` and `b`: the great circle with `waypoints`
/// intermediate vertices, each displaced perpendicular to the path by up to
/// `amplitude` × path length.
pub fn jittered_route(
    rng: &mut StdRng,
    a: GeoPoint,
    b: GeoPoint,
    amplitude: f64,
    waypoints: usize,
) -> Polyline {
    let length = a.distance_km(&b);
    let mut pts = vec![a];
    for i in 1..=waypoints {
        let t = i as f64 / (waypoints + 1) as f64;
        let base = a.interpolate(&b, t);
        let bearing = a.bearing_deg(&b);
        // Taper the displacement towards the endpoints (sin envelope).
        let envelope = (std::f64::consts::PI * t).sin();
        let offset: f64 = rng.gen_range(-1.0..1.0) * amplitude * length * envelope;
        let side = if offset >= 0.0 { 90.0 } else { -90.0 };
        pts.push(base.destination(bearing + side, offset.abs()));
    }
    pts.push(b);
    Polyline::new(pts).expect("route has >= 2 points")
}

/// Samples a corridor's *circuity overhead* (extra length as a fraction of
/// the geodesic). Real rights-of-way are rarely geodesics: terrain, land
/// ownership, and town-to-town doglegs stretch them. The distribution is
/// right-skewed to match the paper's §5.3 observation — the LOS-to-ROW gap
/// is under ~100 µs (≈ 20 km) for half the city pairs but exceeds 500 µs
/// (> 100 km) for a quarter, with some beyond 2 ms.
fn sample_circuity(rng: &mut StdRng, base: f64) -> f64 {
    let u: f64 = rng.gen();
    let extra = if u < 0.5 {
        rng.gen_range(0.0..0.08)
    } else if u < 0.75 {
        rng.gen_range(0.08..0.25)
    } else {
        rng.gen_range(0.25..0.60)
    };
    extra + base
}

/// Stretches a route to `target_km` by weaving small alternating
/// perpendicular offsets into a densified copy — length grows without the
/// path straying more than a few km laterally (how real corridors
/// accumulate mileage).
fn stretch_route(pl: &Polyline, target_km: f64) -> Polyline {
    let current = pl.length_km();
    if target_km <= current * 1.001 {
        return pl.clone();
    }
    // densify only fails on a non-positive step; the unstretched route is
    // the graceful fallback.
    let Ok(dense) = pl.densify(12.0) else {
        return pl.clone();
    };
    let pts = dense.points();
    let n = pts.len();
    if n < 3 {
        return pl.clone();
    }
    // Per-segment inflation ratio r: each ~12 km chord becomes
    // sqrt(s² + 4h²), so h = s·sqrt(r² − 1)/2 at alternating sides.
    let r = (target_km / current).min(2.0);
    let mut out = Vec::with_capacity(n);
    out.push(pts[0]);
    for i in 1..n - 1 {
        let s = pts[i - 1].distance_km(&pts[i + 1]) / 2.0;
        let h = s * (r * r - 1.0).max(0.0).sqrt() / 2.0;
        let dir = pts[i - 1].bearing_deg(&pts[i + 1]);
        let side = if i % 2 == 0 { 90.0 } else { -90.0 };
        out.push(pts[i].destination(dir + side, h));
    }
    out.push(pts[n - 1]);
    Polyline::new(out).expect("same arity as input")
}

fn build_network(
    cities: &[City],
    layer: CorridorLayer,
    pairs: &[(usize, usize)],
    rng: &mut StdRng,
    amplitude: f64,
) -> TransportNetwork {
    let mut graph: MultiGraph<CityId, CorridorEdge> =
        MultiGraph::with_capacity(cities.len(), pairs.len());
    for i in 0..cities.len() {
        graph.add_node(CityId(i as u32));
    }
    // Rail rights-of-way are systematically more circuitous than highways.
    let circuity_base = match layer {
        CorridorLayer::Road => 0.0,
        CorridorLayer::Rail => 0.06,
        CorridorLayer::Pipeline => 0.02,
    };
    for &(u, v) in pairs {
        let a = cities[u].location;
        let b = cities[v].location;
        let length = a.distance_km(&b);
        // Longer corridors get more waypoints.
        let waypoints = 1 + (length / 150.0).floor().min(4.0) as usize;
        let base = jittered_route(rng, a, b, amplitude, waypoints);
        let extra = sample_circuity(rng, circuity_base);
        let geometry = stretch_route(&base, length * (1.0 + extra));
        let length_km = geometry.length_km();
        graph.add_edge(
            NodeId(u as u32),
            NodeId(v as u32),
            CorridorEdge {
                geometry,
                length_km,
            },
        );
    }
    TransportNetwork { layer, graph }
}

/// Builds the roadway network: Gabriel graph ∪ 2-nearest-neighbour links.
pub fn build_road_network(cities: &[City], rng: &mut StdRng) -> TransportNetwork {
    let mut pairs = gabriel_pairs(cities);
    pairs.extend(knn_pairs(cities, 2));
    pairs.sort_unstable();
    pairs.dedup();
    build_network(cities, CorridorLayer::Road, &pairs, rng, 0.03)
}

/// Builds the railway network: a seeded subset of road corridors, biased
/// toward long corridors, with more meander.
pub fn build_rail_network(
    cities: &[City],
    road: &TransportNetwork,
    rng: &mut StdRng,
) -> TransportNetwork {
    let mut pairs = Vec::new();
    for e in road.graph.edge_refs() {
        let (u, v) = (e.u.0 as usize, e.v.0 as usize);
        let length = e.data.length_km;
        // Selection probability grows with corridor length: short suburban
        // hops rarely get a parallel railway, long plains corridors do.
        let p = (0.35 + length / 900.0).min(0.85);
        if rng.gen_bool(p) {
            pairs.push((u.min(v), u.max(v)));
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    build_network(cities, CorridorLayer::Rail, &pairs, rng, 0.05)
}

/// City-name pairs hosting pipeline rights-of-way, including the paper's
/// Laurel, MS and Anaheim→Las Vegas examples.
#[rustfmt::skip]
const PIPELINE_PAIRS: &[((&str, &str), (&str, &str))] = &[
    (("El Paso", "TX"), ("San Antonio", "TX")),
    (("San Antonio", "TX"), ("Houston", "TX")),
    (("Houston", "TX"), ("New Orleans", "LA")),
    (("Houston", "TX"), ("Dallas", "TX")),
    (("New Orleans", "LA"), ("Jackson", "MS")),
    (("Jackson", "MS"), ("Laurel", "MS")),
    (("Laurel", "MS"), ("Mobile", "AL")),
    (("Mobile", "AL"), ("Montgomery", "AL")),
    (("Montgomery", "AL"), ("Atlanta", "GA")),
    (("Anaheim", "CA"), ("Las Vegas", "NV")),
    (("Wichita", "KS"), ("Denver", "CO")),
    (("Tulsa", "OK"), ("Wichita", "KS")),
    (("Oklahoma City", "OK"), ("Amarillo", "TX")),
    (("Billings", "MT"), ("Casper", "WY")),
    (("Casper", "WY"), ("Cheyenne", "WY")),
    (("Salt Lake City", "UT"), ("Las Vegas", "NV")),
];

/// Builds the pipeline right-of-way network.
///
/// Each hand-picked pipeline runs city-to-city along the *road-graph*
/// shortest path between its terminals, so pipeline hops coincide with
/// candidate conduit pairs (pipelines and conduits compete for the same
/// inter-city corridors; the paper's Anaheim→Las Vegas example is exactly a
/// conduit following a products pipeline between road-served cities).
pub fn build_pipeline_network(
    cities: &[City],
    road: &TransportNetwork,
    rng: &mut StdRng,
) -> TransportNetwork {
    let mut pairs = Vec::new();
    for ((an, as_), (bn, bs)) in PIPELINE_PAIRS {
        let a = find_city(cities, an, as_).expect("pipeline city in table");
        let b = find_city(cities, bn, bs).expect("pipeline city in table");
        let path = intertubes_graph::dijkstra(&road.graph, NodeId(a.0), NodeId(b.0), |e| {
            road.graph.edge(e).length_km
        })
        .expect("length cost is non-negative");
        match path {
            Some(p) => {
                for w in p.nodes.windows(2) {
                    let (u, v) = (w[0].index(), w[1].index());
                    pairs.push((u.min(v), u.max(v)));
                }
            }
            None => {
                pairs.push((a.index().min(b.index()), a.index().max(b.index())));
            }
        }
    }
    pairs.sort_unstable();
    pairs.dedup();
    // Pipelines stray far from highways (they run cross-country through
    // easements); the large amplitude keeps pipeline-following conduits
    // outside the road-corridor buffer, as in the paper's Fig. 5 cases.
    build_network(cities, CorridorLayer::Pipeline, &pairs, rng, 0.12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cities::load_cities;
    use intertubes_graph::is_connected;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1504)
    }

    #[test]
    fn gabriel_contains_nearest_neighbour_links() {
        let cities = load_cities();
        let pairs = gabriel_pairs(&cities);
        // The Gabriel graph always contains each point's nearest neighbour.
        let nn = knn_pairs(&cities, 1);
        for e in nn {
            assert!(
                pairs.contains(&e),
                "nearest-neighbour pair {e:?} missing from Gabriel graph"
            );
        }
    }

    #[test]
    fn road_network_is_connected_and_planar_scale() {
        let cities = load_cities();
        let road = build_road_network(&cities, &mut rng());
        assert!(is_connected(&road.graph), "road network must be connected");
        let m = road.graph.edge_count();
        let n = road.graph.node_count();
        // Gabriel graphs are planar: m <= 3n - 6; union with 2-NN stays close.
        assert!(m <= 3 * n, "m={m} n={n}");
        assert!(m >= n, "road net too sparse: m={m} n={n}");
    }

    #[test]
    fn rail_is_subset_scale_of_road() {
        let cities = load_cities();
        let mut r = rng();
        let road = build_road_network(&cities, &mut r);
        let rail = build_rail_network(&cities, &road, &mut r);
        assert!(rail.graph.edge_count() < road.graph.edge_count());
        assert!(rail.graph.edge_count() > road.graph.edge_count() / 4);
    }

    #[test]
    fn corridor_geometry_endpoints_match_cities() {
        let cities = load_cities();
        let road = build_road_network(&cities, &mut rng());
        for e in road.graph.edge_refs() {
            let a = cities[e.u.index()].location;
            let b = cities[e.v.index()].location;
            let g = &e.data.geometry;
            let ok_fwd = g.start().distance_km(&a) < 0.1 && g.end().distance_km(&b) < 0.1;
            let ok_rev = g.start().distance_km(&b) < 0.1 && g.end().distance_km(&a) < 0.1;
            assert!(
                ok_fwd || ok_rev,
                "corridor geometry detached from endpoints"
            );
        }
    }

    #[test]
    fn circuity_is_bounded_and_skewed() {
        let cities = load_cities();
        let road = build_road_network(&cities, &mut rng());
        let mut ratios = Vec::new();
        for e in road.graph.edge_refs() {
            let direct = cities[e.u.index()]
                .location
                .distance_km(&cities[e.v.index()].location);
            assert!(
                e.data.length_km < direct * 1.75 + 2.0,
                "corridor {:.0} km vs direct {:.0} km",
                e.data.length_km,
                direct
            );
            assert!(e.data.length_km >= direct - 1e-6);
            ratios.push(e.data.length_km / direct.max(1.0));
        }
        ratios.sort_by(|a, b| a.total_cmp(b));
        let median = ratios[ratios.len() / 2];
        let p75 = ratios[3 * ratios.len() / 4];
        // Right-skewed: the median corridor is fairly direct, the 75th
        // percentile is distinctly circuitous.
        assert!(median < 1.15, "median circuity {median}");
        assert!(p75 > median + 0.03, "p75 {p75} vs median {median}");
    }

    #[test]
    fn pipeline_network_includes_papers_examples() {
        let cities = load_cities();
        let mut r = rng();
        let road = build_road_network(&cities, &mut r);
        let pipe = build_pipeline_network(&cities, &road, &mut r);
        let laurel = find_city(&cities, "Laurel", "MS").unwrap();
        assert!(
            pipe.graph.degree(NodeId(laurel.0)) >= 2,
            "Laurel, MS should be on the pipeline chain"
        );
        let anaheim = find_city(&cities, "Anaheim", "CA").unwrap();
        assert!(pipe.graph.degree(NodeId(anaheim.0)) >= 1);
    }

    #[test]
    fn generation_is_deterministic() {
        let cities = load_cities();
        let a = build_road_network(&cities, &mut rng());
        let b = build_road_network(&cities, &mut rng());
        assert_eq!(a.graph.edge_count(), b.graph.edge_count());
        for (ea, eb) in a.graph.edge_refs().zip(b.graph.edge_refs()) {
            assert_eq!(ea.data.geometry, eb.data.geometry);
        }
    }

    #[test]
    fn total_length_is_positive_sum() {
        let cities = load_cities();
        let road = build_road_network(&cities, &mut rng());
        let total = road.total_length_km();
        let sum: f64 = road.graph.edge_refs().map(|e| e.data.length_km).sum();
        assert!((total - sum).abs() < 1e-6);
        assert!(total > 10_000.0, "a national road network spans >10k km");
    }
}
