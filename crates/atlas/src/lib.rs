//! Synthetic US long-haul infrastructure atlas.
//!
//! The paper's raw inputs — Internet Atlas fiber maps, National Atlas
//! road/rail layers, and the ground truth of who rents fiber where — are not
//! publicly redistributable (and partly never were public). This crate
//! builds a deterministic synthetic substitute with the same *shape*:
//!
//! * an embedded table of ~200 real CONUS cities ([`cities`]),
//! * synthetic roadway / railway / pipeline corridor networks
//!   ([`transport`]),
//! * a ground-truth conduit system along those corridors ([`conduits`]),
//!   calibrated to the paper's 542 conduits,
//! * per-provider footprints ([`tenancy`]) calibrated to the paper's
//!   Table 1 / §2.3 link counts and its sharing distribution, and
//! * the *published artifacts* (geocoded maps, POP-only maps) that the
//!   map-construction pipeline in `intertubes-map` is allowed to observe
//!   ([`world`]).
//!
//! Everything is a pure function of a `u64` seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cities;
pub mod conduits;
pub mod isps;
pub mod tenancy;
pub mod transport;
pub mod world;

pub use cities::{find_city, load_cities, City, CityId, CITY_TABLE};
pub use conduits::{
    build_conduit_system, Conduit, ConduitConfig, ConduitId, ConduitSystem, RowType,
};
pub use isps::{
    geocoded_isps, isp_roster, pop_only_isps, unpublished_isps, IspId, IspProfile, IspTier,
    MapKind, MAPPED_ISPS,
};
pub use tenancy::{assign_footprints, grow_footprint, tenant_counts, Footprint};
pub use transport::{
    build_pipeline_network, build_rail_network, build_road_network, gabriel_pairs, jittered_route,
    knn_pairs, CorridorEdge, TransportNetwork,
};
pub use world::{PublishedLink, PublishedMap, World, WorldConfig};

/// Errors of the atlas layer. Raised only under the strict degradation
/// policy; lenient validation reports and continues instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AtlasError {
    /// A transportation layer is fragmented into multiple components.
    DisconnectedTransport {
        /// The affected layer.
        layer: intertubes_geo::CorridorLayer,
        /// How many connected components it splits into.
        components: usize,
    },
}

impl std::fmt::Display for AtlasError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AtlasError::DisconnectedTransport { layer, components } => write!(
                f,
                "{layer:?} transport layer splits into {components} components"
            ),
        }
    }
}

impl std::error::Error for AtlasError {}
