//! The scenario DSL (DESIGN.md §12.1): JSON plans describing one
//! geofenced hazard plus the ensemble to sample from it.
//!
//! The format mirrors the `FaultPlan` idiom (`intertubes_faults`): serde
//! round-trip, parse-time validation with a typed error enum, a
//! hand-written infallible pretty printer, and named built-in scenarios
//! for tests and docs.

use intertubes_geo::GeoPoint;
use serde::{Deserialize, Serialize};

/// Geographic footprint of a hazard over the conduit grid.
///
/// A conduit is *exposed* when any of its sampled geometry points falls
/// inside the footprint (see [`crate::exposures`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Footprint {
    /// A closed polygon ring: at least four vertices with the last
    /// repeating the first (GeoJSON-style closure). Containment is
    /// even-odd ray casting in the lat/lon plane — adequate for CONUS
    /// footprints, which never straddle the antimeridian.
    Polygon {
        /// Ring vertices, first == last.
        vertices: Vec<GeoPoint>,
    },
    /// A geodesic disc: all points within `radius_km` of `center`.
    Disc {
        /// Disc center.
        center: GeoPoint,
        /// Disc radius, km (strictly positive).
        radius_km: f64,
    },
}

/// Per-conduit failure-probability model, evaluated at the conduit's
/// closest approach to the hazard center (DESIGN.md §12.1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum HazardModel {
    /// Every exposed conduit fails with the same probability `p`.
    Fixed {
        /// Failure probability in `[0, 1]` (values above 1 are clamped
        /// on use, matching `FaultPlan::rate`).
        p: f64,
    },
    /// Exponential distance decay: `p = p0 * exp(-d / scale_km)` where
    /// `d` is the conduit's closest distance (km) to the hazard center.
    DistanceDecay {
        /// Probability at the hazard center.
        p0: f64,
        /// e-folding distance, km (strictly positive).
        scale_km: f64,
    },
    /// Weibull-intensity fragility: `p = 1 - exp(-(x / scale)^shape)`
    /// where `x ∈ [0, 1]` is the normalized proximity (1 at the hazard
    /// center, 0 at the footprint edge).
    Weibull {
        /// Weibull shape `k` (strictly positive).
        shape: f64,
        /// Weibull scale `λ` (strictly positive).
        scale: f64,
    },
}

/// A full scenario plan: the hazard, its probability model, and the
/// seeded ensemble to draw.
///
/// Round-trips through JSON, which is what the CLI's
/// `scenario <plan.json>` subcommand and the serve layer's `Ensemble`
/// query family parse. The canonical serialization (including `seed`)
/// doubles as the serve cache key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScenarioPlan {
    /// Scenario name, echoed in the report.
    pub name: String,
    /// Base RNG seed; each ensemble draw derives its own stream from it,
    /// so sampling is independent of chunking and thread count.
    pub seed: u64,
    /// Ensemble size (number of correlated failure sets to draw, ≥ 1).
    pub draws: u64,
    /// Where the hazard lands.
    pub footprint: Footprint,
    /// How exposure translates into failure probability.
    pub model: HazardModel,
}

/// A typed parse/validation error for [`ScenarioPlan::from_json`].
#[derive(Debug, Clone, PartialEq)]
pub enum ScenarioError {
    /// The text was not a syntactically valid plan.
    Parse(String),
    /// A probability parameter was non-finite or negative.
    InvalidProbability {
        /// Which parameter was rejected.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A strictly-positive model/geometry parameter was not.
    InvalidParameter {
        /// Which parameter was rejected.
        what: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A polygon ring whose last vertex does not repeat the first.
    UnclosedPolygon,
    /// A polygon ring with fewer than four vertices.
    DegeneratePolygon {
        /// Number of vertices supplied.
        vertices: usize,
    },
    /// A vertex or center outside WGS84 bounds (or non-finite).
    InvalidCoordinate {
        /// Offending latitude, degrees.
        lat: f64,
        /// Offending longitude, degrees.
        lon: f64,
    },
    /// An ensemble of zero draws.
    EmptyEnsemble,
}

impl std::fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioError::Parse(msg) => write!(f, "scenario parse error: {msg}"),
            ScenarioError::InvalidProbability { what, value } => write!(
                f,
                "scenario: invalid probability {value} for `{what}` (must be finite and >= 0)"
            ),
            ScenarioError::InvalidParameter { what, value } => {
                write!(f, "scenario: parameter `{what}` must be > 0, got {value}")
            }
            ScenarioError::UnclosedPolygon => {
                write!(f, "scenario: polygon ring must close (last vertex == first)")
            }
            ScenarioError::DegeneratePolygon { vertices } => write!(
                f,
                "scenario: polygon ring needs at least 4 vertices (closed), got {vertices}"
            ),
            ScenarioError::InvalidCoordinate { lat, lon } => {
                write!(f, "scenario: invalid coordinate lat={lat}, lon={lon}")
            }
            ScenarioError::EmptyEnsemble => {
                write!(f, "scenario: ensemble needs at least 1 draw")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

fn check_coord(p: &GeoPoint) -> Result<(), ScenarioError> {
    let ok = p.lat.is_finite()
        && p.lon.is_finite()
        && (-90.0..=90.0).contains(&p.lat)
        && (-180.0..=180.0).contains(&p.lon);
    if ok {
        Ok(())
    } else {
        Err(ScenarioError::InvalidCoordinate {
            lat: p.lat,
            lon: p.lon,
        })
    }
}

fn check_probability(what: &'static str, value: f64) -> Result<(), ScenarioError> {
    if value.is_finite() && value >= 0.0 {
        Ok(())
    } else {
        Err(ScenarioError::InvalidProbability { what, value })
    }
}

fn check_positive(what: &'static str, value: f64) -> Result<(), ScenarioError> {
    if value.is_finite() && value > 0.0 {
        Ok(())
    } else {
        Err(ScenarioError::InvalidParameter { what, value })
    }
}

impl ScenarioPlan {
    /// Validates the plan: probabilities finite and non-negative (values
    /// above 1 are clamped on use, mirroring `FaultPlan::rate`), scale
    /// parameters strictly positive, polygon rings closed with ≥ 4
    /// vertices, coordinates inside WGS84 bounds, ensemble non-empty.
    pub fn validate(&self) -> Result<(), ScenarioError> {
        if self.draws == 0 {
            return Err(ScenarioError::EmptyEnsemble);
        }
        match &self.footprint {
            Footprint::Polygon { vertices } => {
                if vertices.len() < 4 {
                    return Err(ScenarioError::DegeneratePolygon {
                        vertices: vertices.len(),
                    });
                }
                for v in vertices {
                    check_coord(v)?;
                }
                // Bitwise closure: the parser round-trips exact values, so
                // "first == last" is well-defined on the parsed floats.
                let (first, last) = (&vertices[0], &vertices[vertices.len() - 1]);
                if first.lat != last.lat || first.lon != last.lon {
                    return Err(ScenarioError::UnclosedPolygon);
                }
            }
            Footprint::Disc { center, radius_km } => {
                check_coord(center)?;
                check_positive("radius_km", *radius_km)?;
            }
        }
        match self.model {
            HazardModel::Fixed { p } => check_probability("p", p)?,
            HazardModel::DistanceDecay { p0, scale_km } => {
                check_probability("p0", p0)?;
                check_positive("scale_km", scale_km)?;
            }
            HazardModel::Weibull { shape, scale } => {
                check_positive("shape", shape)?;
                check_positive("scale", scale)?;
            }
        }
        Ok(())
    }

    /// Parses a plan from JSON text, rejecting malformed plans at parse
    /// time with a typed [`ScenarioError`].
    pub fn from_json(text: &str) -> Result<ScenarioPlan, ScenarioError> {
        let plan: ScenarioPlan =
            serde_json::from_str(text).map_err(|e| ScenarioError::Parse(e.to_string()))?;
        plan.validate()?;
        Ok(plan)
    }

    /// Serializes the plan to pretty JSON (the CLI's plan-file format).
    /// Infallible by construction: every field is emitted directly.
    /// Non-finite parameters (only constructible in code) serialize as
    /// `null`, which [`ScenarioPlan::from_json`] rejects — such plans are
    /// invalid and do not round-trip by design.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v:?}")
            } else {
                "null".to_string()
            }
        }
        fn point(p: &GeoPoint) -> String {
            format!("{{ \"lat\": {}, \"lon\": {} }}", num(p.lat), num(p.lon))
        }
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        out.push_str(&format!("  \"name\": {:?},\n", self.name));
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str(&format!("  \"draws\": {},\n", self.draws));
        match &self.footprint {
            Footprint::Polygon { vertices } => {
                out.push_str("  \"footprint\": { \"Polygon\": { \"vertices\": [");
                for (i, v) in vertices.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str("\n    ");
                    out.push_str(&point(v));
                }
                out.push_str("\n  ] } },\n");
            }
            Footprint::Disc { center, radius_km } => {
                out.push_str(&format!(
                    "  \"footprint\": {{ \"Disc\": {{ \"center\": {}, \"radius_km\": {} }} }},\n",
                    point(center),
                    num(*radius_km)
                ));
            }
        }
        match self.model {
            HazardModel::Fixed { p } => {
                out.push_str(&format!(
                    "  \"model\": {{ \"Fixed\": {{ \"p\": {} }} }}\n",
                    num(p)
                ));
            }
            HazardModel::DistanceDecay { p0, scale_km } => {
                out.push_str(&format!(
                    "  \"model\": {{ \"DistanceDecay\": {{ \"p0\": {}, \"scale_km\": {} }} }}\n",
                    num(p0),
                    num(scale_km)
                ));
            }
            HazardModel::Weibull { shape, scale } => {
                out.push_str(&format!(
                    "  \"model\": {{ \"Weibull\": {{ \"shape\": {}, \"scale\": {} }} }}\n",
                    num(shape),
                    num(scale)
                ));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Named built-in scenarios over the default synthetic world, used by
    /// tests and documented in EXPERIMENTS.md: a hurricane landfall
    /// corridor across the southeastern grid and an earthquake disc over
    /// the central grid.
    pub fn built_in_scenarios() -> Vec<(&'static str, ScenarioPlan)> {
        fn pt(lat: f64, lon: f64) -> GeoPoint {
            GeoPoint::new(lat, lon).unwrap_or(GeoPoint { lat: 0.0, lon: 0.0 })
        }
        vec![
            (
                "hurricane-corridor",
                ScenarioPlan {
                    name: "hurricane-corridor".to_string(),
                    seed: 20150817,
                    draws: 10_000,
                    footprint: Footprint::Polygon {
                        vertices: vec![
                            pt(28.0, -98.0),
                            pt(28.0, -84.0),
                            pt(36.0, -84.0),
                            pt(36.0, -98.0),
                            pt(28.0, -98.0),
                        ],
                    },
                    model: HazardModel::DistanceDecay {
                        p0: 0.85,
                        scale_km: 400.0,
                    },
                },
            ),
            (
                "earthquake-disc",
                ScenarioPlan {
                    name: "earthquake-disc".to_string(),
                    seed: 1811,
                    draws: 10_000,
                    footprint: Footprint::Disc {
                        center: pt(36.5, -89.5),
                        radius_km: 450.0,
                    },
                    model: HazardModel::Weibull {
                        shape: 1.8,
                        scale: 0.6,
                    },
                },
            ),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn disc_plan(p: f64) -> ScenarioPlan {
        ScenarioPlan {
            name: "t".to_string(),
            seed: 1,
            draws: 4,
            footprint: Footprint::Disc {
                center: GeoPoint {
                    lat: 40.0,
                    lon: -100.0,
                },
                radius_km: 100.0,
            },
            model: HazardModel::Fixed { p },
        }
    }

    #[test]
    fn round_trips_through_json() {
        for (_, plan) in ScenarioPlan::built_in_scenarios() {
            let text = plan.to_json();
            let back = ScenarioPlan::from_json(&text).expect("round trip");
            assert_eq!(back, plan);
        }
    }

    #[test]
    fn rejects_nan_and_negative_probability() {
        assert!(matches!(
            disc_plan(f64::NAN).validate(),
            Err(ScenarioError::InvalidProbability { what: "p", .. })
        ));
        assert!(matches!(
            disc_plan(-0.25).validate(),
            Err(ScenarioError::InvalidProbability { what: "p", .. })
        ));
        assert!(disc_plan(0.0).validate().is_ok());
        // Above 1 is legal (clamped on use, like FaultPlan::rate).
        assert!(disc_plan(1.5).validate().is_ok());
    }

    #[test]
    fn rejects_unclosed_and_degenerate_polygons() {
        let mut plan = disc_plan(0.5);
        let pt = |lat, lon| GeoPoint { lat, lon };
        plan.footprint = Footprint::Polygon {
            vertices: vec![pt(30.0, -90.0), pt(31.0, -90.0), pt(31.0, -89.0), pt(30.5, -89.5)],
        };
        assert_eq!(plan.validate(), Err(ScenarioError::UnclosedPolygon));
        plan.footprint = Footprint::Polygon {
            vertices: vec![pt(30.0, -90.0), pt(31.0, -90.0), pt(30.0, -90.0)],
        };
        assert_eq!(
            plan.validate(),
            Err(ScenarioError::DegeneratePolygon { vertices: 3 })
        );
    }

    #[test]
    fn rejects_empty_ensemble_and_bad_geometry() {
        let mut plan = disc_plan(0.5);
        plan.draws = 0;
        assert_eq!(plan.validate(), Err(ScenarioError::EmptyEnsemble));
        let mut plan = disc_plan(0.5);
        plan.footprint = Footprint::Disc {
            center: GeoPoint {
                lat: 95.0,
                lon: -100.0,
            },
            radius_km: 100.0,
        };
        assert!(matches!(
            plan.validate(),
            Err(ScenarioError::InvalidCoordinate { .. })
        ));
        let mut plan = disc_plan(0.5);
        plan.footprint = Footprint::Disc {
            center: GeoPoint {
                lat: 40.0,
                lon: -100.0,
            },
            radius_km: 0.0,
        };
        assert!(matches!(
            plan.validate(),
            Err(ScenarioError::InvalidParameter {
                what: "radius_km",
                ..
            })
        ));
    }
}
