//! Footprint containment and per-conduit exposure (DESIGN.md §12.2).
//!
//! A conduit is exposed to a hazard when any sampled point of its
//! geometry falls inside the footprint; its failure probability is the
//! plan's [`HazardModel`] evaluated at the conduit's closest sampled
//! approach to the hazard center. Everything here is a pure function of
//! the plan and the frozen map — no RNG, no I/O — so the exposure table
//! is computed once per evaluation and shared read-only by every draw.

use intertubes_geo::{point_in_ring, GeoPoint};
use intertubes_map::FiberMap;

use crate::dsl::{Footprint, HazardModel};

/// Geometry sampling step along each conduit, km. Endpoints are always
/// included, so short conduits still test at least two points.
pub const SAMPLE_STEP_KM: f64 = 25.0;

/// One exposed conduit: its modeled failure probability and closest
/// sampled distance to the hazard center.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exposure {
    /// Map conduit id (also the conduit-graph edge id).
    pub conduit: u32,
    /// Per-draw failure probability, clamped to `[0, 1]`.
    pub probability: f64,
    /// Closest sampled distance to the hazard center, km.
    pub distance_km: f64,
}

impl Footprint {
    /// The hazard center: the disc center, or the polygon's vertex
    /// centroid (closing vertex excluded).
    pub fn center(&self) -> GeoPoint {
        match self {
            Footprint::Disc { center, .. } => *center,
            Footprint::Polygon { vertices } => {
                let ring = ring_of(vertices);
                let n = ring.len().max(1) as f64;
                GeoPoint {
                    lat: ring.iter().map(|v| v.lat).sum::<f64>() / n,
                    lon: ring.iter().map(|v| v.lon).sum::<f64>() / n,
                }
            }
        }
    }

    /// Whether `p` lies inside the footprint.
    pub fn contains(&self, p: &GeoPoint) -> bool {
        match self {
            Footprint::Disc { center, radius_km } => center.distance_km(p) <= *radius_km,
            Footprint::Polygon { vertices } => point_in_ring(p, ring_of(vertices)),
        }
    }

    /// Footprint extent, km: the disc radius, or the farthest ring vertex
    /// from the centroid. Normalizes proximity for the Weibull model.
    pub fn extent_km(&self) -> f64 {
        match self {
            Footprint::Disc { radius_km, .. } => *radius_km,
            Footprint::Polygon { vertices } => {
                let c = self.center();
                ring_of(vertices)
                    .iter()
                    .map(|v| c.distance_km(v))
                    .fold(0.0, f64::max)
            }
        }
    }
}

/// The ring without its closing repeat (validation guarantees closure,
/// but the helpers stay total on unvalidated input).
fn ring_of(vertices: &[GeoPoint]) -> &[GeoPoint] {
    match (vertices.first(), vertices.last()) {
        (Some(f), Some(l)) if vertices.len() > 1 && f.lat == l.lat && f.lon == l.lon => {
            &vertices[..vertices.len() - 1]
        }
        _ => vertices,
    }
}

impl HazardModel {
    /// The failure probability for a conduit whose closest sampled
    /// approach to the hazard center is `distance_km`, inside a footprint
    /// of `extent_km`. Clamped to `[0, 1]`.
    pub fn probability(&self, distance_km: f64, extent_km: f64) -> f64 {
        let p = match *self {
            HazardModel::Fixed { p } => p,
            HazardModel::DistanceDecay { p0, scale_km } => p0 * (-distance_km / scale_km).exp(),
            HazardModel::Weibull { shape, scale } => {
                // Normalized proximity: 1 at the center, 0 at the edge.
                let x = if extent_km > 0.0 {
                    (1.0 - distance_km / extent_km).max(0.0)
                } else {
                    1.0
                };
                1.0 - (-(x / scale).powf(shape)).exp()
            }
        };
        p.clamp(0.0, 1.0)
    }
}

/// Sampled points along a conduit's geometry: every [`SAMPLE_STEP_KM`],
/// endpoints included. Falls back to the raw vertices if resampling is
/// ever refused (it cannot be for a positive constant step — the
/// fallback keeps this total without a panic path).
fn sample_points(geometry: &intertubes_geo::Polyline) -> Vec<GeoPoint> {
    geometry
        .sample_every_km(SAMPLE_STEP_KM)
        .unwrap_or_else(|_| geometry.points().to_vec())
}

/// Computes the exposure table for `plan`'s footprint and model over
/// `map`'s conduits, in ascending conduit-id order (only conduits with a
/// strictly positive probability appear).
pub fn exposures(map: &FiberMap, footprint: &Footprint, model: &HazardModel) -> Vec<Exposure> {
    let center = footprint.center();
    let extent = footprint.extent_km();
    let mut out = Vec::new();
    for (c, conduit) in map.conduits.iter().enumerate() {
        let mut inside = false;
        let mut closest = f64::INFINITY;
        for p in sample_points(&conduit.geometry) {
            inside |= footprint.contains(&p);
            let d = center.distance_km(&p);
            if d < closest {
                closest = d;
            }
        }
        if !inside {
            continue;
        }
        let probability = model.probability(closest, extent);
        if probability > 0.0 {
            out.push(Exposure {
                conduit: c as u32,
                probability,
                distance_km: closest,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(lat: f64, lon: f64) -> GeoPoint {
        GeoPoint { lat, lon }
    }

    #[test]
    fn disc_contains_by_distance() {
        let disc = Footprint::Disc {
            center: pt(40.0, -100.0),
            radius_km: 100.0,
        };
        assert!(disc.contains(&pt(40.0, -100.0)));
        assert!(disc.contains(&pt(40.5, -100.0)));
        assert!(!disc.contains(&pt(42.0, -100.0)));
        assert_eq!(disc.extent_km(), 100.0);
    }

    #[test]
    fn polygon_contains_with_and_without_closing_vertex() {
        let square = vec![
            pt(30.0, -100.0),
            pt(30.0, -90.0),
            pt(40.0, -90.0),
            pt(40.0, -100.0),
            pt(30.0, -100.0),
        ];
        let poly = Footprint::Polygon {
            vertices: square.clone(),
        };
        assert!(poly.contains(&pt(35.0, -95.0)));
        assert!(!poly.contains(&pt(45.0, -95.0)));
        assert!(!poly.contains(&pt(35.0, -105.0)));
        let open = Footprint::Polygon {
            vertices: square[..4].to_vec(),
        };
        assert!(open.contains(&pt(35.0, -95.0)));
        // The centroid ignores the closing repeat.
        let c = poly.center();
        assert!((c.lat - 35.0).abs() < 1e-9 && (c.lon + 95.0).abs() < 1e-9);
    }

    #[test]
    fn models_clamp_and_decay() {
        let fixed = HazardModel::Fixed { p: 1.5 };
        assert_eq!(fixed.probability(0.0, 100.0), 1.0);
        let decay = HazardModel::DistanceDecay {
            p0: 0.8,
            scale_km: 100.0,
        };
        assert_eq!(decay.probability(0.0, 100.0), 0.8);
        assert!(decay.probability(100.0, 100.0) < 0.8 * 0.37);
        let weib = HazardModel::Weibull {
            shape: 2.0,
            scale: 0.5,
        };
        // At the edge proximity is 0 → probability 0; at the center it is
        // 1 - exp(-(1/0.5)^2) ≈ 0.98.
        assert_eq!(weib.probability(100.0, 100.0), 0.0);
        assert!(weib.probability(0.0, 100.0) > 0.9);
    }
}
