//! Seeded ensemble sampling and evaluation (DESIGN.md §12.2–§12.3).
//!
//! Each draw derives its own RNG stream from the plan seed (the
//! `FaultPlan` stream idiom), so the sampled failure sets depend only on
//! `(seed, draw index)` — never on chunking or thread count. Draws are
//! evaluated in fixed-size chunks ([`DRAW_CHUNK`]); per-chunk
//! [`EnsembleAccumulator`]s merge in chunk order, and the integer-only
//! merge algebra makes the folded result — and therefore the serialized
//! [`ConditionalRisk`] — byte-identical at any thread count.

use intertubes_graph::{csr_dijkstra_filtered, CsrGraph, EdgeId, Landmarks, NodeId, SearchState};
use intertubes_map::{FiberMap, MapConduitId};
use intertubes_mitigation::what_if_cut;
use intertubes_parallel::par_chunks_map;
use rand::{rngs::StdRng, Rng, SeedableRng};

use crate::dsl::{ScenarioError, ScenarioPlan};
use crate::geometry::{exposures, Exposure};
use crate::report::{ConditionalRisk, ConduitCriticality, EnsembleAccumulator, PPM};

/// Draws evaluated per work unit. Fixed (never derived from the thread
/// count) so the chunk boundaries — and the merge tree — are identical
/// at any parallelism.
pub const DRAW_CHUNK: usize = 64;

/// Criticality-ranking length in the report.
pub const CRITICALITY_TOP: usize = 10;

/// One stored route of a city pair: length plus the conduits traversed
/// (the snapshot's route→conduit index, re-expressed without a serve
/// dependency).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteSummary {
    /// Route length, km.
    pub km: f64,
    /// Map conduit ids the route traverses.
    pub conduits: Vec<u32>,
}

/// The stored routes for one conduit-joined node pair, cheapest first.
#[derive(Debug, Clone, PartialEq)]
pub struct PairRoutes {
    /// Smaller map node id.
    pub a: u32,
    /// Larger map node id.
    pub b: u32,
    /// Up to k cheapest loopless routes; empty when the pair was
    /// disconnected at freeze time (such pairs are skipped entirely).
    pub routes: Vec<RouteSummary>,
}

/// Borrowed evaluation inputs: the frozen map, roster, route index, and
/// CSR search structures. The serve layer builds one from its
/// `QueryEngine` tables; tests build one directly over a toy map.
#[derive(Debug)]
pub struct EvalContext<'a> {
    /// The frozen fiber map.
    pub map: &'a FiberMap,
    /// Provider roster (`what_if_cut` semantics).
    pub isps: &'a [String],
    /// Stored routes per conduit-joined pair.
    pub pairs: &'a [PairRoutes],
    /// Frozen conduit-graph adjacency.
    pub csr: &'a CsrGraph,
    /// Per-conduit km (edge `i` = conduit `i`).
    pub km: &'a [f64],
    /// Per-conduit §4.2 sharing counts (risk-matrix `shared` row),
    /// echoed into the criticality ranking. May be empty.
    pub shared: &'a [u16],
    /// ALT tables for the exact surviving-route searches.
    pub landmarks: Option<&'a Landmarks>,
}

/// The per-draw RNG: a stream keyed by `(seed, draw index)` so draw `i`
/// samples the same failure set no matter which chunk or thread
/// evaluates it.
fn draw_rng(seed: u64, draw: u64) -> StdRng {
    StdRng::seed_from_u64(seed ^ (draw.wrapping_add(1)).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Samples one failure set into `severed` (which must be all-false on
/// entry and is left holding the draw's mask); returns the number of
/// conduits severed. Exposures are visited in ascending conduit order —
/// one Bernoulli trial each — so the stream layout is part of the
/// determinism contract.
fn sample_draw(exposures: &[Exposure], rng: &mut StdRng, severed: &mut [bool]) -> u64 {
    let mut cut = 0u64;
    for e in exposures {
        if rng.gen_bool(e.probability) {
            if let Some(s) = severed.get_mut(e.conduit as usize) {
                *s = true;
                cut += 1;
            }
        }
    }
    cut
}

/// Evaluates one chunk of draw indices serially into an accumulator.
fn eval_chunk(ctx: &EvalContext<'_>, exposures: &[Exposure], seed: u64, draws: &[u64]) -> EnsembleAccumulator {
    let n = ctx.map.conduits.len();
    let mut acc = EnsembleAccumulator::identity(n);
    let mut severed = vec![false; n];
    let banned_nodes = vec![false; ctx.csr.node_count()];
    let mut st = SearchState::new();
    for &draw in draws {
        let mut rng = draw_rng(seed, draw);
        let cut = sample_draw(exposures, &mut rng, &mut severed);
        acc.draws += 1;
        acc.severed_total += cut;
        if cut > 0 {
            let disconnected = eval_pairs(ctx, &severed, &banned_nodes, &mut st, &mut acc);
            acc.disconnected_total += disconnected;
            acc.max_disconnected = acc.max_disconnected.max(disconnected);
            for e in exposures {
                let c = e.conduit as usize;
                if severed[c] {
                    acc.failures[c] += 1;
                    acc.disconnect_weight[c] += disconnected;
                }
            }
            severed.fill(false);
        }
    }
    acc
}

/// Scans every pair against the draw's severed mask: unaffected pairs
/// are skipped, affected pairs first try the stored routes (a scan), and
/// only pairs whose every stored route is hit fall back to an exact
/// ALT-pruned search over the frozen CSR adjacency — the same engine and
/// mask semantics as the serve layer's `CutImpact`. Returns the number
/// of pairs left with no surviving route.
fn eval_pairs(
    ctx: &EvalContext<'_>,
    severed: &[bool],
    banned_nodes: &[bool],
    st: &mut SearchState,
    acc: &mut EnsembleAccumulator,
) -> u64 {
    let mut disconnected = 0u64;
    for pair in ctx.pairs {
        let Some(best) = pair.routes.first() else {
            continue;
        };
        let hit = best
            .conduits
            .iter()
            .any(|&c| severed.get(c as usize).copied().unwrap_or(false));
        if !hit {
            continue;
        }
        acc.affected_total += 1;
        let surviving_km = pair
            .routes
            .iter()
            .find(|r| {
                r.conduits
                    .iter()
                    .all(|&c| !severed.get(c as usize).copied().unwrap_or(false))
            })
            .map(|r| r.km)
            .or_else(|| {
                match csr_dijkstra_filtered(
                    ctx.csr,
                    st,
                    NodeId(pair.a),
                    NodeId(pair.b),
                    |e: EdgeId| ctx.km.get(e.index()).copied().unwrap_or(f64::INFINITY),
                    banned_nodes,
                    severed,
                    ctx.landmarks,
                ) {
                    Ok(Some(p)) => Some(p.cost),
                    _ => None,
                }
            });
        match surviving_km {
            Some(after) if best.km > 0.0 => {
                acc.survived_total += 1;
                let inflation = (after - best.km).max(0.0) / best.km;
                acc.inflation_ppm_total += (inflation * PPM).round() as u64;
            }
            Some(_) => acc.survived_total += 1,
            None => disconnected += 1,
        }
    }
    disconnected
}

/// Evaluates the full ensemble: validates the plan, computes the
/// exposure table, samples and scores every draw (in parallel when the
/// `parallel` feature is on — byte-identical either way), and assembles
/// the report. Worker-thread safe: counters only, no obs spans.
pub fn evaluate(ctx: &EvalContext<'_>, plan: &ScenarioPlan) -> Result<ConditionalRisk, ScenarioError> {
    plan.validate()?;
    intertubes_obs::counter("scenario.ensemble_evals", 1);
    intertubes_obs::counter("scenario.draws", plan.draws);
    let exposed = exposures(ctx.map, &plan.footprint, &plan.model);
    intertubes_obs::counter("scenario.exposed_conduits", exposed.len() as u64);

    let indices: Vec<u64> = (0..plan.draws).collect();
    let chunks = par_chunks_map(&indices, DRAW_CHUNK, |_chunk_index, chunk| {
        eval_chunk(ctx, &exposed, plan.seed, chunk)
    });
    let mut acc = EnsembleAccumulator::identity(ctx.map.conduits.len());
    for chunk in &chunks {
        acc.merge(chunk);
    }

    let certain: Vec<MapConduitId> = exposed
        .iter()
        .filter(|e| e.probability >= 1.0)
        .map(|e| MapConduitId(e.conduit))
        .collect();
    let certain_cut = if certain.is_empty() {
        None
    } else {
        Some(what_if_cut(ctx.map, ctx.isps, &certain))
    };

    let mut ranked: Vec<ConduitCriticality> = exposed
        .iter()
        .map(|e| {
            let c = e.conduit as usize;
            let conduit = &ctx.map.conduits[c];
            ConduitCriticality {
                conduit: e.conduit,
                a: ctx.map.nodes[conduit.a.index()].label.clone(),
                b: ctx.map.nodes[conduit.b.index()].label.clone(),
                shared: ctx.shared.get(c).copied().unwrap_or(0),
                probability: e.probability,
                failures: acc.failures[c],
                disconnect_weight: acc.disconnect_weight[c],
            }
        })
        .collect();
    ranked.sort_by(|x, y| {
        y.disconnect_weight
            .cmp(&x.disconnect_weight)
            .then_with(|| y.failures.cmp(&x.failures))
            .then_with(|| x.conduit.cmp(&y.conduit))
    });
    ranked.truncate(CRITICALITY_TOP);

    let draws = acc.draws.max(1) as f64;
    Ok(ConditionalRisk {
        scenario: plan.name.clone(),
        seed: plan.seed,
        draws: acc.draws,
        exposed_conduits: exposed.len(),
        certain_conduits: certain.len(),
        mean_conduits_cut: acc.severed_total as f64 / draws,
        mean_pairs_disconnected: acc.disconnected_total as f64 / draws,
        max_pairs_disconnected: acc.max_disconnected,
        mean_pairs_affected: acc.affected_total as f64 / draws,
        mean_path_inflation_pct: if acc.survived_total > 0 {
            (acc.inflation_ppm_total as f64 / acc.survived_total as f64) / PPM * 100.0
        } else {
            0.0
        },
        criticality: ranked,
        certain_cut,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dsl::{Footprint, HazardModel};
    use intertubes_geo::GeoPoint;

    #[test]
    fn draw_streams_are_independent_of_order() {
        let exposures = vec![
            Exposure {
                conduit: 0,
                probability: 0.5,
                distance_km: 1.0,
            },
            Exposure {
                conduit: 2,
                probability: 0.5,
                distance_km: 2.0,
            },
        ];
        // Draw 7 sampled alone equals draw 7 sampled after draws 0..7.
        let mut direct = vec![false; 3];
        let mut rng = draw_rng(99, 7);
        sample_draw(&exposures, &mut rng, &mut direct);
        let mut sequential = vec![false; 3];
        for d in 0..=7u64 {
            sequential.fill(false);
            let mut rng = draw_rng(99, d);
            sample_draw(&exposures, &mut rng, &mut sequential);
        }
        assert_eq!(direct, sequential);
    }

    #[test]
    fn validation_errors_surface_before_any_work() {
        let map = FiberMap::default();
        let csr = map.graph().to_csr();
        let ctx = EvalContext {
            map: &map,
            isps: &[],
            pairs: &[],
            csr: &csr,
            km: &[],
            shared: &[],
            landmarks: None,
        };
        let plan = ScenarioPlan {
            name: "empty".to_string(),
            seed: 1,
            draws: 0,
            footprint: Footprint::Disc {
                center: GeoPoint {
                    lat: 40.0,
                    lon: -100.0,
                },
                radius_km: 10.0,
            },
            model: HazardModel::Fixed { p: 0.5 },
        };
        assert_eq!(evaluate(&ctx, &plan), Err(ScenarioError::EmptyEnsemble));
    }
}
