//! Ensemble aggregation and the typed `ConditionalRisk` report
//! (DESIGN.md §12.3).
//!
//! The accumulator holds only integer fields (counts, maxima, and a
//! fixed-point ppm sum for path inflation), so its merge is exactly
//! associative *and* commutative — f64 addition is neither. That is what
//! makes the serial==parallel byte-identical contract free: draws are
//! evaluated in fixed-size chunks, per-chunk accumulators are folded in
//! chunk order, and the floating-point summary statistics are derived
//! from the merged integers exactly once, serially, at the end.

use intertubes_mitigation::CutReport;
use serde::{Deserialize, Serialize};

/// Fixed-point scale for path-inflation sums: parts-per-million of the
/// pre-cut best delay.
pub const PPM: f64 = 1_000_000.0;

/// Integer-only per-ensemble tallies with an associative, commutative
/// merge. `failures` and `disconnect_weight` are indexed by map conduit
/// id (full length — merging never needs to reconcile sparse keys).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnsembleAccumulator {
    /// Draws tallied.
    pub draws: u64,
    /// Σ conduits severed across draws.
    pub severed_total: u64,
    /// Σ disconnected pairs across draws (pairs with no surviving route).
    pub disconnected_total: u64,
    /// Worst single draw: most pairs disconnected at once.
    pub max_disconnected: u64,
    /// Σ affected pairs (best stored route hit) across draws.
    pub affected_total: u64,
    /// Σ affected-but-surviving pairs across draws.
    pub survived_total: u64,
    /// Σ per-pair path inflation over surviving affected pairs, in ppm of
    /// the pre-cut best delay, rounded half-up per pair.
    pub inflation_ppm_total: u64,
    /// Per-conduit: draws in which the conduit failed.
    pub failures: Vec<u64>,
    /// Per-conduit: Σ over draws of (pairs disconnected in that draw)
    /// for each conduit severed in it — the criticality weight.
    pub disconnect_weight: Vec<u64>,
}

impl EnsembleAccumulator {
    /// The merge identity for a map with `conduits` conduits.
    pub fn identity(conduits: usize) -> EnsembleAccumulator {
        EnsembleAccumulator {
            draws: 0,
            severed_total: 0,
            disconnected_total: 0,
            max_disconnected: 0,
            affected_total: 0,
            survived_total: 0,
            inflation_ppm_total: 0,
            failures: vec![0; conduits],
            disconnect_weight: vec![0; conduits],
        }
    }

    /// Merges `other` in: sums and maxima of integers, so the operation
    /// is associative and commutative (property-tested in
    /// `tests/scenario_properties.rs`).
    pub fn merge(&mut self, other: &EnsembleAccumulator) {
        self.draws += other.draws;
        self.severed_total += other.severed_total;
        self.disconnected_total += other.disconnected_total;
        self.max_disconnected = self.max_disconnected.max(other.max_disconnected);
        self.affected_total += other.affected_total;
        self.survived_total += other.survived_total;
        self.inflation_ppm_total += other.inflation_ppm_total;
        for (mine, theirs) in self.failures.iter_mut().zip(&other.failures) {
            *mine += theirs;
        }
        for (mine, theirs) in self.disconnect_weight.iter_mut().zip(&other.disconnect_weight) {
            *mine += theirs;
        }
    }
}

/// One entry of the per-conduit criticality ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConduitCriticality {
    /// Map conduit id.
    pub conduit: u32,
    /// Endpoint city labels.
    pub a: String,
    /// Endpoint city labels.
    pub b: String,
    /// Providers sharing the conduit (§4.2 risk matrix).
    pub shared: u16,
    /// Modeled per-draw failure probability.
    pub probability: f64,
    /// Draws in which the conduit failed.
    pub failures: u64,
    /// Σ over failing draws of that draw's disconnected-pair count — the
    /// ranking weight (descending, conduit id breaking ties).
    pub disconnect_weight: u64,
}

/// The typed ensemble report: expectation statistics over the sampled
/// failure sets, the criticality ranking, and — when the plan makes some
/// cut certain (probability ≥ 1) — the exact [`CutReport`] for that cut,
/// bit-identical to calling `what_if_cut` directly (property-tested).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionalRisk {
    /// Scenario name from the plan.
    pub scenario: String,
    /// Ensemble seed.
    pub seed: u64,
    /// Ensemble size.
    pub draws: u64,
    /// Conduits with positive failure probability.
    pub exposed_conduits: usize,
    /// Conduits with probability ≥ 1 (fail in every draw).
    pub certain_conduits: usize,
    /// E[conduits severed per draw].
    pub mean_conduits_cut: f64,
    /// E[pairs disconnected per draw] — no surviving route at all.
    pub mean_pairs_disconnected: f64,
    /// Worst draw: most pairs disconnected at once.
    pub max_pairs_disconnected: u64,
    /// E[pairs whose best route was severed per draw].
    pub mean_pairs_affected: f64,
    /// Mean path inflation over affected-but-surviving pair evaluations,
    /// percent of the pre-cut best delay.
    pub mean_path_inflation_pct: f64,
    /// Top conduits by disconnect weight.
    pub criticality: Vec<ConduitCriticality>,
    /// Exact §4.2 before/after report for the certain cut, when any
    /// conduit has probability ≥ 1.
    pub certain_cut: Option<CutReport>,
}

impl ConditionalRisk {
    /// FNV-1a digest of the report's canonical JSON — the goldens' and
    /// seed-sweep's comparison key.
    pub fn digest(&self) -> u64 {
        let text = serde_json::to_string(self).unwrap_or_default();
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for b in text.as_bytes() {
            hash ^= u64::from(*b);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(seed: u64) -> EnsembleAccumulator {
        let mut a = EnsembleAccumulator::identity(3);
        a.draws = seed;
        a.severed_total = seed * 2;
        a.disconnected_total = seed % 5;
        a.max_disconnected = seed % 7;
        a.affected_total = seed * 3;
        a.survived_total = seed;
        a.inflation_ppm_total = seed * 11;
        a.failures = vec![seed, seed % 3, 1];
        a.disconnect_weight = vec![0, seed, seed % 2];
        a
    }

    #[test]
    fn merge_is_associative_and_commutative() {
        let (a, b, c) = (acc(3), acc(10), acc(42));
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
    }

    #[test]
    fn identity_is_neutral() {
        let a = acc(9);
        let mut viaid = EnsembleAccumulator::identity(3);
        viaid.merge(&a);
        assert_eq!(viaid, a);
    }
}
