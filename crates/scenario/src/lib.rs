//! Probabilistic geofenced failure scenarios with seeded ensembles
//! (DESIGN.md §12).
//!
//! The paper's risk analysis (§5–§6) cuts one conduit at a time; real
//! hazards — earthquakes, hurricanes, backhoe corridors — sever
//! geographically *correlated* sets. This crate closes that gap:
//!
//! * [`ScenarioPlan`] — a JSON DSL (the `FaultPlan` idiom: serde
//!   round-trip, parse-time validation with typed [`ScenarioError`]s,
//!   infallible pretty printer, built-in scenarios) describing a
//!   geofenced hazard: a [`Footprint`] (polygon ring or geodesic disc)
//!   over the conduit grid plus a [`HazardModel`] (fixed,
//!   distance-decayed, or Weibull-intensity failure probability).
//! * [`exposures`] — the pure footprint→conduit exposure table:
//!   conduits whose sampled geometry enters the footprint, with their
//!   modeled failure probabilities.
//! * [`evaluate`] — seeded ensemble sampling: N correlated failure sets
//!   drawn from per-draw RNG streams (`seed ⊕ (i+1)·φ`), each evaluated
//!   as a mask-filtered scan over the stored route→conduit index with an
//!   exact ALT-pruned CSR search fallback, tallied into an integer-only
//!   [`EnsembleAccumulator`] whose merge is associative and commutative
//!   — so serial and parallel evaluation produce byte-identical
//!   [`ConditionalRisk`] reports at any thread count.
//!
//! The serve layer exposes this as its `Ensemble` query family (cached
//! by canonical plan JSON, which includes the seed), and the CLI as the
//! `scenario` subcommand.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dsl;
mod engine;
mod geometry;
mod report;

pub use dsl::{Footprint, HazardModel, ScenarioError, ScenarioPlan};
pub use engine::{
    evaluate, EvalContext, PairRoutes, RouteSummary, CRITICALITY_TOP, DRAW_CHUNK,
};
pub use geometry::{exposures, Exposure, SAMPLE_STEP_KM};
pub use report::{ConditionalRisk, ConduitCriticality, EnsembleAccumulator, PPM};
