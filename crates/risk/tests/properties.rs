//! Property-based tests: risk-matrix invariants on randomly generated maps.

use intertubes_geo::{GeoPoint, Polyline};
use intertubes_map::{FiberMap, MapConduit, Provenance, Tenancy, TenancySource};
use intertubes_risk::{
    conduits_shared_by_at_least, hamming_heatmap, isp_sharing_ranking, sharing_fraction, Cdf,
    RiskMatrix,
};
use proptest::prelude::*;

const ISPS: [&str; 6] = ["A", "B", "C", "D", "E", "F"];

/// A random map: up to 12 conduits over up to 6 nodes, each with a random
/// tenant subset.
fn arb_map() -> impl Strategy<Value = FiberMap> {
    prop::collection::vec(
        (0u32..6, 0u32..6, prop::collection::vec(0usize..6, 1..5)),
        1..12,
    )
    .prop_map(|conduits| {
        let mut m = FiberMap::default();
        for i in 0..6 {
            m.ensure_node(
                &format!("N{i}, XX"),
                GeoPoint::new_unchecked(40.0 + i as f64 * 0.2, -100.0),
            );
        }
        for (a, b, tenants) in conduits {
            let mut names: Vec<usize> = tenants;
            names.sort_unstable();
            names.dedup();
            m.conduits.push(MapConduit {
                a: intertubes_map::MapNodeId(a),
                b: intertubes_map::MapNodeId(b),
                geometry: Polyline::straight(
                    GeoPoint::new_unchecked(40.0 + a as f64 * 0.2, -100.0),
                    GeoPoint::new_unchecked(40.01 + b as f64 * 0.2, -100.0),
                ),
                tenants: names
                    .into_iter()
                    .map(|i| Tenancy {
                        isp: ISPS[i].to_string(),
                        source: TenancySource::PublishedMap,
                    })
                    .collect(),
                provenance: Provenance::Step1,
                validated: true,
                row: None,
            });
        }
        m
    })
}

fn isp_names() -> Vec<String> {
    ISPS.iter().map(|s| s.to_string()).collect()
}

proptest! {
    #[test]
    fn shared_counts_match_tenant_lists(map in arb_map()) {
        let rm = RiskMatrix::build(&map, &isp_names());
        for (c, conduit) in map.conduits.iter().enumerate() {
            prop_assert_eq!(rm.shared[c] as usize, conduit.tenant_count());
        }
    }

    #[test]
    fn value_is_zero_or_shared(map in arb_map()) {
        let rm = RiskMatrix::build(&map, &isp_names());
        for i in 0..rm.isp_count() {
            for c in 0..rm.conduit_count() {
                let v = rm.value(i, c);
                prop_assert!(v == 0 || v == rm.shared[c]);
                prop_assert_eq!(v != 0, rm.uses[i][c]);
            }
        }
    }

    #[test]
    fn at_least_bars_are_monotone_and_consistent(map in arb_map()) {
        let rm = RiskMatrix::build(&map, &isp_names());
        let bars = conduits_shared_by_at_least(&rm);
        prop_assert_eq!(bars[0], rm.conduit_count());
        for w in bars.windows(2) {
            prop_assert!(w[0] >= w[1]);
        }
        for (k, &bar) in bars.iter().enumerate() {
            let frac = sharing_fraction(&rm, (k + 1) as u16);
            prop_assert!((frac - bar as f64 / rm.conduit_count() as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn ranking_is_sorted_and_percentiles_bracket(map in arb_map()) {
        let rm = RiskMatrix::build(&map, &isp_names());
        let ranking = isp_sharing_ranking(&rm);
        prop_assert_eq!(ranking.len(), rm.isp_count());
        for w in ranking.windows(2) {
            prop_assert!(w[0].mean <= w[1].mean + 1e-12);
        }
        for r in &ranking {
            prop_assert!(r.p25 <= r.p75 + 1e-12);
            if r.conduits > 0 {
                prop_assert!(r.mean >= 1.0, "a used conduit has >= 1 tenant");
            }
        }
    }

    #[test]
    fn hamming_is_a_metric(map in arb_map()) {
        let rm = RiskMatrix::build(&map, &isp_names());
        let hm = hamming_heatmap(&rm);
        let n = hm.isps.len();
        for i in 0..n {
            prop_assert_eq!(hm.distance[i][i], 0);
            for j in 0..n {
                prop_assert_eq!(hm.distance[i][j], hm.distance[j][i]);
                // Triangle inequality for Hamming distance.
                for k in 0..n {
                    prop_assert!(
                        hm.distance[i][j] <= hm.distance[i][k] + hm.distance[k][j]
                    );
                }
            }
        }
    }

    #[test]
    fn identical_footprints_have_zero_distance(map in arb_map()) {
        // Duplicate provider A as "A2" on every conduit: rows must match.
        let mut map = map;
        for c in &mut map.conduits {
            if c.has_tenant("A") {
                c.tenants.push(Tenancy { isp: "A2".into(), source: TenancySource::Records });
            }
        }
        let mut names = isp_names();
        names.push("A2".into());
        let rm = RiskMatrix::build(&map, &names);
        let hm = hamming_heatmap(&rm);
        let ia = hm.isps.iter().position(|n| n == "A").unwrap();
        let ia2 = hm.isps.iter().position(|n| n == "A2").unwrap();
        prop_assert_eq!(hm.distance[ia][ia2], 0);
    }

    #[test]
    fn cdf_round_trips_samples(samples in prop::collection::vec(0usize..40, 0..50)) {
        let cdf = Cdf::from_samples(samples.clone());
        if samples.is_empty() {
            prop_assert_eq!(cdf.at(100), 0.0);
        } else {
            prop_assert!((cdf.at(40) - 1.0).abs() < 1e-12);
            let mean = samples.iter().sum::<usize>() as f64 / samples.len() as f64;
            prop_assert!((cdf.mean() - mean).abs() < 1e-9);
            // at() is non-decreasing.
            let mut last = 0.0;
            for x in 0..=40 {
                let v = cdf.at(x);
                prop_assert!(v + 1e-12 >= last);
                last = v;
            }
        }
    }
}
