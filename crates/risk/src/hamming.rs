//! Hamming-distance similarity of provider risk profiles (§4.2, Fig. 8).
//!
//! The paper compares every pair of risk-matrix rows: the smaller the
//! Hamming distance, the more similar (and more co-exposed) the two
//! providers' physical deployments are.

use serde::{Deserialize, Serialize};

use crate::matrix::RiskMatrix;

/// The pairwise Hamming-distance matrix (Fig. 8's heat map).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HammingHeatmap {
    /// Provider names (axis order).
    pub isps: Vec<String>,
    /// `distance[i][j]`: positions where rows i and j differ.
    pub distance: Vec<Vec<u32>>,
}

/// Hamming distance between two risk-matrix rows.
pub fn hamming_distance(a: &[u16], b: &[u16]) -> u32 {
    assert_eq!(a.len(), b.len(), "rows must have equal length");
    a.iter().zip(b.iter()).filter(|(x, y)| x != y).count() as u32
}

/// Computes the full pairwise heat map.
///
/// Row extraction and the upper-triangle distance computation fan out one
/// provider row at a time; the mirrored matrix is assembled serially, so
/// the result is identical to the serial double loop.
pub fn hamming_heatmap(rm: &RiskMatrix) -> HammingHeatmap {
    let mut span = intertubes_obs::stage("risk.hamming");
    span.items("isps", rm.isp_count());
    span.items("pairs", rm.isp_count() * rm.isp_count().saturating_sub(1) / 2);
    let indices: Vec<usize> = (0..rm.isp_count()).collect();
    let rows: Vec<Vec<u16>> = intertubes_parallel::par_map(&indices, |&i| rm.row(i));
    let n = rows.len();
    let upper: Vec<Vec<u32>> = intertubes_parallel::par_map(&indices, |&i| {
        (i + 1..n)
            .map(|j| hamming_distance(&rows[i], &rows[j]))
            .collect()
    });
    let mut distance = vec![vec![0u32; n]; n];
    for (i, strip) in upper.iter().enumerate() {
        for (off, &d) in strip.iter().enumerate() {
            let j = i + 1 + off;
            distance[i][j] = d;
            distance[j][i] = d;
        }
    }
    HammingHeatmap {
        isps: rm.isps.clone(),
        distance,
    }
}

impl HammingHeatmap {
    /// Mean distance from each provider to all others, ascending —
    /// providers at the top have risk profiles most similar to the rest of
    /// the field (the paper's "low risk profile" reading for EarthLink and
    /// Level 3 compares profile rows).
    pub fn mean_distances(&self) -> Vec<(String, f64)> {
        let n = self.isps.len();
        let mut out: Vec<(String, f64)> = (0..n)
            .map(|i| {
                let sum: u32 = (0..n)
                    .filter(|&j| j != i)
                    .map(|j| self.distance[i][j])
                    .sum();
                (self.isps[i].clone(), sum as f64 / (n - 1).max(1) as f64)
            })
            .collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// The most similar (smallest-distance) provider pair.
    pub fn most_similar_pair(&self) -> Option<(String, String, u32)> {
        let n = self.isps.len();
        let mut best: Option<(usize, usize)> = None;
        for i in 0..n {
            for j in i + 1..n {
                if best.map_or(true, |(bi, bj)| self.distance[i][j] < self.distance[bi][bj]) {
                    best = Some((i, j));
                }
            }
        }
        best.map(|(i, j)| {
            (
                self.isps[i].clone(),
                self.isps[j].clone(),
                self.distance[i][j],
            )
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intertubes_geo::{GeoPoint, Polyline};
    use intertubes_map::{FiberMap, MapConduit, Provenance, Tenancy, TenancySource};

    #[test]
    fn distance_basics() {
        assert_eq!(hamming_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(hamming_distance(&[1, 2, 3], &[1, 0, 3]), 1);
        assert_eq!(hamming_distance(&[0, 0], &[1, 1]), 2);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn distance_requires_equal_length() {
        hamming_distance(&[1], &[1, 2]);
    }

    fn toy_map() -> FiberMap {
        let mut m = FiberMap::default();
        let a = m.ensure_node("A, XX", GeoPoint::new_unchecked(40.0, -100.0));
        let b = m.ensure_node("B, XX", GeoPoint::new_unchecked(41.0, -100.0));
        let t = |isp: &str| Tenancy {
            isp: isp.into(),
            source: TenancySource::PublishedMap,
        };
        for tenants in [vec![t("X"), t("Y")], vec![t("X"), t("Y")], vec![t("Z")]] {
            m.conduits.push(MapConduit {
                a,
                b,
                geometry: Polyline::straight(
                    GeoPoint::new_unchecked(40.0, -100.0),
                    GeoPoint::new_unchecked(41.0, -100.0),
                ),
                tenants,
                provenance: Provenance::Step1,
                validated: true,
                row: None,
            });
        }
        m
    }

    #[test]
    fn identical_deployments_have_zero_distance() {
        let rm = RiskMatrix::build(&toy_map(), &["X".into(), "Y".into(), "Z".into()]);
        let hm = hamming_heatmap(&rm);
        assert_eq!(hm.distance[0][1], 0, "X and Y deploy identically");
        assert!(hm.distance[0][2] > 0);
        // Symmetry, zero diagonal.
        assert_eq!(hm.distance[1][0], hm.distance[0][1]);
        assert_eq!(hm.distance[2][2], 0);
        let (a, b, d) = hm.most_similar_pair().unwrap();
        assert_eq!(d, 0);
        assert!((a == "X" && b == "Y") || (a == "Y" && b == "X"));
    }

    #[test]
    fn mean_distances_sorted() {
        let rm = RiskMatrix::build(&toy_map(), &["X".into(), "Y".into(), "Z".into()]);
        let hm = hamming_heatmap(&rm);
        let means = hm.mean_distances();
        for w in means.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        // Z differs from both X and Y in 3 positions each.
        let z = means.iter().find(|(n, _)| n == "Z").unwrap();
        assert!((z.1 - 3.0).abs() < 1e-12);
    }
}
