//! Connectivity + traffic risk (§4.3): the Fig. 9 CDFs and the assembly of
//! the traceroute-derived tables against the risk matrix.

use intertubes_map::FiberMap;
use intertubes_probes::Overlay;
use serde::{Deserialize, Serialize};

/// An empirical CDF over integer values.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    /// Support values, ascending.
    pub values: Vec<usize>,
    /// `P(X <= values[i])`.
    pub cumulative: Vec<f64>,
}

impl Cdf {
    /// Builds an empirical CDF from samples.
    pub fn from_samples(mut samples: Vec<usize>) -> Cdf {
        samples.sort_unstable();
        let n = samples.len().max(1) as f64;
        let mut values = Vec::new();
        let mut cumulative = Vec::new();
        for (i, v) in samples.iter().enumerate() {
            if values.last() == Some(v) {
                *cumulative.last_mut().expect("non-empty") = (i + 1) as f64 / n;
            } else {
                values.push(*v);
                cumulative.push((i + 1) as f64 / n);
            }
        }
        Cdf { values, cumulative }
    }

    /// `P(X <= x)`.
    pub fn at(&self, x: usize) -> f64 {
        match self.values.partition_point(|&v| v <= x) {
            0 => 0.0,
            i => self.cumulative[i - 1],
        }
    }

    /// Mean of the underlying samples (from the CDF representation).
    pub fn mean(&self) -> f64 {
        let mut prev = 0.0;
        let mut mean = 0.0;
        for (v, c) in self.values.iter().zip(self.cumulative.iter()) {
            mean += *v as f64 * (c - prev);
            prev = *c;
        }
        mean
    }
}

/// The Fig. 9 data: tenant-count CDFs before and after the traceroute
/// overlay.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficRisk {
    /// CDF of providers per conduit from the physical map alone.
    pub map_only: Cdf,
    /// CDF after adding traceroute-observed providers.
    pub with_traffic: Cdf,
}

/// Computes the Fig. 9 comparison.
pub fn traffic_risk(map: &FiberMap, overlay: &Overlay) -> TrafficRisk {
    let counts = overlay.tenant_counts(map);
    let map_only = Cdf::from_samples(counts.iter().map(|(b, _)| *b).collect());
    let with_traffic = Cdf::from_samples(counts.iter().map(|(_, w)| *w).collect());
    TrafficRisk {
        map_only,
        with_traffic,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cdf_basics() {
        let cdf = Cdf::from_samples(vec![1, 1, 2, 4]);
        assert_eq!(cdf.values, vec![1, 2, 4]);
        assert!((cdf.at(0) - 0.0).abs() < 1e-12);
        assert!((cdf.at(1) - 0.5).abs() < 1e-12);
        assert!((cdf.at(2) - 0.75).abs() < 1e-12);
        assert!((cdf.at(3) - 0.75).abs() < 1e-12);
        assert!((cdf.at(4) - 1.0).abs() < 1e-12);
        assert!((cdf.at(99) - 1.0).abs() < 1e-12);
        assert!((cdf.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cdf_is_monotone() {
        let cdf = Cdf::from_samples(vec![5, 3, 9, 3, 7, 1]);
        for w in cdf.cumulative.windows(2) {
            assert!(w[0] <= w[1]);
        }
        for w in cdf.values.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn empty_cdf() {
        let cdf = Cdf::from_samples(vec![]);
        assert_eq!(cdf.at(10), 0.0);
        assert_eq!(cdf.mean(), 0.0);
    }
}
