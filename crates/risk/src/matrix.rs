//! The risk matrix (§4.1).
//!
//! Rows are providers, columns are conduits; the entry for provider *i* and
//! conduit *c* is the number of providers sharing *c* if *i* is a tenant,
//! else 0 — exactly the counting scheme the paper illustrates with the
//! Level 3 / Sprint example.

use intertubes_degrade::{DegradationAction, DegradationPolicy, DegradationReport};
use intertubes_map::FiberMap;
use serde::{Deserialize, Serialize};

use crate::RiskError;

/// The §4.1 risk matrix.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RiskMatrix {
    /// Provider names (row order).
    pub isps: Vec<String>,
    /// `uses[i][c]`: provider `i` is a tenant of conduit `c`.
    pub uses: Vec<Vec<bool>>,
    /// `shared[c]`: number of row providers sharing conduit `c`.
    pub shared: Vec<u16>,
}

impl RiskMatrix {
    /// Builds the matrix for the given providers over a constructed map.
    ///
    /// Providers absent from the map get all-zero rows (and a zero share
    /// contribution), mirroring the paper's incremental construction.
    ///
    /// Equivalent to [`RiskMatrix::build_checked`] under the lenient
    /// policy, with the degradation report discarded.
    pub fn build(map: &FiberMap, isps: &[String]) -> RiskMatrix {
        match RiskMatrix::build_checked(map, isps, DegradationPolicy::Lenient) {
            Ok((rm, _)) => rm,
            // The lenient policy never returns an error by construction.
            Err(e) => unreachable!("lenient risk-matrix build cannot fail: {e}"),
        }
    }

    /// Builds the matrix with explicit degradation control.
    ///
    /// A provider name listed twice would double-count every conduit it
    /// shares, silently inflating the §4.2 sharing distribution. Under
    /// [`DegradationPolicy::Lenient`] later duplicates are dropped and
    /// counted (`"duplicate-provider"`); under strict the build aborts
    /// with [`RiskError::DuplicateProvider`]. A duplicate-free roster
    /// yields the same matrix as [`RiskMatrix::build`] and an empty
    /// report.
    pub fn build_checked(
        map: &FiberMap,
        isps: &[String],
        policy: DegradationPolicy,
    ) -> Result<(RiskMatrix, DegradationReport), RiskError> {
        let mut span = intertubes_obs::stage("risk.matrix");
        span.items("conduits", map.conduits.len());
        let mut report = DegradationReport::new();
        let mut roster: Vec<String> = Vec::with_capacity(isps.len());
        let mut duplicates = 0usize;
        for isp in isps {
            if roster.contains(isp) {
                if policy.is_strict() {
                    span.failed();
                    return Err(RiskError::DuplicateProvider { name: isp.clone() });
                }
                duplicates += 1;
            } else {
                roster.push(isp.clone());
            }
        }
        report.note(
            "risk.matrix",
            DegradationAction::Repaired,
            "duplicate-provider",
            duplicates,
        );
        span.items("isps", roster.len());
        span.items("duplicates", duplicates);
        if duplicates > 0 {
            span.degraded();
        }
        Ok((RiskMatrix::build_roster(map, &roster), report))
    }

    fn build_roster(map: &FiberMap, isps: &[String]) -> RiskMatrix {
        let n = map.conduits.len();
        // Each provider's tenancy row is independent of every other row:
        // fan out one row per ISP (the §4.1 matrix is built row-wise), then
        // derive the per-conduit share counts as column sums. Row order is
        // the roster order either way, so the result is byte-identical to
        // the serial nested loop.
        let uses: Vec<Vec<bool>> = intertubes_parallel::par_map(isps, |isp| {
            map.conduits.iter().map(|c| c.has_tenant(isp)).collect()
        });
        let mut shared = vec![0u16; n];
        for row in &uses {
            for (c, &used) in row.iter().enumerate() {
                shared[c] += used as u16;
            }
        }
        RiskMatrix {
            isps: isps.to_vec(),
            uses,
            shared,
        }
    }

    /// Number of conduits (columns).
    pub fn conduit_count(&self) -> usize {
        self.shared.len()
    }

    /// Number of providers (rows).
    pub fn isp_count(&self) -> usize {
        self.isps.len()
    }

    /// The matrix entry: shared count if the provider uses the conduit,
    /// else 0.
    pub fn value(&self, isp: usize, conduit: usize) -> u16 {
        if self.uses[isp][conduit] {
            self.shared[conduit]
        } else {
            0
        }
    }

    /// One full row of the matrix.
    pub fn row(&self, isp: usize) -> Vec<u16> {
        (0..self.conduit_count())
            .map(|c| self.value(isp, c))
            .collect()
    }

    /// Index of a provider by name.
    pub fn isp_index(&self, name: &str) -> Option<usize> {
        self.isps.iter().position(|n| n == name)
    }

    /// The conduits a provider uses.
    pub fn conduits_of(&self, isp: usize) -> Vec<usize> {
        (0..self.conduit_count())
            .filter(|&c| self.uses[isp][c])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intertubes_geo::{GeoPoint, Polyline};
    use intertubes_map::{MapConduit, Provenance, Tenancy, TenancySource};

    /// The paper's worked example: Level 3 on c1,c2,c3; Sprint on c1,c2.
    fn example_map() -> FiberMap {
        let mut m = FiberMap::default();
        let slc = m.ensure_node(
            "Salt Lake City, UT",
            GeoPoint::new_unchecked(40.76, -111.89),
        );
        let den = m.ensure_node("Denver, CO", GeoPoint::new_unchecked(39.74, -104.99));
        let sac = m.ensure_node("Sacramento, CA", GeoPoint::new_unchecked(38.58, -121.49));
        let pa = m.ensure_node("Palo Alto, CA", GeoPoint::new_unchecked(37.44, -122.14));
        let t = |isp: &str| Tenancy {
            isp: isp.into(),
            source: TenancySource::PublishedMap,
        };
        let mk = |a: intertubes_map::MapNodeId,
                  b: intertubes_map::MapNodeId,
                  tenants: Vec<Tenancy>,
                  m: &FiberMap| MapConduit {
            a,
            b,
            geometry: Polyline::straight(m.nodes[a.index()].location, m.nodes[b.index()].location),
            tenants,
            provenance: Provenance::Step1,
            validated: true,
            row: None,
        };
        let c1 = mk(slc, den, vec![t("Level 3"), t("Sprint")], &m);
        let c2 = mk(slc, sac, vec![t("Level 3"), t("Sprint")], &m);
        let c3 = mk(sac, pa, vec![t("Level 3")], &m);
        m.conduits.extend([c1, c2, c3]);
        m
    }

    #[test]
    fn papers_worked_example() {
        let m = example_map();
        let rm = RiskMatrix::build(&m, &["Level 3".into(), "Sprint".into()]);
        // Paper: Level 3 row = [2, 2, 1], Sprint row = [2, 2, 0].
        assert_eq!(rm.row(0), vec![2, 2, 1]);
        assert_eq!(rm.row(1), vec![2, 2, 0]);
        assert_eq!(rm.value(1, 2), 0);
        assert_eq!(rm.conduit_count(), 3);
        assert_eq!(rm.isp_count(), 2);
    }

    #[test]
    fn unknown_isp_row_is_zero() {
        let m = example_map();
        let rm = RiskMatrix::build(&m, &["Level 3".into(), "Nobody".into()]);
        assert_eq!(rm.row(1), vec![0, 0, 0]);
        // And it does not inflate the share counts.
        assert_eq!(rm.shared, vec![1, 1, 1]);
    }

    #[test]
    fn lookups() {
        let m = example_map();
        let rm = RiskMatrix::build(&m, &["Level 3".into(), "Sprint".into()]);
        assert_eq!(rm.isp_index("Sprint"), Some(1));
        assert_eq!(rm.isp_index("XO"), None);
        assert_eq!(rm.conduits_of(1), vec![0, 1]);
        assert_eq!(rm.conduits_of(0), vec![0, 1, 2]);
    }
}
