//! Physical-resilience analysis — the §4 future-work dimension the paper
//! defers ("number of fiber cuts to partition the US long-haul
//! infrastructure", with its security implications [2]).
//!
//! Over the constructed map's conduit multigraph we compute: the global
//! minimum cut (how many conduit cuts disconnect the country), bridge
//! conduits (single points of partition), articulation cities, and the
//! same quantities per provider sub-network — which makes precise the
//! paper's remark that Suddenlink "must depend on certain highly-shared
//! conduits to reach certain locations".

use intertubes_graph::{
    articulation_points, bridges, connected_components, stoer_wagner_min_cut, MultiGraph, NodeId,
};
use intertubes_map::{FiberMap, MapConduitId};
use serde::{Deserialize, Serialize};

use crate::matrix::RiskMatrix;

/// Whole-map physical resilience.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ResilienceReport {
    /// Connected components of the conduit graph (1 = country connected).
    pub components: usize,
    /// Conduits whose single cut partitions the map.
    pub bridge_conduits: Vec<MapConduitId>,
    /// Cities whose loss partitions the map.
    pub articulation_cities: Vec<String>,
    /// Minimum number of simultaneous conduit cuts that partition the map.
    pub min_cut_conduits: usize,
    /// City labels on the smaller shore of that minimum cut.
    pub min_cut_side: Vec<String>,
}

/// Per-provider resilience (over the provider's own conduits only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IspResilience {
    /// Provider name.
    pub isp: String,
    /// Connected components of the provider's sub-network.
    pub components: usize,
    /// Bridges within the provider's sub-network.
    pub bridges: usize,
    /// Minimum cut of the provider's largest component (0 when the network
    /// is already fragmented).
    pub min_cut: usize,
}

/// Computes the whole-map resilience report.
pub fn map_resilience(map: &FiberMap) -> ResilienceReport {
    let g = map.graph();
    let (_, components) = connected_components(&g);
    let bridge_conduits: Vec<MapConduitId> = bridges(&g).into_iter().map(|e| *g.edge(e)).collect();
    let articulation_cities: Vec<String> = articulation_points(&g)
        .into_iter()
        .map(|n| map.nodes[n.index()].label.clone())
        .collect();
    let (cut, side) = stoer_wagner_min_cut(&g, |_| 1.0);
    ResilienceReport {
        components,
        bridge_conduits,
        articulation_cities,
        min_cut_conduits: cut.round() as usize,
        min_cut_side: side
            .into_iter()
            .map(|n| map.nodes[n.index()].label.clone())
            .collect(),
    }
}

/// Computes per-provider resilience over the risk matrix's providers.
pub fn isp_resilience(map: &FiberMap, rm: &RiskMatrix) -> Vec<IspResilience> {
    let mut out = Vec::with_capacity(rm.isp_count());
    for i in 0..rm.isp_count() {
        // Sub-multigraph restricted to the cities the provider touches.
        let conduits = rm.conduits_of(i);
        let mut remap = vec![u32::MAX; map.nodes.len()];
        let mut g: MultiGraph<(), MapConduitId> = MultiGraph::new();
        let node_of = |g: &mut MultiGraph<(), MapConduitId>, remap: &mut Vec<u32>, n: usize| {
            if remap[n] == u32::MAX {
                remap[n] = g.add_node(()).0;
            }
            NodeId(remap[n])
        };
        for &c in &conduits {
            let conduit = &map.conduits[c];
            let a = node_of(&mut g, &mut remap, conduit.a.index());
            let b = node_of(&mut g, &mut remap, conduit.b.index());
            g.add_edge(a, b, MapConduitId(c as u32));
        }
        let (_, components) = connected_components(&g);
        let n_bridges = bridges(&g).len();
        let min_cut = if components == 1 && g.node_count() >= 2 {
            stoer_wagner_min_cut(&g, |_| 1.0).0.round() as usize
        } else {
            0 // already fragmented (or trivial)
        };
        out.push(IspResilience {
            isp: rm.isps[i].clone(),
            components,
            bridges: n_bridges,
            min_cut,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use intertubes_geo::{GeoPoint, Polyline};
    use intertubes_map::{MapConduit, Provenance, Tenancy, TenancySource};

    fn t(isp: &str) -> Tenancy {
        Tenancy {
            isp: isp.into(),
            source: TenancySource::PublishedMap,
        }
    }

    /// Two triangles joined by a single bridge conduit.
    fn barbell_map() -> FiberMap {
        let mut m = FiberMap::default();
        let names = ["A", "B", "C", "D", "E", "F"];
        let ids: Vec<_> = names
            .iter()
            .enumerate()
            .map(|(i, n)| {
                m.ensure_node(
                    &format!("{n}, XX"),
                    GeoPoint::new_unchecked(40.0 + i as f64 * 0.1, -100.0),
                )
            })
            .collect();
        let mut add = |a: usize, b: usize, tenants: Vec<Tenancy>| {
            let conduit = MapConduit {
                a: ids[a],
                b: ids[b],
                geometry: Polyline::straight(
                    GeoPoint::new_unchecked(40.0 + a as f64 * 0.1, -100.0),
                    GeoPoint::new_unchecked(40.0 + b as f64 * 0.1, -100.0),
                ),
                tenants,
                provenance: Provenance::Step1,
                validated: true,
                row: None,
            };
            m.conduits.push(conduit);
        };
        add(0, 1, vec![t("X"), t("Y")]);
        add(1, 2, vec![t("X"), t("Y")]);
        add(0, 2, vec![t("X")]);
        add(3, 4, vec![t("X")]);
        add(4, 5, vec![t("X")]);
        add(3, 5, vec![t("X")]);
        add(2, 3, vec![t("X"), t("Y")]); // the bridge
        m
    }

    #[test]
    fn whole_map_resilience_finds_bridge_and_cut() {
        let m = barbell_map();
        let r = map_resilience(&m);
        assert_eq!(r.components, 1);
        assert_eq!(r.bridge_conduits, vec![MapConduitId(6)]);
        assert_eq!(r.min_cut_conduits, 1);
        assert_eq!(r.articulation_cities.len(), 2);
        assert_eq!(r.min_cut_side.len(), 3);
    }

    #[test]
    fn per_isp_resilience_reflects_fragmentation() {
        let m = barbell_map();
        let rm = RiskMatrix::build(&m, &["X".into(), "Y".into()]);
        let reports = isp_resilience(&m, &rm);
        let x = reports.iter().find(|r| r.isp == "X").unwrap();
        assert_eq!(x.components, 1);
        assert_eq!(x.min_cut, 1, "X is partitioned by cutting the bridge");
        // Y uses only A-B, B-C and the bridge C-D: a path network — every
        // conduit is a bridge, and its reach splits from X's.
        let y = reports.iter().find(|r| r.isp == "Y").unwrap();
        assert_eq!(y.components, 1);
        assert_eq!(y.bridges, 3);
        assert_eq!(y.min_cut, 1);
    }

    #[test]
    fn empty_provider_is_degenerate() {
        let m = barbell_map();
        let rm = RiskMatrix::build(&m, &["X".into(), "Ghost".into()]);
        let reports = isp_resilience(&m, &rm);
        let ghost = reports.iter().find(|r| r.isp == "Ghost").unwrap();
        assert_eq!(ghost.components, 0);
        assert_eq!(ghost.bridges, 0);
        assert_eq!(ghost.min_cut, 0);
    }
}
