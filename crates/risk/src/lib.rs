//! Shared-risk assessment (the paper's §4).
//!
//! Builds the §4.1 risk matrix over a constructed fiber map and computes:
//! the conduit-sharing distribution and provider ranking (§4.2, Figs. 6–7),
//! Hamming-distance risk-profile similarity (Fig. 8), and the
//! traffic-weighted view obtained by overlaying traceroute campaigns
//! (§4.3, Fig. 9 and Tables 2–4, via `intertubes-probes`). The
//! [`map_resilience`]/[`isp_resilience`] extension quantifies the §4
//! future-work question — how many fiber cuts partition the
//! infrastructure — via bridges and Stoer–Wagner minimum cuts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hamming;
mod matrix;
mod metrics;
mod resilience;
mod traffic;

pub use hamming::{hamming_distance, hamming_heatmap, HammingHeatmap};
pub use matrix::RiskMatrix;
pub use metrics::{
    conduits_shared_by_at_least, isp_sharing_ranking, raw_shared_conduits, sharing_fraction,
    SharingStats,
};
pub use resilience::{isp_resilience, map_resilience, IspResilience, ResilienceReport};
pub use traffic::{traffic_risk, Cdf, TrafficRisk};
