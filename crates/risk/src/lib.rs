//! Shared-risk assessment (the paper's §4).
//!
//! Builds the §4.1 risk matrix over a constructed fiber map and computes:
//! the conduit-sharing distribution and provider ranking (§4.2, Figs. 6–7),
//! Hamming-distance risk-profile similarity (Fig. 8), and the
//! traffic-weighted view obtained by overlaying traceroute campaigns
//! (§4.3, Fig. 9 and Tables 2–4, via `intertubes-probes`). The
//! [`map_resilience`]/[`isp_resilience`] extension quantifies the §4
//! future-work question — how many fiber cuts partition the
//! infrastructure — via bridges and Stoer–Wagner minimum cuts.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod hamming;
mod matrix;
mod metrics;
mod resilience;
mod traffic;

pub use hamming::{hamming_distance, hamming_heatmap, HammingHeatmap};
pub use matrix::RiskMatrix;
pub use metrics::{
    conduits_shared_by_at_least, isp_sharing_ranking, raw_shared_conduits, sharing_fraction,
    SharingStats,
};
pub use resilience::{isp_resilience, map_resilience, IspResilience, ResilienceReport};
pub use traffic::{traffic_risk, Cdf, TrafficRisk};

/// Errors of the risk layer. Raised only under the strict degradation
/// policy; the lenient builder repairs (deduplicates) instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RiskError {
    /// The provider roster lists the same name twice, which would
    /// double-count shared conduits.
    DuplicateProvider {
        /// The duplicated provider name.
        name: String,
    },
}

impl std::fmt::Display for RiskError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RiskError::DuplicateProvider { name } => {
                write!(f, "provider {name:?} appears twice in the roster")
            }
        }
    }
}

impl std::error::Error for RiskError {}
