//! Connectivity-only risk metrics (§4.2): conduit-sharing distribution
//! (Fig. 6 bars), provider ranking by average shared risk (Fig. 6 ranking
//! plot) and raw shared-conduit counts (Fig. 7).

use serde::{Deserialize, Serialize};

use crate::matrix::RiskMatrix;

/// The Fig. 6 bar data: `bars[k-1]` = number of conduits shared by at least
/// `k` providers (`bars[0]` is the total conduit count).
pub fn conduits_shared_by_at_least(rm: &RiskMatrix) -> Vec<usize> {
    let max = rm.shared.iter().copied().max().unwrap_or(0) as usize;
    (1..=max.max(1))
        .map(|k| rm.shared.iter().filter(|&&s| s as usize >= k).count())
        .collect()
}

/// Fraction of conduits shared by at least `k` providers.
pub fn sharing_fraction(rm: &RiskMatrix, k: u16) -> f64 {
    if rm.conduit_count() == 0 {
        return 0.0;
    }
    rm.shared.iter().filter(|&&s| s >= k).count() as f64 / rm.conduit_count() as f64
}

/// One provider's entry in the Fig. 6 ranking plot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharingStats {
    /// Provider name.
    pub isp: String,
    /// Mean number of providers sharing the conduits this provider uses.
    pub mean: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// 25th percentile.
    pub p25: f64,
    /// 75th percentile.
    pub p75: f64,
    /// Number of conduits the provider uses.
    pub conduits: usize,
}

fn percentile(sorted: &[u16], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = p * (sorted.len() - 1) as f64;
    let lo = idx.floor() as usize;
    let hi = idx.ceil() as usize;
    let frac = idx - lo as f64;
    sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
}

/// Per-provider sharing statistics, sorted by ascending mean (the paper's
/// ranking order: least-shared providers first).
pub fn isp_sharing_ranking(rm: &RiskMatrix) -> Vec<SharingStats> {
    let mut out = Vec::with_capacity(rm.isp_count());
    for i in 0..rm.isp_count() {
        let mut values: Vec<u16> = rm
            .conduits_of(i)
            .into_iter()
            .map(|c| rm.shared[c])
            .collect();
        values.sort_unstable();
        let n = values.len();
        if n == 0 {
            out.push(SharingStats {
                isp: rm.isps[i].clone(),
                mean: 0.0,
                std_error: 0.0,
                p25: 0.0,
                p75: 0.0,
                conduits: 0,
            });
            continue;
        }
        let mean = values.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let var = values
            .iter()
            .map(|&v| (v as f64 - mean).powi(2))
            .sum::<f64>()
            / n as f64;
        out.push(SharingStats {
            isp: rm.isps[i].clone(),
            mean,
            std_error: (var / n as f64).sqrt(),
            p25: percentile(&values, 0.25),
            p75: percentile(&values, 0.75),
            conduits: n,
        });
    }
    out.sort_by(|a, b| a.mean.total_cmp(&b.mean).then(a.isp.cmp(&b.isp)));
    out
}

/// Fig. 7: per provider, the raw number of its conduits that are shared
/// with at least one other provider, sorted ascending.
pub fn raw_shared_conduits(rm: &RiskMatrix) -> Vec<(String, usize)> {
    let mut out: Vec<(String, usize)> = (0..rm.isp_count())
        .map(|i| {
            let shared = rm
                .conduits_of(i)
                .into_iter()
                .filter(|&c| rm.shared[c] >= 2)
                .count();
            (rm.isps[i].clone(), shared)
        })
        .collect();
    out.sort_by(|a, b| a.1.cmp(&b.1).then(a.0.cmp(&b.0)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::RiskMatrix;
    use intertubes_geo::{GeoPoint, Polyline};
    use intertubes_map::{FiberMap, MapConduit, Provenance, Tenancy, TenancySource};

    fn map_with(tenants: Vec<Vec<&str>>) -> FiberMap {
        let mut m = FiberMap::default();
        let a = m.ensure_node("A, XX", GeoPoint::new_unchecked(40.0, -100.0));
        let b = m.ensure_node("B, XX", GeoPoint::new_unchecked(41.0, -100.0));
        for ts in tenants {
            m.conduits.push(MapConduit {
                a,
                b,
                geometry: Polyline::straight(
                    GeoPoint::new_unchecked(40.0, -100.0),
                    GeoPoint::new_unchecked(41.0, -100.0),
                ),
                tenants: ts
                    .into_iter()
                    .map(|i| Tenancy {
                        isp: i.into(),
                        source: TenancySource::PublishedMap,
                    })
                    .collect(),
                provenance: Provenance::Step1,
                validated: true,
                row: None,
            });
        }
        m
    }

    fn names(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn shared_by_at_least_is_cumulative() {
        let m = map_with(vec![vec!["X"], vec!["X", "Y"], vec!["X", "Y", "Z"]]);
        let rm = RiskMatrix::build(&m, &names(&["X", "Y", "Z"]));
        assert_eq!(conduits_shared_by_at_least(&rm), vec![3, 2, 1]);
        assert!((sharing_fraction(&rm, 2) - 2.0 / 3.0).abs() < 1e-12);
        assert!((sharing_fraction(&rm, 3) - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn ranking_orders_by_mean() {
        let m = map_with(vec![
            vec!["X"],
            vec!["X", "Y"],
            vec!["Y", "Z"],
            vec!["Y", "Z"],
        ]);
        let rm = RiskMatrix::build(&m, &names(&["X", "Y", "Z"]));
        let ranking = isp_sharing_ranking(&rm);
        // X: conduits shared 1,2 → mean 1.5. Y: 2,2,2 → 2.0. Z: 2,2 → 2.0.
        assert_eq!(ranking[0].isp, "X");
        assert!((ranking[0].mean - 1.5).abs() < 1e-12);
        assert_eq!(ranking[0].conduits, 2);
        assert!(ranking[1].mean >= ranking[0].mean);
        // Percentiles bracket the mean.
        for r in &ranking {
            assert!(r.p25 <= r.mean + 1e-9);
            assert!(r.p75 + 1e-9 >= r.mean || r.conduits == 0);
        }
    }

    #[test]
    fn empty_provider_gets_zeroes() {
        let m = map_with(vec![vec!["X"]]);
        let rm = RiskMatrix::build(&m, &names(&["X", "Ghost"]));
        let ranking = isp_sharing_ranking(&rm);
        let ghost = ranking.iter().find(|r| r.isp == "Ghost").unwrap();
        assert_eq!(ghost.conduits, 0);
        assert_eq!(ghost.mean, 0.0);
    }

    #[test]
    fn raw_shared_counts() {
        let m = map_with(vec![vec!["X"], vec!["X", "Y"], vec!["Y", "Z"]]);
        let rm = RiskMatrix::build(&m, &names(&["X", "Y", "Z"]));
        let raw = raw_shared_conduits(&rm);
        let get = |n: &str| raw.iter().find(|(i, _)| i == n).unwrap().1;
        assert_eq!(get("X"), 1); // its solo conduit doesn't count
        assert_eq!(get("Y"), 2);
        assert_eq!(get("Z"), 1);
        // Ascending order.
        for w in raw.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn percentile_interpolates() {
        assert_eq!(percentile(&[1, 3], 0.5), 2.0);
        assert_eq!(percentile(&[1, 2, 3, 4, 5], 0.25), 2.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[7], 0.75), 7.0);
    }
}
