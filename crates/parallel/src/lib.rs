//! Rayon-backed parallel execution layer with a determinism contract.
//!
//! Every hot path in the workspace (map-construction pipeline, traceroute
//! overlay, risk matrix, path enumeration) fans out through the helpers in
//! this crate. The contract, tested by `tests/determinism.rs` at the
//! workspace root, is:
//!
//! > **Parallel output is byte-identical to serial output, at any thread
//! > count, for every stage.**
//!
//! The helpers guarantee this by construction: inputs are split into
//! contiguous chunks, each chunk is processed in input order, and chunk
//! results are concatenated (or merged by the caller) in chunk order.
//! Nothing downstream can observe how many threads ran.
//!
//! Thread-count resolution, highest priority first:
//!
//! 1. a [`with_threads`] override (tests and benches);
//! 2. the `INTERTUBES_THREADS` environment variable;
//! 3. rayon's global pool size (`RAYON_NUM_THREADS`, or the machine's
//!    available parallelism).
//!
//! With the `parallel` cargo feature disabled (it is on by default) every
//! helper degrades to a plain serial loop and the resolution above is
//! bypassed entirely.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

#[cfg(feature = "parallel")]
use rayon::prelude::*;

/// Test/bench override installed by [`with_threads`] (0 = none).
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Serializes [`with_threads`] callers so concurrent overrides cannot
/// interleave.
static OVERRIDE_LOCK: Mutex<()> = Mutex::new(());

/// The number of worker threads parallel stages will fan out to.
///
/// Always ≥ 1. Returns 1 when the `parallel` feature is disabled.
pub fn thread_count() -> usize {
    #[cfg(not(feature = "parallel"))]
    {
        1
    }
    #[cfg(feature = "parallel")]
    {
        let o = OVERRIDE.load(Ordering::SeqCst);
        if o > 0 {
            return o;
        }
        if let Some(n) = std::env::var("INTERTUBES_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        rayon::current_num_threads().max(1)
    }
}

/// Runs `f` with the thread count pinned to `n` (≥ 1), restoring the
/// previous state afterwards. Callers are serialized through a global
/// lock, so concurrent tests cannot observe each other's override.
///
/// `RAYON_NUM_THREADS` is pinned for the duration too, so the underlying
/// pool fans out to `n` OS threads even on machines with fewer cores.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    let n = n.max(1);
    let guard = OVERRIDE_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let prev_env = std::env::var("RAYON_NUM_THREADS").ok();
    std::env::set_var("RAYON_NUM_THREADS", n.to_string());
    let prev = OVERRIDE.swap(n, Ordering::SeqCst);
    let result = f();
    OVERRIDE.store(prev, Ordering::SeqCst);
    match prev_env {
        Some(v) => std::env::set_var("RAYON_NUM_THREADS", v),
        None => std::env::remove_var("RAYON_NUM_THREADS"),
    }
    drop(guard);
    result
}

/// The chunk length that splits `len` items into [`thread_count`] chunks.
pub fn chunk_len(len: usize) -> usize {
    len.div_ceil(thread_count()).max(1)
}

/// Maps `f` over `items`, in parallel, preserving input order exactly.
pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync + Send,
{
    // Counted on entry (caller thread), before the serial/parallel branch:
    // the counter is identical at every thread count by construction.
    intertubes_obs::counter("parallel.par_map_calls", 1);
    intertubes_obs::counter("parallel.par_map_items", items.len() as u64);
    #[cfg(feature = "parallel")]
    if thread_count() > 1 && items.len() > 1 {
        return items
            .par_chunks(chunk_len(items.len()))
            .map(|chunk| chunk.iter().map(&f).collect::<Vec<R>>())
            .collect::<Vec<Vec<R>>>()
            .into_iter()
            .flatten()
            .collect();
    }
    items.iter().map(f).collect()
}

/// Maps `f` over owned `items`, in parallel, preserving input order.
pub fn par_map_owned<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync + Send,
{
    intertubes_obs::counter("parallel.par_map_calls", 1);
    intertubes_obs::counter("parallel.par_map_items", items.len() as u64);
    #[cfg(feature = "parallel")]
    if thread_count() > 1 && items.len() > 1 {
        return items
            .into_par_iter()
            .map(f)
            .collect::<Vec<R>>();
    }
    items.into_iter().map(f).collect()
}

/// Splits `items` into contiguous chunks of `chunk_size` and maps `f` over
/// `(chunk_start_offset, chunk)` in parallel, returning per-chunk results
/// in chunk order.
///
/// The caller merges the results; when its merge operation is associative
/// over adjacent chunks (the property suites assert this for overlay
/// shards and degradation reports), the merged value is independent of
/// both `chunk_size` and the thread count.
pub fn par_chunks_map<T, R, F>(items: &[T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync + Send,
{
    let chunk_size = chunk_size.max(1);
    // Items, not chunks: callers derive chunk_size from the thread count,
    // so a chunk total would (correctly but uselessly) vary across runs.
    intertubes_obs::counter("parallel.par_chunks_map_calls", 1);
    intertubes_obs::counter("parallel.par_chunks_map_items", items.len() as u64);
    #[cfg(feature = "parallel")]
    if thread_count() > 1 && items.len() > chunk_size {
        let offsets_chunks: Vec<(usize, &[T])> = items
            .chunks(chunk_size)
            .enumerate()
            .map(|(i, c)| (i * chunk_size, c))
            .collect();
        return offsets_chunks
            .into_par_iter()
            .map(|(off, c)| f(off, c))
            .collect();
    }
    items
        .chunks(chunk_size)
        .enumerate()
        .map(|(i, c)| f(i * chunk_size, c))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_count_is_positive() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn with_threads_overrides_and_restores() {
        let before = thread_count();
        let inside = with_threads(3, thread_count);
        if cfg!(feature = "parallel") {
            assert_eq!(inside, 3);
        } else {
            assert_eq!(inside, 1);
        }
        assert_eq!(thread_count(), before);
    }

    #[test]
    fn par_map_matches_serial_at_every_thread_count() {
        let items: Vec<u64> = (0..997).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * 3 + 1).collect();
        for n in [1, 2, 3, 8, 16] {
            let par = with_threads(n, || par_map(&items, |&x| x * 3 + 1));
            assert_eq!(par, serial, "thread count {n}");
        }
    }

    #[test]
    fn par_map_owned_preserves_order() {
        let items: Vec<String> = (0..100).map(|i| format!("i{i}")).collect();
        let expect = items.clone();
        let got = with_threads(4, || par_map_owned(items, |s| s));
        assert_eq!(got, expect);
    }

    #[test]
    fn par_chunks_map_offsets_cover_input() {
        let items: Vec<u32> = (0..1000).collect();
        for chunk in [1, 7, 100, 1000, 5000] {
            let sums = with_threads(5, || {
                par_chunks_map(&items, chunk, |off, c| {
                    assert_eq!(c[0] as usize, off);
                    c.iter().map(|&x| x as u64).sum::<u64>()
                })
            });
            assert_eq!(sums.iter().sum::<u64>(), 499_500, "chunk {chunk}");
        }
    }

    #[test]
    fn chunk_len_never_zero() {
        assert!(chunk_len(0) >= 1);
        assert!(chunk_len(1) >= 1);
        with_threads(8, || assert!(chunk_len(3) >= 1));
    }
}
