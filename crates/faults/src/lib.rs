//! Seeded, deterministic fault injection for every InterTubes pipeline
//! input.
//!
//! The paper's map construction is only credible because it survives dirty
//! inputs: mis-digitized ISP maps, contradictory public records, noisy
//! traceroutes. This crate makes that robustness *testable* by perturbing
//! each input artifact in controlled, counted ways:
//!
//! * published ISP maps — NaN / out-of-range coordinates, dropped links,
//!   duplicated links, stripped geometry ([`inject_published_maps`]);
//! * the public-records corpus — corrupted (unresolvable) documents and
//!   contradictory right-of-way claims ([`inject_corpus`]);
//! * traceroute campaigns — truncated traces, mis-geolocated hops,
//!   out-of-range endpoint city ids ([`inject_campaign`]);
//! * transport-layer corridor graphs — deleted corridors, up to full
//!   disconnection ([`inject_transport`]).
//!
//! Faults are described by a [`FaultPlan`] — a small serde-JSON DSL
//! composing [`FaultSpec`]s — and every injector records exactly what it
//! did in an [`InjectionLedger`], so integration tests can assert that the
//! pipeline's `DegradationReport` accounts for every injected fault.
//!
//! Everything is a pure function of `(input, plan)`: each fault family
//! derives its RNG stream from the plan seed and a per-family constant, so
//! adding one family to a plan never re-randomizes another.
//!
//! Beyond the input stages, the plan DSL also carries a **runtime fault
//! group** (torn snapshot writes, section bit-flips, transient I/O errors,
//! slow reads, cache-shard poisoning, overload bursts) consumed by the
//! serving layer's `ChaosIo` wrapper and scheduler hooks — see
//! `intertubes-serve::chaos` — plus three **transport** families (torn
//! frames, slow-loris partial writes, mid-stream disconnects) consumed by
//! the remote front-end's wire chaos layer (`intertubes-net`). The
//! injectors in this crate never apply runtime families; they are listed
//! in [`FaultFamily::RUNTIME`] and share the same seeded-stream
//! discipline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use intertubes_atlas::{CityId, CorridorEdge, PublishedLink, PublishedMap, TransportNetwork};
use intertubes_geo::{GeoPoint, Polyline};
use intertubes_graph::MultiGraph;
use intertubes_probes::Campaign;
use intertubes_records::{Corpus, Document, RowHint};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Marker prepended to city labels by [`FaultFamily::CorruptDocuments`].
///
/// The replacement character cannot appear in a generated `"City, ST"`
/// label, so sanitization can detect corrupted documents exactly.
pub const CORRUPT_MARKER: char = '\u{FFFD}';

/// One family of input perturbation. Unit variants keep the JSON DSL
/// trivial: `{"family": "DropLinks", "rate": 0.2}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultFamily {
    /// Replace a geometry vertex of a published link with NaN coordinates.
    NanCoordinates,
    /// Replace a geometry vertex with coordinates outside WGS84 ranges.
    OutOfRangeCoordinates,
    /// Remove published links entirely (silent map incompleteness).
    DropLinks,
    /// Insert a bitwise-identical copy of a geocoded published link.
    DuplicateLinks,
    /// Strip the geometry from links of geocoded maps.
    StripGeometry,
    /// Garble a document's city labels into unresolvable strings.
    CorruptDocuments,
    /// Add a document contradicting an existing right-of-way hint.
    ContradictoryDocuments,
    /// Drop the tail of a traceroute's hop list.
    TruncateTraces,
    /// Re-geolocate a mid-trace hop to a random (wrong but valid) city.
    MisgeolocateHops,
    /// Set a traceroute endpoint to an out-of-range [`CityId`].
    CorruptTraceEndpoints,
    /// Delete transport-layer corridors, disconnecting the graph.
    DisconnectTransport,
    /// Runtime: a snapshot write persists only a prefix of the bytes
    /// (power loss / kill mid-write) while reporting success.
    TornSnapshotWrite,
    /// Runtime: flip one bit of a snapshot read, in the section named by
    /// the spec's `section` field (payload when unset).
    SnapshotBitFlip,
    /// Runtime: a snapshot open/read fails with a transient I/O error.
    TransientIo,
    /// Runtime: a snapshot read stalls (accounted as virtual microseconds;
    /// no wall-clock enters any decision).
    SlowRead,
    /// Runtime: silently corrupt every entry of one result-cache shard.
    CachePoison,
    /// Runtime: a scheduler wave is hit by an overload burst, forcing the
    /// tail of the queue into degraded responses.
    OverloadBurst,
    /// Runtime (transport): a response frame is torn mid-write — the
    /// connection closes after a prefix of the frame's bytes are sent.
    /// Consumed by `intertubes-net`'s transport chaos layer.
    TornFrame,
    /// Runtime (transport): a response is dribbled out in tiny partial
    /// writes across poll ticks (slow-loris). Timing-only — frame bytes
    /// are unchanged, so responses stay byte-identical.
    SlowLoris,
    /// Runtime (transport): the connection is dropped before the response
    /// frame is written, forcing the client to reconnect and resend.
    Disconnect,
}

impl FaultFamily {
    /// All families, in declaration order.
    pub const ALL: [FaultFamily; 20] = [
        FaultFamily::NanCoordinates,
        FaultFamily::OutOfRangeCoordinates,
        FaultFamily::DropLinks,
        FaultFamily::DuplicateLinks,
        FaultFamily::StripGeometry,
        FaultFamily::CorruptDocuments,
        FaultFamily::ContradictoryDocuments,
        FaultFamily::TruncateTraces,
        FaultFamily::MisgeolocateHops,
        FaultFamily::CorruptTraceEndpoints,
        FaultFamily::DisconnectTransport,
        FaultFamily::TornSnapshotWrite,
        FaultFamily::SnapshotBitFlip,
        FaultFamily::TransientIo,
        FaultFamily::SlowRead,
        FaultFamily::CachePoison,
        FaultFamily::OverloadBurst,
        FaultFamily::TornFrame,
        FaultFamily::SlowLoris,
        FaultFamily::Disconnect,
    ];

    /// The input-stage families applied by this crate's injectors.
    pub const INPUT: [FaultFamily; 11] = [
        FaultFamily::NanCoordinates,
        FaultFamily::OutOfRangeCoordinates,
        FaultFamily::DropLinks,
        FaultFamily::DuplicateLinks,
        FaultFamily::StripGeometry,
        FaultFamily::CorruptDocuments,
        FaultFamily::ContradictoryDocuments,
        FaultFamily::TruncateTraces,
        FaultFamily::MisgeolocateHops,
        FaultFamily::CorruptTraceEndpoints,
        FaultFamily::DisconnectTransport,
    ];

    /// The runtime families consumed by the serving layer's chaos hooks
    /// and (for the last three) the remote transport's chaos layer.
    pub const RUNTIME: [FaultFamily; 9] = [
        FaultFamily::TornSnapshotWrite,
        FaultFamily::SnapshotBitFlip,
        FaultFamily::TransientIo,
        FaultFamily::SlowRead,
        FaultFamily::CachePoison,
        FaultFamily::OverloadBurst,
        FaultFamily::TornFrame,
        FaultFamily::SlowLoris,
        FaultFamily::Disconnect,
    ];

    /// Whether this family belongs to the runtime (serving-layer) group.
    pub fn is_runtime(self) -> bool {
        FaultFamily::RUNTIME.contains(&self)
    }

    /// Stable label used in ledger rendering and test diagnostics.
    pub fn label(self) -> &'static str {
        match self {
            FaultFamily::NanCoordinates => "nan-coordinates",
            FaultFamily::OutOfRangeCoordinates => "out-of-range-coordinates",
            FaultFamily::DropLinks => "drop-links",
            FaultFamily::DuplicateLinks => "duplicate-links",
            FaultFamily::StripGeometry => "strip-geometry",
            FaultFamily::CorruptDocuments => "corrupt-documents",
            FaultFamily::ContradictoryDocuments => "contradictory-documents",
            FaultFamily::TruncateTraces => "truncate-traces",
            FaultFamily::MisgeolocateHops => "misgeolocate-hops",
            FaultFamily::CorruptTraceEndpoints => "corrupt-trace-endpoints",
            FaultFamily::DisconnectTransport => "disconnect-transport",
            FaultFamily::TornSnapshotWrite => "torn-snapshot-write",
            FaultFamily::SnapshotBitFlip => "snapshot-bit-flip",
            FaultFamily::TransientIo => "transient-io",
            FaultFamily::SlowRead => "slow-read",
            FaultFamily::CachePoison => "cache-poison",
            FaultFamily::OverloadBurst => "overload-burst",
            FaultFamily::TornFrame => "torn-frame",
            FaultFamily::SlowLoris => "slow-loris",
            FaultFamily::Disconnect => "disconnect",
        }
    }

    /// Per-family RNG stream constant: keeps families independent under a
    /// shared plan seed.
    fn stream(self) -> u64 {
        match self {
            FaultFamily::NanCoordinates => 0x11,
            FaultFamily::OutOfRangeCoordinates => 0x22,
            FaultFamily::DropLinks => 0x33,
            FaultFamily::DuplicateLinks => 0x44,
            FaultFamily::StripGeometry => 0x55,
            FaultFamily::CorruptDocuments => 0x66,
            FaultFamily::ContradictoryDocuments => 0x77,
            FaultFamily::TruncateTraces => 0x88,
            FaultFamily::MisgeolocateHops => 0x99,
            FaultFamily::CorruptTraceEndpoints => 0xAA,
            FaultFamily::DisconnectTransport => 0xBB,
            FaultFamily::TornSnapshotWrite => 0xCC,
            FaultFamily::SnapshotBitFlip => 0xDD,
            FaultFamily::TransientIo => 0xEE,
            FaultFamily::SlowRead => 0xFF,
            FaultFamily::CachePoison => 0x1A,
            FaultFamily::OverloadBurst => 0x2B,
            FaultFamily::TornFrame => 0x3C,
            FaultFamily::SlowLoris => 0x4D,
            FaultFamily::Disconnect => 0x5E,
        }
    }
}

impl std::fmt::Display for FaultFamily {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A snapshot-container section, targeted by
/// [`FaultFamily::SnapshotBitFlip`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SnapshotSection {
    /// The JSON header (schema, lengths, checksums).
    Header,
    /// The study payload.
    Payload,
    /// The v2 landmark-table section.
    Landmarks,
}

impl SnapshotSection {
    /// Stable label used in ledger rendering and reports.
    pub fn label(self) -> &'static str {
        match self {
            SnapshotSection::Header => "header",
            SnapshotSection::Payload => "payload",
            SnapshotSection::Landmarks => "landmarks",
        }
    }
}

/// One fault family at a given intensity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Which perturbation to apply.
    pub family: FaultFamily,
    /// Per-item probability in `[0, 1]` (clamped on use). For
    /// [`FaultFamily::DisconnectTransport`] this is the fraction of
    /// corridors deleted.
    pub rate: f64,
    /// For [`FaultFamily::SnapshotBitFlip`]: which container section the
    /// flip lands in (payload when unset). Ignored by other families, and
    /// omitted from JSON when absent, so pre-runtime plan files parse
    /// unchanged.
    pub section: Option<SnapshotSection>,
}

/// A typed parse/validation error for [`FaultPlan::from_json`].
///
/// Rates are validated at parse time: the old behavior silently accepted
/// `NaN` (which [`FaultPlan::rate`]'s clamp propagates) and negative
/// values. Rates above `1.0` remain legal — `rate()` clamps them — so
/// summed multi-spec plans keep working.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultPlanError {
    /// The text was not a syntactically valid plan.
    Parse(String),
    /// A spec carried a non-finite or negative rate.
    InvalidRate {
        /// The offending spec's family.
        family: FaultFamily,
        /// The rejected rate value.
        rate: f64,
    },
}

impl std::fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultPlanError::Parse(msg) => write!(f, "fault plan parse error: {msg}"),
            FaultPlanError::InvalidRate { family, rate } => write!(
                f,
                "fault plan: invalid rate {rate} for family {family} (must be finite and >= 0)"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

/// A composed fault scenario: a seed plus a list of [`FaultSpec`]s.
///
/// Round-trips through JSON (`{"seed": 7, "faults": [{"family":
/// "DropLinks", "rate": 0.25}]}`), which is what the CLI's
/// `--faults <plan.json>` flag parses.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Base RNG seed; each family derives its own stream from it.
    pub seed: u64,
    /// The perturbations to apply. Order does not matter: injectors pick
    /// the matching specs per family.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// An empty (no-fault) plan with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }

    /// Builder: appends one fault spec.
    pub fn with(mut self, family: FaultFamily, rate: f64) -> Self {
        self.faults.push(FaultSpec {
            family,
            rate,
            section: None,
        });
        self
    }

    /// Builder: appends one fault spec targeting a snapshot section
    /// (meaningful for [`FaultFamily::SnapshotBitFlip`]).
    pub fn with_section(mut self, family: FaultFamily, rate: f64, section: SnapshotSection) -> Self {
        self.faults.push(FaultSpec {
            family,
            rate,
            section: Some(section),
        });
        self
    }

    /// Whether the plan perturbs anything at all.
    pub fn is_empty(&self) -> bool {
        self.faults.iter().all(|f| f.rate <= 0.0)
    }

    /// The effective rate for `family`: sum of matching specs, clamped to
    /// `[0, 1]`. Zero when the family is absent.
    pub fn rate(&self, family: FaultFamily) -> f64 {
        let sum: f64 = self
            .faults
            .iter()
            .filter(|f| f.family == family)
            .map(|f| f.rate)
            .sum();
        sum.clamp(0.0, 1.0)
    }

    /// Whether any runtime family has a positive rate (i.e. the serving
    /// layer's chaos hooks have work to do).
    pub fn has_runtime_faults(&self) -> bool {
        FaultFamily::RUNTIME.iter().any(|&f| self.rate(f) > 0.0)
    }

    /// The snapshot section targeted by the first matching spec of
    /// `family` that names one (`None` when no spec does).
    pub fn section_for(&self, family: FaultFamily) -> Option<SnapshotSection> {
        self.faults
            .iter()
            .filter(|f| f.family == family)
            .find_map(|f| f.section)
    }

    /// Seeded RNG for one family's stream.
    fn rng(&self, family: FaultFamily) -> StdRng {
        StdRng::seed_from_u64(self.seed ^ family.stream().wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Public access to a family's seeded stream, for runtime consumers
    /// (the serving layer's `ChaosIo` draws from these so chaos decisions
    /// stay independent of input-stage injection and of each other).
    pub fn stream_rng(&self, family: FaultFamily) -> StdRng {
        self.rng(family)
    }

    /// Validates every spec's rate: rejects non-finite (`NaN`, `inf`) and
    /// negative values with a typed error. Rates above `1.0` are allowed
    /// (clamped by [`FaultPlan::rate`]).
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        for spec in &self.faults {
            if !spec.rate.is_finite() || spec.rate < 0.0 {
                return Err(FaultPlanError::InvalidRate {
                    family: spec.family,
                    rate: spec.rate,
                });
            }
        }
        Ok(())
    }

    /// Parses a plan from JSON text, rejecting malformed rates at parse
    /// time (see [`FaultPlanError`]).
    pub fn from_json(text: &str) -> Result<FaultPlan, FaultPlanError> {
        let plan: FaultPlan =
            serde_json::from_str(text).map_err(|e| FaultPlanError::Parse(e.to_string()))?;
        plan.validate()?;
        Ok(plan)
    }

    /// Serializes the plan to pretty JSON (the CLI's scenario file
    /// format). Infallible by construction: the writer below emits every
    /// field directly, so there is no error path to swallow. Non-finite
    /// rates (only constructible via the builder) serialize as `null`,
    /// which [`FaultPlan::from_json`] rejects — such plans are invalid
    /// and do not round-trip by design.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.faults.len() * 64);
        out.push_str("{\n");
        out.push_str(&format!("  \"seed\": {},\n", self.seed));
        out.push_str("  \"faults\": [");
        for (i, spec) in self.faults.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    { \"family\": \"");
            out.push_str(&format!("{:?}", spec.family));
            out.push_str("\", \"rate\": ");
            if spec.rate.is_finite() {
                out.push_str(&format!("{:?}", spec.rate));
            } else {
                out.push_str("null");
            }
            if let Some(section) = spec.section {
                out.push_str(&format!(", \"section\": \"{section:?}\""));
            }
            out.push_str(" }");
        }
        if !self.faults.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Named built-in scenarios, used by tests and documented in
    /// EXPERIMENTS.md. Each exercises one input artifact; `"everything"`
    /// composes all families at once.
    pub fn built_in_scenarios() -> Vec<(&'static str, FaultPlan)> {
        vec![
            ("clean", FaultPlan::new(2015)),
            (
                "dirty-maps",
                FaultPlan::new(2015)
                    .with(FaultFamily::NanCoordinates, 0.05)
                    .with(FaultFamily::OutOfRangeCoordinates, 0.05)
                    .with(FaultFamily::DropLinks, 0.10)
                    .with(FaultFamily::DuplicateLinks, 0.10)
                    .with(FaultFamily::StripGeometry, 0.08),
            ),
            (
                "dirty-records",
                FaultPlan::new(2015)
                    .with(FaultFamily::CorruptDocuments, 0.10)
                    .with(FaultFamily::ContradictoryDocuments, 0.08),
            ),
            (
                "dirty-probes",
                FaultPlan::new(2015)
                    .with(FaultFamily::TruncateTraces, 0.15)
                    .with(FaultFamily::MisgeolocateHops, 0.05)
                    .with(FaultFamily::CorruptTraceEndpoints, 0.02),
            ),
            (
                "dirty-transport",
                FaultPlan::new(2015).with(FaultFamily::DisconnectTransport, 0.30),
            ),
            (
                "everything",
                FaultPlan::new(2015)
                    .with(FaultFamily::NanCoordinates, 0.04)
                    .with(FaultFamily::OutOfRangeCoordinates, 0.04)
                    .with(FaultFamily::DropLinks, 0.08)
                    .with(FaultFamily::DuplicateLinks, 0.08)
                    .with(FaultFamily::StripGeometry, 0.06)
                    .with(FaultFamily::CorruptDocuments, 0.08)
                    .with(FaultFamily::ContradictoryDocuments, 0.06)
                    .with(FaultFamily::TruncateTraces, 0.12)
                    .with(FaultFamily::MisgeolocateHops, 0.04)
                    .with(FaultFamily::CorruptTraceEndpoints, 0.02)
                    .with(FaultFamily::DisconnectTransport, 0.20),
            ),
        ]
    }

    /// Named built-in **runtime** chaos scenarios, consumed by the serving
    /// layer (`serve --chaos <name>`), the remote transport's chaos layer
    /// (`serve --listen --chaos <name>`), `scripts/chaos_gate.sh`,
    /// `scripts/remote_gate.sh`, and the chaos battery in `tests/chaos.rs`.
    /// Most exercise one runtime fault family; `"torn-frame"` mixes the
    /// three transport families, and `"chaos-everything"` composes every
    /// runtime family.
    pub fn built_in_chaos_scenarios() -> Vec<(&'static str, FaultPlan)> {
        vec![
            (
                "torn-write",
                FaultPlan::new(2015).with(FaultFamily::TornSnapshotWrite, 0.7),
            ),
            (
                "flaky-io",
                FaultPlan::new(2015)
                    .with(FaultFamily::TransientIo, 0.4)
                    .with(FaultFamily::SlowRead, 0.3),
            ),
            (
                "bit-rot",
                FaultPlan::new(2015).with_section(
                    FaultFamily::SnapshotBitFlip,
                    0.4,
                    SnapshotSection::Payload,
                ),
            ),
            (
                "poisoned-cache",
                FaultPlan::new(2015).with(FaultFamily::CachePoison, 0.35),
            ),
            (
                "overload",
                FaultPlan::new(2015).with(FaultFamily::OverloadBurst, 0.4),
            ),
            (
                // The transport chaos arm: torn response frames plus the
                // two companion wire families, at rates the remote gate's
                // retrying clients are expected to ride out byte-identically.
                "torn-frame",
                FaultPlan::new(2015)
                    .with(FaultFamily::TornFrame, 0.2)
                    .with(FaultFamily::SlowLoris, 0.15)
                    .with(FaultFamily::Disconnect, 0.1),
            ),
            (
                "chaos-everything",
                FaultPlan::new(2015)
                    .with(FaultFamily::TornSnapshotWrite, 0.3)
                    .with_section(FaultFamily::SnapshotBitFlip, 0.2, SnapshotSection::Payload)
                    .with(FaultFamily::TransientIo, 0.25)
                    .with(FaultFamily::SlowRead, 0.2)
                    .with(FaultFamily::CachePoison, 0.25)
                    .with(FaultFamily::OverloadBurst, 0.3)
                    .with(FaultFamily::TornFrame, 0.15)
                    .with(FaultFamily::SlowLoris, 0.1)
                    .with(FaultFamily::Disconnect, 0.1),
            ),
        ]
    }
}

/// Exact record of what an injector did: per-family counts of perturbed
/// items. Integration tests compare these against the pipeline's
/// `DegradationReport`.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InjectionLedger {
    /// `(family, items touched)`, in family declaration order, families
    /// with zero touches omitted.
    pub counts: Vec<(FaultFamily, usize)>,
}

impl InjectionLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` items perturbed by `family` (no-op when `n == 0`).
    pub fn add(&mut self, family: FaultFamily, n: usize) {
        if n == 0 {
            return;
        }
        for entry in &mut self.counts {
            if entry.0 == family {
                entry.1 += n;
                return;
            }
        }
        self.counts.push((family, n));
        self.counts.sort_by_key(|e| e.0);
    }

    /// Items perturbed by `family`.
    pub fn count(&self, family: FaultFamily) -> usize {
        self.counts
            .iter()
            .find(|e| e.0 == family)
            .map_or(0, |e| e.1)
    }

    /// Total perturbed items across all families.
    pub fn total(&self) -> usize {
        self.counts.iter().map(|e| e.1).sum()
    }

    /// Folds another ledger into this one.
    pub fn merge(&mut self, other: &InjectionLedger) {
        for &(family, n) in &other.counts {
            self.add(family, n);
        }
    }

    /// Emits one structured observability event per injected fault family,
    /// plus a `faults.injected` counter with the grand total (no-op outside
    /// an `intertubes-obs` session).
    ///
    /// Call once from serial code after all injectors have run — the ledger
    /// is kept sorted by family, so the emitted sequence is canonical.
    pub fn emit_events(&self) {
        use intertubes_obs::{FieldValue, Level};
        let mut total = 0u64;
        for &(family, n) in &self.counts {
            total += n as u64;
            intertubes_obs::event(
                Level::Warn,
                "faults",
                &format!("injected {} x{}", family.label(), n),
                &[
                    ("family", FieldValue::Str(family.label().to_string())),
                    ("count", FieldValue::U64(n as u64)),
                ],
            );
        }
        intertubes_obs::counter("faults.injected", total);
    }

    /// One-line-per-family rendering for test diagnostics.
    pub fn render(&self) -> String {
        if self.counts.is_empty() {
            return "injection ledger: clean".to_string();
        }
        let mut out = String::from("injection ledger:");
        for &(family, n) in &self.counts {
            out.push_str(&format!("\n  {} x{}", family.label(), n));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Published-map injectors
// ---------------------------------------------------------------------------

/// The family's effective rate, or `None` when the family is a no-op for
/// this plan. A rate of exactly `0.0` is a *legal* spec (a disabled
/// family, pinned by `zero_rate_specs_are_no_ops`) and must inject
/// nothing; the debug assertion pins the complementary invariant that a
/// rate surviving this gate is a usable Bernoulli parameter.
fn active_rate(plan: &FaultPlan, family: FaultFamily) -> Option<f64> {
    let rate = plan.rate(family);
    if rate <= 0.0 {
        return None;
    }
    debug_assert!(
        rate > 0.0 && rate <= 1.0,
        "injector rate for {family:?} escaped the [0, 1] clamp: {rate}"
    );
    Some(rate)
}

/// Perturbs published ISP maps in place according to `plan`.
///
/// Families applied (each from its own RNG stream, in a fixed order so the
/// result is deterministic): [`FaultFamily::NanCoordinates`],
/// [`FaultFamily::OutOfRangeCoordinates`], [`FaultFamily::StripGeometry`],
/// [`FaultFamily::DuplicateLinks`], [`FaultFamily::DropLinks`].
pub fn inject_published_maps(
    maps: &mut Vec<PublishedMap>,
    plan: &FaultPlan,
    ledger: &mut InjectionLedger,
) {
    poison_coordinates(maps, plan, ledger, FaultFamily::NanCoordinates);
    poison_coordinates(maps, plan, ledger, FaultFamily::OutOfRangeCoordinates);
    strip_geometry(maps, plan, ledger);
    duplicate_links(maps, plan, ledger);
    drop_links(maps, plan, ledger);
}

/// Rewrites one vertex of selected link geometries to an invalid
/// coordinate (NaN or out-of-range, depending on `family`).
fn poison_coordinates(
    maps: &mut [PublishedMap],
    plan: &FaultPlan,
    ledger: &mut InjectionLedger,
    family: FaultFamily,
) {
    let Some(rate) = active_rate(plan, family) else {
        return;
    };
    let mut rng = plan.rng(family);
    let mut touched = 0;
    for map in maps.iter_mut() {
        for link in &mut map.links {
            let Some(geom) = &link.geometry else { continue };
            if !rng.gen_bool(rate) {
                continue;
            }
            let mut pts = geom.points().to_vec();
            let idx = rng.gen_range(0..pts.len());
            pts[idx] = match family {
                FaultFamily::NanCoordinates => GeoPoint::new_unchecked(f64::NAN, f64::NAN),
                _ => {
                    // Out of range but finite: latitude beyond the pole,
                    // longitude beyond the date line.
                    let lat = 90.0 + rng.gen_range(5.0f64..400.0);
                    let lon = -(180.0 + rng.gen_range(5.0f64..400.0));
                    GeoPoint::new_unchecked(lat, lon)
                }
            };
            if let Ok(poisoned) = Polyline::new(pts) {
                link.geometry = Some(poisoned);
                touched += 1;
            }
        }
    }
    ledger.add(family, touched);
}

/// Removes the geometry from selected links of geocoded maps.
fn strip_geometry(maps: &mut [PublishedMap], plan: &FaultPlan, ledger: &mut InjectionLedger) {
    let Some(rate) = active_rate(plan, FaultFamily::StripGeometry) else {
        return;
    };
    let mut rng = plan.rng(FaultFamily::StripGeometry);
    let mut touched = 0;
    for map in maps.iter_mut() {
        for link in &mut map.links {
            if link.geometry.is_some() && rng.gen_bool(rate) {
                link.geometry = None;
                touched += 1;
            }
        }
    }
    ledger.add(FaultFamily::StripGeometry, touched);
}

/// Inserts bitwise-identical copies of selected geocoded links.
///
/// Only links *with* geometry are duplicated: an identical copy of a
/// geometry-bearing link is unambiguously redundant (digitization noise
/// makes natural bitwise collisions impossible), so the pipeline can
/// repair these without ever touching legitimate multi-conduit
/// publications in PoP-only maps.
fn duplicate_links(maps: &mut [PublishedMap], plan: &FaultPlan, ledger: &mut InjectionLedger) {
    let Some(rate) = active_rate(plan, FaultFamily::DuplicateLinks) else {
        return;
    };
    let mut rng = plan.rng(FaultFamily::DuplicateLinks);
    let mut touched = 0;
    for map in maps.iter_mut() {
        let mut copies: Vec<PublishedLink> = Vec::new();
        for link in &map.links {
            if link.geometry.is_some() && rng.gen_bool(rate) {
                copies.push(link.clone());
            }
        }
        touched += copies.len();
        map.links.extend(copies);
    }
    ledger.add(FaultFamily::DuplicateLinks, touched);
}

/// Deletes selected links outright (the map is silently incomplete).
fn drop_links(maps: &mut [PublishedMap], plan: &FaultPlan, ledger: &mut InjectionLedger) {
    let Some(rate) = active_rate(plan, FaultFamily::DropLinks) else {
        return;
    };
    let mut rng = plan.rng(FaultFamily::DropLinks);
    let mut touched = 0;
    for map in maps.iter_mut() {
        map.links.retain(|_| {
            if rng.gen_bool(rate) {
                touched += 1;
                false
            } else {
                true
            }
        });
    }
    ledger.add(FaultFamily::DropLinks, touched);
}

// ---------------------------------------------------------------------------
// Records-corpus injectors
// ---------------------------------------------------------------------------

/// Perturbs the public-records corpus according to `plan`, returning a
/// freshly indexed corpus (the inverted index is rebuilt so searches see
/// the perturbed text).
pub fn inject_corpus(corpus: &Corpus, plan: &FaultPlan, ledger: &mut InjectionLedger) -> Corpus {
    let mut docs: Vec<Document> = corpus.docs().to_vec();
    corrupt_documents(&mut docs, plan, ledger);
    contradict_documents(&mut docs, plan, ledger);
    Corpus::from_documents(docs)
}

/// Garbles the city labels (and body text) of selected documents so that
/// no city resolves; the document becomes noise a sanitizer must detect.
fn corrupt_documents(docs: &mut [Document], plan: &FaultPlan, ledger: &mut InjectionLedger) {
    let Some(rate) = active_rate(plan, FaultFamily::CorruptDocuments) else {
        return;
    };
    let mut rng = plan.rng(FaultFamily::CorruptDocuments);
    let mut touched = 0;
    for doc in docs.iter_mut() {
        if doc.cities.is_empty() || !rng.gen_bool(rate) {
            continue;
        }
        for city in &mut doc.cities {
            // Replace the "City, ST" label with marker + scrambled text:
            // the marker makes detection exact, the scramble (comma
            // removed) defeats naive label parsing too.
            let scrambled: String = city
                .chars()
                .rev()
                .filter(|c| *c != ',')
                .collect();
            *city = format!("{CORRUPT_MARKER}{scrambled}");
        }
        doc.body = format!("{CORRUPT_MARKER} {}", doc.body);
        touched += 1;
    }
    ledger.add(FaultFamily::CorruptDocuments, touched);
}

/// Appends documents that contradict an existing right-of-way hint: the
/// new document names the same city pair but claims a different
/// right-of-way type.
fn contradict_documents(docs: &mut Vec<Document>, plan: &FaultPlan, ledger: &mut InjectionLedger) {
    let Some(rate) = active_rate(plan, FaultFamily::ContradictoryDocuments) else {
        return;
    };
    let mut rng = plan.rng(FaultFamily::ContradictoryDocuments);
    let mut added: Vec<Document> = Vec::new();
    let mut next_id = docs.iter().map(|d| d.id.0).max().map_or(0, |m| m + 1);
    for doc in docs.iter() {
        let Some(row) = doc.row else { continue };
        // Never forge from a corrupted document: its city labels are
        // gibberish, and coupling the two families would make the
        // per-family ledger counts ambiguous.
        if doc.cities.len() < 2
            || doc.cities.iter().any(|c| c.starts_with(CORRUPT_MARKER))
            || !rng.gen_bool(rate)
        {
            continue;
        }
        let conflicting = match row {
            RowHint::Road => RowHint::Rail,
            RowHint::Rail => RowHint::Pipeline,
            RowHint::Pipeline => RowHint::Road,
        };
        let mut forged = doc.clone();
        forged.id = intertubes_records::DocId(next_id);
        next_id += 1;
        forged.row = Some(conflicting);
        forged.title = format!("Amendment re {}", doc.title);
        forged.body = format!(
            "{} Corrected filing: the conduit follows a {:?} right-of-way.",
            doc.body, conflicting
        );
        added.push(forged);
    }
    ledger.add(FaultFamily::ContradictoryDocuments, added.len());
    docs.extend(added);
}

// ---------------------------------------------------------------------------
// Traceroute-campaign injectors
// ---------------------------------------------------------------------------

/// Perturbs a traceroute campaign in place according to `plan`.
///
/// `city_count` is the size of the world's city table; it bounds valid
/// [`CityId`]s for mis-geolocation and defines "out of range" for endpoint
/// corruption.
pub fn inject_campaign(
    campaign: &mut Campaign,
    city_count: usize,
    plan: &FaultPlan,
    ledger: &mut InjectionLedger,
) {
    truncate_traces(campaign, plan, ledger);
    misgeolocate_hops(campaign, city_count, plan, ledger);
    corrupt_trace_endpoints(campaign, city_count, plan, ledger);
}

/// Drops the tail of selected traces, as if the probe timed out mid-path.
/// Traces may end up with zero hops; the overlay must tolerate that.
fn truncate_traces(campaign: &mut Campaign, plan: &FaultPlan, ledger: &mut InjectionLedger) {
    let Some(rate) = active_rate(plan, FaultFamily::TruncateTraces) else {
        return;
    };
    let mut rng = plan.rng(FaultFamily::TruncateTraces);
    let mut touched = 0;
    for trace in &mut campaign.traces {
        if trace.hops.is_empty() || !rng.gen_bool(rate) {
            continue;
        }
        let keep = rng.gen_range(0..trace.hops.len());
        trace.hops.truncate(keep);
        touched += 1;
    }
    ledger.add(FaultFamily::TruncateTraces, touched);
}

/// Re-geolocates selected hops to a random *valid but wrong* city: the
/// hardest fault to detect, modeling bad IP-geolocation databases.
fn misgeolocate_hops(
    campaign: &mut Campaign,
    city_count: usize,
    plan: &FaultPlan,
    ledger: &mut InjectionLedger,
) {
    let Some(rate) = active_rate(plan, FaultFamily::MisgeolocateHops) else {
        return;
    };
    if city_count == 0 {
        return;
    }
    let mut rng = plan.rng(FaultFamily::MisgeolocateHops);
    let mut touched = 0;
    for trace in &mut campaign.traces {
        for hop in &mut trace.hops {
            let Some(city) = hop.city else { continue };
            if !rng.gen_bool(rate) {
                continue;
            }
            let mut wrong = CityId(rng.gen_range(0..city_count) as u32);
            if wrong == city {
                wrong = CityId((wrong.0 + 1) % city_count as u32);
            }
            hop.city = Some(wrong);
            touched += 1;
        }
    }
    ledger.add(FaultFamily::MisgeolocateHops, touched);
}

/// Sets the `src` or `dst` of selected traces to an out-of-range
/// [`CityId`], modeling a corrupted geolocation feed. Naive array indexing
/// on these panics; the hardened overlay must drop them instead.
fn corrupt_trace_endpoints(
    campaign: &mut Campaign,
    city_count: usize,
    plan: &FaultPlan,
    ledger: &mut InjectionLedger,
) {
    let Some(rate) = active_rate(plan, FaultFamily::CorruptTraceEndpoints) else {
        return;
    };
    let mut rng = plan.rng(FaultFamily::CorruptTraceEndpoints);
    let mut touched = 0;
    for trace in &mut campaign.traces {
        if !rng.gen_bool(rate) {
            continue;
        }
        let bogus = CityId((city_count + rng.gen_range(1..1000usize)) as u32);
        if rng.gen_bool(0.5) {
            trace.src = bogus;
        } else {
            trace.dst = bogus;
        }
        touched += 1;
    }
    ledger.add(FaultFamily::CorruptTraceEndpoints, touched);
}

// ---------------------------------------------------------------------------
// Transport-layer injector
// ---------------------------------------------------------------------------

/// Deletes a `rate` fraction of corridors from a transport layer,
/// rebuilding the graph from the surviving edge set (the corridor graph
/// has no removal API — by design, its normal lifecycle is append-only).
///
/// At moderate rates this disconnects the graph; consumers that assume a
/// connected corridor layer must degrade instead of panic.
pub fn inject_transport(
    net: &mut TransportNetwork,
    plan: &FaultPlan,
    ledger: &mut InjectionLedger,
) {
    let Some(rate) = active_rate(plan, FaultFamily::DisconnectTransport) else {
        return;
    };
    let mut rng = plan.rng(FaultFamily::DisconnectTransport);
    let mut touched = 0;
    let mut rebuilt: MultiGraph<CityId, CorridorEdge> = MultiGraph::new();
    for node in net.graph.node_ids() {
        rebuilt.add_node(*net.graph.node(node));
    }
    for edge in net.graph.edge_ids() {
        if rng.gen_bool(rate) {
            touched += 1;
            continue;
        }
        let (a, b) = net.graph.endpoints(edge);
        rebuilt.add_edge(a, b, net.graph.edge(edge).clone());
    }
    net.graph = rebuilt;
    ledger.add(FaultFamily::DisconnectTransport, touched);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_maps() -> Vec<PublishedMap> {
        let geom = |a: (f64, f64), b: (f64, f64)| {
            Polyline::straight(
                GeoPoint::new_unchecked(a.0, a.1),
                GeoPoint::new_unchecked(b.0, b.1),
            )
        };
        vec![PublishedMap {
            isp: "TestNet".to_string(),
            kind: intertubes_atlas::MapKind::Geocoded,
            links: (0..40)
                .map(|i| PublishedLink {
                    a: format!("City{i}, AA"),
                    b: format!("City{}, BB", i + 1),
                    geometry: Some(geom(
                        (30.0 + i as f64 * 0.1, -100.0),
                        (31.0 + i as f64 * 0.1, -99.0),
                    )),
                })
                .collect(),
        }]
    }

    #[test]
    fn plan_json_round_trip() {
        let plan = FaultPlan::new(42)
            .with(FaultFamily::DropLinks, 0.25)
            .with(FaultFamily::CorruptDocuments, 0.1);
        let text = plan.to_json();
        let back = FaultPlan::from_json(&text).unwrap();
        assert_eq!(plan, back);
        assert_eq!(back.rate(FaultFamily::DropLinks), 0.25);
        assert_eq!(back.rate(FaultFamily::NanCoordinates), 0.0);
    }

    #[test]
    fn plan_rate_clamps_and_sums() {
        let plan = FaultPlan::new(1)
            .with(FaultFamily::DropLinks, 0.7)
            .with(FaultFamily::DropLinks, 0.6);
        assert_eq!(plan.rate(FaultFamily::DropLinks), 1.0);
        assert!(FaultPlan::new(1).with(FaultFamily::DropLinks, -1.0).is_empty());
    }

    #[test]
    fn zero_rate_specs_are_no_ops() {
        // Rate exactly 0.0 is a legal spec — a disabled family — and must
        // validate, round-trip, and inject nothing (the injectors' shared
        // `active_rate` gate turns it into an early return).
        let mut plan = FaultPlan::new(7);
        for family in FaultFamily::ALL {
            plan = plan.with(family, 0.0);
        }
        assert!(plan.validate().is_ok(), "zero rates must validate");
        assert!(plan.is_empty(), "all-zero plan perturbs nothing");
        assert!(!plan.has_runtime_faults());
        assert_eq!(FaultPlan::from_json(&plan.to_json()).unwrap(), plan);
        for family in FaultFamily::ALL {
            assert_eq!(active_rate(&plan, family), None);
        }

        let pristine = sample_maps();
        let mut maps = sample_maps();
        let mut ledger = InjectionLedger::new();
        inject_published_maps(&mut maps, &plan, &mut ledger);
        assert_eq!(
            format!("{maps:?}"),
            format!("{pristine:?}"),
            "zero-rate injection must leave the maps untouched"
        );
        assert_eq!(ledger.total(), 0, "zero-rate injection must log nothing");
    }

    #[test]
    fn map_injection_is_deterministic_and_counted() {
        let plan = FaultPlan::new(9)
            .with(FaultFamily::NanCoordinates, 0.3)
            .with(FaultFamily::DropLinks, 0.3)
            .with(FaultFamily::DuplicateLinks, 0.3)
            .with(FaultFamily::StripGeometry, 0.3);
        let mut a = sample_maps();
        let mut b = sample_maps();
        let (mut la, mut lb) = (InjectionLedger::new(), InjectionLedger::new());
        inject_published_maps(&mut a, &plan, &mut la);
        inject_published_maps(&mut b, &plan, &mut lb);
        // Debug-compare: PartialEq would report NaN vertices as unequal.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(la, lb);
        assert!(la.total() > 0);
    }

    #[test]
    fn single_family_counts_are_exact() {
        // Counting by inspection only works one family at a time: composed
        // families may drop or strip a link another family just poisoned.
        let mut maps = sample_maps();
        let mut ledger = InjectionLedger::new();
        let plan = FaultPlan::new(9).with(FaultFamily::NanCoordinates, 0.3);
        inject_published_maps(&mut maps, &plan, &mut ledger);
        let nan_links = maps[0]
            .links
            .iter()
            .filter(|l| {
                l.geometry
                    .as_ref()
                    .is_some_and(|g| g.points().iter().any(|p| p.lat.is_nan()))
            })
            .count();
        assert!(nan_links > 0);
        assert_eq!(nan_links, ledger.count(FaultFamily::NanCoordinates));

        let mut maps = sample_maps();
        let mut ledger = InjectionLedger::new();
        let plan = FaultPlan::new(9).with(FaultFamily::StripGeometry, 0.3);
        inject_published_maps(&mut maps, &plan, &mut ledger);
        let stripped = maps[0].links.iter().filter(|l| l.geometry.is_none()).count();
        assert!(stripped > 0);
        assert_eq!(stripped, ledger.count(FaultFamily::StripGeometry));
    }

    #[test]
    fn drop_and_duplicate_change_link_count_consistently() {
        let plan = FaultPlan::new(5)
            .with(FaultFamily::DropLinks, 0.4)
            .with(FaultFamily::DuplicateLinks, 0.4);
        let mut maps = sample_maps();
        let before = maps[0].links.len();
        let mut ledger = InjectionLedger::new();
        inject_published_maps(&mut maps, &plan, &mut ledger);
        let after = maps[0].links.len();
        assert_eq!(
            after,
            before + ledger.count(FaultFamily::DuplicateLinks)
                - ledger.count(FaultFamily::DropLinks)
        );
    }

    #[test]
    fn zero_rate_plans_touch_nothing() {
        let mut maps = sample_maps();
        let pristine = maps.clone();
        let mut ledger = InjectionLedger::new();
        inject_published_maps(&mut maps, &FaultPlan::new(3), &mut ledger);
        assert_eq!(maps, pristine);
        assert_eq!(ledger.total(), 0);
        assert!(ledger.render().contains("clean"));
    }

    #[test]
    fn corrupt_documents_are_marked_and_counted() {
        let docs: Vec<Document> = (0..30)
            .map(|i| Document {
                id: intertubes_records::DocId(i),
                kind: intertubes_records::DocKind::FranchiseAgreement,
                title: format!("Agreement {i}"),
                body: "conduit between the cities".to_string(),
                cities: vec!["Madison, WI".to_string(), "Chicago, IL".to_string()],
                isps: vec!["TestNet".to_string()],
                row: Some(RowHint::Road),
            })
            .collect();
        let corpus = Corpus::from_documents(docs);
        let plan = FaultPlan::new(11)
            .with(FaultFamily::CorruptDocuments, 0.3)
            .with(FaultFamily::ContradictoryDocuments, 0.3);
        let mut ledger = InjectionLedger::new();
        let faulted = inject_corpus(&corpus, &plan, &mut ledger);
        let marked = faulted
            .docs()
            .iter()
            .filter(|d| d.cities.iter().any(|c| c.starts_with(CORRUPT_MARKER)))
            .count();
        assert_eq!(marked, ledger.count(FaultFamily::CorruptDocuments));
        assert_eq!(
            faulted.docs().len(),
            corpus.docs().len() + ledger.count(FaultFamily::ContradictoryDocuments)
        );
        assert!(ledger.count(FaultFamily::ContradictoryDocuments) > 0);
        // Forged documents claim a different right-of-way than the original.
        let originals_rail = faulted
            .docs()
            .iter()
            .filter(|d| d.row == Some(RowHint::Rail))
            .count();
        assert_eq!(originals_rail, ledger.count(FaultFamily::ContradictoryDocuments));
    }

    #[test]
    fn transport_injection_reduces_edges_preserves_nodes() {
        use intertubes_atlas::World;
        let world = World::reference();
        let mut roads = world.roads.clone();
        let nodes_before = roads.graph.node_count();
        let edges_before = roads.graph.edge_count();
        let plan = FaultPlan::new(7).with(FaultFamily::DisconnectTransport, 0.5);
        let mut ledger = InjectionLedger::new();
        inject_transport(&mut roads, &plan, &mut ledger);
        assert_eq!(roads.graph.node_count(), nodes_before);
        assert_eq!(
            roads.graph.edge_count(),
            edges_before - ledger.count(FaultFamily::DisconnectTransport)
        );
        assert!(ledger.count(FaultFamily::DisconnectTransport) > 0);
    }

    #[test]
    fn built_in_scenarios_parse_and_cover_all_families() {
        let scenarios = FaultPlan::built_in_scenarios();
        assert!(scenarios.iter().any(|(n, _)| *n == "clean"));
        let everything = &scenarios
            .iter()
            .find(|(n, _)| *n == "everything")
            .unwrap()
            .1;
        for family in FaultFamily::INPUT {
            assert!(everything.rate(family) > 0.0, "missing {family}");
        }
        let chaos = FaultPlan::built_in_chaos_scenarios();
        let chaos_everything = &chaos
            .iter()
            .find(|(n, _)| *n == "chaos-everything")
            .unwrap()
            .1;
        for family in FaultFamily::RUNTIME {
            assert!(family.is_runtime());
            assert!(chaos_everything.rate(family) > 0.0, "missing {family}");
        }
        assert!(chaos_everything.has_runtime_faults());
        assert!(!everything.has_runtime_faults());
        assert_eq!(
            FaultFamily::INPUT.len() + FaultFamily::RUNTIME.len(),
            FaultFamily::ALL.len()
        );
        for (_, plan) in scenarios.iter().chain(chaos.iter()) {
            let back = FaultPlan::from_json(&plan.to_json()).unwrap();
            assert_eq!(*plan, back);
        }
    }

    #[test]
    fn from_json_rejects_nan_and_negative_rates() {
        let nan = r#"{"seed": 1, "faults": [{"family": "DropLinks", "rate": nan}]}"#;
        assert!(matches!(
            FaultPlan::from_json(nan),
            Err(FaultPlanError::Parse(_))
        ));
        let negative = r#"{"seed": 1, "faults": [{"family": "DropLinks", "rate": -0.5}]}"#;
        match FaultPlan::from_json(negative) {
            Err(FaultPlanError::InvalidRate { family, rate }) => {
                assert_eq!(family, FaultFamily::DropLinks);
                assert_eq!(rate, -0.5);
            }
            other => panic!("expected InvalidRate, got {other:?}"),
        }
        // NaN constructed via the builder is caught by validate(), and its
        // to_json form (null rate) is rejected at parse time.
        let built = FaultPlan::new(1).with(FaultFamily::DropLinks, f64::NAN);
        assert!(matches!(
            built.validate(),
            Err(FaultPlanError::InvalidRate { .. })
        ));
        assert!(FaultPlan::from_json(&built.to_json()).is_err());
        // Rates above 1.0 stay legal: rate() clamps them.
        let hot = r#"{"seed": 1, "faults": [{"family": "DropLinks", "rate": 2.5}]}"#;
        let plan = FaultPlan::from_json(hot).unwrap();
        assert_eq!(plan.rate(FaultFamily::DropLinks), 1.0);
    }

    #[test]
    fn sectioned_specs_round_trip_and_old_json_still_parses() {
        let plan = FaultPlan::new(7).with_section(
            FaultFamily::SnapshotBitFlip,
            0.5,
            SnapshotSection::Landmarks,
        );
        let back = FaultPlan::from_json(&plan.to_json()).unwrap();
        assert_eq!(plan, back);
        assert_eq!(
            back.section_for(FaultFamily::SnapshotBitFlip),
            Some(SnapshotSection::Landmarks)
        );
        // A pre-runtime plan file (no "section" key anywhere) still parses,
        // with section defaulting to None.
        let old = r#"{"seed": 3, "faults": [{"family": "TransientIo", "rate": 0.25}]}"#;
        let plan = FaultPlan::from_json(old).unwrap();
        assert_eq!(plan.section_for(FaultFamily::TransientIo), None);
        assert_eq!(plan.rate(FaultFamily::TransientIo), 0.25);
    }
}
