//! The pure query engine (DESIGN.md §9.3).
//!
//! [`QueryEngine::answer`] is a pure function of the snapshot and the
//! query: no I/O, no pipeline re-runs, no obs stage spans (it executes on
//! scheduler worker threads, where only associative counters are allowed).
//! Purity is what makes the serving determinism contract cheap to state —
//! cache hits return previously computed bytes, and recomputation returns
//! the same bytes.

use std::collections::BTreeMap;
use std::sync::Arc;

use intertubes_geo::fiber_delay_us;
use intertubes_graph::{csr_dijkstra_filtered, CsrGraph, EdgeId, Landmarks, NodeId, SearchState};
use intertubes_map::MapConduitId;
use intertubes_mitigation::what_if_cut;
use intertubes_scenario::{
    evaluate, ConditionalRisk, EvalContext, PairRoutes, RouteSummary, ScenarioError, ScenarioPlan,
};

use crate::index::{build_landmarks, conduit_km};
use crate::query::{
    CutImpactView, IspRiskView, LatencyView, NeighborView, PairDeltaView, Query, Response,
    SharedConduitView, SimilarityView, TopSharedView,
};
use crate::query::StatsView;
use crate::snapshot::StudySnapshot;
use crate::telemetry::{ServeTelemetry, STATS_SCHEMA};

/// A loaded snapshot plus the lookup tables the queries need. Shared
/// read-only across scheduler workers (`&self` everywhere).
#[derive(Debug)]
pub struct QueryEngine {
    snap: StudySnapshot,
    /// Map node id by label.
    node_by_label: BTreeMap<String, u32>,
    /// Risk-matrix row by provider name.
    isp_row: BTreeMap<String, usize>,
    /// Frozen conduit-graph adjacency for the live what-if searches.
    csr: CsrGraph,
    /// Per-conduit km (edge `i` = conduit `i`).
    km: Vec<f64>,
    /// ALT tables: from the snapshot's v2 section when present, rebuilt
    /// deterministically otherwise (v1 containers) — either way the same
    /// tables, so answers don't depend on the container version.
    landmarks: Option<Landmarks>,
    /// The path index's routes re-expressed as the scenario engine's
    /// route→conduit table (one conversion at load, shared by every
    /// `Ensemble` evaluation).
    scenario_pairs: Vec<PairRoutes>,
    /// Telemetry sink for [`Query::Stats`] answers (DESIGN.md §13). The
    /// engine only *reads* it — all writes happen in the scheduler's
    /// serial phases — so `answer` stays pure from the workers' view.
    telemetry: Option<Arc<ServeTelemetry>>,
    /// The tenant-visible snapshot id folded into every cache key
    /// (DESIGN.md §14.3), so a shared cache serving several loaded
    /// snapshots never aliases identical queries across worlds.
    snapshot_id: String,
}

impl QueryEngine {
    /// Builds the lookup tables over a loaded snapshot.
    pub fn new(snap: StudySnapshot) -> QueryEngine {
        let node_by_label = snap
            .map
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.label.clone(), i as u32))
            .collect();
        let isp_row = snap
            .risk
            .isps
            .iter()
            .enumerate()
            .map(|(i, isp)| (isp.clone(), i))
            .collect();
        let csr = snap.map.graph().to_csr();
        let km = conduit_km(&snap.map);
        let landmarks = snap.landmarks.clone().or_else(|| build_landmarks(&snap.map));
        let scenario_pairs = snap
            .paths
            .pairs
            .iter()
            .map(|pair| PairRoutes {
                a: pair.a,
                b: pair.b,
                routes: pair
                    .paths
                    .iter()
                    .map(|p| RouteSummary {
                        km: p.km,
                        conduits: p.conduits.clone(),
                    })
                    .collect(),
            })
            .collect();
        QueryEngine {
            snap,
            node_by_label,
            isp_row,
            csr,
            km,
            landmarks,
            scenario_pairs,
            telemetry: None,
            snapshot_id: "default".to_string(),
        }
    }

    /// Attaches the telemetry sink [`Query::Stats`] answers read from.
    pub fn attach_telemetry(&mut self, telemetry: Arc<ServeTelemetry>) {
        self.telemetry = Some(telemetry);
    }

    /// Sets the tenant-visible snapshot id the scheduler scopes cache
    /// keys with. Single-snapshot callers keep the `"default"` scope.
    pub fn set_snapshot_id(&mut self, id: impl Into<String>) {
        self.snapshot_id = id.into();
    }

    /// The tenant-visible snapshot id.
    pub fn snapshot_id(&self) -> &str {
        &self.snapshot_id
    }

    /// The attached telemetry sink, if any.
    pub fn telemetry(&self) -> Option<&Arc<ServeTelemetry>> {
        self.telemetry.as_ref()
    }

    /// The snapshot this engine serves.
    pub fn snapshot(&self) -> &StudySnapshot {
        &self.snap
    }

    /// Answers one query. Pure and total: every input maps to exactly one
    /// response, unknown entities map to [`Response::NotFound`], and no
    /// path panics.
    pub fn answer(&self, query: &Query) -> Response {
        intertubes_obs::counter("serve.queries_answered", 1);
        match query {
            Query::IspRisk { isp } => self.isp_risk(isp),
            Query::Similarity { isp } => self.similarity(isp),
            Query::Latency { a, b } => self.latency(a, b),
            Query::TopShared { k } => self.top_shared(*k),
            Query::CutImpact { conduits } => self.cut_impact(conduits),
            Query::Ensemble { plan } => self.ensemble(plan),
            Query::Stats => Response::Stats(self.stats_view()),
        }
    }

    /// The current count-plane snapshot, or an empty (but well-formed)
    /// view when no telemetry sink is attached.
    pub fn stats_view(&self) -> StatsView {
        self.telemetry
            .as_ref()
            .map(|t| t.stats_view())
            .unwrap_or_else(|| StatsView {
                schema: STATS_SCHEMA.to_string(),
                ..StatsView::default()
            })
    }

    /// Evaluates a scenario ensemble against this snapshot's frozen map,
    /// route index, and CSR search structures. Public so the CLI's
    /// `scenario` subcommand and `bench_scenario` can reuse exactly the
    /// serving evaluation path (and its determinism contract).
    pub fn conditional_risk(&self, plan: &ScenarioPlan) -> Result<ConditionalRisk, ScenarioError> {
        let ctx = EvalContext {
            map: &self.snap.map,
            isps: &self.snap.isps,
            pairs: &self.scenario_pairs,
            csr: &self.csr,
            km: &self.km,
            shared: &self.snap.risk.shared,
            landmarks: self.landmarks.as_ref(),
        };
        evaluate(&ctx, plan)
    }

    fn ensemble(&self, plan: &ScenarioPlan) -> Response {
        match self.conditional_risk(plan) {
            Ok(report) => Response::Ensemble(report),
            Err(err) => Response::InvalidQuery {
                reason: err.to_string(),
            },
        }
    }

    fn isp_risk(&self, isp: &str) -> Response {
        let Some(&row) = self.isp_row.get(isp) else {
            return Response::NotFound {
                what: format!("provider {isp:?}"),
            };
        };
        let mine = self.snap.risk.conduits_of(row);
        let shared = &self.snap.risk.shared;
        let sum: u64 = mine.iter().map(|&c| shared[c] as u64).sum();
        Response::IspRisk(IspRiskView {
            isp: isp.to_string(),
            conduits: mine.len(),
            avg_shared: sum as f64 / mine.len().max(1) as f64,
            max_shared: mine.iter().map(|&c| shared[c]).max().unwrap_or(0),
            ge4_conduits: mine.iter().filter(|&&c| shared[c] >= 4).count(),
            observed_conduits: self
                .snap
                .overlay
                .isp_conduits
                .get(isp)
                .map_or(0, |cs| cs.len()),
        })
    }

    fn similarity(&self, isp: &str) -> Response {
        let heat = &self.snap.hamming;
        let Some(row) = heat.isps.iter().position(|name| name == isp) else {
            return Response::NotFound {
                what: format!("provider {isp:?}"),
            };
        };
        let others: Vec<(u32, &String)> = heat.distance[row]
            .iter()
            .zip(&heat.isps)
            .enumerate()
            .filter(|&(j, _)| j != row)
            .map(|(_, (&d, name))| (d, name))
            .collect();
        let mean = others.iter().map(|&(d, _)| d as f64).sum::<f64>()
            / others.len().max(1) as f64;
        let mut ranked = others;
        ranked.sort_by(|x, y| x.0.cmp(&y.0).then_with(|| x.1.cmp(y.1)));
        Response::Similarity(SimilarityView {
            isp: isp.to_string(),
            mean_distance: mean,
            nearest: ranked
                .into_iter()
                .take(5)
                .map(|(distance, name)| NeighborView {
                    isp: name.clone(),
                    distance,
                })
                .collect(),
        })
    }

    fn latency(&self, a: &str, b: &str) -> Response {
        let (Some(&na), Some(&nb)) = (self.node_by_label.get(a), self.node_by_label.get(b))
        else {
            return Response::NotFound {
                what: format!("city pair {a:?} – {b:?}"),
            };
        };
        let Some(pair) = self.snap.paths.lookup(na, nb) else {
            return Response::NotFound {
                what: format!("conduit-joined pair {a:?} – {b:?}"),
            };
        };
        let (Some(best_us), Some(avg_us)) =
            (pair.best_us(), pair.avg_us(self.snap.paths.detour_cap))
        else {
            return Response::NotFound {
                what: format!("route between {a:?} and {b:?}"),
            };
        };
        let (a_label, b_label) = (
            &self.snap.map.nodes[pair.a as usize].label,
            &self.snap.map.nodes[pair.b as usize].label,
        );
        Response::Latency(LatencyView {
            a: a_label.clone(),
            b: b_label.clone(),
            best_us,
            avg_us,
            row_us: pair.row_us,
            los_us: pair.los_us,
            k_paths: pair.paths.len(),
        })
    }

    fn top_shared(&self, k: usize) -> Response {
        let shared = &self.snap.risk.shared;
        let mut ids: Vec<u32> = (0..shared.len() as u32).collect();
        // §4.2 ranking order: share count descending, id ascending — the
        // same tie-break as `mitigation::heaviest_conduits`.
        ids.sort_by(|&x, &y| {
            shared[y as usize]
                .cmp(&shared[x as usize])
                .then_with(|| x.cmp(&y))
        });
        Response::TopShared(TopSharedView {
            ranking: ids
                .into_iter()
                .take(k)
                .map(|c| {
                    let conduit = &self.snap.map.conduits[c as usize];
                    SharedConduitView {
                        conduit: c,
                        a: self.snap.map.nodes[conduit.a.index()].label.clone(),
                        b: self.snap.map.nodes[conduit.b.index()].label.clone(),
                        shared: shared[c as usize],
                    }
                })
                .collect(),
        })
    }

    fn cut_impact(&self, conduits: &[u32]) -> Response {
        let n = self.snap.map.conduits.len();
        if let Some(&bad) = conduits.iter().find(|&&c| c as usize >= n) {
            return Response::NotFound {
                what: format!("conduit {bad} (map has {n})"),
            };
        }
        let ids: Vec<MapConduitId> = conduits.iter().map(|&c| MapConduitId(c)).collect();
        let report = what_if_cut(&self.snap.map, &self.snap.isps, &ids);
        // Conduit ids are edge ids of the conduit graph, so the severed
        // set doubles as the live search's edge ban mask.
        let mut severed = vec![false; n];
        for &c in conduits {
            severed[c as usize] = true;
        }
        let banned_nodes = vec![false; self.csr.node_count()];
        let mut st = SearchState::new();
        let pair_deltas = self
            .snap
            .paths
            .pairs
            .iter()
            .filter_map(|pair| {
                let best = pair.paths.first()?;
                let hit = best
                    .conduits
                    .iter()
                    .any(|&c| severed.get(c as usize).copied().unwrap_or(false));
                if !hit {
                    return None;
                }
                let before_us = pair.best_us()?;
                // Exact post-cut best route via a live ALT-pruned search
                // over the frozen adjacency (the stored k routes were only
                // an approximation here: a k+1-th route could survive).
                let after_us = match csr_dijkstra_filtered(
                    &self.csr,
                    &mut st,
                    NodeId(pair.a),
                    NodeId(pair.b),
                    |e: EdgeId| self.km[e.index()],
                    &banned_nodes,
                    &severed,
                    self.landmarks.as_ref(),
                ) {
                    Ok(Some(p)) => Some(fiber_delay_us(p.cost)),
                    _ => None,
                };
                Some(PairDeltaView {
                    a: self.snap.map.nodes[pair.a as usize].label.clone(),
                    b: self.snap.map.nodes[pair.b as usize].label.clone(),
                    before_us,
                    after_us,
                    delta_us: after_us.map(|after| after - before_us),
                })
            })
            .collect();
        Response::CutImpact(CutImpactView {
            report,
            pair_deltas,
        })
    }
}
