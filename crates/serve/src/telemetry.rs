//! The serving telemetry plane (DESIGN.md §13).
//!
//! Telemetry is split into two strictly separated planes:
//!
//! * the **count plane** — deterministic `u64` aggregates (queries per
//!   family, admission accept/reject, waves, degraded/stale responses,
//!   health transitions, cache hit/miss/eviction/poison). Every counter
//!   is bumped from the scheduler's **serial** phases only, so for a
//!   fixed workload the plane is byte-identical at any thread count.
//!   [`CountPlane::merge`] is associative and commutative, extending the
//!   obs metric algebra (and the serial==parallel contract) to serving
//!   aggregates.
//! * the **timing plane** — wall-clock-derived distributions (per-family
//!   latency histograms with interpolated p50/p95/p99, wave queue depth,
//!   deadline slack). Timing varies run to run by nature, so it is
//!   **excluded from every canonical digest** the same way
//!   [`intertubes_obs::canonicalize`] strips `wall_ms` from manifests:
//!   [`canonicalize_stats`] removes the whole plane (and every other
//!   timing- or cache-mode-dependent key) before any byte comparison.
//!
//! A bounded **flight recorder** rides alongside: a fixed-capacity
//! [`Ring`] of the last N query events (family, canonical-key hash, cache
//! outcome, wave, response kind, duration bucket). The scheduler dumps
//! the ring whenever the health machine leaves `Ready`, on chaos-injected
//! faults, and at drain; dumps render as canonical JSONL for the gates.
//!
//! Cache-mode caveat: `cache_hits`/`cache_misses`/`stale_served` (and the
//! per-event cache `outcome`) are deterministic *within* one cache mode
//! but legitimately differ between cache on and cache off — so they are
//! part of the full stats document yet stripped from its canonical form,
//! which must be byte-identical across **both** thread counts and cache
//! modes.

use std::collections::BTreeMap;
use std::sync::Mutex;

use intertubes_obs::{Histogram, Ring};
use serde_json::{Map, Number, Value};

use crate::cache::ResultCache;
use crate::query::{Query, StatsView};

/// Schema tag of the stats document (`--stats-out`, `Query::Stats`).
pub const STATS_SCHEMA: &str = "intertubes-stats/v1";

/// Default flight-recorder window.
pub const DEFAULT_FLIGHT_CAPACITY: usize = 256;

/// Retained flight dumps before the recorder starts dropping new ones
/// (bounded like the ring itself — a long chaos run cannot grow without
/// limit).
pub const MAX_FLIGHT_DUMPS: usize = 64;

/// Keys removed by [`canonicalize_stats`]: the entire timing plane plus
/// every count that depends on the cache mode rather than the workload.
pub const NONCANONICAL_STATS_KEYS: [&str; 8] = [
    "timing",
    "cache",
    "cache_hits",
    "cache_misses",
    "stale_served",
    "hit_rate",
    "outcome",
    "duration_bucket",
];

/// The query families the count and timing planes key on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryFamily {
    /// [`Query::IspRisk`].
    IspRisk,
    /// [`Query::Similarity`].
    Similarity,
    /// [`Query::Latency`].
    Latency,
    /// [`Query::TopShared`].
    TopShared,
    /// [`Query::CutImpact`].
    CutImpact,
    /// [`Query::Ensemble`].
    Ensemble,
    /// [`Query::Stats`].
    Stats,
}

impl QueryFamily {
    /// Every family, in label order.
    pub const ALL: [QueryFamily; 7] = [
        QueryFamily::CutImpact,
        QueryFamily::Ensemble,
        QueryFamily::IspRisk,
        QueryFamily::Latency,
        QueryFamily::Similarity,
        QueryFamily::Stats,
        QueryFamily::TopShared,
    ];

    /// The family a query belongs to.
    pub fn of(q: &Query) -> QueryFamily {
        match q {
            Query::IspRisk { .. } => QueryFamily::IspRisk,
            Query::Similarity { .. } => QueryFamily::Similarity,
            Query::Latency { .. } => QueryFamily::Latency,
            Query::TopShared { .. } => QueryFamily::TopShared,
            Query::CutImpact { .. } => QueryFamily::CutImpact,
            Query::Ensemble { .. } => QueryFamily::Ensemble,
            Query::Stats => QueryFamily::Stats,
        }
    }

    /// Stable snake_case label (metric keys, Prometheus label values).
    pub fn label(self) -> &'static str {
        match self {
            QueryFamily::IspRisk => "isp_risk",
            QueryFamily::Similarity => "similarity",
            QueryFamily::Latency => "latency",
            QueryFamily::TopShared => "top_shared",
            QueryFamily::CutImpact => "cut_impact",
            QueryFamily::Ensemble => "ensemble",
            QueryFamily::Stats => "stats",
        }
    }
}

/// How the scheduler resolved one admitted slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the result cache.
    Hit,
    /// Computed (cache miss or cache disabled).
    Miss,
    /// Shed into a degraded response under injected overload.
    Shed,
    /// Answered from the telemetry snapshot ([`Query::Stats`] bypasses
    /// the cache entirely).
    Stats,
}

impl CacheOutcome {
    /// Stable label for events and metrics.
    pub fn label(self) -> &'static str {
        match self {
            CacheOutcome::Hit => "hit",
            CacheOutcome::Miss => "miss",
            CacheOutcome::Shed => "shed",
            CacheOutcome::Stats => "stats",
        }
    }
}

/// Classifies a canonical response JSON by its externally-tagged variant
/// name. Unknown shapes (which the engine never produces) classify as
/// `"unknown"` rather than panicking.
pub fn response_kind(json: &str) -> &'static str {
    const KINDS: [&str; 11] = [
        "CutImpact",
        "Degraded",
        "Ensemble",
        "InvalidQuery",
        "IspRisk",
        "Latency",
        "NotFound",
        "Rejected",
        "Similarity",
        "Stats",
        "TopShared",
    ];
    let Some(rest) = json.strip_prefix("{\"") else {
        return "unknown";
    };
    for kind in KINDS {
        if rest
            .strip_prefix(kind)
            .is_some_and(|after| after.starts_with('"'))
        {
            return kind;
        }
    }
    "unknown"
}

/// The log2 duration bucket of the flight recorder (same partition as
/// [`Histogram`]: bucket 0 is exactly 0 µs, bucket i spans
/// `[2^(i-1), 2^i - 1]` µs).
pub fn duration_bucket(us: u64) -> u8 {
    (64 - us.leading_zeros() as u8).min(63)
}

/// One entry of the flight recorder: everything the scheduler knew about
/// a query at assemble time, compressed to fixed-size fields.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Monotonic event number (assemble order — deterministic).
    pub seq: u64,
    /// Wave the query was served in (1-based).
    pub wave: u64,
    /// Query family label.
    pub family: &'static str,
    /// FNV-1a 64 of the canonical query key.
    pub key_hash: u64,
    /// Cache outcome label (non-canonical: differs across cache modes).
    pub outcome: &'static str,
    /// Response variant name.
    pub kind: &'static str,
    /// Log2 service-latency bucket (non-canonical: wall-clock-derived).
    pub duration_bucket: u8,
}

impl FlightEvent {
    /// JSON rendering with fixed key order.
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert("seq".to_string(), Value::Number(Number::UInt(self.seq)));
        obj.insert("wave".to_string(), Value::Number(Number::UInt(self.wave)));
        obj.insert(
            "family".to_string(),
            Value::String(self.family.to_string()),
        );
        obj.insert(
            "key_hash".to_string(),
            Value::Number(Number::UInt(self.key_hash)),
        );
        obj.insert(
            "outcome".to_string(),
            Value::String(self.outcome.to_string()),
        );
        obj.insert("kind".to_string(), Value::String(self.kind.to_string()));
        obj.insert(
            "duration_bucket".to_string(),
            Value::Number(Number::UInt(self.duration_bucket as u64)),
        );
        Value::Object(obj)
    }
}

/// One captured window of the flight recorder.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// Why the window was captured (`"drain"`, `"fault_injected"`,
    /// `"health:degraded"`, `"on_demand"`, …).
    pub reason: String,
    /// Wave the capture happened after.
    pub wave: u64,
    /// The retained events, oldest → newest.
    pub events: Vec<FlightEvent>,
}

impl FlightDump {
    /// JSON rendering with fixed key order.
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert(
            "reason".to_string(),
            Value::String(self.reason.clone()),
        );
        obj.insert("wave".to_string(), Value::Number(Number::UInt(self.wave)));
        obj.insert(
            "events".to_string(),
            Value::Array(self.events.iter().map(FlightEvent::to_json).collect()),
        );
        Value::Object(obj)
    }
}

/// The bounded flight recorder: a ring of recent events plus the capped
/// list of captured windows.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightRecorder {
    ring: Ring<FlightEvent>,
    next_seq: u64,
    dumps: Vec<FlightDump>,
    dumps_dropped: u64,
}

impl FlightRecorder {
    /// An empty recorder retaining the last `capacity` events.
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Ring::new(capacity),
            next_seq: 0,
            dumps: Vec::new(),
            dumps_dropped: 0,
        }
    }

    /// Records one event, assigning it the next sequence number.
    pub fn record(&mut self, mut event: FlightEvent) {
        event.seq = self.next_seq;
        self.next_seq += 1;
        self.ring.push(event);
    }

    /// Captures the current window under `reason`. Windows beyond
    /// [`MAX_FLIGHT_DUMPS`] are counted but not stored, so the recorder
    /// stays bounded no matter how unhealthy the run is.
    pub fn dump(&mut self, reason: &str, wave: u64) {
        if self.dumps.len() >= MAX_FLIGHT_DUMPS {
            self.dumps_dropped += 1;
            return;
        }
        self.dumps.push(FlightDump {
            reason: reason.to_string(),
            wave,
            events: self.ring.iter().copied().collect(),
        });
    }

    /// Captured windows so far.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// JSON rendering with fixed key order.
    pub fn to_json(&self) -> Value {
        let mut obj = Map::new();
        obj.insert(
            "capacity".to_string(),
            Value::Number(Number::UInt(self.ring.capacity() as u64)),
        );
        obj.insert(
            "pushed".to_string(),
            Value::Number(Number::UInt(self.ring.pushed())),
        );
        obj.insert(
            "overwritten".to_string(),
            Value::Number(Number::UInt(self.ring.dropped())),
        );
        obj.insert(
            "dumps_dropped".to_string(),
            Value::Number(Number::UInt(self.dumps_dropped)),
        );
        obj.insert(
            "dumps".to_string(),
            Value::Array(self.dumps.iter().map(FlightDump::to_json).collect()),
        );
        Value::Object(obj)
    }
}

/// One tenant's count-plane aggregates (DESIGN.md §14.4). Written by the
/// remote front-end's serial routing phase; local replay never populates
/// the map, so local stats documents are unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCounts {
    /// Frames submitted by this tenant.
    pub submitted: u64,
    /// Frames past the tenant's quota gate.
    pub admitted: u64,
    /// Frames answered with a quota `Rejected` response (never drops).
    pub quota_rejected: u64,
}

impl TenantCounts {
    /// Sum-merge (associative and commutative, like every count field).
    pub fn merge(&mut self, other: &TenantCounts) {
        self.submitted += other.submitted;
        self.admitted += other.admitted;
        self.quota_rejected += other.quota_rejected;
    }

    /// JSON rendering with fixed key order.
    pub fn to_json(&self) -> Value {
        let uint = |n: u64| Value::Number(Number::UInt(n));
        let mut obj = Map::new();
        obj.insert("submitted".to_string(), uint(self.submitted));
        obj.insert("admitted".to_string(), uint(self.admitted));
        obj.insert("quota_rejected".to_string(), uint(self.quota_rejected));
        Value::Object(obj)
    }
}

/// The deterministic counter plane. Only ever written from the
/// scheduler's serial phases; mergeable with the same algebra as
/// [`intertubes_obs::MetricsSnapshot`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CountPlane {
    /// Queries submitted to the scheduler.
    pub submitted: u64,
    /// Queries past admission control.
    pub admitted: u64,
    /// Queries rejected at admission (backpressure).
    pub rejected: u64,
    /// Waves fully executed.
    pub waves: u64,
    /// Queries shed into degraded responses.
    pub degraded: u64,
    /// Degraded responses carrying a stale cached answer (non-canonical:
    /// depends on cache mode).
    pub stale_served: u64,
    /// Health-state transitions observed over the run.
    pub health_transitions: u64,
    /// Flight-recorder windows captured.
    pub flight_dumps: u64,
    /// Cache hits (non-canonical: depends on cache mode).
    pub cache_hits: u64,
    /// Cache misses (non-canonical: depends on cache mode).
    pub cache_misses: u64,
    /// Queries seen per family label.
    pub families: BTreeMap<String, u64>,
    /// Responses produced per variant name.
    pub responses: BTreeMap<String, u64>,
    /// Per-tenant admission aggregates from the remote front-end's quota
    /// gate (empty for local replay).
    pub tenants: BTreeMap<String, TenantCounts>,
}

impl CountPlane {
    /// Folds another plane into this one. Associative and commutative —
    /// every field is a sum — so any merge tree over the same shards
    /// yields the same plane (asserted by `tests/telemetry.rs`).
    pub fn merge(&mut self, other: &CountPlane) {
        self.submitted += other.submitted;
        self.admitted += other.admitted;
        self.rejected += other.rejected;
        self.waves += other.waves;
        self.degraded += other.degraded;
        self.stale_served += other.stale_served;
        self.health_transitions += other.health_transitions;
        self.flight_dumps += other.flight_dumps;
        self.cache_hits += other.cache_hits;
        self.cache_misses += other.cache_misses;
        for (k, n) in &other.families {
            *self.families.entry(k.clone()).or_insert(0) += n;
        }
        for (k, n) in &other.responses {
            *self.responses.entry(k.clone()).or_insert(0) += n;
        }
        for (k, t) in &other.tenants {
            self.tenants.entry(k.clone()).or_default().merge(t);
        }
    }

    /// JSON rendering with fixed key order (maps are `BTreeMap`-ordered).
    pub fn to_json(&self) -> Value {
        let uint = |n: u64| Value::Number(Number::UInt(n));
        let map_json = |m: &BTreeMap<String, u64>| {
            let mut out = Map::new();
            for (k, n) in m {
                out.insert(k.clone(), uint(*n));
            }
            Value::Object(out)
        };
        let mut obj = Map::new();
        obj.insert("submitted".to_string(), uint(self.submitted));
        obj.insert("admitted".to_string(), uint(self.admitted));
        obj.insert("rejected".to_string(), uint(self.rejected));
        obj.insert("waves".to_string(), uint(self.waves));
        obj.insert("degraded".to_string(), uint(self.degraded));
        obj.insert("stale_served".to_string(), uint(self.stale_served));
        obj.insert(
            "health_transitions".to_string(),
            uint(self.health_transitions),
        );
        obj.insert("flight_dumps".to_string(), uint(self.flight_dumps));
        obj.insert("cache_hits".to_string(), uint(self.cache_hits));
        obj.insert("cache_misses".to_string(), uint(self.cache_misses));
        obj.insert("families".to_string(), map_json(&self.families));
        obj.insert("responses".to_string(), map_json(&self.responses));
        let mut tenants = Map::new();
        for (k, t) in &self.tenants {
            tenants.insert(k.clone(), t.to_json());
        }
        obj.insert("tenants".to_string(), Value::Object(tenants));
        Value::Object(obj)
    }
}

/// The wall-clock plane: latency distributions per family plus wave
/// shape. Never part of a canonical digest.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimingPlane {
    /// Service latency (µs) per family label.
    pub per_family: BTreeMap<String, Histogram>,
    /// Queue depth observed at each wave start.
    pub queue_depth: Histogram,
    /// `deadline - latency` (µs, clamped at 0) for runs with a deadline.
    pub deadline_slack_us: Histogram,
}

impl TimingPlane {
    /// Folds another plane into this one (histogram merges — same
    /// algebra, same associativity).
    pub fn merge(&mut self, other: &TimingPlane) {
        for (k, h) in &other.per_family {
            self.per_family.entry(k.clone()).or_default().merge(h);
        }
        self.queue_depth.merge(&other.queue_depth);
        self.deadline_slack_us.merge(&other.deadline_slack_us);
    }

    /// JSON rendering: per-family histograms annotated with interpolated
    /// p50/p95/p99, plus the wave-shape histograms.
    pub fn to_json(&self) -> Value {
        let with_quantiles = |h: &Histogram| {
            let mut obj = match h.to_json() {
                Value::Object(m) => m,
                _ => Map::new(),
            };
            obj.insert(
                "p50_us".to_string(),
                Value::Number(Number::UInt(h.quantile(0.50))),
            );
            obj.insert(
                "p95_us".to_string(),
                Value::Number(Number::UInt(h.quantile(0.95))),
            );
            obj.insert(
                "p99_us".to_string(),
                Value::Number(Number::UInt(h.quantile(0.99))),
            );
            Value::Object(obj)
        };
        let mut per_family = Map::new();
        for (k, h) in &self.per_family {
            per_family.insert(k.clone(), with_quantiles(h));
        }
        let mut obj = Map::new();
        obj.insert("per_family".to_string(), Value::Object(per_family));
        obj.insert("queue_depth".to_string(), self.queue_depth.to_json());
        obj.insert(
            "deadline_slack_us".to_string(),
            with_quantiles(&self.deadline_slack_us),
        );
        Value::Object(obj)
    }
}

#[derive(Debug)]
struct Inner {
    counts: CountPlane,
    timing: TimingPlane,
    flight: FlightRecorder,
}

/// The scheduler's telemetry sink: both planes plus the flight recorder
/// behind one mutex. All writes happen in the scheduler's serial phases
/// (the lock is for `Arc`-shared readers like the engine's `Stats`
/// answer, not for worker contention).
#[derive(Debug)]
pub struct ServeTelemetry {
    inner: Mutex<Inner>,
}

impl Default for ServeTelemetry {
    fn default() -> Self {
        ServeTelemetry::new()
    }
}

impl ServeTelemetry {
    /// A fresh sink with the default flight window.
    pub fn new() -> ServeTelemetry {
        ServeTelemetry::with_flight_capacity(DEFAULT_FLIGHT_CAPACITY)
    }

    /// A fresh sink retaining the last `capacity` flight events.
    pub fn with_flight_capacity(capacity: usize) -> ServeTelemetry {
        ServeTelemetry {
            inner: Mutex::new(Inner {
                counts: CountPlane::default(),
                timing: TimingPlane::default(),
                flight: FlightRecorder::new(capacity),
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Accounts one batch's admission decision.
    pub fn note_admission(&self, submitted: u64, admitted: u64, rejected: u64) {
        let mut inner = self.lock();
        inner.counts.submitted += submitted;
        inner.counts.admitted += admitted;
        inner.counts.rejected += rejected;
    }

    /// Observes a wave starting at the given queue depth (timing plane
    /// only — the wave is counted when it completes).
    pub fn note_wave_start(&self, depth: u64) {
        self.lock().timing.queue_depth.observe(depth);
    }

    /// Counts a completed wave.
    pub fn note_wave_complete(&self) {
        self.lock().counts.waves += 1;
    }

    /// Counts a stale cached answer served alongside a degraded response.
    pub fn note_stale_served(&self) {
        self.lock().counts.stale_served += 1;
    }

    /// Accounts one tenant's frame through the remote quota gate
    /// (DESIGN.md §14.4): exactly one of `admitted`/`quota_rejected` per
    /// submitted frame. Called from the server's serial routing phase.
    pub fn note_tenant(&self, tenant: &str, admitted: bool) {
        let mut inner = self.lock();
        let t = inner.counts.tenants.entry(tenant.to_string()).or_default();
        t.submitted += 1;
        if admitted {
            t.admitted += 1;
        } else {
            t.quota_rejected += 1;
        }
    }

    /// Records the health machine's transition count (set, not summed —
    /// the trace is global to the run).
    pub fn set_health_transitions(&self, n: u64) {
        self.lock().counts.health_transitions = n;
    }

    /// Accounts one served query end-to-end: family and response-kind
    /// counters, cache outcome, per-family latency, deadline slack, and a
    /// flight event. Called from the assemble phase only.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &self,
        wave: u64,
        family: QueryFamily,
        key_hash: u64,
        outcome: CacheOutcome,
        response_json: &str,
        duration_us: u64,
        deadline_us: u64,
    ) {
        let kind = response_kind(response_json);
        let mut inner = self.lock();
        *inner
            .counts
            .families
            .entry(family.label().to_string())
            .or_insert(0) += 1;
        *inner.counts.responses.entry(kind.to_string()).or_insert(0) += 1;
        match outcome {
            CacheOutcome::Hit => inner.counts.cache_hits += 1,
            CacheOutcome::Miss => inner.counts.cache_misses += 1,
            CacheOutcome::Shed => inner.counts.degraded += 1,
            CacheOutcome::Stats => {}
        }
        inner
            .timing
            .per_family
            .entry(family.label().to_string())
            .or_default()
            .observe(duration_us);
        if deadline_us > 0 {
            inner
                .timing
                .deadline_slack_us
                .observe(deadline_us.saturating_sub(duration_us));
        }
        inner.flight.record(FlightEvent {
            seq: 0, // assigned by the recorder
            wave,
            family: family.label(),
            key_hash,
            outcome: outcome.label(),
            kind,
            duration_bucket: duration_bucket(duration_us),
        });
    }

    /// Captures the flight window (health departure, injected fault,
    /// drain, or on demand).
    pub fn dump_flight(&self, reason: &str, wave: u64) {
        let mut inner = self.lock();
        inner.flight.dump(reason, wave);
        inner.counts.flight_dumps += 1;
    }

    /// The [`Query::Stats`] answer: a count-plane snapshot containing
    /// only cache-mode-independent fields, so the response stays
    /// byte-identical across thread counts and cache modes.
    pub fn stats_view(&self) -> StatsView {
        let inner = self.lock();
        StatsView {
            schema: STATS_SCHEMA.to_string(),
            waves: inner.counts.waves,
            submitted: inner.counts.submitted,
            admitted: inner.counts.admitted,
            rejected: inner.counts.rejected,
            degraded: inner.counts.degraded,
            families: inner.counts.families.clone(),
        }
    }

    /// A copy of the count plane.
    pub fn counts(&self) -> CountPlane {
        self.lock().counts.clone()
    }

    /// A copy of the timing plane.
    pub fn timing(&self) -> TimingPlane {
        self.lock().timing.clone()
    }

    /// The full `intertubes-stats/v1` document: schema tag, count plane,
    /// cache counters (when a cache is attached), timing plane, and the
    /// flight recorder. Canonicalize with [`canonicalize_stats`] before
    /// byte comparison.
    pub fn stats_document(&self, cache: Option<&ResultCache>) -> Value {
        let inner = self.lock();
        let mut obj = Map::new();
        obj.insert(
            "schema".to_string(),
            Value::String(STATS_SCHEMA.to_string()),
        );
        obj.insert("counts".to_string(), inner.counts.to_json());
        if let Some(cache) = cache {
            let stats = cache.stats();
            let uint = |n: u64| Value::Number(Number::UInt(n));
            let mut c = Map::new();
            c.insert("hits".to_string(), uint(stats.hits()));
            c.insert("misses".to_string(), uint(stats.misses()));
            c.insert("evictions".to_string(), uint(stats.evictions()));
            c.insert(
                "poison_injected".to_string(),
                uint(stats.poison_injected),
            );
            c.insert(
                "poison_detected".to_string(),
                uint(stats.poison_detected()),
            );
            let looked = stats.hits() + stats.misses();
            c.insert(
                "hit_rate".to_string(),
                Value::Number(Number::Float(
                    stats.hits() as f64 / looked.max(1) as f64,
                )),
            );
            let shards: Vec<Value> = stats
                .shards
                .iter()
                .map(|s| {
                    let mut row = Map::new();
                    row.insert("hits".to_string(), uint(s.hits));
                    row.insert("misses".to_string(), uint(s.misses));
                    row.insert("insertions".to_string(), uint(s.insertions));
                    row.insert("evictions".to_string(), uint(s.evictions));
                    row.insert(
                        "poison_detected".to_string(),
                        uint(s.poison_detected),
                    );
                    Value::Object(row)
                })
                .collect();
            c.insert("shards".to_string(), Value::Array(shards));
            obj.insert("cache".to_string(), Value::Object(c));
        }
        obj.insert("timing".to_string(), inner.timing.to_json());
        obj.insert("flight".to_string(), inner.flight.to_json());
        Value::Object(obj)
    }

    /// The flight dumps as JSONL: one header line per dump followed by
    /// one line per event. With `canonical` set, each line is passed
    /// through [`canonicalize_stats`] — this is the byte-compared form.
    pub fn flight_jsonl(&self, canonical: bool) -> String {
        let inner = self.lock();
        let mut out = String::new();
        for dump in inner.flight.dumps() {
            let mut header = Map::new();
            header.insert("dump".to_string(), Value::String(dump.reason.clone()));
            header.insert(
                "wave".to_string(),
                Value::Number(Number::UInt(dump.wave)),
            );
            header.insert(
                "events".to_string(),
                Value::Number(Number::UInt(dump.events.len() as u64)),
            );
            let mut lines = vec![Value::Object(header)];
            lines.extend(dump.events.iter().map(FlightEvent::to_json));
            for line in lines {
                let line = if canonical {
                    canonicalize_stats(&line)
                } else {
                    line
                };
                out.push_str(&serde_json::to_string(&line).unwrap_or_default());
                out.push('\n');
            }
        }
        out
    }

    /// Prometheus-style text exposition of both planes (plus cache
    /// counters when attached). Key order is deterministic; values
    /// include the timing plane, so this rendering is **never**
    /// byte-compared.
    pub fn prometheus(&self, cache: Option<&ResultCache>) -> String {
        let inner = self.lock();
        let c = &inner.counts;
        let mut out = String::new();
        let mut counter = |name: &str, v: u64| {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        };
        counter("intertubes_serve_submitted_total", c.submitted);
        counter("intertubes_serve_admitted_total", c.admitted);
        counter("intertubes_serve_rejected_total", c.rejected);
        counter("intertubes_serve_waves_total", c.waves);
        counter("intertubes_serve_degraded_total", c.degraded);
        counter("intertubes_serve_stale_served_total", c.stale_served);
        counter(
            "intertubes_serve_health_transitions_total",
            c.health_transitions,
        );
        counter("intertubes_serve_flight_dumps_total", c.flight_dumps);
        counter("intertubes_serve_cache_hits_total", c.cache_hits);
        counter("intertubes_serve_cache_misses_total", c.cache_misses);
        if let Some(cache) = cache {
            let stats = cache.stats();
            counter("intertubes_serve_cache_evictions_total", stats.evictions());
            counter(
                "intertubes_serve_cache_poison_injected_total",
                stats.poison_injected,
            );
            counter(
                "intertubes_serve_cache_poison_detected_total",
                stats.poison_detected(),
            );
        }
        out.push_str("# TYPE intertubes_serve_queries_total counter\n");
        for (family, n) in &c.families {
            out.push_str(&format!(
                "intertubes_serve_queries_total{{family=\"{family}\"}} {n}\n"
            ));
        }
        out.push_str("# TYPE intertubes_serve_responses_total counter\n");
        for (kind, n) in &c.responses {
            out.push_str(&format!(
                "intertubes_serve_responses_total{{kind=\"{kind}\"}} {n}\n"
            ));
        }
        out.push_str("# TYPE intertubes_serve_tenant_frames_total counter\n");
        for (tenant, t) in &c.tenants {
            for (outcome, n) in [
                ("submitted", t.submitted),
                ("admitted", t.admitted),
                ("quota_rejected", t.quota_rejected),
            ] {
                out.push_str(&format!(
                    "intertubes_serve_tenant_frames_total{{tenant=\"{tenant}\",outcome=\"{outcome}\"}} {n}\n"
                ));
            }
        }
        out.push_str("# TYPE intertubes_serve_latency_us summary\n");
        for (family, h) in &inner.timing.per_family {
            for (q, label) in [(0.50, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                out.push_str(&format!(
                    "intertubes_serve_latency_us{{family=\"{family}\",quantile=\"{label}\"}} {}\n",
                    h.quantile(q)
                ));
            }
            out.push_str(&format!(
                "intertubes_serve_latency_us_count{{family=\"{family}\"}} {}\n",
                h.count
            ));
            out.push_str(&format!(
                "intertubes_serve_latency_us_sum{{family=\"{family}\"}} {}\n",
                h.sum
            ));
        }
        out.push_str("# TYPE intertubes_serve_queue_depth gauge\n");
        out.push_str(&format!(
            "intertubes_serve_queue_depth_max {}\n",
            if inner.timing.queue_depth.count > 0 {
                inner.timing.queue_depth.max
            } else {
                0
            }
        ));
        out
    }
}

/// Strips every non-canonical key ([`NONCANONICAL_STATS_KEYS`]) from a
/// stats value, recursively — the stats analogue of
/// [`intertubes_obs::canonicalize`]. What survives is exactly the
/// byte-comparable core: deterministic across thread counts **and**
/// cache modes.
pub fn canonicalize_stats(value: &Value) -> Value {
    match value {
        Value::Object(map) => {
            let mut out = Map::new();
            for (k, v) in map.iter() {
                if NONCANONICAL_STATS_KEYS.contains(&k.as_str()) {
                    continue;
                }
                out.insert(k.clone(), canonicalize_stats(v));
            }
            Value::Object(out)
        }
        Value::Array(items) => {
            Value::Array(items.iter().map(canonicalize_stats).collect())
        }
        other => other.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn response_kind_classifies_every_variant() {
        assert_eq!(response_kind("{\"IspRisk\":{\"isp\":\"X\"}}"), "IspRisk");
        assert_eq!(response_kind("{\"NotFound\":{\"what\":\"y\"}}"), "NotFound");
        assert_eq!(
            response_kind("{\"Degraded\":{\"reason\":\"r\",\"stale\":null}}"),
            "Degraded"
        );
        assert_eq!(response_kind("{\"Stats\":{\"waves\":0}}"), "Stats");
        // A kind name that is only a prefix of the tag must not match.
        assert_eq!(response_kind("{\"StatsX\":{}}"), "unknown");
        assert_eq!(response_kind("plainly not json"), "unknown");
    }

    #[test]
    fn duration_bucket_matches_histogram_partition() {
        assert_eq!(duration_bucket(0), 0);
        assert_eq!(duration_bucket(1), 1);
        assert_eq!(duration_bucket(3), 2);
        assert_eq!(duration_bucket(4), 3);
        assert_eq!(duration_bucket(u64::MAX), 63);
    }

    #[test]
    fn count_plane_merge_is_associative_and_commutative() {
        let mk = |s: u64, fam: &str| {
            let mut p = CountPlane {
                submitted: s,
                admitted: s,
                waves: 1,
                ..CountPlane::default()
            };
            p.families.insert(fam.to_string(), s);
            p.tenants.insert(
                fam.to_string(),
                TenantCounts {
                    submitted: s,
                    admitted: s,
                    quota_rejected: 0,
                },
            );
            p
        };
        let (a, b, c) = (mk(1, "latency"), mk(2, "isp_risk"), mk(3, "latency"));
        // (a ⊕ b) ⊕ c
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        // a ⊕ (b ⊕ c)
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);
        // b ⊕ a == a ⊕ b
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        // Identity.
        let mut with_empty = a.clone();
        with_empty.merge(&CountPlane::default());
        assert_eq!(with_empty, a);
    }

    #[test]
    fn note_tenant_splits_admits_and_quota_rejections() {
        let telemetry = ServeTelemetry::with_flight_capacity(8);
        telemetry.note_tenant("alpha", true);
        telemetry.note_tenant("alpha", false);
        telemetry.note_tenant("beta", true);
        let counts = telemetry.counts();
        assert_eq!(
            counts.tenants.get("alpha"),
            Some(&TenantCounts {
                submitted: 2,
                admitted: 1,
                quota_rejected: 1,
            })
        );
        assert_eq!(counts.tenants.get("beta").map(|t| t.quota_rejected), Some(0));
        // The tenant aggregates are canonical: they survive
        // canonicalize_stats and render in fixed key order.
        let doc = telemetry.stats_document(None);
        let canon = canonicalize_stats(&doc);
        assert!(canon["counts"]["tenants"]["alpha"]["quota_rejected"].is_number());
        // And they show up in the Prometheus rendering.
        let prom = telemetry.prometheus(None);
        assert!(prom.contains(
            "intertubes_serve_tenant_frames_total{tenant=\"alpha\",outcome=\"quota_rejected\"} 1"
        ));
    }

    #[test]
    fn canonicalize_strips_timing_and_cache_mode_keys() {
        let telemetry = ServeTelemetry::with_flight_capacity(8);
        telemetry.note_admission(3, 3, 0);
        telemetry.note_wave_start(3);
        telemetry.record(
            1,
            QueryFamily::Latency,
            42,
            CacheOutcome::Miss,
            "{\"NotFound\":{\"what\":\"x\"}}",
            17,
            100,
        );
        telemetry.note_wave_complete();
        telemetry.dump_flight("on_demand", 1);
        let cache = ResultCache::new(crate::cache::CacheConfig::default());
        let full = telemetry.stats_document(Some(&cache));
        assert!(full.get("timing").is_some());
        assert!(full.get("cache").is_some());
        let canon = canonicalize_stats(&full);
        assert!(canon.get("timing").is_none());
        assert!(canon.get("cache").is_none());
        let counts = canon.get("counts").and_then(|v| v.as_object()).unwrap();
        assert!(counts.get("cache_misses").is_none());
        assert!(counts.get("stale_served").is_none());
        assert!(counts.get("waves").is_some());
        // The flight events survive minus outcome and duration bucket.
        let dumps = canon
            .get("flight")
            .and_then(|f| f.get("dumps"))
            .and_then(|d| d.as_array())
            .unwrap();
        let event = dumps[0].get("events").and_then(|e| e.as_array()).unwrap()[0].clone();
        assert!(event.get("family").is_some());
        assert!(event.get("key_hash").is_some());
        assert!(event.get("outcome").is_none());
        assert!(event.get("duration_bucket").is_none());
    }

    #[test]
    fn flight_recorder_caps_dumps() {
        let mut rec = FlightRecorder::new(4);
        for i in 0..(MAX_FLIGHT_DUMPS + 5) {
            rec.dump("d", i as u64);
        }
        assert_eq!(rec.dumps().len(), MAX_FLIGHT_DUMPS);
        assert_eq!(rec.dumps_dropped, 5);
    }

    #[test]
    fn stats_view_excludes_cache_mode_counters() {
        let telemetry = ServeTelemetry::new();
        telemetry.note_admission(2, 2, 0);
        telemetry.record(
            1,
            QueryFamily::TopShared,
            7,
            CacheOutcome::Hit,
            "{\"TopShared\":{\"ranking\":[]}}",
            5,
            0,
        );
        telemetry.note_wave_complete();
        let view = telemetry.stats_view();
        assert_eq!(view.schema, STATS_SCHEMA);
        assert_eq!(view.waves, 1);
        assert_eq!(view.submitted, 2);
        assert_eq!(view.families.get("top_shared"), Some(&1));
        // The view serializes without any hit/miss field at all.
        let json = serde_json::to_string(&view).unwrap();
        assert!(!json.contains("cache"));
    }
}
