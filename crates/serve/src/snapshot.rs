//! The versioned, checksummed snapshot container (DESIGN.md §9.1).
//!
//! A [`StudySnapshot`] freezes everything the query engine needs — the
//! constructed physical map, the §4 risk artifacts, the traceroute
//! overlay, and the precomputed path index — into one artifact that loads
//! in milliseconds, where the full pipeline rebuild takes seconds.
//!
//! On disk the snapshot is a binary container:
//!
//! ```text
//! offset  size          content
//! 0       8             magic b"ITSNAP\r\n"
//! 8       8             header length H, u64 little-endian
//! 16      H             header JSON: {"schema","payload_len","checksum",
//!                       and in v2: "landmarks_len","landmarks_checksum"}
//! 16+H    payload_len   payload JSON (the StudySnapshot itself, compact)
//! …       landmarks_len landmarks JSON (v2 only; the ALT tables)
//! ```
//!
//! The header names the schema (`intertubes-snapshot/v2`; v1 containers
//! load read-only) and carries an FNV-1a 64-bit checksum per section, so
//! truncation, bit rot, and version skew are all detected before any
//! payload parsing happens. The ALT landmark tables ride in their own
//! checksummed section rather than inside the payload: v1 readers never
//! see them, and a corrupt section is reported as exactly that
//! ([`SnapshotError::SectionChecksumMismatch`]) instead of a payload
//! parse error. Both header and payload serialization are deterministic
//! (fixed key order, round-trip-stable float formatting), which gives the
//! serialization suite its byte-identical save→load→re-save guarantee.

use std::path::Path;

use intertubes_graph::Landmarks;
use intertubes_map::FiberMap;
use intertubes_probes::Overlay;
use intertubes_risk::{HammingHeatmap, RiskMatrix};
use serde::{Deserialize, Serialize};

use crate::index::PathIndex;

/// The v1 schema identifier: payload only, no landmarks section. Still
/// accepted read-only by [`StudySnapshot::from_bytes`].
pub const SNAPSHOT_SCHEMA: &str = "intertubes-snapshot/v1";

/// The v2 schema identifier: payload plus a checksummed landmarks
/// section. Written whenever a snapshot carries landmark tables.
pub const SNAPSHOT_SCHEMA_V2: &str = "intertubes-snapshot/v2";

/// The 8-byte container magic. The embedded `\r\n` catches newline-mangling
/// transports, like PNG's signature does.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"ITSNAP\r\n";

/// FNV-1a 64-bit hash — the container checksum and the cache's shard
/// selector. Stable across platforms and dependency-free.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Everything that can go wrong loading or saving a snapshot. Each variant
/// names the layer that failed, mirroring the per-crate error enums of the
/// workspace taxonomy; `intertubes::IntertubesError::Snapshot` wraps this
/// for the CLI's data-error exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// Filesystem read/write failure.
    Io(String),
    /// The file ends before the declared structure does.
    Truncated {
        /// Bytes the structure requires.
        needed: usize,
        /// Bytes actually present.
        have: usize,
    },
    /// The first 8 bytes are not the snapshot magic.
    BadMagic,
    /// The header is not the expected JSON object.
    BadHeader(String),
    /// The header's schema does not match [`SNAPSHOT_SCHEMA`].
    WrongSchema {
        /// The schema string found in the header.
        found: String,
    },
    /// The payload checksum does not match the header's.
    ChecksumMismatch {
        /// Checksum the header declares (hex).
        expected: String,
        /// Checksum of the payload as read (hex).
        found: String,
    },
    /// The payload passed the checksum but failed to parse or serialize.
    Payload(String),
    /// A named v2 section's checksum does not match the header's.
    SectionChecksumMismatch {
        /// Which section failed (e.g. `"landmarks"`).
        section: &'static str,
        /// Checksum the header declares (hex).
        expected: String,
        /// Checksum of the section as read (hex).
        found: String,
    },
    /// A named v2 section passed its checksum but failed to parse.
    BadSection {
        /// Which section failed (e.g. `"landmarks"`).
        section: &'static str,
        /// The parse error.
        error: String,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::Truncated { needed, have } => {
                write!(f, "snapshot truncated: need {needed} bytes, have {have}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            SnapshotError::BadHeader(e) => write!(f, "snapshot header malformed: {e}"),
            SnapshotError::WrongSchema { found } => write!(
                f,
                "snapshot schema {found:?} is not supported (expected \
                 {SNAPSHOT_SCHEMA_V2:?} or {SNAPSHOT_SCHEMA:?})"
            ),
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot payload corrupt: checksum {found} != declared {expected}"
            ),
            SnapshotError::Payload(e) => write!(f, "snapshot payload malformed: {e}"),
            SnapshotError::SectionChecksumMismatch {
                section,
                expected,
                found,
            } => write!(
                f,
                "snapshot {section} section corrupt: checksum {found} != declared {expected}"
            ),
            SnapshotError::BadSection { section, error } => {
                write!(f, "snapshot {section} section malformed: {error}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

impl SnapshotError {
    /// Classifies the failure for the retry machinery (DESIGN.md §11):
    /// I/O errors are transient (an open/read may succeed on retry);
    /// everything structural — truncation, bad magic, checksum or schema
    /// mismatches, parse failures — is fatal for the file that produced
    /// it, and the loader moves on to a salvage candidate instead of
    /// retrying.
    pub fn class(&self) -> crate::chaos::FaultClass {
        match self {
            SnapshotError::Io(_) => crate::chaos::FaultClass::Transient,
            _ => crate::chaos::FaultClass::Fatal,
        }
    }
}

/// Byte extents of a container's sections, used by the chaos layer to aim
/// bit-flips at a named section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SectionBounds {
    /// The header JSON: `[start, end)`.
    pub header: (usize, usize),
    /// The payload JSON: `[start, end)`.
    pub payload: (usize, usize),
    /// The v2 landmarks section, when the header declares one.
    pub landmarks: Option<(usize, usize)>,
}

/// Best-effort section extents of `bytes`, without validating checksums.
/// Extents are clamped to the buffer, so they are always safe to index;
/// returns `None` when the container is too mangled to even locate its
/// header.
pub fn section_bounds(bytes: &[u8]) -> Option<SectionBounds> {
    if bytes.len() < 16 || &bytes[..8] != SNAPSHOT_MAGIC {
        return None;
    }
    let mut len8 = [0u8; 8];
    len8.copy_from_slice(&bytes[8..16]);
    let header_len = u64::from_le_bytes(len8) as usize;
    let header_end = 16usize.saturating_add(header_len).min(bytes.len());
    let header_text = std::str::from_utf8(&bytes[16..header_end]).ok()?;
    let header: serde_json::Value = serde_json::from_str(header_text).ok()?;
    let payload_len = header.get("payload_len").and_then(|v| v.as_u64())? as usize;
    let payload_end = header_end.saturating_add(payload_len).min(bytes.len());
    let landmarks = header
        .get("landmarks_len")
        .and_then(|v| v.as_u64())
        .map(|len| {
            (
                payload_end,
                payload_end.saturating_add(len as usize).min(bytes.len()),
            )
        })
        .filter(|(start, end)| end > start);
    Some(SectionBounds {
        header: (16, header_end),
        payload: (header_end, payload_end),
        landmarks,
    })
}

/// A frozen study: everything the serving layer answers queries from.
///
/// The configuration rides along as an opaque JSON value (not a typed
/// `StudyConfig` — that would invert the crate dependency), so `query
/// config` can echo the provenance of a snapshot without this crate
/// knowing the config's shape.
#[derive(Debug, Clone)]
pub struct StudySnapshot {
    /// The study configuration that produced this snapshot, as JSON.
    pub config: serde_json::Value,
    /// The constructed physical map (§2–3).
    pub map: FiberMap,
    /// The tracked provider roster, in roster order.
    pub isps: Vec<String>,
    /// The §4.1 risk matrix over `map` × `isps`.
    pub risk: RiskMatrix,
    /// The §4.2 Hamming similarity heat map.
    pub hamming: HammingHeatmap,
    /// The §4.3 traceroute overlay.
    pub overlay: Overlay,
    /// Precomputed k-shortest-path index (§5.3 latency queries and cut
    /// what-ifs).
    pub paths: PathIndex,
    /// ALT landmark tables over the conduit graph, frozen so the serving
    /// layer's live searches start pruned without a rebuild.
    ///
    /// Not part of the payload JSON: the tables travel in their own
    /// checksummed v2 container section. `None` after loading a v1
    /// container (the engine rebuilds them deterministically).
    pub landmarks: Option<Landmarks>,
}

// Serialization is hand-written (not derived) so `landmarks` stays out of
// the payload JSON: the tables travel in the container's own checksummed
// section, and the payload bytes stay identical whether or not landmarks
// are attached (v1 read-compat depends on this).
impl Serialize for StudySnapshot {
    fn to_json_value(&self) -> serde::Value {
        let mut map = serde::Map::new();
        map.insert("config".into(), self.config.to_json_value());
        map.insert("map".into(), self.map.to_json_value());
        map.insert("isps".into(), self.isps.to_json_value());
        map.insert("risk".into(), self.risk.to_json_value());
        map.insert("hamming".into(), self.hamming.to_json_value());
        map.insert("overlay".into(), self.overlay.to_json_value());
        map.insert("paths".into(), self.paths.to_json_value());
        serde::Value::Object(map)
    }
}

impl Deserialize for StudySnapshot {
    fn from_json_value(value: &serde::Value) -> Result<Self, serde::Error> {
        let obj = value.as_object().ok_or_else(|| {
            serde::Error::custom(format!("expected object for StudySnapshot, got {value:?}"))
        })?;
        Ok(StudySnapshot {
            config: serde::__get_field(obj, "config", "StudySnapshot")?,
            map: serde::__get_field(obj, "map", "StudySnapshot")?,
            isps: serde::__get_field(obj, "isps", "StudySnapshot")?,
            risk: serde::__get_field(obj, "risk", "StudySnapshot")?,
            hamming: serde::__get_field(obj, "hamming", "StudySnapshot")?,
            overlay: serde::__get_field(obj, "overlay", "StudySnapshot")?,
            paths: serde::__get_field(obj, "paths", "StudySnapshot")?,
            landmarks: None,
        })
    }
}

impl StudySnapshot {
    /// Serializes to the container format: v2 when landmark tables are
    /// present, v1 otherwise. Deterministic: the same snapshot always
    /// yields the same bytes.
    pub fn to_bytes(&self) -> Result<Vec<u8>, SnapshotError> {
        let payload = serde_json::to_string(self).map_err(|e| SnapshotError::Payload(e.to_string()))?;
        let checksum = fnv1a64(payload.as_bytes());
        // Headers are assembled by hand so their key order is fixed by
        // these lines, not by a map implementation.
        let (header, landmarks) = match &self.landmarks {
            Some(lm) => {
                let section = serde_json::to_string(lm).map_err(|e| SnapshotError::BadSection {
                    section: "landmarks",
                    error: e.to_string(),
                })?;
                let section_sum = fnv1a64(section.as_bytes());
                let header = format!(
                    "{{\"schema\":\"{SNAPSHOT_SCHEMA_V2}\",\"payload_len\":{},\"checksum\":\"{checksum:016x}\",\"landmarks_len\":{},\"landmarks_checksum\":\"{section_sum:016x}\"}}",
                    payload.len(),
                    section.len()
                );
                (header, Some(section))
            }
            None => (
                format!(
                    "{{\"schema\":\"{SNAPSHOT_SCHEMA}\",\"payload_len\":{},\"checksum\":\"{checksum:016x}\"}}",
                    payload.len()
                ),
                None,
            ),
        };
        let lm_len = landmarks.as_ref().map_or(0, |s| s.len());
        let mut out = Vec::with_capacity(16 + header.len() + payload.len() + lm_len);
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&(header.len() as u64).to_le_bytes());
        out.extend_from_slice(header.as_bytes());
        out.extend_from_slice(payload.as_bytes());
        if let Some(section) = landmarks {
            out.extend_from_slice(section.as_bytes());
        }
        Ok(out)
    }

    /// Parses a container, validating magic, header, schema, and checksum
    /// before touching the payload.
    pub fn from_bytes(bytes: &[u8]) -> Result<StudySnapshot, SnapshotError> {
        if bytes.len() < 16 {
            return Err(SnapshotError::Truncated {
                needed: 16,
                have: bytes.len(),
            });
        }
        if &bytes[..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let mut len8 = [0u8; 8];
        len8.copy_from_slice(&bytes[8..16]);
        let header_len = u64::from_le_bytes(len8) as usize;
        let header_end = 16usize.saturating_add(header_len);
        if bytes.len() < header_end {
            return Err(SnapshotError::Truncated {
                needed: header_end,
                have: bytes.len(),
            });
        }
        let header_text = std::str::from_utf8(&bytes[16..header_end])
            .map_err(|e| SnapshotError::BadHeader(e.to_string()))?;
        let header: serde_json::Value = serde_json::from_str(header_text)
            .map_err(|e| SnapshotError::BadHeader(e.to_string()))?;
        let schema = header
            .get("schema")
            .and_then(|v| v.as_str())
            .ok_or_else(|| SnapshotError::BadHeader("missing \"schema\"".into()))?;
        if schema != SNAPSHOT_SCHEMA && schema != SNAPSHOT_SCHEMA_V2 {
            return Err(SnapshotError::WrongSchema {
                found: schema.to_string(),
            });
        }
        let payload_len = header
            .get("payload_len")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| SnapshotError::BadHeader("missing \"payload_len\"".into()))?
            as usize;
        let expected = header
            .get("checksum")
            .and_then(|v| v.as_str())
            .ok_or_else(|| SnapshotError::BadHeader("missing \"checksum\"".into()))?;
        let payload_end = header_end.saturating_add(payload_len);
        if bytes.len() < payload_end {
            return Err(SnapshotError::Truncated {
                needed: payload_end,
                have: bytes.len(),
            });
        }
        let payload = &bytes[header_end..payload_end];
        let found = format!("{:016x}", fnv1a64(payload));
        if found != expected {
            return Err(SnapshotError::ChecksumMismatch {
                expected: expected.to_string(),
                found,
            });
        }
        let text = std::str::from_utf8(payload)
            .map_err(|e| SnapshotError::Payload(e.to_string()))?;
        let mut snap: StudySnapshot =
            serde_json::from_str(text).map_err(|e| SnapshotError::Payload(e.to_string()))?;
        if schema == SNAPSHOT_SCHEMA_V2 {
            snap.landmarks = Some(Self::parse_landmarks(bytes, &header, payload_end)?);
        }
        Ok(snap)
    }

    /// Validates and parses the v2 landmarks section, whose extent and
    /// checksum the header declares.
    fn parse_landmarks(
        bytes: &[u8],
        header: &serde_json::Value,
        section_start: usize,
    ) -> Result<Landmarks, SnapshotError> {
        let section_len = header
            .get("landmarks_len")
            .and_then(|v| v.as_u64())
            .ok_or_else(|| SnapshotError::BadHeader("missing \"landmarks_len\"".into()))?
            as usize;
        let expected = header
            .get("landmarks_checksum")
            .and_then(|v| v.as_str())
            .ok_or_else(|| SnapshotError::BadHeader("missing \"landmarks_checksum\"".into()))?;
        let section_end = section_start.saturating_add(section_len);
        if bytes.len() < section_end {
            return Err(SnapshotError::Truncated {
                needed: section_end,
                have: bytes.len(),
            });
        }
        let section = &bytes[section_start..section_end];
        let found = format!("{:016x}", fnv1a64(section));
        if found != expected {
            return Err(SnapshotError::SectionChecksumMismatch {
                section: "landmarks",
                expected: expected.to_string(),
                found,
            });
        }
        let text = std::str::from_utf8(section).map_err(|e| SnapshotError::BadSection {
            section: "landmarks",
            error: e.to_string(),
        })?;
        serde_json::from_str(text).map_err(|e| SnapshotError::BadSection {
            section: "landmarks",
            error: e.to_string(),
        })
    }

    /// Writes the container to `path` **crash-safely**: the bytes go to
    /// `<path>.tmp` first, are fsynced and verified by re-read, the
    /// previous file (if any) is preserved as `<path>.bak`, and only then
    /// does an atomic rename publish the new file. A crash at any point
    /// leaves a loadable snapshot on disk (old or new, never torn) — see
    /// [`crate::chaos::save_with`] for the full protocol and the
    /// fault-injected variant.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        crate::chaos::save_with(
            &crate::chaos::RealIo,
            self,
            path.as_ref(),
            &crate::chaos::RetryPolicy::lenient(),
        )
        .map(|_| ())
        .map_err(|e| e.into_snapshot_error())
    }

    /// Reads a container from `path`, salvaging `<path>.tmp` (a completed
    /// but unpublished save) or `<path>.bak` (the previous good snapshot)
    /// when the primary file is corrupt or missing — see
    /// [`crate::chaos::load_with`].
    pub fn load(path: impl AsRef<Path>) -> Result<StudySnapshot, SnapshotError> {
        crate::chaos::load_with(
            &crate::chaos::RealIo,
            path.as_ref(),
            &crate::chaos::RetryPolicy::lenient(),
        )
        .map(|report| report.snapshot)
        .map_err(|e| e.into_snapshot_error())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn short_inputs_are_truncated_not_panics() {
        for n in 0..16 {
            let bytes = vec![0u8; n];
            assert!(matches!(
                StudySnapshot::from_bytes(&bytes),
                Err(SnapshotError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let mut bytes = vec![0u8; 32];
        bytes[..8].copy_from_slice(b"NOTSNAP!");
        assert!(matches!(
            StudySnapshot::from_bytes(&bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn huge_header_length_is_truncation_not_overflow() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(SNAPSHOT_MAGIC);
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            StudySnapshot::from_bytes(&bytes),
            Err(SnapshotError::Truncated { .. })
        ));
    }
}
