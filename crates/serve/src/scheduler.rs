//! The batch scheduler: bounded queue, admission control, deadline
//! accounting (DESIGN.md §9.5).
//!
//! A workload is served in FIFO **waves** of at most `queue_capacity`
//! queries — the bounded queue. Admission control caps the total number
//! of admitted queries at `admit_max`; everything beyond that position
//! receives a [`Response::Rejected`] instead of being dropped (the
//! backpressure signal). Both decisions are functions of queue *position*
//! only, never of timing, so the response vector is deterministic.
//!
//! Within a wave the schedule is decide–compute–assemble:
//!
//! 1. **decide** (serial): compute each query's snapshot-scoped canonical
//!    key, consult the cache, and deduplicate identical keys within the
//!    wave;
//! 2. **compute** (parallel): answer the unique missing queries via
//!    `par_map`, which preserves input order;
//! 3. **assemble** (serial): fill the response vector in queue order and
//!    populate the cache.
//!
//! Because the engine is pure and the cache is only read/written in the
//! serial phases, responses are byte-identical at any thread count and
//! with the cache on or off. Wall-clock measurements (per-query latency,
//! deadline overruns) feed the stats and obs metrics only — they never
//! influence a response.
//!
//! Under an active [`ChaosSession`] ([`run_batch_chaos`]) the wave loop
//! gains two serial chaos hooks — cache poisoning and overload bursts —
//! and a graceful-degradation tier: an overloaded wave is shed
//! **deterministically by queue position** into
//! [`Response::Degraded`] answers (stale-cache-served under the lenient
//! policy), never silently dropped. Chaos decisions only happen in the
//! serial phases, so the chaos determinism contract holds: same plan +
//! seed ⇒ byte-identical responses, ledger, and health trace at any
//! thread count.

use std::collections::HashMap;
use std::time::Instant;

use intertubes_parallel::par_map;
use serde::{Deserialize, Serialize};

use crate::cache::{CacheConfig, ResultCache};
use crate::chaos::{ChaosReport, ChaosSession, Health, HealthTrace};
use crate::engine::QueryEngine;
use crate::query::{key_hash, scoped_key, Query, Response};
use crate::telemetry::{CacheOutcome, QueryFamily, ServeTelemetry};

/// Scheduler knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServeConfig {
    /// Wave size — the bounded queue's capacity (≥ 1).
    pub queue_capacity: usize,
    /// Admission limit: queries past this position are rejected.
    pub admit_max: usize,
    /// Per-query latency deadline in µs (0 = no deadline); overruns are
    /// counted, never dropped.
    pub deadline_us: u64,
    /// Result-cache shape.
    pub cache: CacheConfig,
    /// Flight-recorder window (events retained) when telemetry is
    /// attached; see [`crate::telemetry::ServeTelemetry`].
    pub flight_capacity: usize,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            queue_capacity: 256,
            admit_max: usize::MAX,
            deadline_us: 0,
            cache: CacheConfig::default(),
            flight_capacity: crate::telemetry::DEFAULT_FLIGHT_CAPACITY,
        }
    }
}

/// What one batch run measured. Latency fields are wall-clock and vary
/// run to run; everything else is deterministic for a given workload and
/// config.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeStats {
    /// Queries submitted.
    pub queries: usize,
    /// Queries admitted past admission control.
    pub admitted: usize,
    /// Queries rejected (backpressure).
    pub rejected: usize,
    /// Admitted queries answered from the cache.
    pub cache_hits: usize,
    /// Admitted queries that missed the cache.
    pub cache_misses: usize,
    /// `hits / (hits + misses)`, 0 when nothing was admitted.
    pub hit_rate: f64,
    /// Median per-query service latency, µs.
    pub p50_us: u64,
    /// 99th-percentile per-query service latency, µs.
    pub p99_us: u64,
    /// Deepest wave actually queued.
    pub max_queue_depth: usize,
    /// Waves processed.
    pub waves: usize,
    /// Admitted queries whose service latency exceeded the deadline.
    pub deadline_overruns: usize,
    /// Queries shed into degraded responses under injected overload.
    pub degraded: usize,
    /// Degraded responses that carried a stale cached answer (lenient
    /// policy only).
    pub stale_served: usize,
    /// Whole-batch wall time, ms.
    pub wall_ms: f64,
}

/// How one admitted wave slot resolves.
enum Slot {
    /// Cache hit: the stored bytes, plus the lookup latency in µs.
    Hit(String, u64),
    /// Computed: index into the wave's unique-compute list.
    Compute(usize),
    /// Shed under injected overload: the degraded response bytes, plus
    /// the (stale-)lookup latency in µs.
    Shed(String, u64),
    /// [`Query::Stats`] answered from the wave-start telemetry snapshot
    /// (serial, never cached, never deduplicated — the answer depends on
    /// serving history, not the snapshot, so caching it would serve stale
    /// counts and break cache-on/off byte identity).
    Stats(String, u64),
}

/// What the telemetry sink needs to know about a slot at assemble time.
struct SlotMeta {
    family: QueryFamily,
    key_hash: u64,
    outcome: CacheOutcome,
}

/// Serves `queries` against `engine`, returning one canonical-JSON
/// response per query (in input order) and the batch stats.
///
/// The cache is caller-owned so it can persist across batches; pass a
/// fresh one for a cold run. The responses are byte-identical at any
/// thread count and for any cache state, enabled or disabled.
pub fn run_batch(
    engine: &QueryEngine,
    queries: &[Query],
    cfg: &ServeConfig,
    cache: &ResultCache,
) -> (Vec<String>, ServeStats) {
    let (responses, stats, _) = serve_batch(engine, queries, cfg, cache, None, None);
    (responses, stats)
}

/// [`run_batch`] with a telemetry sink attached: the count plane, timing
/// plane, and flight recorder observe every wave (DESIGN.md §13).
/// Telemetry observation never changes a response byte — the sink is
/// write-only from the scheduler's serial phases.
pub fn run_batch_telemetry(
    engine: &QueryEngine,
    queries: &[Query],
    cfg: &ServeConfig,
    cache: &ResultCache,
    telemetry: &ServeTelemetry,
) -> (Vec<String>, ServeStats) {
    let (responses, stats, _) = serve_batch(engine, queries, cfg, cache, None, Some(telemetry));
    (responses, stats)
}

/// [`run_batch_chaos`] with a telemetry sink: additionally dumps the
/// flight recorder on injected faults and whenever the health machine
/// leaves `Ready`.
pub fn run_batch_chaos_telemetry(
    engine: &QueryEngine,
    queries: &[Query],
    cfg: &ServeConfig,
    cache: &ResultCache,
    chaos: &ChaosSession,
    telemetry: &ServeTelemetry,
) -> (Vec<String>, ServeStats, ChaosReport) {
    serve_batch(engine, queries, cfg, cache, Some(chaos), Some(telemetry))
}

/// [`run_batch`] under an active chaos session: the wave loop consults
/// the session's overload/poison hooks (serial phases only) and the
/// returned [`ChaosReport`] carries the injection ledger, health trace,
/// and degradation counts — the byte-compared chaos artifact.
pub fn run_batch_chaos(
    engine: &QueryEngine,
    queries: &[Query],
    cfg: &ServeConfig,
    cache: &ResultCache,
    chaos: &ChaosSession,
) -> (Vec<String>, ServeStats, ChaosReport) {
    serve_batch(engine, queries, cfg, cache, Some(chaos), None)
}

/// The shared wave loop behind [`run_batch`] and [`run_batch_chaos`].
fn serve_batch(
    engine: &QueryEngine,
    queries: &[Query],
    cfg: &ServeConfig,
    cache: &ResultCache,
    chaos: Option<&ChaosSession>,
    telemetry: Option<&ServeTelemetry>,
) -> (Vec<String>, ServeStats, ChaosReport) {
    let t0 = Instant::now();
    let mut stage = intertubes_obs::stage("serve.schedule");
    stage.items("queries", queries.len());
    let queue_capacity = cfg.queue_capacity.max(1);
    let admitted = queries.len().min(cfg.admit_max);
    let mut responses = vec![String::new(); queries.len()];

    // Admission control: position-based, so rejection is deterministic.
    let rejected_json = Response::Rejected {
        reason: format!("admission limit {} reached", cfg.admit_max),
    }
    .to_canonical_json();
    for slot in responses.iter_mut().skip(admitted) {
        *slot = rejected_json.clone();
    }
    let rejected = queries.len() - admitted;
    intertubes_obs::counter("serve.rejected", rejected as u64);
    if let Some(t) = telemetry {
        t.note_admission(queries.len() as u64, admitted as u64, rejected as u64);
    }

    let lenient = chaos.map_or(true, |c| !c.policy().is_strict());
    let mut latencies: Vec<u64> = Vec::with_capacity(admitted);
    let mut cache_hits = 0usize;
    let mut cache_misses = 0usize;
    let mut deadline_overruns = 0usize;
    let mut max_queue_depth = 0usize;
    let mut waves = 0usize;
    let mut degraded = 0usize;
    let mut stale_served = 0usize;
    // Health state as observed after the previous wave — the flight
    // recorder dumps whenever the machine leaves `Ready`.
    let mut prev_health = Health::Ready;

    let mut wave_start = 0usize;
    while wave_start < admitted {
        let wave_end = (wave_start + queue_capacity).min(admitted);
        let depth = wave_end - wave_start;
        waves += 1;
        max_queue_depth = max_queue_depth.max(depth);
        intertubes_obs::gauge("serve.queue_depth", depth as i64);
        if let Some(t) = telemetry {
            t.note_wave_start(depth as u64);
        }

        // Chaos hooks (serial, before any lookup): poison a cache shard,
        // then decide whether an overload burst sheds this wave's tail.
        // Both are functions of (plan, seed, wave) — never of timing.
        let mut wave_injected = false;
        let mut shed_from: Option<usize> = None;
        if let Some(session) = chaos {
            if session.poison_cache(waves as u64, cache) > 0 {
                wave_injected = true;
            }
            shed_from = session.overload_burst(waves as u64, depth);
            if shed_from.is_some() {
                wave_injected = true;
            }
        }

        // Phase 1 — decide (serial): cache lookups and in-wave dedup.
        let mut slots: Vec<Slot> = Vec::with_capacity(depth);
        let mut metas: Vec<SlotMeta> = Vec::with_capacity(depth);
        // Unique computations: (canonical key, index of first query).
        let mut unique: Vec<(String, usize)> = Vec::new();
        let mut pending: HashMap<String, usize> = HashMap::new();
        // Stats answers snapshot the count plane **as of wave start**
        // (everything recorded through the previous wave), rendered once
        // per wave — identical for every Stats query in the wave, and
        // independent of the cache mode.
        let mut wave_stats_json: Option<String> = None;
        for qi in wave_start..wave_end {
            let query = &queries[qi];
            let family = QueryFamily::of(query);
            // Cache keys are scoped by the engine's snapshot id so a
            // registry serving several snapshots through one shared cache
            // never aliases identical queries across worlds.
            let key = scoped_key(engine.snapshot_id(), query);
            let khash = key_hash(&key);
            // Graceful-degradation tier: shed by queue position. Never a
            // silent drop — the query gets a Degraded response, with the
            // stale cached answer attached under the lenient policy.
            if let Some(sf) = shed_from {
                if qi - wave_start >= sf {
                    let lookup_t0 = Instant::now();
                    let stale = if lenient { cache.get(&key) } else { None };
                    if stale.is_some() {
                        stale_served += 1;
                        if let Some(t) = telemetry {
                            t.note_stale_served();
                        }
                    }
                    degraded += 1;
                    let json = Response::Degraded {
                        reason: format!("overload burst: wave {waves} shed from position {sf}"),
                        stale,
                    }
                    .to_canonical_json();
                    slots.push(Slot::Shed(json, lookup_t0.elapsed().as_micros() as u64));
                    metas.push(SlotMeta {
                        family,
                        key_hash: khash,
                        outcome: CacheOutcome::Shed,
                    });
                    continue;
                }
            }
            // Stats self-queries bypass the cache *and* dedup: the answer
            // depends on serving history, so caching would serve stale
            // counts and make responses diverge across cache modes.
            if matches!(query, Query::Stats) {
                let lookup_t0 = Instant::now();
                let json = wave_stats_json
                    .get_or_insert_with(|| {
                        let view = telemetry
                            .map(|t| t.stats_view())
                            .unwrap_or_else(|| engine.stats_view());
                        Response::Stats(view).to_canonical_json()
                    })
                    .clone();
                slots.push(Slot::Stats(json, lookup_t0.elapsed().as_micros() as u64));
                metas.push(SlotMeta {
                    family,
                    key_hash: khash,
                    outcome: CacheOutcome::Stats,
                });
                continue;
            }
            let lookup_t0 = Instant::now();
            if let Some(hit) = cache.get(&key) {
                cache_hits += 1;
                slots.push(Slot::Hit(hit, lookup_t0.elapsed().as_micros() as u64));
                metas.push(SlotMeta {
                    family,
                    key_hash: khash,
                    outcome: CacheOutcome::Hit,
                });
                continue;
            }
            cache_misses += 1;
            // Dedup only matters when the cache is on; with it off, every
            // query computes individually (the honest cache-off cost).
            let slot = if cfg.cache.enabled {
                *pending.entry(key.clone()).or_insert_with(|| {
                    unique.push((key, qi));
                    unique.len() - 1
                })
            } else {
                unique.push((key, qi));
                unique.len() - 1
            };
            slots.push(Slot::Compute(slot));
            metas.push(SlotMeta {
                family,
                key_hash: khash,
                outcome: CacheOutcome::Miss,
            });
        }

        // Phase 2 — compute (parallel, order-preserving): answer unique
        // misses. Workers touch neither the cache nor the responses.
        let computed: Vec<(String, u64)> = par_map(&unique, |(_, qi)| {
            let q_t0 = Instant::now();
            let json = engine.answer(&queries[*qi]).to_canonical_json();
            (json, q_t0.elapsed().as_micros() as u64)
        });

        // Phase 3 — assemble (serial): fill responses in queue order,
        // populate the cache, account latencies and telemetry.
        for (offset, (slot, meta)) in slots.into_iter().zip(metas).enumerate() {
            let qi = wave_start + offset;
            let us = match slot {
                Slot::Hit(json, us) => {
                    responses[qi] = json;
                    us
                }
                Slot::Compute(c) => {
                    let (json, us) = &computed[c];
                    responses[qi] = json.clone();
                    *us
                }
                Slot::Shed(json, us) | Slot::Stats(json, us) => {
                    responses[qi] = json;
                    us
                }
            };
            latencies.push(us);
            intertubes_obs::histogram("serve.latency_us", us);
            if cfg.deadline_us > 0 && us > cfg.deadline_us {
                deadline_overruns += 1;
                intertubes_obs::counter("serve.deadline_overruns", 1);
            }
            if let Some(t) = telemetry {
                t.record(
                    waves as u64,
                    meta.family,
                    meta.key_hash,
                    meta.outcome,
                    &responses[qi],
                    us,
                    cfg.deadline_us,
                );
            }
        }
        for ((key, _), (json, _)) in unique.iter().zip(&computed) {
            cache.insert(key, json);
        }
        if let Some(session) = chaos {
            session.end_wave(waves as u64, wave_injected);
        }
        if let Some(t) = telemetry {
            t.note_wave_complete();
            // Flight-recorder triggers (serial, after the wave's events
            // are recorded): an injected fault, and any departure from
            // `Ready` — both functions of (plan, seed, wave), never of
            // timing.
            if wave_injected {
                t.dump_flight("fault_injected", waves as u64);
            }
            if let Some(session) = chaos {
                let health = session.health();
                if health != prev_health {
                    if health != Health::Ready {
                        t.dump_flight(
                            &format!("health:{}", health.label()),
                            waves as u64,
                        );
                    }
                    prev_health = health;
                }
            }
        }

        wave_start = wave_end;
    }

    intertubes_obs::counter("serve.cache_hits", cache_hits as u64);
    intertubes_obs::counter("serve.cache_misses", cache_misses as u64);
    intertubes_obs::counter("serve.degraded", degraded as u64);
    intertubes_obs::counter("serve.stale_served", stale_served as u64);

    latencies.sort_unstable();
    let quantile = |q: f64| -> u64 {
        if latencies.is_empty() {
            return 0;
        }
        let idx = ((q * (latencies.len() - 1) as f64).round() as usize).min(latencies.len() - 1);
        latencies[idx]
    };
    let stats = ServeStats {
        queries: queries.len(),
        admitted,
        rejected,
        cache_hits,
        cache_misses,
        hit_rate: cache_hits as f64 / (cache_hits + cache_misses).max(1) as f64,
        p50_us: quantile(0.5),
        p99_us: quantile(0.99),
        max_queue_depth,
        waves,
        deadline_overruns,
        degraded,
        stale_served,
        wall_ms: t0.elapsed().as_secs_f64() * 1e3,
    };

    let report = match chaos {
        Some(session) => {
            session.drain(waves as u64);
            let mut report = session.report();
            report.degraded = degraded;
            report.stale_served = stale_served;
            report.cache_poison_detected = cache.poisoned_detected();
            report
        }
        None => {
            // No chaos session: the health machine still runs its
            // lifecycle (Ready → Draining) so clean serves surface a
            // health trace too.
            let mut health = HealthTrace::new();
            health.drain(waves as u64);
            ChaosReport {
                ledger: intertubes_faults::InjectionLedger::new(),
                transitions: health.transitions().to_vec(),
                final_health: health.state(),
                virtual_stall_us: 0,
                degraded,
                stale_served,
                cache_poison_detected: cache.poisoned_detected(),
                load_attempts: 0,
                load_backoff_us: 0,
                salvaged_from: None,
            }
        }
    };
    if let Some(t) = telemetry {
        t.set_health_transitions(report.transitions.len() as u64);
        // The drain capture: the final flight window every run gets,
        // chaotic or clean.
        t.dump_flight("drain", waves as u64);
    }
    stage.items("waves", waves);
    stage.items("admitted", admitted);
    if degraded > 0 {
        stage.degraded();
    }
    drop(stage);
    (responses, stats, report)
}
