//! The serving layer: frozen study snapshots and a cached what-if query
//! engine (DESIGN.md §9).
//!
//! The batch pipeline answers one question per multi-second run; the
//! ROADMAP's north star is many cheap questions against prebuilt state.
//! This crate splits the two concerns:
//!
//! * [`snapshot`] — the versioned, checksummed container
//!   (`intertubes-snapshot/v2`, with v1 read-compat) that freezes a built
//!   study: physical map, risk matrix, Hamming heat map, traceroute
//!   overlay, the precomputed [`index::PathIndex`], and the ALT landmark
//!   tables for the live search path;
//! * [`engine`] — a pure query engine answering typed [`query::Query`]
//!   requests (per-provider risk, similarity, pair latency, top-shared
//!   rankings, conduit-cut what-ifs, and geofenced scenario ensembles
//!   via `intertubes_scenario`) from the snapshot alone;
//! * [`cache`] — a sharded LRU over canonical query keys, with per-entry
//!   checksums that turn silent corruption into deterministic misses;
//! * [`scheduler`] — bounded-queue wave scheduling with admission
//!   control, deadline accounting, and obs metrics;
//! * [`telemetry`] — the serving telemetry plane (DESIGN.md §13): a
//!   deterministic, mergeable **count plane**, a wall-clock **timing
//!   plane** excluded from every canonical digest, and a bounded flight
//!   recorder of recent query events;
//! * [`tenant`] — per-tenant token-bucket admission quotas enforced by
//!   the remote front-end (`intertubes-net`) ahead of queue-position
//!   admission, ticking in request-count time so decisions are
//!   interleaving-independent (DESIGN.md §14.4);
//! * [`chaos`] — runtime fault injection (`ChaosSession` over the
//!   `FaultPlan` runtime families), crash-safe snapshot persistence
//!   (temp-write → verify → fsync → atomic rename, with `.tmp`/`.bak`
//!   salvage), deterministic virtual retry/backoff, and the
//!   `Ready`/`Degraded`/`Draining` health machine (DESIGN.md §11).
//!
//! The whole stack extends the workspace determinism contract: for a
//! fixed snapshot and workload, the response vector is **byte-identical
//! at any thread count and with the cache enabled or disabled** —
//! `tests/serve.rs` and `scripts/serve_gate.sh` enforce it.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod chaos;
pub mod engine;
pub mod index;
pub mod query;
pub mod scheduler;
pub mod snapshot;
pub mod telemetry;
pub mod tenant;
pub mod workload;

pub use cache::{CacheConfig, CacheStats, ResultCache, ShardStats};
pub use chaos::{
    load_with, save_with, ChaosReport, ChaosSession, FaultClass, Health, HealthTrace,
    HealthTransition, LoadReport, RealIo, RetryPolicy, SaveReport, ServeError, SnapshotIo,
};
pub use engine::QueryEngine;
pub use index::{build_landmarks, PairPaths, PathIndex, PathSummary};
pub use query::{canonical_key, key_hash, normalize, scoped_key, Query, Response, StatsView};
pub use scheduler::{
    run_batch, run_batch_chaos, run_batch_chaos_telemetry, run_batch_telemetry, ServeConfig,
    ServeStats,
};
pub use telemetry::{
    canonicalize_stats, duration_bucket, response_kind, CacheOutcome, CountPlane, FlightDump,
    FlightEvent, FlightRecorder, QueryFamily, ServeTelemetry, TenantCounts, TimingPlane,
    DEFAULT_FLIGHT_CAPACITY, MAX_FLIGHT_DUMPS, NONCANONICAL_STATS_KEYS, STATS_SCHEMA,
};
pub use tenant::{quota_rejection, QuotaConfig, QuotaDecision, TenantQuotas};
pub use snapshot::{
    fnv1a64, section_bounds, SectionBounds, SnapshotError, StudySnapshot, SNAPSHOT_MAGIC,
    SNAPSHOT_SCHEMA, SNAPSHOT_SCHEMA_V2,
};
pub use workload::{mixed_workload, splitmix64};
