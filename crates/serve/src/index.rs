//! Precomputed k-shortest-path index (DESIGN.md §9.2).
//!
//! The §5.3 latency study enumerates every conduit-joined city pair and
//! runs Yen's algorithm per pair — far too expensive per query. The index
//! runs that enumeration once at freeze time and stores, per pair, the k
//! cheapest loopless conduit routes (cost plus the conduit ids each route
//! traverses) and the right-of-way / line-of-sight baselines. Latency
//! queries then reduce to a binary search, and conduit-cut what-ifs can
//! re-evaluate "best surviving route" by filtering stored routes against
//! the cut set — no graph search at query time.
//!
//! Pair enumeration, Yen fan-out, and assembly follow
//! `intertubes_mitigation::latency_study` exactly (sorted, deduplicated,
//! input-order batch results), so building the index is deterministic at
//! any thread count.

use std::collections::BTreeMap;

use intertubes_geo::fiber_delay_us;
use intertubes_graph::{
    par_yen_k_shortest_csr, CsrGraph, EdgeId, Landmarks, NodeId, DEFAULT_LANDMARK_COUNT,
};
use intertubes_map::FiberMap;
use serde::{Deserialize, Serialize};

/// Per-conduit lengths in km, hoisted once (summing a polyline's haversine
/// segments per edge relaxation was the old hot spot). Conduit `i` is edge
/// `i` of [`FiberMap::graph`], so this doubles as the edge-cost table.
pub(crate) fn conduit_km(map: &FiberMap) -> Vec<f64> {
    map.conduits
        .iter()
        .map(|c| c.geometry.length_km())
        .collect()
}

/// Builds the ALT landmark tables for `map`'s conduit graph under the km
/// cost — the tables frozen into v2 snapshots and rebuilt (bit-identical:
/// the selection is deterministic) when a v1 snapshot is served.
pub fn build_landmarks(map: &FiberMap) -> Option<Landmarks> {
    let csr = map.graph().to_csr();
    let km = conduit_km(map);
    // km costs are non-negative by construction; `None` (no pruning) is
    // the graceful fallback if that were ever violated.
    Landmarks::build(&csr, DEFAULT_LANDMARK_COUNT, |e: EdgeId| km[e.index()]).ok()
}

/// One stored route: its length and the conduits it traverses.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathSummary {
    /// Route length, km.
    pub km: f64,
    /// Map conduit ids the route traverses, in path order.
    pub conduits: Vec<u32>,
}

/// The stored routes and baselines for one conduit-joined node pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairPaths {
    /// Smaller map node id of the pair.
    pub a: u32,
    /// Larger map node id of the pair.
    pub b: u32,
    /// Up to k cheapest loopless routes, cheapest first. Empty when the
    /// pair was disconnected at freeze time.
    pub paths: Vec<PathSummary>,
    /// Best right-of-way delay, µs (§5.3 baseline).
    pub row_us: f64,
    /// Line-of-sight lower bound, µs.
    pub los_us: f64,
}

impl PairPaths {
    /// Best existing-route delay, µs.
    pub fn best_us(&self) -> Option<f64> {
        self.paths.first().map(|p| fiber_delay_us(p.km))
    }

    /// Mean delay over routes within `detour_cap` × best, µs — the §5.3
    /// "average of existing paths" series.
    pub fn avg_us(&self, detour_cap: f64) -> Option<f64> {
        let best_km = self.paths.first()?.km;
        let capped: Vec<f64> = self
            .paths
            .iter()
            .map(|p| p.km)
            .filter(|&km| km <= best_km * detour_cap)
            .collect();
        Some(fiber_delay_us(capped.iter().sum::<f64>() / capped.len() as f64))
    }

    /// Best delay over stored routes that avoid every severed conduit, µs.
    /// `severed[c]` marks conduit `c` as cut; ids beyond the slice are
    /// treated as intact. `None` when every stored route is hit — the pair
    /// has no surviving *precomputed* route (an approximation: a k+1-th
    /// route might survive, which the snapshot does not know about).
    pub fn best_surviving_us(&self, severed: &[bool]) -> Option<f64> {
        self.paths
            .iter()
            .find(|p| {
                p.conduits
                    .iter()
                    .all(|&c| !severed.get(c as usize).copied().unwrap_or(false))
            })
            .map(|p| fiber_delay_us(p.km))
    }
}

/// The frozen path index: every conduit-joined pair, sorted by
/// `(a, b)` for binary-search lookup.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathIndex {
    /// Routes stored per pair (Yen's k).
    pub k: usize,
    /// Detour cap used by the average-delay series.
    pub detour_cap: f64,
    /// Per-pair entries, sorted by `(a, b)`.
    pub pairs: Vec<PairPaths>,
}

impl PathIndex {
    /// Builds the index over every conduit-joined pair of `map`.
    ///
    /// `row_us_by_pair` supplies the §5.3 right-of-way baseline, keyed by
    /// the pair's node labels in `(a, b)` order (as `LatencyReport` emits
    /// them); pairs without an entry fall back to the line-of-sight bound.
    ///
    /// `landmarks` (from [`build_landmarks`] or a loaded snapshot) prunes
    /// the Yen spur searches; `None` builds the same index, slower.
    pub fn build(
        map: &FiberMap,
        k: usize,
        detour_cap: f64,
        row_us_by_pair: &BTreeMap<(String, String), f64>,
        landmarks: Option<&Landmarks>,
    ) -> PathIndex {
        let graph = map.graph();
        let csr: CsrGraph = graph.to_csr();
        let lengths = conduit_km(map);
        let km = |e: EdgeId| lengths[graph.edge(e).index()];

        let mut node_pairs: Vec<(u32, u32)> = map
            .conduits
            .iter()
            .map(|c| (c.a.0.min(c.b.0), c.a.0.max(c.b.0)))
            .collect();
        node_pairs.sort_unstable();
        node_pairs.dedup();

        let queries: Vec<(NodeId, NodeId)> = node_pairs
            .iter()
            .map(|&(a, b)| (NodeId(a), NodeId(b)))
            .collect();
        let yen = par_yen_k_shortest_csr(&csr, &queries, k, km, landmarks);

        let pairs = node_pairs
            .iter()
            .zip(&yen)
            .map(|(&(a, b), result)| {
                // A non-negative cost function cannot produce a graph
                // error; a failed batch entry degrades to "no routes".
                let routes = match result {
                    Ok(paths) => paths
                        .iter()
                        .map(|p| PathSummary {
                            km: p.cost,
                            conduits: p
                                .edges
                                .iter()
                                .map(|&e| graph.edge(e).index() as u32)
                                .collect(),
                        })
                        .collect(),
                    Err(_) => Vec::new(),
                };
                let node_a = &map.nodes[a as usize];
                let node_b = &map.nodes[b as usize];
                let los_us = fiber_delay_us(node_a.location.distance_km(&node_b.location));
                let row_us = row_us_by_pair
                    .get(&(node_a.label.clone(), node_b.label.clone()))
                    .copied()
                    .unwrap_or(los_us);
                PairPaths {
                    a,
                    b,
                    paths: routes,
                    row_us,
                    los_us,
                }
            })
            .collect();
        PathIndex {
            k,
            detour_cap,
            pairs,
        }
    }

    /// Looks up the entry for a node pair (order-insensitive).
    pub fn lookup(&self, a: u32, b: u32) -> Option<&PairPaths> {
        let key = (a.min(b), a.max(b));
        self.pairs
            .binary_search_by_key(&key, |p| (p.a, p.b))
            .ok()
            .map(|i| &self.pairs[i])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(a: u32, b: u32, kms: &[(f64, &[u32])]) -> PairPaths {
        PairPaths {
            a,
            b,
            paths: kms
                .iter()
                .map(|&(km, cs)| PathSummary {
                    km,
                    conduits: cs.to_vec(),
                })
                .collect(),
            row_us: 1.0,
            los_us: 1.0,
        }
    }

    fn index() -> PathIndex {
        PathIndex {
            k: 4,
            detour_cap: 3.0,
            pairs: vec![
                entry(0, 1, &[(100.0, &[0]), (250.0, &[1, 2])]),
                entry(0, 2, &[]),
                entry(1, 2, &[(50.0, &[2])]),
            ],
        }
    }

    #[test]
    fn lookup_is_order_insensitive() {
        let idx = index();
        assert_eq!(idx.lookup(1, 0).map(|p| (p.a, p.b)), Some((0, 1)));
        assert_eq!(idx.lookup(2, 1).map(|p| (p.a, p.b)), Some((1, 2)));
        assert!(idx.lookup(0, 3).is_none());
    }

    #[test]
    fn best_and_avg_follow_latency_semantics() {
        let idx = index();
        let p = idx.lookup(0, 1).unwrap();
        assert_eq!(p.best_us(), Some(fiber_delay_us(100.0)));
        // Both routes are within the 3× detour cap.
        assert_eq!(p.avg_us(3.0), Some(fiber_delay_us(175.0)));
        // With a tight cap only the best survives the average.
        assert_eq!(p.avg_us(1.5), Some(fiber_delay_us(100.0)));
        // Disconnected pair: no best, no average.
        let q = idx.lookup(0, 2).unwrap();
        assert_eq!(q.best_us(), None);
        assert_eq!(q.avg_us(3.0), None);
    }

    #[test]
    fn surviving_route_skips_severed_conduits() {
        let idx = index();
        let p = idx.lookup(0, 1).unwrap();
        let mut severed = vec![false; 3];
        assert_eq!(p.best_surviving_us(&severed), Some(fiber_delay_us(100.0)));
        severed[0] = true;
        assert_eq!(p.best_surviving_us(&severed), Some(fiber_delay_us(250.0)));
        severed[1] = true;
        assert_eq!(p.best_surviving_us(&severed), None);
        // Ids beyond the severed slice are intact.
        assert_eq!(
            p.best_surviving_us(&[true]),
            Some(fiber_delay_us(250.0))
        );
    }
}
