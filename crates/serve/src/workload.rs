//! Deterministic mixed-workload generation for gates and benches.
//!
//! The serve gate and `bench_serve` need a reproducible stream of queries
//! whose mix resembles interactive use: mostly cheap lookups, a steady
//! trickle of expensive cut what-ifs, and enough repetition that the
//! cache has something to hit. The generator is seeded splitmix64 over
//! the snapshot's own rosters and indexes — same snapshot, same seed,
//! same workload, on every platform.

use crate::query::Query;
use crate::snapshot::StudySnapshot;

/// The splitmix64 step: advances `state` and returns the next draw.
/// (Sebastiano Vigna's generator; public domain reference constants.)
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates `n` queries over the snapshot's providers, pairs, and
/// heavily shared conduits. The mix (by draw):
///
/// * 30 % per-provider risk lookups,
/// * 15 % similarity lookups,
/// * 30 % pair latency queries,
/// * 15 % top-shared rankings (k ∈ 4..16),
/// * 10 % conduit-cut what-ifs over 1–3 of the 24 most-shared conduits.
///
/// Deterministic in `(snapshot, n, seed)`.
pub fn mixed_workload(snap: &StudySnapshot, n: usize, seed: u64) -> Vec<Query> {
    let mut state = seed;
    let isps = &snap.isps;
    let pairs = &snap.paths.pairs;
    // The cut pool: the 24 most-shared conduit ids (§4.2 order).
    let mut by_share: Vec<u32> = (0..snap.risk.shared.len() as u32).collect();
    by_share.sort_by(|&x, &y| {
        snap.risk.shared[y as usize]
            .cmp(&snap.risk.shared[x as usize])
            .then_with(|| x.cmp(&y))
    });
    by_share.truncate(24);

    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let kind = splitmix64(&mut state) % 100;
        let draw = splitmix64(&mut state);
        let query = if kind < 30 && !isps.is_empty() {
            Query::IspRisk {
                isp: isps[(draw % isps.len() as u64) as usize].clone(),
            }
        } else if kind < 45 && !isps.is_empty() {
            Query::Similarity {
                isp: isps[(draw % isps.len() as u64) as usize].clone(),
            }
        } else if kind < 75 && !pairs.is_empty() {
            let pair = &pairs[(draw % pairs.len() as u64) as usize];
            Query::Latency {
                a: snap.map.nodes[pair.a as usize].label.clone(),
                b: snap.map.nodes[pair.b as usize].label.clone(),
            }
        } else if kind < 90 || by_share.is_empty() {
            Query::TopShared {
                k: 4 + (draw % 12) as usize,
            }
        } else {
            let count = 1 + (draw % 3) as usize;
            let conduits = (0..count)
                .map(|_| by_share[(splitmix64(&mut state) % by_share.len() as u64) as usize])
                .collect();
            Query::CutImpact { conduits }
        };
        out.push(query);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_sequence() {
        // Reference outputs for seed 1234567 (Vigna's test vectors).
        let mut s = 1234567u64;
        assert_eq!(splitmix64(&mut s), 6457827717110365317);
        assert_eq!(splitmix64(&mut s), 3203168211198807973);
        assert_eq!(splitmix64(&mut s), 9817491932198370423);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = 42u64;
        let mut b = 42u64;
        for _ in 0..100 {
            assert_eq!(splitmix64(&mut a), splitmix64(&mut b));
        }
        let mut c = 43u64;
        assert_ne!(splitmix64(&mut a), splitmix64(&mut c));
    }
}
