//! Runtime fault injection, crash-safe snapshot persistence, and the
//! serving health machine (DESIGN.md §11).
//!
//! PR 1's `FaultPlan` DSL stops at the pipeline inputs; this module
//! carries it into the serving runtime. A [`ChaosSession`] owns the
//! runtime half of a plan — torn writes, section bit-flips, transient
//! I/O errors, slow reads, cache poisoning, overload bursts — and exposes
//! it two ways:
//!
//! * as a [`SnapshotIo`] implementation (the `ChaosIo` wrapper): every
//!   snapshot read/write/rename the persistence layer performs flows
//!   through the session, which injects faults from seeded per-family RNG
//!   streams and records each one in an [`InjectionLedger`] plus obs
//!   events;
//! * as scheduler hooks ([`ChaosSession::overload_burst`],
//!   [`ChaosSession::poison_cache`]) called from the wave loop's serial
//!   phases only, so every chaos decision is a function of (plan, seed,
//!   wave) — never of thread interleaving or wall-clock.
//!
//! [`save_with`] / [`load_with`] implement the crash-safe persistence
//! protocol over any [`SnapshotIo`]: write to `<path>.tmp`, fsync,
//! verify by re-read, preserve the previous file as `<path>.bak`, then
//! atomically rename — and on load, salvage `.tmp` / `.bak` when the
//! primary is corrupt. Retry/backoff is **attempt-indexed and virtual**
//! (microseconds are accumulated in reports, never slept on, and no
//! wall-clock reading enters any decision), with failures classified
//! transient vs. fatal by [`FaultClass`].
//!
//! The [`Health`] state machine (`Ready` → `Degraded` → `Draining`)
//! summarizes the run for the CLI and the run manifest; its transition
//! trace is part of the determinism contract: same chaos plan + seed ⇒
//! byte-identical ledger, health trace, and response vector at any
//! thread count.

use std::path::{Path, PathBuf};
use std::sync::Mutex;

use intertubes_degrade::DegradationPolicy;
use intertubes_faults::{FaultFamily, FaultPlan, InjectionLedger, SnapshotSection};
use intertubes_obs::{FieldValue, Level};
use rand::rngs::StdRng;
use rand::Rng;

use crate::cache::ResultCache;
use crate::snapshot::{fnv1a64, section_bounds, SnapshotError, StudySnapshot};

/// Virtual stall charged per injected [`FaultFamily::SlowRead`], µs.
pub const SLOW_READ_STALL_US: u64 = 750;

/// Waves without any injection before a `Degraded` session recovers to
/// `Ready`.
pub const RECOVERY_CLEAN_WAVES: u32 = 2;

/// How a failure relates to retrying: transient failures may succeed on
/// the next attempt against the same file; fatal ones never will, so the
/// loader moves on to a salvage candidate instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultClass {
    /// Retry the same operation (bounded, with virtual backoff).
    Transient,
    /// Do not retry; fail over to the next salvage candidate.
    Fatal,
}

/// Everything that can go wrong in the resilient serving layer, above the
/// raw container format: either a single classified snapshot failure, or
/// the retry/salvage machinery running out of options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// One snapshot operation failed (strict mode surfaces these
    /// directly).
    Snapshot(SnapshotError),
    /// Every retry of every candidate failed.
    Exhausted {
        /// Total read/verify attempts made across candidates.
        attempts: u32,
        /// The last failure observed.
        last: SnapshotError,
        /// Candidate labels tried, in order (`"primary"`, `"tmp"`,
        /// `"bak"`).
        tried: Vec<String>,
    },
}

impl ServeError {
    /// The retry classification of the underlying failure. `Exhausted` is
    /// always fatal: the bounded policy has already spent its attempts.
    pub fn class(&self) -> FaultClass {
        match self {
            ServeError::Snapshot(e) => e.class(),
            ServeError::Exhausted { .. } => FaultClass::Fatal,
        }
    }

    /// Collapses to the underlying [`SnapshotError`] (the last one seen),
    /// for callers on the pre-chaos API surface.
    pub fn into_snapshot_error(self) -> SnapshotError {
        match self {
            ServeError::Snapshot(e) => e,
            ServeError::Exhausted { last, .. } => last,
        }
    }
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Snapshot(e) => write!(f, "serve snapshot error: {e}"),
            ServeError::Exhausted {
                attempts,
                last,
                tried,
            } => write!(
                f,
                "serve snapshot error: exhausted {attempts} attempts over candidates [{}]; last: {last}",
                tried.join(", ")
            ),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

/// Bounded, attempt-indexed retry policy. Backoff is **virtual**: the
/// per-attempt delay is computed from the attempt number alone,
/// accumulated into reports for observability, and never slept on — no
/// wall-clock reading enters any retry decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Attempts per candidate file (≥ 1).
    pub max_attempts: u32,
    /// Base virtual backoff, µs; attempt `n` (1-based) charges
    /// `base << (n - 1)`.
    pub base_backoff_us: u64,
    /// Whether load failure fails over to `<path>.tmp` / `<path>.bak`.
    pub salvage: bool,
}

impl RetryPolicy {
    /// Fail-fast: one attempt, no salvage (the strict degradation
    /// policy).
    pub fn strict() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_us: 0,
            salvage: false,
        }
    }

    /// Full resilience: bounded retries with exponential virtual backoff
    /// plus salvage (the lenient degradation policy, and the default).
    pub fn lenient() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 3,
            base_backoff_us: 1_000,
            salvage: true,
        }
    }

    /// Maps the pipeline-wide degradation policy onto retry behavior.
    pub fn for_policy(policy: DegradationPolicy) -> RetryPolicy {
        if policy.is_strict() {
            RetryPolicy::strict()
        } else {
            RetryPolicy::lenient()
        }
    }

    /// Virtual backoff charged after failed attempt `attempt` (1-based).
    pub fn backoff_us(&self, attempt: u32) -> u64 {
        self.base_backoff_us
            .saturating_mul(1u64 << attempt.saturating_sub(1).min(16))
    }
}

/// The I/O surface the snapshot persistence protocol runs over. The real
/// implementation is [`RealIo`]; [`ChaosSession`] wraps it with injected
/// faults.
pub trait SnapshotIo {
    /// Reads the whole file.
    fn read(&self, path: &Path) -> Result<Vec<u8>, SnapshotError>;
    /// Creates/truncates the file, writes all bytes, and fsyncs.
    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), SnapshotError>;
    /// Atomically renames `from` onto `to`.
    fn rename(&self, from: &Path, to: &Path) -> Result<(), SnapshotError>;
    /// Whether the path exists.
    fn exists(&self, path: &Path) -> bool;
}

/// Plain `std::fs`-backed [`SnapshotIo`] (writes are fsynced).
pub struct RealIo;

fn io_err(e: std::io::Error) -> SnapshotError {
    SnapshotError::Io(e.to_string())
}

impl SnapshotIo for RealIo {
    fn read(&self, path: &Path) -> Result<Vec<u8>, SnapshotError> {
        std::fs::read(path).map_err(io_err)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
        use std::io::Write;
        let mut f = std::fs::File::create(path).map_err(io_err)?;
        f.write_all(bytes).map_err(io_err)?;
        f.sync_all().map_err(io_err)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), SnapshotError> {
        std::fs::rename(from, to).map_err(io_err)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }
}

/// JSON string literal with the escapes canonical reports need.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// `<path>.tmp` / `<path>.bak` sibling of `path`.
fn suffixed(path: &Path, ext: &str) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".");
    os.push(ext);
    PathBuf::from(os)
}

/// What a crash-safe save did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SaveReport {
    /// Write+verify attempts made.
    pub attempts: u32,
    /// Total virtual backoff charged, µs.
    pub backoff_us: u64,
}

/// What a resilient load did, and the snapshot it produced.
#[derive(Debug)]
pub struct LoadReport {
    /// The loaded snapshot.
    pub snapshot: StudySnapshot,
    /// Which candidate served it: `"primary"`, `"tmp"`, or `"bak"`.
    pub source: &'static str,
    /// Read/parse attempts made across candidates.
    pub attempts: u32,
    /// Total virtual backoff charged, µs.
    pub backoff_us: u64,
}

impl LoadReport {
    /// Whether the snapshot came from a salvage candidate rather than the
    /// primary file.
    pub fn salvaged(&self) -> bool {
        self.source != "primary"
    }
}

/// Crash-safe save over any [`SnapshotIo`]:
///
/// 1. serialize once; write the bytes to `<path>.tmp` (fsynced);
/// 2. verify the temp file by re-reading and byte-comparing (this is
///    what catches torn/short writes);
/// 3. on verify failure, retry the write with attempt-indexed virtual
///    backoff, up to `policy.max_attempts`;
/// 4. preserve any existing `path` as `<path>.bak`, then atomically
///    rename the verified temp file onto `path`.
///
/// A crash (or injected torn write) at any point leaves a loadable
/// snapshot: either the old `path`/`.bak`, or the fully verified `.tmp`
/// — never a silently corrupt published file.
pub fn save_with(
    io: &dyn SnapshotIo,
    snapshot: &StudySnapshot,
    path: &Path,
    policy: &RetryPolicy,
) -> Result<SaveReport, ServeError> {
    let bytes = snapshot.to_bytes().map_err(ServeError::Snapshot)?;
    let tmp = suffixed(path, "tmp");
    let bak = suffixed(path, "bak");
    let mut attempts = 0u32;
    let mut backoff_us = 0u64;
    let mut last: Option<SnapshotError> = None;
    let mut verified = false;
    while attempts < policy.max_attempts.max(1) {
        attempts += 1;
        let result = io.write(&tmp, &bytes).and_then(|()| io.read(&tmp));
        match result {
            Ok(readback) if readback == bytes => {
                verified = true;
                break;
            }
            Ok(readback) => {
                // Torn/short or bit-flipped write: rewriting is the only
                // remedy, so every verify failure is retried.
                let e = if readback.len() < bytes.len() {
                    SnapshotError::Truncated {
                        needed: bytes.len(),
                        have: readback.len(),
                    }
                } else {
                    SnapshotError::ChecksumMismatch {
                        expected: format!("{:016x}", fnv1a64(&bytes)),
                        found: format!("{:016x}", fnv1a64(&readback)),
                    }
                };
                intertubes_obs::event(
                    Level::Warn,
                    "serve.snapshot",
                    &format!("save attempt {attempts} failed verification: {e}"),
                    &[("attempt", FieldValue::U64(attempts as u64))],
                );
                last = Some(e);
                backoff_us += policy.backoff_us(attempts);
            }
            Err(e) => {
                intertubes_obs::event(
                    Level::Warn,
                    "serve.snapshot",
                    &format!("save attempt {attempts} failed: {e}"),
                    &[("attempt", FieldValue::U64(attempts as u64))],
                );
                last = Some(e);
                backoff_us += policy.backoff_us(attempts);
            }
        }
    }
    if !verified {
        return Err(ServeError::Exhausted {
            attempts,
            last: last.unwrap_or_else(|| SnapshotError::Io("save never attempted".into())),
            tried: vec!["tmp".into()],
        });
    }
    if io.exists(path) {
        io.rename(path, &bak).map_err(ServeError::Snapshot)?;
    }
    io.rename(&tmp, path).map_err(ServeError::Snapshot)?;
    Ok(SaveReport {
        attempts,
        backoff_us,
    })
}

/// Resilient load over any [`SnapshotIo`]: tries the primary file with
/// bounded attempt-indexed retries on transient failures, then — under a
/// salvaging policy — fails over to `<path>.tmp` (a completed but
/// unpublished save) and `<path>.bak` (the previous good snapshot).
/// Fatal failures (corrupt content) skip straight to the next candidate:
/// a bad file does not get better by re-reading it, but an injected
/// bit-flip on a salvage candidate might miss on the next read.
pub fn load_with(
    io: &dyn SnapshotIo,
    path: &Path,
    policy: &RetryPolicy,
) -> Result<LoadReport, ServeError> {
    let mut candidates: Vec<(&'static str, PathBuf)> = vec![("primary", path.to_path_buf())];
    if policy.salvage {
        candidates.push(("tmp", suffixed(path, "tmp")));
        candidates.push(("bak", suffixed(path, "bak")));
    }
    let mut attempts = 0u32;
    let mut backoff_us = 0u64;
    let mut last: Option<SnapshotError> = None;
    let mut tried: Vec<String> = Vec::new();
    for (source, candidate) in &candidates {
        if *source != "primary" && !io.exists(candidate) {
            continue;
        }
        tried.push((*source).to_string());
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            attempts += 1;
            let result = io
                .read(candidate)
                .and_then(|bytes| StudySnapshot::from_bytes(&bytes));
            match result {
                Ok(snapshot) => {
                    if *source != "primary" {
                        intertubes_obs::event(
                            Level::Warn,
                            "serve.snapshot",
                            &format!("salvaged snapshot from {source} candidate"),
                            &[("source", FieldValue::Str((*source).to_string()))],
                        );
                    }
                    return Ok(LoadReport {
                        snapshot,
                        source,
                        attempts,
                        backoff_us,
                    });
                }
                Err(e) => {
                    intertubes_obs::event(
                        Level::Warn,
                        "serve.snapshot",
                        &format!("load attempt {attempt} of {source} failed: {e}"),
                        &[("attempt", FieldValue::U64(attempt as u64))],
                    );
                    let transient = e.class() == FaultClass::Transient;
                    last = Some(e);
                    if transient && attempt < policy.max_attempts.max(1) {
                        backoff_us += policy.backoff_us(attempt);
                        continue;
                    }
                    break;
                }
            }
        }
    }
    Err(ServeError::Exhausted {
        attempts,
        last: last.unwrap_or_else(|| SnapshotError::Io("no load candidates existed".into())),
        tried,
    })
}

/// Serving health, surfaced via the CLI and the run manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Health {
    /// No un-recovered faults; full service.
    Ready,
    /// At least one fault injected/absorbed recently; service continues
    /// with degraded guarantees.
    Degraded,
    /// The batch is complete and the session is winding down.
    Draining,
}

impl Health {
    /// Stable lower-case label (report and manifest vocabulary).
    pub fn label(self) -> &'static str {
        match self {
            Health::Ready => "ready",
            Health::Degraded => "degraded",
            Health::Draining => "draining",
        }
    }
}

impl std::fmt::Display for Health {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// One health-state transition. `wave` is the scheduler wave that caused
/// it (0 = the load/save phase before any wave).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthTransition {
    /// Wave number (1-based; 0 for the pre-batch persistence phase).
    pub wave: u64,
    /// State before.
    pub from: Health,
    /// State after.
    pub to: Health,
    /// Deterministic cause (fault family label or lifecycle event).
    pub reason: String,
}

/// The `Ready`/`Degraded`/`Draining` state machine plus its transition
/// trace. All mutations happen from serial code, so the trace is part of
/// the byte-identical determinism contract.
#[derive(Debug, Default)]
pub struct HealthTrace {
    state: Option<Health>,
    clean_streak: u32,
    transitions: Vec<HealthTransition>,
}

impl HealthTrace {
    /// A fresh trace in `Ready`.
    pub fn new() -> HealthTrace {
        HealthTrace {
            state: None,
            clean_streak: 0,
            transitions: Vec::new(),
        }
    }

    /// Current state.
    pub fn state(&self) -> Health {
        self.state.unwrap_or(Health::Ready)
    }

    /// The transition trace so far.
    pub fn transitions(&self) -> &[HealthTransition] {
        &self.transitions
    }

    fn push(&mut self, wave: u64, to: Health, reason: &str) {
        let from = self.state();
        intertubes_obs::event(
            Level::Warn,
            "serve.health",
            &format!("{from} -> {to} ({reason})"),
            &[
                ("from", FieldValue::Str(from.label().to_string())),
                ("to", FieldValue::Str(to.label().to_string())),
                ("wave", FieldValue::U64(wave)),
            ],
        );
        self.transitions.push(HealthTransition {
            wave,
            from,
            to,
            reason: reason.to_string(),
        });
        self.state = Some(to);
    }

    /// Records a fault at `wave`: `Ready` degrades, `Degraded` stays put
    /// (but its recovery streak resets).
    pub fn note_fault(&mut self, wave: u64, reason: &str) {
        self.clean_streak = 0;
        if self.state() == Health::Ready {
            self.push(wave, Health::Degraded, reason);
        }
    }

    /// Records an injection-free wave; [`RECOVERY_CLEAN_WAVES`] of them
    /// in a row recover a `Degraded` session to `Ready`.
    pub fn note_clean_wave(&mut self, wave: u64) {
        if self.state() == Health::Degraded {
            self.clean_streak += 1;
            if self.clean_streak >= RECOVERY_CLEAN_WAVES {
                self.push(
                    wave,
                    Health::Ready,
                    &format!("recovered after {RECOVERY_CLEAN_WAVES} clean waves"),
                );
                self.clean_streak = 0;
            }
        }
    }

    /// Marks the batch complete.
    pub fn drain(&mut self, wave: u64) {
        if self.state() != Health::Draining {
            self.push(wave, Health::Draining, "batch complete");
        }
    }
}

/// The deterministic artifact a chaos run leaves behind: the injection
/// ledger, the health trace, and the degradation counts. Byte-compared
/// across thread counts by `tests/chaos.rs` and `scripts/chaos_gate.sh`
/// via [`ChaosReport::to_canonical_json`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosReport {
    /// Every injection, counted per family.
    pub ledger: InjectionLedger,
    /// The health transition trace.
    pub transitions: Vec<HealthTransition>,
    /// Health at the end of the run.
    pub final_health: Health,
    /// Total virtual stall charged by injected slow reads, µs.
    pub virtual_stall_us: u64,
    /// Queries shed into [`crate::query::Response::Degraded`].
    pub degraded: usize,
    /// Degraded responses that carried a stale cached answer.
    pub stale_served: usize,
    /// Poisoned cache entries detected (and evicted) on lookup.
    pub cache_poison_detected: u64,
    /// Snapshot-load attempts (0 when the run did not load through the
    /// session).
    pub load_attempts: u32,
    /// Virtual backoff charged during load, µs.
    pub load_backoff_us: u64,
    /// The salvage candidate that served the snapshot, if any.
    pub salvaged_from: Option<String>,
}

impl ChaosReport {
    /// Deterministic canonical JSON (fixed key order, no wall-clock
    /// anywhere) — the artifact the chaos gate byte-compares.
    pub fn to_canonical_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"final_health\":\"{}\"", self.final_health));
        out.push_str(&format!(",\"degraded\":{}", self.degraded));
        out.push_str(&format!(",\"stale_served\":{}", self.stale_served));
        out.push_str(&format!(
            ",\"cache_poison_detected\":{}",
            self.cache_poison_detected
        ));
        out.push_str(&format!(",\"virtual_stall_us\":{}", self.virtual_stall_us));
        out.push_str(&format!(",\"load_attempts\":{}", self.load_attempts));
        out.push_str(&format!(",\"load_backoff_us\":{}", self.load_backoff_us));
        match &self.salvaged_from {
            Some(s) => out.push_str(&format!(",\"salvaged_from\":{}", json_string(s))),
            None => out.push_str(",\"salvaged_from\":null"),
        }
        out.push_str(",\"ledger\":[");
        for (i, (family, n)) in self.ledger.counts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("[\"{}\",{n}]", family.label()));
        }
        out.push_str("],\"transitions\":[");
        for (i, t) in self.transitions.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"wave\":{},\"from\":\"{}\",\"to\":\"{}\",\"reason\":{}}}",
                t.wave,
                t.from,
                t.to,
                json_string(&t.reason)
            ));
        }
        out.push_str("]}");
        out
    }

    /// The manifest's `health` value: final state plus the transition
    /// trace.
    pub fn health_value(&self) -> serde_json::Value {
        let mut obj = serde_json::Map::new();
        obj.insert(
            "state".into(),
            serde_json::Value::String(self.final_health.label().to_string()),
        );
        let transitions: Vec<serde_json::Value> = self
            .transitions
            .iter()
            .map(|t| {
                let mut o = serde_json::Map::new();
                o.insert(
                    "wave".into(),
                    serde_json::Value::Number(serde_json::Number::UInt(t.wave)),
                );
                o.insert(
                    "from".into(),
                    serde_json::Value::String(t.from.label().to_string()),
                );
                o.insert(
                    "to".into(),
                    serde_json::Value::String(t.to.label().to_string()),
                );
                o.insert(
                    "reason".into(),
                    serde_json::Value::String(t.reason.clone()),
                );
                serde_json::Value::Object(o)
            })
            .collect();
        obj.insert("transitions".into(), serde_json::Value::Array(transitions));
        serde_json::Value::Object(obj)
    }
}

/// Per-family RNG streams plus the session's accumulating record.
struct ChaosState {
    torn: StdRng,
    flip: StdRng,
    io: StdRng,
    slow: StdRng,
    poison: StdRng,
    overload: StdRng,
    ledger: InjectionLedger,
    health: HealthTrace,
    stall_us: u64,
}

/// One chaos run: the runtime half of a [`FaultPlan`] bound to a
/// degradation policy. Implements [`SnapshotIo`] (injecting I/O faults)
/// and exposes the scheduler hooks; every injection lands in the ledger,
/// the health trace, and the obs event stream.
///
/// All draws come from seeded per-family streams
/// (`plan.stream_rng(family)`), and all entry points are called from
/// serial code, so a session's behavior is a pure function of
/// (plan, call sequence) — the foundation of the chaos determinism
/// contract.
pub struct ChaosSession {
    plan: FaultPlan,
    policy: DegradationPolicy,
    state: Mutex<ChaosState>,
}

impl ChaosSession {
    /// Binds the runtime half of `plan` to a degradation policy.
    pub fn new(plan: FaultPlan, policy: DegradationPolicy) -> ChaosSession {
        let state = ChaosState {
            torn: plan.stream_rng(FaultFamily::TornSnapshotWrite),
            flip: plan.stream_rng(FaultFamily::SnapshotBitFlip),
            io: plan.stream_rng(FaultFamily::TransientIo),
            slow: plan.stream_rng(FaultFamily::SlowRead),
            poison: plan.stream_rng(FaultFamily::CachePoison),
            overload: plan.stream_rng(FaultFamily::OverloadBurst),
            ledger: InjectionLedger::new(),
            health: HealthTrace::new(),
            stall_us: 0,
        };
        ChaosSession {
            plan,
            policy,
            state: Mutex::new(state),
        }
    }

    /// The degradation policy this session serves under.
    pub fn policy(&self) -> DegradationPolicy {
        self.policy
    }

    /// The plan driving the session.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The retry policy implied by the degradation policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        RetryPolicy::for_policy(self.policy)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, ChaosState> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn inject(st: &mut ChaosState, family: FaultFamily, n: usize, wave: u64, detail: &str) {
        st.ledger.add(family, n);
        st.health.note_fault(wave, family.label());
        intertubes_obs::counter("chaos.injected", n.max(1) as u64);
        intertubes_obs::event(
            Level::Warn,
            "chaos",
            &format!("injected {} {detail}", family.label()),
            &[
                ("family", FieldValue::Str(family.label().to_string())),
                ("count", FieldValue::U64(n as u64)),
                ("wave", FieldValue::U64(wave)),
            ],
        );
    }

    /// Scheduler hook (serial, once per wave, before lookups): does an
    /// overload burst hit this wave? Returns the queue position the wave
    /// is shed from — every query at `position >= shed_from` receives a
    /// `Response::Degraded` instead of computing.
    pub fn overload_burst(&self, wave: u64, depth: usize) -> Option<usize> {
        let rate = self.plan.rate(FaultFamily::OverloadBurst);
        if rate <= 0.0 || depth == 0 {
            return None;
        }
        let mut st = self.lock();
        if !st.overload.gen_bool(rate) {
            return None;
        }
        let shed_from = depth / 2;
        let shed = depth - shed_from;
        Self::inject(
            &mut st,
            FaultFamily::OverloadBurst,
            shed,
            wave,
            &format!("shedding wave {wave} from position {shed_from}"),
        );
        Some(shed_from)
    }

    /// Scheduler hook (serial, once per wave, before lookups): does cache
    /// poisoning hit this wave? Corrupts one whole shard (`wave %
    /// shards`) and returns the entry count touched.
    pub fn poison_cache(&self, wave: u64, cache: &ResultCache) -> usize {
        let rate = self.plan.rate(FaultFamily::CachePoison);
        if rate <= 0.0 {
            return 0;
        }
        let mut st = self.lock();
        if !st.poison.gen_bool(rate) {
            return 0;
        }
        let shard = (wave as usize) % cache.shard_count().max(1);
        let n = cache.poison_shard(shard);
        if n > 0 {
            Self::inject(
                &mut st,
                FaultFamily::CachePoison,
                n,
                wave,
                &format!("poisoned cache shard {shard}"),
            );
        }
        n
    }

    /// Scheduler hook: a wave finished with no injection (drives the
    /// recovery side of the health machine).
    pub fn end_wave(&self, wave: u64, injected: bool) {
        if !injected {
            self.lock().health.note_clean_wave(wave);
        }
    }

    /// Records an externally observed (non-injected) fault — e.g. a load
    /// that had to salvage a candidate.
    pub fn note_degraded(&self, wave: u64, reason: &str) {
        self.lock().health.note_fault(wave, reason);
    }

    /// Marks the batch complete.
    pub fn drain(&self, wave: u64) {
        self.lock().health.drain(wave);
    }

    /// Current health state.
    pub fn health(&self) -> Health {
        self.lock().health.state()
    }

    /// A copy of the injection ledger so far.
    pub fn ledger(&self) -> InjectionLedger {
        self.lock().ledger.clone()
    }

    /// The session's deterministic report (ledger, health trace, virtual
    /// stall). The scheduler fills in the degradation counts; the CLI
    /// fills in the load fields.
    pub fn report(&self) -> ChaosReport {
        let st = self.lock();
        ChaosReport {
            ledger: st.ledger.clone(),
            transitions: st.health.transitions().to_vec(),
            final_health: st.health.state(),
            virtual_stall_us: st.stall_us,
            degraded: 0,
            stale_served: 0,
            cache_poison_detected: 0,
            load_attempts: 0,
            load_backoff_us: 0,
            salvaged_from: None,
        }
    }
}

impl SnapshotIo for ChaosSession {
    fn read(&self, path: &Path) -> Result<Vec<u8>, SnapshotError> {
        let mut st = self.lock();
        let io_rate = self.plan.rate(FaultFamily::TransientIo);
        if io_rate > 0.0 && st.io.gen_bool(io_rate) {
            Self::inject(
                &mut st,
                FaultFamily::TransientIo,
                1,
                0,
                &format!("error reading {}", path.display()),
            );
            return Err(SnapshotError::Io(format!(
                "injected transient i/o error reading {}",
                path.display()
            )));
        }
        let slow_rate = self.plan.rate(FaultFamily::SlowRead);
        if slow_rate > 0.0 && st.slow.gen_bool(slow_rate) {
            st.stall_us += SLOW_READ_STALL_US;
            Self::inject(
                &mut st,
                FaultFamily::SlowRead,
                1,
                0,
                &format!("stall of {SLOW_READ_STALL_US}us reading {}", path.display()),
            );
        }
        let mut bytes = RealIo.read(path)?;
        let flip_rate = self.plan.rate(FaultFamily::SnapshotBitFlip);
        if flip_rate > 0.0 && st.flip.gen_bool(flip_rate) {
            let section = self
                .plan
                .section_for(FaultFamily::SnapshotBitFlip)
                .unwrap_or(SnapshotSection::Payload);
            let (start, end) = section_bounds(&bytes)
                .and_then(|b| match section {
                    SnapshotSection::Header => Some(b.header),
                    SnapshotSection::Payload => Some(b.payload),
                    SnapshotSection::Landmarks => b.landmarks,
                })
                .filter(|(s, e)| e > s)
                .unwrap_or((0, bytes.len()));
            if end > start {
                let idx = st.flip.gen_range(start..end);
                let bit = st.flip.gen_range(0..8u32);
                bytes[idx] ^= 1 << bit;
                Self::inject(
                    &mut st,
                    FaultFamily::SnapshotBitFlip,
                    1,
                    0,
                    &format!("bit {bit} of byte {idx} ({} section)", section.label()),
                );
            }
        }
        Ok(bytes)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> Result<(), SnapshotError> {
        let mut st = self.lock();
        let rate = self.plan.rate(FaultFamily::TornSnapshotWrite);
        if rate > 0.0 && st.torn.gen_bool(rate) {
            let keep = st.torn.gen_range(0..bytes.len().max(1)).min(bytes.len());
            Self::inject(
                &mut st,
                FaultFamily::TornSnapshotWrite,
                1,
                0,
                &format!("kept {keep} of {} bytes writing {}", bytes.len(), path.display()),
            );
            drop(st);
            // The torn write *reports success* — exactly like a crash
            // between write and fsync. Only save_with's verify pass can
            // catch it.
            return RealIo.write(path, &bytes[..keep]);
        }
        drop(st);
        RealIo.write(path, bytes)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<(), SnapshotError> {
        RealIo.rename(from, to)
    }

    fn exists(&self, path: &Path) -> bool {
        RealIo.exists(path)
    }
}
