//! The sharded LRU result cache (DESIGN.md §9.4).
//!
//! Entries are keyed by the full canonical query JSON — the FNV-1a hash
//! only selects the shard, so hash collisions cannot alias two distinct
//! queries. Each shard is an independent LRU with its own recency clock;
//! eviction removes the least recently touched entry of the overfull
//! shard.
//!
//! The cache never *computes* anything, which is how it stays inside the
//! determinism contract: the scheduler consults and fills it from serial
//! sections only, so hit/miss patterns — and therefore evictions — are a
//! function of the workload order alone, not of thread interleaving. A
//! hit returns the exact bytes a recomputation would produce, because the
//! engine is pure.
//!
//! Every entry carries an FNV-1a checksum of its bytes, verified on every
//! hit. A mismatch (bit rot, or injected [`FaultFamily::CachePoison`])
//! evicts the entry and reports a miss, so the scheduler recomputes — the
//! response bytes are identical either way, which keeps poisoning inside
//! the determinism contract too.
//!
//! [`FaultFamily::CachePoison`]: intertubes_faults::FaultFamily::CachePoison

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::query::key_hash;
use crate::snapshot::fnv1a64;

/// Cache sizing and switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Master switch; disabled means every lookup misses and nothing is
    /// stored (the cache-off arm of the determinism gate).
    pub enabled: bool,
    /// Number of independent shards (≥ 1).
    pub shards: usize,
    /// LRU capacity per shard (≥ 1).
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            shards: 8,
            capacity_per_shard: 256,
        }
    }
}

struct Entry {
    /// The cached canonical response bytes.
    value: String,
    /// FNV-1a 64 of `value` at insert time; verified on every hit.
    checksum: u64,
    /// Last-touch tick (LRU recency).
    last: u64,
}

/// Deterministic per-shard counters — one row of the serving count plane
/// (DESIGN.md §13). All lookups and insertions happen in the scheduler's
/// serial phases, so for a fixed workload these are byte-identical at any
/// thread count (within one cache mode).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Lookups answered from this shard.
    pub hits: u64,
    /// Lookups that found nothing (or a poisoned entry) in this shard.
    pub misses: u64,
    /// Entries stored (including overwrites).
    pub insertions: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
    /// Checksum mismatches detected (and evicted) on lookup.
    pub poison_detected: u64,
}

/// The whole cache's counter block: per-shard rows plus the injection
/// total the chaos hook charges.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// One row per shard, in shard order.
    pub shards: Vec<ShardStats>,
    /// Entries corrupted by [`ResultCache::poison_shard`] (the chaos
    /// injection side; `poison_detected` is the lookup side).
    pub poison_injected: u64,
}

impl CacheStats {
    /// Sums a field across shards.
    fn total(&self, f: impl Fn(&ShardStats) -> u64) -> u64 {
        self.shards.iter().map(f).sum()
    }

    /// Total hits across shards.
    pub fn hits(&self) -> u64 {
        self.total(|s| s.hits)
    }

    /// Total misses across shards.
    pub fn misses(&self) -> u64 {
        self.total(|s| s.misses)
    }

    /// Total LRU evictions across shards.
    pub fn evictions(&self) -> u64 {
        self.total(|s| s.evictions)
    }

    /// Total poison detections across shards.
    pub fn poison_detected(&self) -> u64 {
        self.total(|s| s.poison_detected)
    }
}

struct Shard {
    /// Canonical key → entry.
    entries: HashMap<String, Entry>,
    /// Recency clock, bumped on every touch.
    tick: u64,
    /// This shard's count-plane row.
    stats: ShardStats,
}

/// The sharded LRU response cache.
pub struct ResultCache {
    cfg: CacheConfig,
    shards: Vec<Mutex<Shard>>,
    /// Entries whose checksum failed verification on lookup (evicted and
    /// reported as misses).
    poisoned_detected: AtomicU64,
    /// Entries corrupted by the chaos poison hook.
    poison_injected: AtomicU64,
}

impl ResultCache {
    /// An empty cache with the given shape.
    pub fn new(cfg: CacheConfig) -> ResultCache {
        let shards = cfg.shards.max(1);
        ResultCache {
            cfg,
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        tick: 0,
                        stats: ShardStats::default(),
                    })
                })
                .collect(),
            poisoned_detected: AtomicU64::new(0),
            poison_injected: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let i = (key_hash(key) % self.shards.len() as u64) as usize;
        &self.shards[i]
    }

    /// Number of shards actually allocated.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks up a canonical key, refreshing its recency on hit. Always
    /// misses when the cache is disabled. An entry whose checksum no
    /// longer matches its bytes is evicted and reported as a miss (the
    /// caller recomputes, producing identical bytes).
    pub fn get(&self, key: &str) -> Option<String> {
        if !self.cfg.enabled {
            return None;
        }
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        let Some(entry) = shard.entries.get_mut(key) else {
            shard.stats.misses += 1;
            return None;
        };
        if fnv1a64(entry.value.as_bytes()) != entry.checksum {
            shard.entries.remove(key);
            shard.stats.misses += 1;
            shard.stats.poison_detected += 1;
            self.poisoned_detected.fetch_add(1, Ordering::Relaxed);
            intertubes_obs::counter("serve.cache_poisoned", 1);
            return None;
        }
        entry.last = tick;
        let value = entry.value.clone();
        shard.stats.hits += 1;
        Some(value)
    }

    /// Stores a response under its canonical key, evicting the shard's
    /// least recently touched entry if the shard is over capacity. A no-op
    /// when the cache is disabled.
    pub fn insert(&self, key: &str, value: &str) {
        if !self.cfg.enabled {
            return;
        }
        let cap = self.cfg.capacity_per_shard.max(1);
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        shard.stats.insertions += 1;
        shard.entries.insert(
            key.to_string(),
            Entry {
                value: value.to_string(),
                checksum: fnv1a64(value.as_bytes()),
                last: tick,
            },
        );
        while shard.entries.len() > cap {
            // Oldest tick; ties broken by key so eviction is deterministic
            // even if the clock ever stalls.
            let victim = shard
                .entries
                .iter()
                .min_by(|(ka, ea), (kb, eb)| ea.last.cmp(&eb.last).then_with(|| ka.cmp(kb)))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    shard.entries.remove(&k);
                    shard.stats.evictions += 1;
                    intertubes_obs::counter("serve.cache_evictions", 1);
                }
                None => break,
            }
        }
    }

    /// Chaos hook: silently corrupts **every** entry of shard
    /// `shard_index` (first byte XOR `0x80`, checksum left stale), and
    /// returns how many entries were touched. Corrupting the whole shard
    /// — rather than a sampled subset — keeps the injection independent of
    /// `HashMap` iteration order, so the detected-poison counts stay
    /// deterministic. A no-op when the cache is disabled.
    pub fn poison_shard(&self, shard_index: usize) -> usize {
        if !self.cfg.enabled || self.shards.is_empty() {
            return 0;
        }
        let shard = &self.shards[shard_index % self.shards.len()];
        let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
        let mut touched = 0;
        for entry in shard.entries.values_mut() {
            let mut bytes = std::mem::take(&mut entry.value).into_bytes();
            if let Some(b) = bytes.first_mut() {
                *b ^= 0x80;
                touched += 1;
            }
            entry.value = String::from_utf8_lossy(&bytes).into_owned();
        }
        self.poison_injected.fetch_add(touched as u64, Ordering::Relaxed);
        touched
    }

    /// Poisoned entries detected (and evicted) by [`ResultCache::get`].
    pub fn poisoned_detected(&self) -> u64 {
        self.poisoned_detected.load(Ordering::Relaxed)
    }

    /// Entries corrupted by [`ResultCache::poison_shard`] so far.
    pub fn poison_injected(&self) -> u64 {
        self.poison_injected.load(Ordering::Relaxed)
    }

    /// Snapshots the count-plane counters: one [`ShardStats`] row per
    /// shard plus the injection total. A disabled cache records nothing,
    /// so its rows are all zero.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            shards: self
                .shards
                .iter()
                .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).stats)
                .collect(),
            poison_injected: self.poison_injected.load(Ordering::Relaxed),
        }
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(shards: usize, cap: usize) -> ResultCache {
        ResultCache::new(CacheConfig {
            enabled: true,
            shards,
            capacity_per_shard: cap,
        })
    }

    #[test]
    fn get_after_insert_returns_exact_bytes() {
        let cache = tiny(4, 8);
        assert_eq!(cache.get("k1"), None);
        cache.insert("k1", "{\"v\":1}");
        assert_eq!(cache.get("k1").as_deref(), Some("{\"v\":1}"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        // One shard so the eviction order is fully observable.
        let cache = tiny(1, 2);
        cache.insert("a", "1");
        cache.insert("b", "2");
        // Touch "a" so "b" becomes the LRU entry.
        assert!(cache.get("a").is_some());
        cache.insert("c", "3");
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let cache = ResultCache::new(CacheConfig {
            enabled: false,
            ..CacheConfig::default()
        });
        cache.insert("k", "v");
        assert_eq!(cache.get("k"), None);
        assert!(cache.is_empty());
        assert_eq!(cache.poison_shard(0), 0);
    }

    #[test]
    fn overwrite_replaces_value_in_place() {
        let cache = tiny(2, 4);
        cache.insert("k", "old");
        cache.insert("k", "new");
        assert_eq!(cache.get("k").as_deref(), Some("new"));
        assert_eq!(cache.len(), 1);
    }

    /// Finds `n` distinct keys that all land in shard 0 of a
    /// `shards`-shard cache, in probing order (deterministic).
    fn colliding_keys(shards: usize, n: usize) -> Vec<String> {
        let mut keys = Vec::new();
        let mut i = 0u64;
        while keys.len() < n {
            let k = format!("key-{i}");
            if key_hash(&k) % shards as u64 == 0 {
                keys.push(k);
            }
            i += 1;
        }
        keys
    }

    #[test]
    fn shard_colliding_keys_evict_in_recency_order() {
        // Eight shards, but every key maps to shard 0, so the per-shard
        // capacity bound (2) governs all of them despite total capacity
        // being 16.
        let keys = colliding_keys(8, 4);
        let cache = tiny(8, 2);
        for (i, k) in keys.iter().take(3).enumerate() {
            cache.insert(k, &format!("v{i}"));
        }
        // Capacity 2: inserting the third colliding key evicts the least
        // recently touched (the first).
        assert_eq!(cache.len(), 2);
        assert!(cache.get(&keys[0]).is_none());
        assert!(cache.get(&keys[1]).is_some());
        assert!(cache.get(&keys[2]).is_some());
        // Refresh keys[1], then insert a fourth collider: keys[2] is now
        // the LRU victim even though it was inserted later.
        assert!(cache.get(&keys[1]).is_some());
        cache.insert(&keys[3], "v3");
        assert!(cache.get(&keys[2]).is_none());
        assert!(cache.get(&keys[1]).is_some());
        assert!(cache.get(&keys[3]).is_some());
        let stats = cache.stats();
        assert_eq!(stats.evictions(), 2);
        assert_eq!(stats.shards[0].evictions, 2);
        assert!(stats.shards[1..].iter().all(|s| *s == ShardStats::default()));
    }

    #[test]
    fn collision_eviction_order_is_identical_across_thread_counts() {
        // The cache is only ever touched from the scheduler's serial
        // phases, so a fixed touch sequence must leave identical contents
        // and counters regardless of the rayon pool size. Replay the same
        // sequence under 1/2/8-thread pools and compare observable state.
        let keys = colliding_keys(4, 6);
        let replay = |threads: usize| {
            intertubes_parallel::with_threads(threads, || {
                let cache = tiny(4, 3);
                for (i, k) in keys.iter().enumerate() {
                    cache.insert(k, &format!("resp-{i}"));
                    if i % 2 == 0 {
                        let _ = cache.get(&keys[i / 2]);
                    }
                }
                let survivors: Vec<bool> =
                    keys.iter().map(|k| cache.get(k).is_some()).collect();
                (survivors, cache.stats())
            })
        };
        let one = replay(1);
        assert_eq!(one, replay(2));
        assert_eq!(one, replay(8));
        // Capacity 3 with 6 colliding inserts: exactly 3 evictions.
        assert_eq!(one.1.evictions(), 3);
    }

    #[test]
    fn stats_rows_track_hits_misses_and_insertions() {
        let cache = tiny(2, 8);
        assert!(cache.get("absent").is_none());
        cache.insert("k", "v");
        assert!(cache.get("k").is_some());
        let stats = cache.stats();
        assert_eq!(stats.hits(), 1);
        assert_eq!(stats.misses(), 1);
        assert_eq!(stats.shards.iter().map(|s| s.insertions).sum::<u64>(), 1);
        assert_eq!(stats.poison_injected, 0);
    }

    #[test]
    fn poison_counters_separate_injection_from_detection() {
        let cache = tiny(1, 8);
        cache.insert("a", "1");
        cache.insert("b", "2");
        assert_eq!(cache.poison_shard(0), 2);
        assert_eq!(cache.poison_injected(), 2);
        assert_eq!(cache.poisoned_detected(), 0);
        assert!(cache.get("a").is_none());
        assert_eq!(cache.poisoned_detected(), 1);
        let stats = cache.stats();
        assert_eq!(stats.poison_injected, 2);
        assert_eq!(stats.poison_detected(), 1);
    }

    #[test]
    fn poisoned_entries_are_detected_and_evicted() {
        let cache = tiny(1, 8);
        cache.insert("a", "{\"v\":1}");
        cache.insert("b", "{\"v\":2}");
        assert_eq!(cache.poison_shard(0), 2);
        // Entries are still present but corrupt; the next lookup detects
        // the checksum mismatch, evicts, and misses.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a"), None);
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.poisoned_detected(), 2);
        assert!(cache.is_empty());
        // Re-inserting restores normal service.
        cache.insert("a", "{\"v\":1}");
        assert_eq!(cache.get("a").as_deref(), Some("{\"v\":1}"));
    }
}
