//! The sharded LRU result cache (DESIGN.md §9.4).
//!
//! Entries are keyed by the full canonical query JSON — the FNV-1a hash
//! only selects the shard, so hash collisions cannot alias two distinct
//! queries. Each shard is an independent LRU with its own recency clock;
//! eviction removes the least recently touched entry of the overfull
//! shard.
//!
//! The cache never *computes* anything, which is how it stays inside the
//! determinism contract: the scheduler consults and fills it from serial
//! sections only, so hit/miss patterns — and therefore evictions — are a
//! function of the workload order alone, not of thread interleaving. A
//! hit returns the exact bytes a recomputation would produce, because the
//! engine is pure.
//!
//! Every entry carries an FNV-1a checksum of its bytes, verified on every
//! hit. A mismatch (bit rot, or injected [`FaultFamily::CachePoison`])
//! evicts the entry and reports a miss, so the scheduler recomputes — the
//! response bytes are identical either way, which keeps poisoning inside
//! the determinism contract too.
//!
//! [`FaultFamily::CachePoison`]: intertubes_faults::FaultFamily::CachePoison

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::query::key_hash;
use crate::snapshot::fnv1a64;

/// Cache sizing and switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Master switch; disabled means every lookup misses and nothing is
    /// stored (the cache-off arm of the determinism gate).
    pub enabled: bool,
    /// Number of independent shards (≥ 1).
    pub shards: usize,
    /// LRU capacity per shard (≥ 1).
    pub capacity_per_shard: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            enabled: true,
            shards: 8,
            capacity_per_shard: 256,
        }
    }
}

struct Entry {
    /// The cached canonical response bytes.
    value: String,
    /// FNV-1a 64 of `value` at insert time; verified on every hit.
    checksum: u64,
    /// Last-touch tick (LRU recency).
    last: u64,
}

struct Shard {
    /// Canonical key → entry.
    entries: HashMap<String, Entry>,
    /// Recency clock, bumped on every touch.
    tick: u64,
}

/// The sharded LRU response cache.
pub struct ResultCache {
    cfg: CacheConfig,
    shards: Vec<Mutex<Shard>>,
    /// Entries whose checksum failed verification on lookup (evicted and
    /// reported as misses).
    poisoned_detected: AtomicU64,
}

impl ResultCache {
    /// An empty cache with the given shape.
    pub fn new(cfg: CacheConfig) -> ResultCache {
        let shards = cfg.shards.max(1);
        ResultCache {
            cfg,
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            poisoned_detected: AtomicU64::new(0),
        }
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let i = (key_hash(key) % self.shards.len() as u64) as usize;
        &self.shards[i]
    }

    /// Number of shards actually allocated.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Looks up a canonical key, refreshing its recency on hit. Always
    /// misses when the cache is disabled. An entry whose checksum no
    /// longer matches its bytes is evicted and reported as a miss (the
    /// caller recomputes, producing identical bytes).
    pub fn get(&self, key: &str) -> Option<String> {
        if !self.cfg.enabled {
            return None;
        }
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard.entries.get_mut(key)?;
        if fnv1a64(entry.value.as_bytes()) != entry.checksum {
            shard.entries.remove(key);
            self.poisoned_detected.fetch_add(1, Ordering::Relaxed);
            intertubes_obs::counter("serve.cache_poisoned", 1);
            return None;
        }
        entry.last = tick;
        Some(entry.value.clone())
    }

    /// Stores a response under its canonical key, evicting the shard's
    /// least recently touched entry if the shard is over capacity. A no-op
    /// when the cache is disabled.
    pub fn insert(&self, key: &str, value: &str) {
        if !self.cfg.enabled {
            return;
        }
        let cap = self.cfg.capacity_per_shard.max(1);
        let mut shard = self.shard(key).lock().unwrap_or_else(|e| e.into_inner());
        shard.tick += 1;
        let tick = shard.tick;
        shard.entries.insert(
            key.to_string(),
            Entry {
                value: value.to_string(),
                checksum: fnv1a64(value.as_bytes()),
                last: tick,
            },
        );
        while shard.entries.len() > cap {
            // Oldest tick; ties broken by key so eviction is deterministic
            // even if the clock ever stalls.
            let victim = shard
                .entries
                .iter()
                .min_by(|(ka, ea), (kb, eb)| ea.last.cmp(&eb.last).then_with(|| ka.cmp(kb)))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    shard.entries.remove(&k);
                }
                None => break,
            }
        }
    }

    /// Chaos hook: silently corrupts **every** entry of shard
    /// `shard_index` (first byte XOR `0x80`, checksum left stale), and
    /// returns how many entries were touched. Corrupting the whole shard
    /// — rather than a sampled subset — keeps the injection independent of
    /// `HashMap` iteration order, so the detected-poison counts stay
    /// deterministic. A no-op when the cache is disabled.
    pub fn poison_shard(&self, shard_index: usize) -> usize {
        if !self.cfg.enabled || self.shards.is_empty() {
            return 0;
        }
        let shard = &self.shards[shard_index % self.shards.len()];
        let mut shard = shard.lock().unwrap_or_else(|e| e.into_inner());
        let mut touched = 0;
        for entry in shard.entries.values_mut() {
            let mut bytes = std::mem::take(&mut entry.value).into_bytes();
            if let Some(b) = bytes.first_mut() {
                *b ^= 0x80;
                touched += 1;
            }
            entry.value = String::from_utf8_lossy(&bytes).into_owned();
        }
        touched
    }

    /// Poisoned entries detected (and evicted) by [`ResultCache::get`].
    pub fn poisoned_detected(&self) -> u64 {
        self.poisoned_detected.load(Ordering::Relaxed)
    }

    /// Total entries across shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).entries.len())
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(shards: usize, cap: usize) -> ResultCache {
        ResultCache::new(CacheConfig {
            enabled: true,
            shards,
            capacity_per_shard: cap,
        })
    }

    #[test]
    fn get_after_insert_returns_exact_bytes() {
        let cache = tiny(4, 8);
        assert_eq!(cache.get("k1"), None);
        cache.insert("k1", "{\"v\":1}");
        assert_eq!(cache.get("k1").as_deref(), Some("{\"v\":1}"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_touched() {
        // One shard so the eviction order is fully observable.
        let cache = tiny(1, 2);
        cache.insert("a", "1");
        cache.insert("b", "2");
        // Touch "a" so "b" becomes the LRU entry.
        assert!(cache.get("a").is_some());
        cache.insert("c", "3");
        assert_eq!(cache.len(), 2);
        assert!(cache.get("a").is_some());
        assert!(cache.get("b").is_none());
        assert!(cache.get("c").is_some());
    }

    #[test]
    fn disabled_cache_stores_nothing() {
        let cache = ResultCache::new(CacheConfig {
            enabled: false,
            ..CacheConfig::default()
        });
        cache.insert("k", "v");
        assert_eq!(cache.get("k"), None);
        assert!(cache.is_empty());
        assert_eq!(cache.poison_shard(0), 0);
    }

    #[test]
    fn overwrite_replaces_value_in_place() {
        let cache = tiny(2, 4);
        cache.insert("k", "old");
        cache.insert("k", "new");
        assert_eq!(cache.get("k").as_deref(), Some("new"));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn poisoned_entries_are_detected_and_evicted() {
        let cache = tiny(1, 8);
        cache.insert("a", "{\"v\":1}");
        cache.insert("b", "{\"v\":2}");
        assert_eq!(cache.poison_shard(0), 2);
        // Entries are still present but corrupt; the next lookup detects
        // the checksum mismatch, evicts, and misses.
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.get("a"), None);
        assert_eq!(cache.get("b"), None);
        assert_eq!(cache.poisoned_detected(), 2);
        assert!(cache.is_empty());
        // Re-inserting restores normal service.
        cache.insert("a", "{\"v\":1}");
        assert_eq!(cache.get("a").as_deref(), Some("{\"v\":1}"));
    }
}
