//! Typed queries and responses (DESIGN.md §9.3).
//!
//! Every request the serving layer understands is a [`Query`] variant and
//! every answer a [`Response`] variant; both round-trip through `serde`,
//! so the CLI, the cache, and the gates all speak the same canonical JSON.
//!
//! The cache key of a query is [`canonical_key`]: the compact JSON of the
//! *normalized* query (cut sets sorted and deduplicated, latency endpoints
//! ordered), so semantically identical requests share one cache slot.
//! [`key_hash`] (FNV-1a 64) picks the cache shard.

use std::collections::BTreeMap;

use intertubes_mitigation::CutReport;
use intertubes_scenario::{ConditionalRisk, ScenarioPlan};
use serde::{Deserialize, Serialize};

use crate::snapshot::fnv1a64;

/// A request answerable purely from a snapshot.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Query {
    /// Per-provider shared-risk profile (§4.1/§4.2).
    IspRisk {
        /// Provider name.
        isp: String,
    },
    /// Hamming-similarity neighbors of one provider (§4.2, Fig. 8).
    Similarity {
        /// Provider name.
        isp: String,
    },
    /// §5.3 delay comparison for one conduit-joined city pair.
    Latency {
        /// Endpoint label.
        a: String,
        /// Endpoint label.
        b: String,
    },
    /// The k most heavily shared conduits (§4.2 ranking).
    TopShared {
        /// How many conduits to rank.
        k: usize,
    },
    /// Conduit-cut what-if: §4 metrics before/after plus per-pair latency
    /// deltas (§5 via `mitigation::whatif`).
    CutImpact {
        /// Map conduit ids to sever.
        conduits: Vec<u32>,
    },
    /// Geofenced scenario ensemble (DESIGN.md §12): sample the plan's
    /// seeded failure sets over the snapshot and report the expected
    /// impact. Cached by the plan's canonical JSON — which includes the
    /// seed — so replaying a scenario is a cache hit, and changing the
    /// seed is a different key.
    Ensemble {
        /// The full scenario plan.
        plan: ScenarioPlan,
    },
    /// Serving telemetry self-query (DESIGN.md §13): the engine answers
    /// with its own count plane as of the **start of the wave** the query
    /// runs in. Never cached and never deduplicated — the answer depends
    /// on serving history, not on the snapshot — but still deterministic,
    /// because the count plane is.
    Stats,
}

/// Normalizes a query to its canonical form: the form whose serialization
/// is the cache key. Semantically identical queries normalize identically.
pub fn normalize(q: &Query) -> Query {
    match q {
        Query::Latency { a, b } if a > b => Query::Latency {
            a: b.clone(),
            b: a.clone(),
        },
        Query::CutImpact { conduits } => {
            let mut cs = conduits.clone();
            cs.sort_unstable();
            cs.dedup();
            Query::CutImpact { conduits: cs }
        }
        other => other.clone(),
    }
}

/// The canonical cache key: compact JSON of the normalized query.
pub fn canonical_key(q: &Query) -> String {
    // A query is a plain data enum; its serialization cannot fail.
    serde_json::to_string(&normalize(q)).unwrap_or_default()
}

/// Shard selector over canonical keys.
pub fn key_hash(key: &str) -> u64 {
    fnv1a64(key.as_bytes())
}

/// The snapshot-scoped cache key: the canonical key prefixed with the
/// tenant-visible snapshot id, so identical queries against different
/// loaded snapshots never alias in a shared cache (DESIGN.md §14.3). The
/// id is JSON-escaped through `serde_json`, so no id can collide with
/// another id/query combination by embedding delimiter characters.
pub fn scoped_key(snapshot_id: &str, q: &Query) -> String {
    // A string and a data enum; serialization cannot fail.
    let id = serde_json::to_string(snapshot_id).unwrap_or_default();
    format!("{{\"snapshot\":{id},\"query\":{}}}", canonical_key(q))
}

/// One provider's §4 risk profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IspRiskView {
    /// Provider name.
    pub isp: String,
    /// Conduits the provider is a tenant of.
    pub conduits: usize,
    /// Mean share count over the provider's conduits (its row of the §4.2
    /// per-provider average-risk ranking).
    pub avg_shared: f64,
    /// Highest share count on any of its conduits.
    pub max_shared: u16,
    /// Its conduits shared by ≥ 4 providers.
    pub ge4_conduits: usize,
    /// Conduits the traceroute overlay observed carrying its traffic
    /// (§4.3; 0 when the provider was never observed).
    pub observed_conduits: usize,
}

/// One similarity neighbor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeighborView {
    /// Neighbor provider name.
    pub isp: String,
    /// Hamming distance between the two risk-profile rows.
    pub distance: u32,
}

/// A provider's similarity standing (Fig. 8).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimilarityView {
    /// Provider name.
    pub isp: String,
    /// Mean distance to every other provider.
    pub mean_distance: f64,
    /// The five nearest providers, by (distance, name).
    pub nearest: Vec<NeighborView>,
}

/// §5.3 delay comparison for one pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyView {
    /// Endpoint label (lexicographically smaller).
    pub a: String,
    /// Endpoint label.
    pub b: String,
    /// Best existing-route delay, µs.
    pub best_us: f64,
    /// Mean delay over routes within the detour cap, µs.
    pub avg_us: f64,
    /// Best right-of-way delay, µs.
    pub row_us: f64,
    /// Line-of-sight lower bound, µs.
    pub los_us: f64,
    /// Routes stored for the pair.
    pub k_paths: usize,
}

/// One row of the shared-conduit ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SharedConduitView {
    /// Map conduit id.
    pub conduit: u32,
    /// Endpoint label.
    pub a: String,
    /// Endpoint label.
    pub b: String,
    /// Providers sharing the conduit.
    pub shared: u16,
}

/// The §4.2 heaviest-conduit ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopSharedView {
    /// Heaviest conduits, most shared first (ties by id).
    pub ranking: Vec<SharedConduitView>,
}

/// Latency change for one pair whose best route was severed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairDeltaView {
    /// Endpoint label.
    pub a: String,
    /// Endpoint label.
    pub b: String,
    /// Best delay before the cut, µs.
    pub before_us: f64,
    /// Best delay over surviving precomputed routes, µs; `None` when no
    /// stored route survives the cut.
    pub after_us: Option<f64>,
    /// `after - before`, µs (absent with `after_us`).
    pub delta_us: Option<f64>,
}

/// Full conduit-cut what-if answer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutImpactView {
    /// §4 metrics before/after, affected providers, tenancies lost.
    pub report: CutReport,
    /// Pairs whose best route traversed a severed conduit, in pair order.
    pub pair_deltas: Vec<PairDeltaView>,
}

/// Answer to [`Query::Stats`]: a count-plane snapshot taken at the start
/// of the wave the query executes in. Contains only deterministic u64
/// aggregates — nothing timing-derived — so responses stay byte-identical
/// across thread counts **and** cache modes (cache counters live in the
/// stats document, not here, precisely because they differ across modes).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StatsView {
    /// Stats schema tag (`intertubes-stats/v1`).
    pub schema: String,
    /// Waves fully executed before this query's wave.
    pub waves: u64,
    /// Queries submitted to the scheduler so far.
    pub submitted: u64,
    /// Queries past admission control.
    pub admitted: u64,
    /// Queries rejected at admission.
    pub rejected: u64,
    /// Queries shed as degraded before this wave.
    pub degraded: u64,
    /// Queries seen per family label, in label order.
    pub families: BTreeMap<String, u64>,
}

/// An answer. `NotFound` and `Rejected` are ordinary responses — the
/// engine never panics and the scheduler never drops a query silently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Answer to [`Query::IspRisk`].
    IspRisk(IspRiskView),
    /// Answer to [`Query::Similarity`].
    Similarity(SimilarityView),
    /// Answer to [`Query::Latency`].
    Latency(LatencyView),
    /// Answer to [`Query::TopShared`].
    TopShared(TopSharedView),
    /// Answer to [`Query::CutImpact`].
    CutImpact(CutImpactView),
    /// Answer to [`Query::Ensemble`].
    Ensemble(ConditionalRisk),
    /// Answer to [`Query::Stats`].
    Stats(StatsView),
    /// The query was well-formed but semantically invalid (e.g. a
    /// scenario plan with a NaN probability); carries the typed error's
    /// rendering. Like [`Response::NotFound`], an ordinary response.
    InvalidQuery {
        /// The validation error, rendered.
        reason: String,
    },
    /// The named entity does not exist in the snapshot.
    NotFound {
        /// What was looked up.
        what: String,
    },
    /// Admission control turned the query away (backpressure).
    Rejected {
        /// Why.
        reason: String,
    },
    /// The scheduler shed this query under injected overload or deadline
    /// pressure (graceful degradation — never a silent drop, mirroring
    /// [`Response::Rejected`]). Under the lenient policy a stale cached
    /// answer is served alongside when one exists.
    Degraded {
        /// Why the query was shed (deterministic: wave and queue position,
        /// never wall-clock).
        reason: String,
        /// The stale cached canonical response, when the lenient policy
        /// found one to serve.
        stale: Option<String>,
    },
}

impl Response {
    /// The canonical serialized form — what the scheduler returns, the
    /// cache stores, and the gates byte-compare.
    pub fn to_canonical_json(&self) -> String {
        // A response is a plain data enum; serialization cannot fail.
        serde_json::to_string(self).unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_key_normalizes_equivalent_queries() {
        let k1 = canonical_key(&Query::Latency {
            a: "B, XX".into(),
            b: "A, XX".into(),
        });
        let k2 = canonical_key(&Query::Latency {
            a: "A, XX".into(),
            b: "B, XX".into(),
        });
        assert_eq!(k1, k2);
        let c1 = canonical_key(&Query::CutImpact {
            conduits: vec![7, 3, 7, 1],
        });
        let c2 = canonical_key(&Query::CutImpact {
            conduits: vec![1, 3, 7],
        });
        assert_eq!(c1, c2);
        // Different queries get different keys.
        assert_ne!(
            canonical_key(&Query::TopShared { k: 4 }),
            canonical_key(&Query::TopShared { k: 5 })
        );
    }

    #[test]
    fn queries_and_responses_round_trip() {
        let q = Query::CutImpact {
            conduits: vec![3, 1],
        };
        let text = serde_json::to_string(&q).unwrap();
        let back: Query = serde_json::from_str(&text).unwrap();
        assert_eq!(q, back);

        let r = Response::NotFound {
            what: "provider \"Nowhere\"".into(),
        };
        let text = r.to_canonical_json();
        let back: Response = serde_json::from_str(&text).unwrap();
        assert_eq!(r, back);

        let d = Response::Degraded {
            reason: "overload burst: wave 3 shed from position 2".into(),
            stale: Some("{\"cached\":true}".into()),
        };
        let text = d.to_canonical_json();
        let back: Response = serde_json::from_str(&text).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn ensemble_key_includes_plan_and_seed() {
        let (_, mut plan) = intertubes_scenario::ScenarioPlan::built_in_scenarios()
            .into_iter()
            .next()
            .expect("built-ins");
        let k1 = canonical_key(&Query::Ensemble { plan: plan.clone() });
        // Same plan → same key (normalization is the identity here).
        let k1b = canonical_key(&Query::Ensemble { plan: plan.clone() });
        assert_eq!(k1, k1b);
        // A different seed is a different cache slot.
        plan.seed ^= 1;
        let k2 = canonical_key(&Query::Ensemble { plan: plan.clone() });
        assert_ne!(k1, k2);
        // Round trip through the canonical JSON.
        let q = Query::Ensemble { plan };
        let text = serde_json::to_string(&q).unwrap();
        let back: Query = serde_json::from_str(&text).unwrap();
        assert_eq!(q, back);
    }

    #[test]
    fn scoped_key_separates_snapshots_and_defeats_injection() {
        let q = Query::TopShared { k: 4 };
        let base = scoped_key("default", &q);
        assert_ne!(base, scoped_key("other", &q));
        assert_eq!(base, scoped_key("default", &normalize(&q)));
        // An id full of JSON delimiters still produces a distinct,
        // well-formed key rather than aliasing another snapshot's slot.
        let hostile = scoped_key("a\",\"query\":{}", &q);
        assert_ne!(hostile, base);
        let parsed: serde_json::Value = serde_json::from_str(&hostile).unwrap();
        assert_eq!(parsed["snapshot"], "a\",\"query\":{}");
    }

    #[test]
    fn key_hash_spreads_keys() {
        let h1 = key_hash(&canonical_key(&Query::TopShared { k: 4 }));
        let h2 = key_hash(&canonical_key(&Query::TopShared { k: 5 }));
        assert_ne!(h1, h2);
    }
}
