//! Per-tenant admission quotas (DESIGN.md §14.4).
//!
//! The wave scheduler's admission control is position-based and
//! tenant-blind: one hot tenant flooding the queue pushes everyone else's
//! queries past `admit_max`. The remote front-end therefore enforces a
//! **per-tenant token bucket** *ahead* of queue-position admission: a
//! tenant over its quota receives a typed [`crate::query::Response::Rejected`]
//! answer (never a drop, never a closed connection) and the query never
//! occupies a queue slot another tenant could have used.
//!
//! Buckets tick in **request-count time**, not wall-clock time: every
//! `window` requests *from that tenant*, `refill` tokens are added (capped
//! at `burst`). A tenant's quota decisions are therefore a pure function
//! of its own request index — independent of scheduling, thread count, and
//! cross-tenant interleaving — which is what lets the remote determinism
//! gate byte-compare quota outcomes across 1/2/8 concurrent clients.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

/// Quota shape shared by every tenant of one serving process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct QuotaConfig {
    /// Bucket capacity: the largest burst a tenant can spend at once.
    /// `0` disables quota enforcement entirely (every request admitted).
    pub burst: u64,
    /// Tokens returned to the bucket each time a tenant's own request
    /// count crosses a `window` boundary.
    pub refill: u64,
    /// The request-count period (in requests from that tenant) between
    /// refills. Clamped to ≥ 1.
    pub window: u64,
}

impl Default for QuotaConfig {
    /// Unlimited: the default serving configuration enforces no quota, so
    /// single-tenant and local replay behavior is unchanged.
    fn default() -> Self {
        QuotaConfig {
            burst: 0,
            refill: 0,
            window: 1,
        }
    }
}

impl QuotaConfig {
    /// A quota admitting `burst` queries up front and `refill` more per
    /// `window` requests thereafter.
    pub fn limited(burst: u64, refill: u64, window: u64) -> QuotaConfig {
        QuotaConfig {
            burst,
            refill,
            window: window.max(1),
        }
    }

    /// Whether this config enforces anything.
    pub fn is_unlimited(&self) -> bool {
        self.burst == 0
    }
}

/// One tenant's bucket state.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Bucket {
    /// Tokens currently available.
    tokens: u64,
    /// Requests seen from this tenant (drives request-count refills).
    seen: u64,
}

/// What the gate decided for one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaDecision {
    /// Within quota — proceed to queue-position admission.
    Admitted,
    /// Over quota — answer with a typed `Rejected` response.
    Rejected,
}

/// The per-tenant admission gate. Single-owner mutable state: the remote
/// server consults it from its serial routing phase, so no locking.
#[derive(Debug, Clone)]
pub struct TenantQuotas {
    cfg: QuotaConfig,
    buckets: BTreeMap<String, Bucket>,
}

impl TenantQuotas {
    /// A gate where every tenant gets an identical `cfg` bucket.
    pub fn new(cfg: QuotaConfig) -> TenantQuotas {
        TenantQuotas {
            cfg,
            buckets: BTreeMap::new(),
        }
    }

    /// The shared quota shape.
    pub fn config(&self) -> QuotaConfig {
        self.cfg
    }

    /// Gates one request from `tenant`. Refills are applied before the
    /// spend, so a tenant that paced itself to its refill rate is never
    /// rejected. Deterministic: the outcome depends only on `cfg` and how
    /// many requests this tenant has made before this one.
    pub fn admit(&mut self, tenant: &str) -> QuotaDecision {
        if self.cfg.is_unlimited() {
            return QuotaDecision::Admitted;
        }
        let bucket = self
            .buckets
            .entry(tenant.to_string())
            .or_insert_with(|| Bucket {
                tokens: self.cfg.burst,
                seen: 0,
            });
        bucket.seen += 1;
        // Request-count refill: one refill each time the tenant's own
        // request count crosses a window boundary.
        if bucket.seen % self.cfg.window == 0 {
            bucket.tokens = (bucket.tokens + self.cfg.refill).min(self.cfg.burst);
        }
        if bucket.tokens > 0 {
            bucket.tokens -= 1;
            QuotaDecision::Admitted
        } else {
            QuotaDecision::Rejected
        }
    }

    /// Tokens `tenant` has left (the full burst for a tenant never seen).
    pub fn remaining(&self, tenant: &str) -> u64 {
        if self.cfg.is_unlimited() {
            return u64::MAX;
        }
        self.buckets
            .get(tenant)
            .map_or(self.cfg.burst, |b| b.tokens)
    }

    /// Tenants the gate has seen, in name order.
    pub fn tenants(&self) -> impl Iterator<Item = &str> {
        self.buckets.keys().map(String::as_str)
    }
}

/// The canonical `Rejected` reason for a quota rejection — shared by the
/// server and the tests so byte-comparison is meaningful.
pub fn quota_rejection(tenant: &str, cfg: &QuotaConfig) -> String {
    format!(
        "tenant {tenant:?} over quota (burst {}, refill {}/{} requests)",
        cfg.burst, cfg.refill, cfg.window
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_admits_everything() {
        let mut q = TenantQuotas::new(QuotaConfig::default());
        for _ in 0..10_000 {
            assert_eq!(q.admit("any"), QuotaDecision::Admitted);
        }
        assert_eq!(q.remaining("any"), u64::MAX);
    }

    #[test]
    fn burst_then_reject_then_refill() {
        // 3-token burst, 1 token back every 4 requests.
        let mut q = TenantQuotas::new(QuotaConfig::limited(3, 1, 4));
        let outcomes: Vec<bool> = (0..8)
            .map(|_| q.admit("t") == QuotaDecision::Admitted)
            .collect();
        // Requests 1–3 spend the burst; request 4 crosses the window
        // boundary (refill 1) and spends it; 5–7 find the bucket empty;
        // request 8 refills again and is admitted.
        assert_eq!(
            outcomes,
            vec![true, true, true, true, false, false, false, true]
        );
    }

    #[test]
    fn tenants_are_isolated() {
        let mut q = TenantQuotas::new(QuotaConfig::limited(2, 0, 1));
        // Tenant A saturates its bucket...
        assert_eq!(q.admit("a"), QuotaDecision::Admitted);
        assert_eq!(q.admit("a"), QuotaDecision::Admitted);
        assert_eq!(q.admit("a"), QuotaDecision::Rejected);
        // ...without costing tenant B a single token.
        assert_eq!(q.remaining("b"), 2);
        assert_eq!(q.admit("b"), QuotaDecision::Admitted);
        assert_eq!(q.admit("b"), QuotaDecision::Admitted);
    }

    #[test]
    fn decisions_are_interleaving_independent() {
        let cfg = QuotaConfig::limited(2, 1, 3);
        // Serve A's and B's request streams in two different interleavings
        // and check each tenant sees the same per-request outcome vector.
        let serial = {
            let mut q = TenantQuotas::new(cfg);
            let a: Vec<_> = (0..6).map(|_| q.admit("a")).collect();
            let b: Vec<_> = (0..6).map(|_| q.admit("b")).collect();
            (a, b)
        };
        let interleaved = {
            let mut q = TenantQuotas::new(cfg);
            let mut a = Vec::new();
            let mut b = Vec::new();
            for _ in 0..6 {
                b.push(q.admit("b"));
                a.push(q.admit("a"));
            }
            (a, b)
        };
        assert_eq!(serial, interleaved);
    }

    #[test]
    fn refill_caps_at_burst() {
        let mut q = TenantQuotas::new(QuotaConfig::limited(2, 5, 1));
        // Every request refills 5 but the bucket never exceeds 2, so the
        // tenant can never burst past its cap no matter how long it idles
        // in request-count time.
        for _ in 0..20 {
            assert_eq!(q.admit("t"), QuotaDecision::Admitted);
        }
        assert!(q.remaining("t") <= 2);
    }
}
