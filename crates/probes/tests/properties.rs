//! Property-based tests for the traceroute substrate.

use intertubes_geo::GeoPoint;
use intertubes_probes::{classify_direction, Direction};
use proptest::prelude::*;

fn conus() -> impl Strategy<Value = GeoPoint> {
    (25.0f64..49.0, -124.0f64..-67.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon).unwrap())
}

proptest! {
    #[test]
    fn direction_is_antisymmetric(a in conus(), b in conus()) {
        let fwd = classify_direction(&a, &b);
        let rev = classify_direction(&b, &a);
        match fwd {
            Direction::WestToEast => prop_assert_eq!(rev, Direction::EastToWest),
            Direction::EastToWest => prop_assert_eq!(rev, Direction::WestToEast),
            Direction::Meridional => prop_assert_eq!(rev, Direction::Meridional),
        }
    }

    #[test]
    fn direction_matches_dominant_axis(a in conus(), b in conus()) {
        let d = classify_direction(&a, &b);
        let dlon = (b.lon - a.lon).abs();
        let dlat = (b.lat - a.lat).abs();
        if dlat > dlon {
            prop_assert_eq!(d, Direction::Meridional);
        } else if b.lon > a.lon {
            prop_assert_eq!(d, Direction::WestToEast);
        } else if b.lon < a.lon {
            prop_assert_eq!(d, Direction::EastToWest);
        }
    }
}

mod shard_merge {
    //! The overlay's shard-merge algebra (DESIGN.md §7): the per-shard
    //! accumulators merge associatively and commutatively, so the overlay
    //! is independent of shard boundaries and merge order.

    use std::sync::OnceLock;

    use intertubes_atlas::World;
    use intertubes_degrade::DegradationPolicy;
    use intertubes_map::{build_map, FiberMap, PipelineConfig};
    use intertubes_probes::{
        overlay_campaign, overlay_campaign_with_chunk_size, run_campaign, Campaign, Overlay,
        ProbeConfig,
    };
    use intertubes_records::{generate_corpus, CorpusConfig};
    use proptest::prelude::*;

    struct Fixture {
        world: World,
        map: FiberMap,
        campaign: Campaign,
        baseline: Overlay,
    }

    fn fixture() -> &'static Fixture {
        static F: OnceLock<Fixture> = OnceLock::new();
        F.get_or_init(|| {
            let world = World::reference();
            let corpus = generate_corpus(&world, &CorpusConfig::default());
            let built = build_map(
                &world.publish_maps(),
                &corpus,
                &world.cities,
                &world.roads,
                &world.rails,
                &PipelineConfig::default(),
            );
            let campaign = run_campaign(
                &world,
                &ProbeConfig {
                    probes: 1_500,
                    ..ProbeConfig::default()
                },
            );
            let baseline = overlay_campaign(&world, &built.map, &campaign);
            Fixture {
                world,
                map: built.map,
                campaign,
                baseline,
            }
        })
    }

    /// A campaign containing only the given trace slice.
    fn sub_campaign(f: &Fixture, range: std::ops::Range<usize>) -> Campaign {
        Campaign {
            config: f.campaign.config,
            traces: f.campaign.traces[range].to_vec(),
            unrouted: 0,
        }
    }

    fn canon(ov: &Overlay) -> String {
        serde_json::to_string(ov).expect("overlay serializes")
    }

    proptest! {
        #[test]
        fn chunk_boundaries_never_change_the_overlay(chunk in 1usize..2_000) {
            let f = fixture();
            let (ov, report) = overlay_campaign_with_chunk_size(
                &f.world,
                &f.map,
                &f.campaign,
                DegradationPolicy::Strict,
                chunk,
            )
            .expect("clean campaign");
            prop_assert_eq!(canon(&ov), canon(&f.baseline));
            prop_assert!(report.is_clean());
        }

        #[test]
        fn shard_merge_is_associative_and_commutative(
            a in 0usize..1_500,
            b in 0usize..1_500,
        ) {
            let f = fixture();
            // Not every probe routes, so the campaign can hold fewer traces
            // than the requested 1 500 — clamp the split points to it.
            let n = f.campaign.traces.len();
            let (i, j) = (a.min(b).min(n), a.max(b).min(n));
            let parts = [
                sub_campaign(f, 0..i),
                sub_campaign(f, i..j),
                sub_campaign(f, j..f.campaign.traces.len()),
            ];
            let overlays: Vec<Overlay> = parts
                .iter()
                .map(|c| overlay_campaign(&f.world, &f.map, c))
                .collect();
            // Left fold: ((A ⊔ B) ⊔ C).
            let mut left = overlays[0].clone();
            left.merge(&overlays[1]);
            left.merge(&overlays[2]);
            // Right fold: (A ⊔ (B ⊔ C)).
            let mut bc = overlays[1].clone();
            bc.merge(&overlays[2]);
            let mut right = overlays[0].clone();
            right.merge(&bc);
            // Reversed order: ((C ⊔ B) ⊔ A).
            let mut rev = overlays[2].clone();
            rev.merge(&overlays[1]);
            rev.merge(&overlays[0]);
            let want = canon(&f.baseline);
            prop_assert_eq!(canon(&left), want.clone());
            prop_assert_eq!(canon(&right), want.clone());
            prop_assert_eq!(canon(&rev), want);
        }
    }
}

mod campaign_invariants {
    use intertubes_atlas::World;
    use intertubes_probes::{run_campaign, ProbeConfig};

    /// Campaign-level invariants on the reference world at several noise
    /// settings: hop sequences start at the source, end at the destination
    /// unless geolocation dropped it, and all hints are roster names.
    #[test]
    fn hop_sequences_are_well_formed_under_noise() {
        let world = World::reference();
        for (mpls, geo) in [(0.0, 0.0), (0.5, 0.3)] {
            let cfg = ProbeConfig {
                probes: 2_000,
                mpls_rate: mpls,
                geolocation_failure_rate: geo,
                ..ProbeConfig::default()
            };
            let campaign = run_campaign(&world, &cfg);
            for t in &campaign.traces {
                assert!(!t.hops.is_empty());
                if let Some(first) = t.hops.first().and_then(|h| h.city) {
                    assert_eq!(first, t.src, "first resolved hop is the source");
                }
                if geo == 0.0 && mpls == 0.0 {
                    // With zero noise the last hop is always the destination.
                    assert_eq!(t.hops.last().unwrap().city, Some(t.dst));
                }
            }
        }
    }
}
