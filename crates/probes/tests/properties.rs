//! Property-based tests for the traceroute substrate.

use intertubes_geo::GeoPoint;
use intertubes_probes::{classify_direction, Direction};
use proptest::prelude::*;

fn conus() -> impl Strategy<Value = GeoPoint> {
    (25.0f64..49.0, -124.0f64..-67.0).prop_map(|(lat, lon)| GeoPoint::new(lat, lon).unwrap())
}

proptest! {
    #[test]
    fn direction_is_antisymmetric(a in conus(), b in conus()) {
        let fwd = classify_direction(&a, &b);
        let rev = classify_direction(&b, &a);
        match fwd {
            Direction::WestToEast => prop_assert_eq!(rev, Direction::EastToWest),
            Direction::EastToWest => prop_assert_eq!(rev, Direction::WestToEast),
            Direction::Meridional => prop_assert_eq!(rev, Direction::Meridional),
        }
    }

    #[test]
    fn direction_matches_dominant_axis(a in conus(), b in conus()) {
        let d = classify_direction(&a, &b);
        let dlon = (b.lon - a.lon).abs();
        let dlat = (b.lat - a.lat).abs();
        if dlat > dlon {
            prop_assert_eq!(d, Direction::Meridional);
        } else if b.lon > a.lon {
            prop_assert_eq!(d, Direction::WestToEast);
        } else if b.lon < a.lon {
            prop_assert_eq!(d, Direction::EastToWest);
        }
    }
}

mod campaign_invariants {
    use intertubes_atlas::World;
    use intertubes_probes::{run_campaign, ProbeConfig};

    /// Campaign-level invariants on the reference world at several noise
    /// settings: hop sequences start at the source, end at the destination
    /// unless geolocation dropped it, and all hints are roster names.
    #[test]
    fn hop_sequences_are_well_formed_under_noise() {
        let world = World::reference();
        for (mpls, geo) in [(0.0, 0.0), (0.5, 0.3)] {
            let cfg = ProbeConfig {
                probes: 2_000,
                mpls_rate: mpls,
                geolocation_failure_rate: geo,
                ..ProbeConfig::default()
            };
            let campaign = run_campaign(&world, &cfg);
            for t in &campaign.traces {
                assert!(!t.hops.is_empty());
                if let Some(first) = t.hops.first().and_then(|h| h.city) {
                    assert_eq!(first, t.src, "first resolved hop is the source");
                }
                if geo == 0.0 && mpls == 0.0 {
                    // With zero noise the last hop is always the destination.
                    assert_eq!(t.hops.last().unwrap().city, Some(t.dst));
                }
            }
        }
    }
}
