//! Measurement-noise injection: the §4.3 overlay must degrade gracefully —
//! and predictably — as MPLS opacity, geolocation failures and DNS-hint
//! scarcity increase.

use std::sync::OnceLock;

use intertubes_atlas::World;
use intertubes_map::{build_map, FiberMap, PipelineConfig};
use intertubes_probes::{overlay_campaign, run_campaign, ProbeConfig};
use intertubes_records::{generate_corpus, CorpusConfig};

fn fixture() -> &'static (World, FiberMap) {
    static F: OnceLock<(World, FiberMap)> = OnceLock::new();
    F.get_or_init(|| {
        let world = World::reference();
        let corpus = generate_corpus(&world, &CorpusConfig::default());
        let built = build_map(
            &world.publish_maps(),
            &corpus,
            &world.cities,
            &world.roads,
            &world.rails,
            &PipelineConfig::default(),
        );
        (world, built.map)
    })
}

fn overlay_with(cfg: ProbeConfig) -> intertubes_probes::Overlay {
    let (world, map) = fixture();
    let campaign = run_campaign(world, &cfg);
    overlay_campaign(world, map, &campaign)
}

const BASE: ProbeConfig = ProbeConfig {
    probes: 8_000,
    seed: 2014,
    mpls_rate: 0.2,
    geolocation_failure_rate: 0.08,
    dns_hint_rate: 0.7,
    single_carrier_rate: 0.3,
};

#[test]
fn no_hints_means_no_observed_carriers() {
    let ov = overlay_with(ProbeConfig {
        dns_hint_rate: 0.0,
        ..BASE
    });
    assert!(
        ov.isp_conduits.is_empty(),
        "no DNS hints → no carrier attribution"
    );
    assert!(ov.observed_isps.iter().all(|s| s.is_empty()));
    // Conduit frequencies still accumulate (geolocation still works).
    assert!(ov.conduit_freq.iter().sum::<u64>() > 1_000);
}

#[test]
fn full_hints_reveal_more_carriers_than_partial() {
    let partial = overlay_with(BASE);
    let full = overlay_with(ProbeConfig {
        dns_hint_rate: 1.0,
        ..BASE
    });
    let count =
        |ov: &intertubes_probes::Overlay| ov.observed_isps.iter().map(|s| s.len()).sum::<usize>();
    assert!(
        count(&full) > count(&partial),
        "full hints {} vs partial {}",
        count(&full),
        count(&partial)
    );
}

#[test]
fn heavy_geolocation_failure_skips_more_traces() {
    let clean = overlay_with(ProbeConfig {
        geolocation_failure_rate: 0.0,
        ..BASE
    });
    let dirty = overlay_with(ProbeConfig {
        geolocation_failure_rate: 0.7,
        ..BASE
    });
    let skip_rate = |ov: &intertubes_probes::Overlay| {
        ov.skipped as f64 / (ov.overlaid + ov.skipped).max(1) as f64
    };
    assert!(
        skip_rate(&dirty) > skip_rate(&clean),
        "dirty {} vs clean {}",
        skip_rate(&dirty),
        skip_rate(&clean)
    );
    // Even at 70 % failure, most traces have ≥ 2 surviving hops somewhere.
    assert!(dirty.overlaid > 0);
}

#[test]
fn mpls_shifts_attribution_to_gap_paths_not_off_the_map() {
    // With aggressive tunnelling, hops disappear but the overlay bridges
    // the gaps over the map: total traversal mass must not collapse.
    let open = overlay_with(ProbeConfig {
        mpls_rate: 0.0,
        ..BASE
    });
    let tunnelled = overlay_with(ProbeConfig {
        mpls_rate: 0.95,
        ..BASE
    });
    let mass_open: u64 = open.conduit_freq.iter().sum();
    let mass_tun: u64 = tunnelled.conduit_freq.iter().sum();
    assert!(
        mass_tun > mass_open / 2,
        "tunnelling should not halve overlay mass: {mass_tun} vs {mass_open}"
    );
}

#[test]
fn direction_split_is_roughly_symmetric() {
    let ov = overlay_with(BASE);
    let we: u64 = ov.west_east.iter().sum();
    let ew: u64 = ov.east_west.iter().sum();
    let ratio = we as f64 / ew.max(1) as f64;
    // Sources and destinations are drawn from the same distribution.
    assert!((0.7..1.4).contains(&ratio), "W→E/E→W ratio {ratio}");
}

#[test]
fn overlay_mass_scales_with_campaign_size() {
    let small = overlay_with(ProbeConfig {
        probes: 2_000,
        ..BASE
    });
    let large = overlay_with(ProbeConfig {
        probes: 8_000,
        ..BASE
    });
    let (ms, ml): (u64, u64) = (
        small.conduit_freq.iter().sum(),
        large.conduit_freq.iter().sum(),
    );
    let ratio = ml as f64 / ms.max(1) as f64;
    assert!(
        (3.0..5.5).contains(&ratio),
        "4× probes should give ~4× mass, got {ratio:.2}×"
    );
}

#[test]
fn observed_carriers_are_plausible_tenants_mostly() {
    // Hint-based attribution should usually name carriers that genuinely
    // ride the conduit in the ground truth (the hint *is* the segment
    // owner), with a tolerated minority of gap-path smearing.
    let (world, map) = fixture();
    let campaign = run_campaign(world, &BASE);
    let ov = overlay_campaign(world, map, &campaign);
    let mut attributions = 0usize;
    let mut correct = 0usize;
    for (ci, observed) in ov.observed_isps.iter().enumerate() {
        let mc = &map.conduits[ci];
        let (a, b) = (
            &map.nodes[mc.a.index()].label,
            &map.nodes[mc.b.index()].label,
        );
        // Ground truth: tenants of any conduit between the same pair.
        for isp in observed {
            attributions += 1;
            let i = world.roster.iter().position(|p| &p.name == isp);
            let Some(i) = i else { continue };
            let fp = &world.footprints[i];
            let on_pair = fp.conduits.iter().any(|c| {
                let cd = world.system.conduit(*c);
                let (ta, tb) = (world.city_label(cd.a), world.city_label(cd.b));
                (&ta == a && &tb == b) || (&ta == b && &tb == a)
            });
            correct += on_pair as usize;
        }
    }
    let precision = correct as f64 / attributions.max(1) as f64;
    assert!(
        precision > 0.5,
        "hint attribution should beat a coin flip: {precision:.2} over {attributions}"
    );
}
