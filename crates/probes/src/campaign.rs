//! Synthetic traceroute campaigns (the paper's §4.3 measurement input).
//!
//! The paper overlays 4.9 M Edgescope traceroutes — probes launched from
//! BitTorrent clients in residential networks — onto the physical map. We
//! simulate the same measurement: clients in population-weighted cities
//! probe destinations across the country; each probe's layer-3 path is an
//! access-ISP segment, a transit segment, and (usually) a far-side access
//! segment, routed over the carriers' ground-truth conduit footprints.
//!
//! Measurement imperfections are modelled explicitly:
//! * **MPLS tunnels** hide the interior hops of a transit segment (the
//!   paper argues, citing its own MPLS study, that the frequency is low
//!   enough not to bias the overlay — the default rate matches).
//! * **Geolocation failures** leave hops unresolved.
//! * **DNS naming hints** (airport codes and carrier tags in interface
//!   names) identify a hop's operator only part of the time.

use std::collections::HashMap;
use std::rc::Rc;

use intertubes_atlas::{CityId, IspTier, World};
use intertubes_graph::{dijkstra, EdgeId, NodeId, Path};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Campaign parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeConfig {
    /// Number of traceroutes to launch (paper: 4.9 M over 3 months; default
    /// is CI-friendly and the harness sweeps it).
    pub probes: usize,
    /// Campaign RNG seed (combined with the world seed).
    pub seed: u64,
    /// Probability that a transit segment traverses an MPLS tunnel, hiding
    /// its interior hops.
    pub mpls_rate: f64,
    /// Probability that a hop cannot be geolocated.
    pub geolocation_failure_rate: f64,
    /// Probability that a hop's interface name reveals its operator.
    pub dns_hint_rate: f64,
    /// Probability that a single-carrier route is used when available
    /// (otherwise access + transit composition).
    pub single_carrier_rate: f64,
}

impl Default for ProbeConfig {
    fn default() -> Self {
        ProbeConfig {
            probes: 200_000,
            seed: 2014, // the campaign window in the paper: Jan–Mar 2014
            mpls_rate: 0.2,
            geolocation_failure_rate: 0.08,
            dns_hint_rate: 0.7,
            single_carrier_rate: 0.3,
        }
    }
}

/// One observed traceroute hop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hop {
    /// Geolocated city, if resolution succeeded.
    pub city: Option<CityId>,
    /// Operator revealed by DNS naming hints, if parseable (provider name).
    pub isp_hint: Option<String>,
}

/// One observed traceroute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Traceroute {
    /// Source city (client geolocation — assumed reliable, as in the paper).
    pub src: CityId,
    /// Destination city.
    pub dst: CityId,
    /// Observed hops, source side first.
    pub hops: Vec<Hop>,
}

/// A full campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Campaign {
    /// Parameters used.
    pub config: ProbeConfig,
    /// The traceroutes.
    pub traces: Vec<Traceroute>,
    /// Probes that could not be routed (no carrier combination reaches).
    pub unrouted: usize,
}

/// Per-provider routing state over the ground-truth conduit graph.
struct CarrierTable<'w> {
    world: &'w World,
    /// For each provider: banned-edge mask (edges outside the footprint).
    banned: Vec<Vec<bool>>,
    /// For each provider: whether it touches each city.
    presence: Vec<Vec<bool>>,
    /// Provider weights for access selection (per city aggregated lazily).
    access_weight: Vec<f64>,
    /// Provider weights for transit selection.
    transit_weight: Vec<f64>,
    /// Path cache: (provider, src, dst) → path (None = unreachable).
    cache: HashMap<(u16, u32, u32), Option<Rc<Path>>>,
}

impl<'w> CarrierTable<'w> {
    fn new(world: &'w World) -> Self {
        let n_edges = world.system.graph.edge_count();
        let n_cities = world.cities.len();
        let mut banned = Vec::new();
        let mut presence = Vec::new();
        let mut access_weight = Vec::new();
        let mut transit_weight = Vec::new();
        for (i, fp) in world.footprints.iter().enumerate() {
            let mut b = vec![true; n_edges];
            let mut p = vec![false; n_cities];
            for c in &fp.conduits {
                // Conduit ids equal edge ids by construction in the atlas.
                b[c.index()] = false;
                let cd = world.system.conduit(*c);
                p[cd.a.index()] = true;
                p[cd.b.index()] = true;
            }
            banned.push(b);
            presence.push(p);
            let profile = &world.roster[i];
            // Edgescope probes originate in residential networks: cable and
            // regional access providers dominate the first mile, tier-1
            // carriers dominate transit.
            let links = profile.target_links as f64;
            access_weight.push(match profile.tier {
                IspTier::Cable => 6.0 * links,
                IspTier::Regional => 2.0 * links,
                IspTier::Tier1 => 0.5 * links,
            });
            transit_weight.push(match profile.tier {
                IspTier::Tier1 => 3.0 * links,
                IspTier::Regional => 1.0 * links,
                IspTier::Cable => 0.4 * links,
            });
        }
        CarrierTable {
            world,
            banned,
            presence,
            access_weight,
            transit_weight,
            cache: HashMap::new(),
        }
    }

    /// Shortest km-path within provider `isp`'s footprint, cached.
    fn route(&mut self, isp: usize, src: CityId, dst: CityId) -> Option<Rc<Path>> {
        let key = (isp as u16, src.0, dst.0);
        if let Some(hit) = self.cache.get(&key) {
            return hit.clone();
        }
        let world = self.world;
        let banned = &self.banned[isp];
        let g = &world.system.graph;
        let cost = |e: EdgeId| {
            if banned[e.index()] {
                f64::INFINITY
            } else {
                world.system.conduit(*g.edge(e)).length_km
            }
        };
        let path = dijkstra(g, NodeId(src.0), NodeId(dst.0), cost)
            .expect("length cost is non-negative")
            .map(Rc::new);
        self.cache.insert(key, path.clone());
        path
    }

    fn weighted_pick(
        &self,
        rng: &mut StdRng,
        weights: &[f64],
        filter: impl Fn(usize) -> bool,
    ) -> Option<usize> {
        let total: f64 = weights
            .iter()
            .enumerate()
            .filter(|(i, _)| filter(*i))
            .map(|(_, w)| *w)
            .sum();
        if total <= 0.0 {
            return None;
        }
        let mut x = rng.gen::<f64>() * total;
        for (i, w) in weights.iter().enumerate() {
            if !filter(i) {
                continue;
            }
            if x < *w {
                return Some(i);
            }
            x -= w;
        }
        None
    }
}

/// City-level route plus the provider owning each hop-to-hop segment.
struct PlannedRoute {
    cities: Vec<CityId>,
    /// Owner of the segment entering `cities[i+1]` (len = cities.len()-1).
    owners: Vec<usize>,
    /// Range of hop indices inside an MPLS tunnel, if the transit segment
    /// got tunnelled.
    tunnel: Option<(usize, usize)>,
}

fn extend_route(route: &mut PlannedRoute, path: &Path, owner: usize) {
    let start = if route.cities.is_empty() { 0 } else { 1 };
    for n in &path.nodes[start..] {
        route.cities.push(CityId(n.0));
    }
    for _ in &path.edges {
        route.owners.push(owner);
    }
}

/// Runs a campaign over the world.
pub fn run_campaign(world: &World, cfg: &ProbeConfig) -> Campaign {
    let mut span = intertubes_obs::stage("probes.campaign");
    span.items("probes", cfg.probes);
    let mut rng = StdRng::seed_from_u64(world.config.seed ^ cfg.seed.rotate_left(17));
    let mut table = CarrierTable::new(world);
    // Population-weighted city sampler.
    let total_pop: f64 = world.cities.iter().map(|c| c.population as f64).sum();
    let mut cumulative = Vec::with_capacity(world.cities.len());
    let mut acc = 0.0;
    for c in &world.cities {
        acc += c.population as f64 / total_pop;
        cumulative.push(acc);
    }
    let sample_city = |rng: &mut StdRng| -> CityId {
        let x: f64 = rng.gen();
        CityId(
            cumulative
                .partition_point(|&c| c < x)
                .min(world.cities.len() - 1) as u32,
        )
    };

    let mut traces = Vec::with_capacity(cfg.probes);
    let mut unrouted = 0usize;
    for _ in 0..cfg.probes {
        let src = sample_city(&mut rng);
        let dst = sample_city(&mut rng);
        if src == dst {
            unrouted += 1;
            continue;
        }
        // A client retries with a different carrier combination when a
        // first-choice combination cannot reach the destination.
        let mut planned = None;
        for _ in 0..6 {
            if let Some(r) = plan_route(&mut table, &mut rng, cfg, src, dst) {
                planned = Some(r);
                break;
            }
        }
        let Some(route) = planned else {
            unrouted += 1;
            continue;
        };
        traces.push(observe(route, &mut rng, cfg, world));
    }
    span.items("traces", traces.len());
    span.items("unrouted", unrouted);
    Campaign {
        config: *cfg,
        traces,
        unrouted,
    }
}

/// Plans a city-level route: single carrier, or access→transit(→access).
fn plan_route(
    table: &mut CarrierTable<'_>,
    rng: &mut StdRng,
    cfg: &ProbeConfig,
    src: CityId,
    dst: CityId,
) -> Option<PlannedRoute> {
    // Option A: one carrier covers both ends.
    if rng.gen_bool(cfg.single_carrier_rate) {
        let weights = table.transit_weight.clone();
        if let Some(isp) = table.weighted_pick(rng, &weights, |i| {
            table.presence[i][src.index()] && table.presence[i][dst.index()]
        }) {
            if let Some(p) = table.route(isp, src, dst) {
                let mut route = PlannedRoute {
                    cities: Vec::new(),
                    owners: Vec::new(),
                    tunnel: None,
                };
                extend_route(&mut route, &p, isp);
                return Some(route);
            }
        }
    }
    // Option B: access at the source, transit across, access at the far end
    // when the transit carrier does not reach the destination city.
    let aw = table.access_weight.clone();
    let tw = table.transit_weight.clone();
    let access = table.weighted_pick(rng, &aw, |i| table.presence[i][src.index()])?;
    let transit =
        table.weighted_pick(rng, &tw, |i| i != access && table.presence[i][dst.index()])?;
    // Handoff: the access provider routes to the nearest city shared with
    // the transit provider (approximated by trying the destination first,
    // then a few of the transit provider's cities near the source).
    let mut route = PlannedRoute {
        cities: Vec::new(),
        owners: Vec::new(),
        tunnel: None,
    };
    if table.presence[access][dst.index()] && rng.gen_bool(0.25) {
        // Access carrier happens to haul all the way (regional probe).
        let p = table.route(access, src, dst)?;
        extend_route(&mut route, &p, access);
        return Some(route);
    }
    // Find a peering city: a city where both access and transit are present.
    let peering = {
        let src_loc = table.world.cities[src.index()].location;
        let mut best: Option<(CityId, f64)> = None;
        for ci in 0..table.world.cities.len() {
            if table.presence[access][ci] && table.presence[transit][ci] {
                let d = table.world.cities[ci].location.distance_km(&src_loc);
                if best.map_or(true, |(_, bd)| d < bd) {
                    best = Some((CityId(ci as u32), d));
                }
            }
        }
        best.map(|(c, _)| c)?
    };
    let leg1 = table.route(access, src, peering)?;
    let leg2 = table.route(transit, peering, dst)?;
    extend_route(&mut route, &leg1, access);
    let transit_start = route.cities.len().saturating_sub(1);
    extend_route(&mut route, &leg2, transit);
    if rng.gen_bool(cfg.mpls_rate) && route.cities.len() > transit_start + 2 {
        route.tunnel = Some((transit_start + 1, route.cities.len() - 2));
    }
    Some(route)
}

/// Converts a planned route into an observed traceroute, applying MPLS
/// hiding, geolocation failures and DNS-hint sampling.
fn observe(route: PlannedRoute, rng: &mut StdRng, cfg: &ProbeConfig, world: &World) -> Traceroute {
    let src = route.cities[0];
    let dst = *route.cities.last().expect("route has cities");
    let mut hops = Vec::with_capacity(route.cities.len());
    for (i, city) in route.cities.iter().enumerate() {
        if let Some((lo, hi)) = route.tunnel {
            if i >= lo && i <= hi {
                continue; // hop hidden inside an MPLS tunnel
            }
        }
        let resolved = !rng.gen_bool(cfg.geolocation_failure_rate);
        // The owner of the segment *entering* this hop labels its interface;
        // the first hop belongs to the first segment's owner.
        let owner = if i == 0 {
            route.owners.first()
        } else {
            route.owners.get(i - 1)
        };
        let hint = owner.and_then(|&o| {
            if rng.gen_bool(cfg.dns_hint_rate) {
                Some(world.roster[o].name.clone())
            } else {
                None
            }
        });
        hops.push(Hop {
            city: resolved.then_some(*city),
            isp_hint: hint,
        });
    }
    Traceroute { src, dst, hops }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_campaign() -> (World, Campaign) {
        let w = World::reference();
        let cfg = ProbeConfig {
            probes: 3_000,
            ..ProbeConfig::default()
        };
        let c = run_campaign(&w, &cfg);
        (w, c)
    }

    #[test]
    fn campaign_routes_most_probes() {
        let (_, c) = small_campaign();
        assert!(c.traces.len() > 2_000, "only {} routed", c.traces.len());
        assert!(c.unrouted < 1_000, "{} unrouted", c.unrouted);
    }

    #[test]
    fn hops_form_plausible_paths() {
        let (w, c) = small_campaign();
        for t in c.traces.iter().take(200) {
            assert!(t.hops.len() >= 2, "trace with {} hops", t.hops.len());
            // Consecutive resolved hops must be conduit-adjacent or have a
            // hidden gap (MPLS/geoloc) between them — verify adjacency holds
            // for immediately consecutive resolved hops.
            let cities: Vec<CityId> = t.hops.iter().filter_map(|h| h.city).collect();
            for wpair in cities.windows(2) {
                if wpair[0] == wpair[1] {
                    continue;
                }
                // Not strictly adjacent if noise removed hops between; just
                // check both are real cities.
                assert!(wpair[0].index() < w.cities.len());
                assert!(wpair[1].index() < w.cities.len());
            }
        }
    }

    #[test]
    fn first_hop_is_usually_source_city() {
        let (_, c) = small_campaign();
        let mut at_src = 0;
        let mut total = 0;
        for t in &c.traces {
            if let Some(city) = t.hops[0].city {
                total += 1;
                at_src += (city == t.src) as usize;
            }
        }
        assert!(at_src == total, "first resolved hop must be the source");
    }

    #[test]
    fn hints_reference_roster_names() {
        let (w, c) = small_campaign();
        let names: std::collections::HashSet<&str> =
            w.roster.iter().map(|p| p.name.as_str()).collect();
        let mut hinted = 0usize;
        for t in &c.traces {
            for h in &t.hops {
                if let Some(hint) = &h.isp_hint {
                    assert!(names.contains(hint.as_str()), "unknown hint {hint}");
                    hinted += 1;
                }
            }
        }
        assert!(hinted > 1_000, "hints too rare: {hinted}");
    }

    #[test]
    fn unpublished_carriers_appear_in_hints() {
        let (_, c) = small_campaign();
        let softlayer = c
            .traces
            .iter()
            .flat_map(|t| t.hops.iter())
            .filter(|h| h.isp_hint.as_deref() == Some("SoftLayer"))
            .count();
        assert!(softlayer > 0, "SoftLayer should carry some probes");
    }

    #[test]
    fn deterministic() {
        let w = World::reference();
        let cfg = ProbeConfig {
            probes: 500,
            ..ProbeConfig::default()
        };
        let a = run_campaign(&w, &cfg);
        let b = run_campaign(&w, &cfg);
        assert_eq!(a.traces, b.traces);
    }

    #[test]
    fn mpls_hides_hops() {
        let w = World::reference();
        let base = ProbeConfig {
            probes: 2_000,
            mpls_rate: 0.0,
            ..ProbeConfig::default()
        };
        let tunnelled = ProbeConfig {
            probes: 2_000,
            mpls_rate: 0.9,
            ..ProbeConfig::default()
        };
        let h0: usize = run_campaign(&w, &base)
            .traces
            .iter()
            .map(|t| t.hops.len())
            .sum();
        let h1: usize = run_campaign(&w, &tunnelled)
            .traces
            .iter()
            .map(|t| t.hops.len())
            .sum();
        assert!(
            h1 < h0,
            "heavy MPLS should hide hops: {h1} observed vs {h0} without tunnels"
        );
    }
}
