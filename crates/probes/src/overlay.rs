//! Overlaying observed traceroutes onto the constructed physical map
//! (§4.3): conduit popularity as a traffic proxy, direction-classified
//! top-conduit tables (Tables 2/3), per-provider conduit usage (Table 4),
//! and the additional-provider inference behind Fig. 9.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use intertubes_atlas::World;
use intertubes_degrade::{DegradationAction, DegradationPolicy, DegradationReport};
use intertubes_geo::GeoPoint;
use intertubes_graph::{dijkstra, EdgeId, NodeId};
use intertubes_map::{FiberMap, MapConduitId, MapNodeId};
use serde::{Deserialize, Serialize};

use crate::campaign::Campaign;
use crate::ProbeError;

/// Probe direction, classified from endpoint geolocations as in the paper
/// ("classified based on geolocation information for source/destination
/// hops").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// West-origin, east-bound (Table 2).
    WestToEast,
    /// East-origin, west-bound (Table 3).
    EastToWest,
    /// Predominantly north–south.
    Meridional,
}

/// Classifies a probe's direction from its endpoints.
pub fn classify_direction(src: &GeoPoint, dst: &GeoPoint) -> Direction {
    let dlon = dst.lon - src.lon;
    let dlat = dst.lat - src.lat;
    if dlon.abs() < dlat.abs() {
        Direction::Meridional
    } else if dlon > 0.0 {
        Direction::WestToEast
    } else {
        Direction::EastToWest
    }
}

/// The overlay result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Overlay {
    /// Total probe traversals per map conduit.
    pub conduit_freq: Vec<u64>,
    /// West→east traversals per conduit.
    pub west_east: Vec<u64>,
    /// East→west traversals per conduit.
    pub east_west: Vec<u64>,
    /// Providers observed (via DNS hints) crossing each conduit.
    pub observed_isps: Vec<BTreeSet<String>>,
    /// Conduits observed carrying each provider's traffic.
    pub isp_conduits: BTreeMap<String, BTreeSet<u32>>,
    /// Traces successfully overlaid.
    pub overlaid: usize,
    /// Traces skipped (no resolvable hop pair).
    pub skipped: usize,
}

/// One row of a top-conduit table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConduitRow {
    /// Endpoint label.
    pub a: String,
    /// Endpoint label.
    pub b: String,
    /// Probe count.
    pub probes: u64,
}

impl Overlay {
    /// An all-zero overlay over `n` conduits — the identity element of
    /// [`Overlay::merge`].
    pub fn empty(n: usize) -> Overlay {
        Overlay {
            conduit_freq: vec![0; n],
            west_east: vec![0; n],
            east_west: vec![0; n],
            observed_isps: vec![BTreeSet::new(); n],
            isp_conduits: BTreeMap::new(),
            overlaid: 0,
            skipped: 0,
        }
    }

    /// Merges another shard's accumulators into this one.
    ///
    /// Every field is a sum, a set union, or a union of BTree-ordered
    /// maps of set unions — all associative and commutative — so the
    /// merged overlay is independent of shard boundaries and merge order.
    /// This is the determinism contract the parallel overlay relies on
    /// (DESIGN.md §7); `tests/properties.rs` checks it.
    pub fn merge(&mut self, other: &Overlay) {
        assert_eq!(
            self.conduit_freq.len(),
            other.conduit_freq.len(),
            "overlay shards must cover the same map"
        );
        for (a, b) in self.conduit_freq.iter_mut().zip(&other.conduit_freq) {
            *a += b;
        }
        for (a, b) in self.west_east.iter_mut().zip(&other.west_east) {
            *a += b;
        }
        for (a, b) in self.east_west.iter_mut().zip(&other.east_west) {
            *a += b;
        }
        for (a, b) in self.observed_isps.iter_mut().zip(&other.observed_isps) {
            a.extend(b.iter().cloned());
        }
        for (isp, conduits) in &other.isp_conduits {
            self.isp_conduits
                .entry(isp.clone())
                .or_default()
                .extend(conduits.iter().copied());
        }
        self.overlaid += other.overlaid;
        self.skipped += other.skipped;
    }

    /// The top-`n` conduits for a direction (the paper's Tables 2/3), or
    /// overall when `direction` is `None`.
    pub fn top_conduits(
        &self,
        map: &FiberMap,
        direction: Option<Direction>,
        n: usize,
    ) -> Vec<ConduitRow> {
        let freq = match direction {
            Some(Direction::WestToEast) => &self.west_east,
            Some(Direction::EastToWest) => &self.east_west,
            _ => &self.conduit_freq,
        };
        let mut order: Vec<usize> = (0..freq.len()).collect();
        order.sort_by(|&x, &y| freq[y].cmp(&freq[x]));
        order
            .into_iter()
            .take_while(|&i| freq[i] > 0)
            .take(n)
            .map(|i| {
                let c = &map.conduits[i];
                ConduitRow {
                    a: map.nodes[c.a.index()].label.clone(),
                    b: map.nodes[c.b.index()].label.clone(),
                    probes: freq[i],
                }
            })
            .collect()
    }

    /// Providers ranked by number of conduits observed carrying their
    /// traffic (Table 4).
    pub fn isp_usage_ranking(&self) -> Vec<(String, usize)> {
        let mut rows: Vec<(String, usize)> = self
            .isp_conduits
            .iter()
            .map(|(isp, conduits)| (isp.clone(), conduits.len()))
            .collect();
        rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        rows
    }

    /// Tenant counts per conduit: `(map_only, map_plus_observed)` — the two
    /// CDFs of Fig. 9.
    pub fn tenant_counts(&self, map: &FiberMap) -> Vec<(usize, usize)> {
        map.conduits
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let base = c.tenant_count();
                let mut all: BTreeSet<&str> = c.tenants.iter().map(|t| t.isp.as_str()).collect();
                for isp in &self.observed_isps[i] {
                    all.insert(isp.as_str());
                }
                (base, all.len())
            })
            .collect()
    }
}

/// Overlays a campaign onto a constructed map.
///
/// Consecutive resolved hops are mapped onto map conduits: directly when the
/// hop pair is conduit-adjacent, otherwise along the km-shortest path in the
/// map (gaps arise from MPLS tunnels and geolocation failures).
///
/// Equivalent to [`overlay_campaign_checked`] under the lenient policy,
/// with the degradation report discarded.
pub fn overlay_campaign(world: &World, map: &FiberMap, campaign: &Campaign) -> Overlay {
    match overlay_campaign_checked(world, map, campaign, DegradationPolicy::Lenient) {
        Ok((overlay, _)) => overlay,
        // The lenient policy never returns an error by construction.
        Err(e) => unreachable!("lenient overlay cannot fail: {e}"),
    }
}

/// Overlays a campaign onto a constructed map with explicit degradation
/// control.
///
/// Traces whose src/dst city ids fall outside the world's gazetteer (a
/// data-corruption symptom: real campaigns hit this via stale geolocation
/// databases) are dropped and counted (`"endpoint-out-of-range"`) under
/// [`DegradationPolicy::Lenient`], or abort with
/// [`ProbeError::EndpointOutOfRange`] under strict. Hops pointing at
/// unknown cities are treated as unresolved, exactly like geolocation
/// failures. Clean campaigns produce an overlay identical to
/// [`overlay_campaign`]'s and an empty report.
pub fn overlay_campaign_checked(
    world: &World,
    map: &FiberMap,
    campaign: &Campaign,
    policy: DegradationPolicy,
) -> Result<(Overlay, DegradationReport), ProbeError> {
    let chunk = intertubes_parallel::chunk_len(campaign.traces.len());
    overlay_campaign_with_chunk_size(world, map, campaign, policy, chunk)
}

/// [`overlay_campaign_checked`] with an explicit shard size.
///
/// Traces are processed in contiguous chunks of `chunk_size`, one shard
/// per task, and the per-shard accumulators are merged with
/// [`Overlay::merge`]. Because the merge is associative and commutative,
/// the result is identical for every `chunk_size` — the property tests
/// exercise this directly with adversarial shard boundaries.
pub fn overlay_campaign_with_chunk_size(
    world: &World,
    map: &FiberMap,
    campaign: &Campaign,
    policy: DegradationPolicy,
    chunk_size: usize,
) -> Result<(Overlay, DegradationReport), ProbeError> {
    let mut span = intertubes_obs::stage("overlay");
    span.items("traces", campaign.traces.len());
    let graph = map.graph();
    // Label → map node.
    let node_of: HashMap<&str, MapNodeId> = map
        .nodes
        .iter()
        .enumerate()
        .map(|(i, nd)| (nd.label.as_str(), MapNodeId(i as u32)))
        .collect();
    // City id → map node (via label).
    let city_to_node: Vec<Option<MapNodeId>> = world
        .cities
        .iter()
        .map(|c| node_of.get(c.label().as_str()).copied())
        .collect();

    // Shard fan-out: contiguous trace chunks, each with its own
    // accumulators and gap cache (the cache only memoizes deterministic
    // dijkstra results, so per-shard caches cannot change any output).
    let shards: Vec<Result<(Overlay, usize), ProbeError>> = intertubes_parallel::par_chunks_map(
        &campaign.traces,
        chunk_size.max(1),
        |offset, traces| overlay_shard(world, map, &graph, &city_to_node, traces, offset, policy),
    );

    // Merge barrier. Shards cover ascending trace ranges, so the first
    // error in shard order is the lowest-index error — the same one the
    // serial loop would abort on under the strict policy.
    let mut overlay = Overlay::empty(map.conduits.len());
    let mut bad_endpoints = 0usize;
    for shard in shards {
        let (part, bad) = match shard {
            Ok(v) => v,
            Err(e) => {
                span.failed();
                return Err(e);
            }
        };
        overlay.merge(&part);
        bad_endpoints += bad;
    }
    let mut report = DegradationReport::new();
    report.note(
        "probes.overlay",
        DegradationAction::Dropped,
        "endpoint-out-of-range",
        bad_endpoints,
    );
    span.items("overlaid", overlay.overlaid);
    span.items("skipped", overlay.skipped);
    span.items("bad_endpoints", bad_endpoints);
    if bad_endpoints > 0 {
        span.degraded();
    }
    Ok((overlay, report))
}

/// Overlays one contiguous shard of traces; `offset` is the shard's first
/// global trace index (used for strict-mode error reporting).
fn overlay_shard(
    world: &World,
    map: &FiberMap,
    graph: &intertubes_graph::MultiGraph<MapNodeId, MapConduitId>,
    city_to_node: &[Option<MapNodeId>],
    traces: &[crate::campaign::Traceroute],
    offset: usize,
    policy: DegradationPolicy,
) -> Result<(Overlay, usize), ProbeError> {
    let n = map.conduits.len();
    let km = |e: EdgeId| map.conduits[graph.edge(e).index()].geometry.length_km();
    let mut gap_cache: HashMap<(u32, u32), Option<Vec<MapConduitId>>> = HashMap::new();

    let mut conduit_freq = vec![0u64; n];
    let mut west_east = vec![0u64; n];
    let mut east_west = vec![0u64; n];
    let mut observed_isps: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];
    let mut isp_conduits: BTreeMap<String, BTreeSet<u32>> = BTreeMap::new();
    let mut overlaid = 0usize;
    let mut skipped = 0usize;
    let mut bad_endpoints = 0usize;

    for (local, t) in traces.iter().enumerate() {
        let ti = offset + local;
        let endpoints = (
            world.cities.get(t.src.index()),
            world.cities.get(t.dst.index()),
        );
        let (Some(src_city), Some(dst_city)) = endpoints else {
            if policy.is_strict() {
                let city = if endpoints.0.is_none() { t.src.0 } else { t.dst.0 };
                return Err(ProbeError::EndpointOutOfRange {
                    trace: ti,
                    city,
                    cities: world.cities.len(),
                });
            }
            bad_endpoints += 1;
            continue;
        };
        let dir = classify_direction(&src_city.location, &dst_city.location);
        // Resolved hop sequence with hints. An out-of-range hop city is
        // indistinguishable from a geolocation failure: unresolved.
        let resolved: Vec<(MapNodeId, Option<&str>)> = t
            .hops
            .iter()
            .filter_map(|h| {
                let city = h.city?;
                let node = city_to_node.get(city.index()).copied().flatten()?;
                Some((node, h.isp_hint.as_deref()))
            })
            .collect();
        if resolved.len() < 2 {
            skipped += 1;
            continue;
        }
        let mut any = false;
        for pair in resolved.windows(2) {
            let ((u, hint_u), (v, hint_v)) = (pair[0], pair[1]);
            if u == v {
                continue;
            }
            // Conduits for this hop pair: direct conduit or map-path.
            let direct = map.conduits_between(u, v);
            // Prefer a conduit whose tenants include the hinted operator;
            // fall back to the busiest.
            let hinted = hint_u.or(hint_v);
            let chosen = hinted
                .and_then(|h| {
                    direct
                        .iter()
                        .find(|c| map.conduits[c.index()].has_tenant(h))
                })
                .or_else(|| {
                    direct
                        .iter()
                        .max_by_key(|c| map.conduits[c.index()].tenant_count())
                })
                .copied();
            let conduits: Vec<MapConduitId> = if let Some(chosen) = chosen {
                vec![chosen]
            } else {
                let key = (u.0.min(v.0), u.0.max(v.0));
                // A dijkstra error (non-finite edge cost) means the map
                // region is unusable for gap-filling: same as no path.
                let path = gap_cache.entry(key).or_insert_with(|| {
                    dijkstra(graph, NodeId(u.0), NodeId(v.0), km)
                        .unwrap_or(None)
                        .map(|p| p.edges.iter().map(|e| *graph.edge(*e)).collect())
                });
                match path {
                    Some(p) => p.clone(),
                    None => continue,
                }
            };
            for cid in conduits {
                let i = cid.index();
                conduit_freq[i] += 1;
                match dir {
                    Direction::WestToEast => west_east[i] += 1,
                    Direction::EastToWest => east_west[i] += 1,
                    Direction::Meridional => {}
                }
                for hint in [hint_u, hint_v].into_iter().flatten() {
                    observed_isps[i].insert(hint.to_string());
                    isp_conduits
                        .entry(hint.to_string())
                        .or_default()
                        .insert(i as u32);
                }
                any = true;
            }
        }
        if any {
            overlaid += 1;
        } else {
            skipped += 1;
        }
    }
    Ok((
        Overlay {
            conduit_freq,
            west_east,
            east_west,
            observed_isps,
            isp_conduits,
            overlaid,
            skipped,
        },
        bad_endpoints,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{run_campaign, ProbeConfig};
    use intertubes_map::{build_map, PipelineConfig};
    use intertubes_records::{generate_corpus, CorpusConfig};

    fn setup() -> (World, FiberMap, Overlay) {
        let w = World::reference();
        let corpus = generate_corpus(&w, &CorpusConfig::default());
        let built = build_map(
            &w.publish_maps(),
            &corpus,
            &w.cities,
            &w.roads,
            &w.rails,
            &PipelineConfig::default(),
        );
        let campaign = run_campaign(
            &w,
            &ProbeConfig {
                probes: 20_000,
                ..ProbeConfig::default()
            },
        );
        let overlay = overlay_campaign(&w, &built.map, &campaign);
        (w, built.map, overlay)
    }

    #[test]
    fn direction_classifier() {
        let sf = GeoPoint::new_unchecked(37.77, -122.42);
        let nyc = GeoPoint::new_unchecked(40.71, -74.01);
        let miami = GeoPoint::new_unchecked(25.76, -80.19);
        assert_eq!(classify_direction(&sf, &nyc), Direction::WestToEast);
        assert_eq!(classify_direction(&nyc, &sf), Direction::EastToWest);
        assert_eq!(classify_direction(&nyc, &miami), Direction::Meridional);
    }

    #[test]
    fn overlay_covers_most_traces() {
        let (_, _, ov) = setup();
        assert!(
            ov.overlaid * 10 > ov.skipped,
            "overlaid {} skipped {}",
            ov.overlaid,
            ov.skipped
        );
        assert!(ov.conduit_freq.iter().sum::<u64>() > 10_000);
    }

    #[test]
    fn top_conduit_tables_are_ordered_and_directional() {
        let (_, map, ov) = setup();
        for dir in [Direction::WestToEast, Direction::EastToWest] {
            let rows = ov.top_conduits(&map, Some(dir), 20);
            assert!(!rows.is_empty());
            for w in rows.windows(2) {
                assert!(w[0].probes >= w[1].probes);
            }
        }
        let all = ov.top_conduits(&map, None, 20);
        assert!(all[0].probes >= ov.top_conduits(&map, Some(Direction::WestToEast), 1)[0].probes);
    }

    #[test]
    fn level3_tops_isp_usage() {
        let (_, _, ov) = setup();
        let ranking = ov.isp_usage_ranking();
        assert!(!ranking.is_empty());
        let pos = ranking.iter().position(|(n, _)| n == "Level 3").unwrap();
        assert!(
            pos <= 2,
            "Level 3 should top Table 4, found at {pos}: {:?}",
            &ranking[..5.min(ranking.len())]
        );
    }

    #[test]
    fn unpublished_isps_enter_table4() {
        let (_, _, ov) = setup();
        let ranking = ov.isp_usage_ranking();
        let names: Vec<&str> = ranking.iter().map(|(n, _)| n.as_str()).collect();
        assert!(
            names.contains(&"SoftLayer") || names.contains(&"MFN"),
            "traceroute-only carriers should appear: {names:?}"
        );
    }

    #[test]
    fn fig9_overlay_only_increases_tenancy() {
        let (_, map, ov) = setup();
        let counts = ov.tenant_counts(&map);
        let mut grew = 0usize;
        for (base, with) in &counts {
            assert!(with >= base);
            grew += (with > base) as usize;
        }
        assert!(
            grew > counts.len() / 10,
            "overlay should reveal extra ISPs on some conduits ({grew})"
        );
        // Mean shift matches the paper's qualitative claim: risk is only
        // greater when traffic is considered.
        let mean_base: f64 =
            counts.iter().map(|(b, _)| *b as f64).sum::<f64>() / counts.len() as f64;
        let mean_with: f64 =
            counts.iter().map(|(_, w)| *w as f64).sum::<f64>() / counts.len() as f64;
        assert!(mean_with > mean_base);
    }
}
