//! Synthetic traceroute campaigns and physical-map overlay (§4.3).
//!
//! The paper infers relative traffic volumes from route popularity in a
//! 4.9 M-probe Edgescope traceroute data set, overlaying layer-3 paths onto
//! the constructed physical map via geolocation and DNS naming hints. This
//! crate simulates the campaign (with MPLS-tunnel opacity, geolocation
//! failures, and partial DNS hints) over the ground-truth world, then
//! implements the overlay against the *constructed* map — including the
//! inference of additional carriers that publish no fiber map at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod overlay;

pub use campaign::{run_campaign, Campaign, Hop, ProbeConfig, Traceroute};
pub use overlay::{
    classify_direction, overlay_campaign, overlay_campaign_checked,
    overlay_campaign_with_chunk_size, ConduitRow, Direction, Overlay,
};

/// Errors of the probe layer. Raised only under the strict degradation
/// policy; the lenient overlay degrades (drops and counts) instead.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProbeError {
    /// A trace endpoint references a city id outside the gazetteer.
    EndpointOutOfRange {
        /// Index of the offending trace in the campaign.
        trace: usize,
        /// The unresolvable city id.
        city: u32,
        /// Gazetteer size at lookup time.
        cities: usize,
    },
}

impl std::fmt::Display for ProbeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProbeError::EndpointOutOfRange { trace, city, cities } => write!(
                f,
                "trace {trace}: endpoint city id {city} out of range (gazetteer has {cities})"
            ),
        }
    }
}

impl std::error::Error for ProbeError {}
