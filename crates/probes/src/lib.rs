//! Synthetic traceroute campaigns and physical-map overlay (§4.3).
//!
//! The paper infers relative traffic volumes from route popularity in a
//! 4.9 M-probe Edgescope traceroute data set, overlaying layer-3 paths onto
//! the constructed physical map via geolocation and DNS naming hints. This
//! crate simulates the campaign (with MPLS-tunnel opacity, geolocation
//! failures, and partial DNS hints) over the ground-truth world, then
//! implements the overlay against the *constructed* map — including the
//! inference of additional carriers that publish no fiber map at all.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod campaign;
mod overlay;

pub use campaign::{run_campaign, Campaign, Hop, ProbeConfig, Traceroute};
pub use overlay::{classify_direction, overlay_campaign, ConduitRow, Direction, Overlay};
