//! What-if analysis: apply a mitigation plan to the constructed map and
//! re-run the §4 risk assessment on the upgraded infrastructure — closing
//! the loop the paper leaves open between §5's proposals and §4's metrics.

use intertubes_map::{FiberMap, MapConduit, Provenance, Tenancy, TenancySource};
use intertubes_risk::RiskMatrix;
use serde::{Deserialize, Serialize};

use crate::augmentation::AugmentationReport;

/// Before/after comparison of the §4.2 headline metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIfReport {
    /// Conduits added by the plan.
    pub conduits_added: usize,
    /// Fraction of conduits shared by ≥ 4 providers, before.
    pub ge4_before: f64,
    /// Fraction of conduits shared by ≥ 4 providers, after.
    pub ge4_after: f64,
    /// Highest tenant count on any conduit, before.
    pub max_sharing_before: u16,
    /// Highest tenant count on any conduit, after.
    pub max_sharing_after: u16,
    /// Mean per-provider average shared risk, before.
    pub mean_avg_risk_before: f64,
    /// Mean per-provider average shared risk, after.
    pub mean_avg_risk_after: f64,
}

/// Materializes an augmentation plan: clones the map, adds each new conduit
/// as a parallel trench, and moves half of the relieved conduit's tenants
/// (alphabetically — deterministic) into it.
pub fn apply_augmentation(map: &FiberMap, plan: &AugmentationReport) -> FiberMap {
    let mut out = map.clone();
    for add in &plan.added {
        let src_idx = add.parallels.index();
        let (a, b, geometry) = {
            let src = &out.conduits[src_idx];
            (src.a, src.b, src.geometry.offset_parallel(7.0))
        };
        // Split tenants: movers take the new trench.
        let tenants = out.conduits[src_idx].tenants.clone();
        let half = tenants.len() / 2;
        let (stay, go) = tenants.split_at(tenants.len() - half);
        out.conduits[src_idx].tenants = stay.to_vec();
        out.conduits.push(MapConduit {
            a,
            b,
            geometry,
            tenants: go
                .iter()
                .map(|t| Tenancy {
                    isp: t.isp.clone(),
                    source: TenancySource::PublishedMap,
                })
                .collect(),
            provenance: Provenance::Step3,
            validated: false,
            row: None,
        });
    }
    out
}

fn mean_avg_risk(rm: &RiskMatrix) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for i in 0..rm.isp_count() {
        let cs = rm.conduits_of(i);
        if cs.is_empty() {
            continue;
        }
        total += cs.iter().map(|&c| rm.shared[c] as f64).sum::<f64>() / cs.len() as f64;
        n += 1;
    }
    total / n.max(1) as f64
}

/// Runs the before/after comparison for an augmentation plan.
pub fn what_if(map: &FiberMap, isps: &[String], plan: &AugmentationReport) -> WhatIfReport {
    let mut span = intertubes_obs::stage("mitigation.whatif");
    span.items("conduits_added", plan.added.len());
    let before = RiskMatrix::build(map, isps);
    let upgraded = apply_augmentation(map, plan);
    let after = RiskMatrix::build(&upgraded, isps);
    let frac_ge4 = |rm: &RiskMatrix| {
        rm.shared.iter().filter(|&&s| s >= 4).count() as f64 / rm.conduit_count() as f64
    };
    WhatIfReport {
        conduits_added: plan.added.len(),
        ge4_before: frac_ge4(&before),
        ge4_after: frac_ge4(&after),
        max_sharing_before: before.shared.iter().copied().max().unwrap_or(0),
        max_sharing_after: after.shared.iter().copied().max().unwrap_or(0),
        mean_avg_risk_before: mean_avg_risk(&before),
        mean_avg_risk_after: mean_avg_risk(&after),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augmentation::AddedConduit;
    use intertubes_geo::{GeoPoint, Polyline};
    use intertubes_map::MapConduitId;

    fn toy_map() -> FiberMap {
        let mut m = FiberMap::default();
        let a = m.ensure_node("A, XX", GeoPoint::new_unchecked(40.0, -100.0));
        let b = m.ensure_node("B, XX", GeoPoint::new_unchecked(40.0, -98.0));
        let t = |isp: &str| Tenancy {
            isp: isp.into(),
            source: TenancySource::PublishedMap,
        };
        m.conduits.push(MapConduit {
            a,
            b,
            geometry: Polyline::straight(
                GeoPoint::new_unchecked(40.0, -100.0),
                GeoPoint::new_unchecked(40.0, -98.0),
            )
            .densify(40.0)
            .unwrap(),
            tenants: vec![t("W"), t("X"), t("Y"), t("Z")],
            provenance: Provenance::Step1,
            validated: true,
            row: None,
        });
        m
    }

    fn plan() -> AugmentationReport {
        AugmentationReport {
            added: vec![AddedConduit {
                parallels: MapConduitId(0),
                a: "A, XX".into(),
                b: "B, XX".into(),
                row_km: 180.0,
                srr: 8.0,
            }],
            isps: vec!["W".into(), "X".into(), "Y".into(), "Z".into()],
            improvement: vec![vec![0.5]; 4],
        }
    }

    #[test]
    fn applying_plan_splits_tenants() {
        let m = toy_map();
        let upgraded = apply_augmentation(&m, &plan());
        assert_eq!(upgraded.conduits.len(), 2);
        assert_eq!(upgraded.conduits[0].tenant_count(), 2);
        assert_eq!(upgraded.conduits[1].tenant_count(), 2);
        // No tenancy lost or duplicated.
        assert_eq!(upgraded.link_count(), m.link_count());
        // The new trench is geographically parallel, not identical.
        let sep = midpoint_separation(&upgraded);
        assert!(sep > 2.0, "parallel trench separation {sep} km");
    }

    /// Separation between the midpoints of the toy map's two conduits.
    fn midpoint_separation(m: &FiberMap) -> f64 {
        let p1 = m.conduits[0].geometry.point_at_fraction(0.5);
        let p2 = m.conduits[1].geometry.point_at_fraction(0.5);
        p1.distance_km(&p2)
    }

    #[test]
    fn what_if_reduces_max_sharing() {
        let m = toy_map();
        let isps: Vec<String> = ["W", "X", "Y", "Z"].iter().map(|s| s.to_string()).collect();
        let report = what_if(&m, &isps, &plan());
        assert_eq!(report.conduits_added, 1);
        assert_eq!(report.max_sharing_before, 4);
        assert_eq!(report.max_sharing_after, 2);
        assert!(report.mean_avg_risk_after < report.mean_avg_risk_before);
        assert!(report.ge4_after < report.ge4_before);
    }

    #[test]
    fn empty_plan_is_identity() {
        let m = toy_map();
        let isps: Vec<String> = ["W", "X"].iter().map(|s| s.to_string()).collect();
        let empty = AugmentationReport {
            added: vec![],
            isps: isps.clone(),
            improvement: vec![vec![], vec![]],
        };
        let report = what_if(&m, &isps, &empty);
        assert_eq!(report.conduits_added, 0);
        assert_eq!(report.max_sharing_before, report.max_sharing_after);
        assert_eq!(report.mean_avg_risk_before, report.mean_avg_risk_after);
    }
}
