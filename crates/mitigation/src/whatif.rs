//! What-if analysis: apply a mitigation plan to the constructed map and
//! re-run the §4 risk assessment on the upgraded infrastructure — closing
//! the loop the paper leaves open between §5's proposals and §4's metrics.

use intertubes_map::{FiberMap, MapConduit, MapConduitId, Provenance, Tenancy, TenancySource};
use intertubes_risk::RiskMatrix;
use serde::{Deserialize, Serialize};

use crate::augmentation::AugmentationReport;

/// Before/after comparison of the §4.2 headline metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WhatIfReport {
    /// Conduits added by the plan.
    pub conduits_added: usize,
    /// Fraction of conduits shared by ≥ 4 providers, before.
    pub ge4_before: f64,
    /// Fraction of conduits shared by ≥ 4 providers, after.
    pub ge4_after: f64,
    /// Highest tenant count on any conduit, before.
    pub max_sharing_before: u16,
    /// Highest tenant count on any conduit, after.
    pub max_sharing_after: u16,
    /// Mean per-provider average shared risk, before.
    pub mean_avg_risk_before: f64,
    /// Mean per-provider average shared risk, after.
    pub mean_avg_risk_after: f64,
}

/// Materializes an augmentation plan: clones the map, adds each new conduit
/// as a parallel trench, and moves half of the relieved conduit's tenants
/// (alphabetically — deterministic) into it.
pub fn apply_augmentation(map: &FiberMap, plan: &AugmentationReport) -> FiberMap {
    let mut out = map.clone();
    for add in &plan.added {
        let src_idx = add.parallels.index();
        let (a, b, geometry) = {
            let src = &out.conduits[src_idx];
            (src.a, src.b, src.geometry.offset_parallel(7.0))
        };
        // Split tenants: movers take the new trench.
        let tenants = out.conduits[src_idx].tenants.clone();
        let half = tenants.len() / 2;
        let (stay, go) = tenants.split_at(tenants.len() - half);
        out.conduits[src_idx].tenants = stay.to_vec();
        out.conduits.push(MapConduit {
            a,
            b,
            geometry,
            tenants: go
                .iter()
                .map(|t| Tenancy {
                    isp: t.isp.clone(),
                    source: TenancySource::PublishedMap,
                })
                .collect(),
            provenance: Provenance::Step3,
            validated: false,
            row: None,
        });
    }
    out
}

/// Before/after comparison of the §4.2 headline metrics under a conduit
/// cut (the destructive dual of [`what_if`]'s augmentation: instead of
/// adding trenches, a set of existing conduits is severed).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CutReport {
    /// Conduits severed by the cut.
    pub conduits_cut: usize,
    /// Providers that lost at least one tenancy, in roster order.
    pub affected_isps: Vec<String>,
    /// Total (conduit, provider) tenancies severed among the tracked
    /// providers.
    pub links_lost: usize,
    /// Fraction of surviving conduits shared by ≥ 4 providers, before.
    pub ge4_before: f64,
    /// Fraction of surviving conduits shared by ≥ 4 providers, after.
    pub ge4_after: f64,
    /// Highest tenant count on any conduit, before.
    pub max_sharing_before: u16,
    /// Highest tenant count on any conduit, after.
    pub max_sharing_after: u16,
    /// Mean per-provider average shared risk, before.
    pub mean_avg_risk_before: f64,
    /// Mean per-provider average shared risk, after.
    pub mean_avg_risk_after: f64,
}

/// Materializes a conduit cut: clones the map and removes every conduit in
/// `cut`. Duplicate and out-of-range ids are ignored. Node ids are stable;
/// surviving conduits keep their relative order (so downstream ids are the
/// compaction of the survivors).
pub fn apply_cut(map: &FiberMap, cut: &[MapConduitId]) -> FiberMap {
    let mut sever = vec![false; map.conduits.len()];
    for id in cut {
        if let Some(s) = sever.get_mut(id.index()) {
            *s = true;
        }
    }
    let mut out = map.clone();
    let mut keep = sever.iter().map(|&s| !s);
    out.conduits.retain(|_| keep.next().unwrap_or(true));
    out
}

/// Per-conduit share counts and per-provider conduit lists, computed with
/// [`RiskMatrix::build`]'s lenient semantics (duplicate roster names
/// dropped, first occurrence wins) but without opening an obs stage span —
/// the §4.2 metrics below must be computable from serving worker threads,
/// where spans are forbidden by the DESIGN.md §8 contract.
struct SharingProfile {
    /// `shared[c]`: roster providers sharing conduit `c`.
    shared: Vec<u16>,
    /// `conduits_of[i]`: conduit ids provider `i` is a tenant of.
    conduits_of: Vec<Vec<usize>>,
}

impl SharingProfile {
    fn build(map: &FiberMap, isps: &[String]) -> SharingProfile {
        let mut roster: Vec<&String> = Vec::with_capacity(isps.len());
        for isp in isps {
            if !roster.contains(&isp) {
                roster.push(isp);
            }
        }
        let mut shared = vec![0u16; map.conduits.len()];
        let conduits_of: Vec<Vec<usize>> = roster
            .iter()
            .map(|isp| {
                let mut mine = Vec::new();
                for (c, conduit) in map.conduits.iter().enumerate() {
                    if conduit.has_tenant(isp) {
                        shared[c] += 1;
                        mine.push(c);
                    }
                }
                mine
            })
            .collect();
        SharingProfile {
            shared,
            conduits_of,
        }
    }

    /// Fraction of conduits shared by ≥ 4 providers (§4.2).
    fn frac_ge4(&self) -> f64 {
        self.shared.iter().filter(|&&s| s >= 4).count() as f64 / self.shared.len().max(1) as f64
    }

    /// Mean per-provider average shared risk, as [`mean_avg_risk`].
    fn mean_avg_risk(&self) -> f64 {
        let mut total = 0.0;
        let mut n = 0usize;
        for cs in &self.conduits_of {
            if cs.is_empty() {
                continue;
            }
            total += cs.iter().map(|&c| self.shared[c] as f64).sum::<f64>() / cs.len() as f64;
            n += 1;
        }
        total / n.max(1) as f64
    }
}

/// Runs the before/after comparison for a conduit cut.
///
/// Safe to call from worker threads: unlike [`what_if`] it opens no obs
/// stage span (the serving scheduler invokes it from parallel compute
/// waves, where spans are forbidden by the DESIGN.md §8 contract) — only
/// associative counters, which merge identically at any thread count.
pub fn what_if_cut(map: &FiberMap, isps: &[String], cut: &[MapConduitId]) -> CutReport {
    intertubes_obs::counter("mitigation.whatif_cut_calls", 1);
    let before = SharingProfile::build(map, isps);
    let severed = apply_cut(map, cut);
    let after = SharingProfile::build(&severed, isps);
    let mut in_cut = vec![false; map.conduits.len()];
    for id in cut {
        if let Some(s) = in_cut.get_mut(id.index()) {
            *s = true;
        }
    }
    let mut links_lost = 0usize;
    let mut seen: Vec<&String> = Vec::with_capacity(isps.len());
    let affected_isps: Vec<String> = isps
        .iter()
        .filter(|isp| {
            if seen.contains(isp) {
                return false;
            }
            seen.push(isp);
            let lost = map
                .conduits
                .iter()
                .zip(&in_cut)
                .filter(|(c, &s)| s && c.has_tenant(isp))
                .count();
            links_lost += lost;
            lost > 0
        })
        .cloned()
        .collect();
    CutReport {
        conduits_cut: in_cut.iter().filter(|&&s| s).count(),
        affected_isps,
        links_lost,
        ge4_before: before.frac_ge4(),
        ge4_after: after.frac_ge4(),
        max_sharing_before: before.shared.iter().copied().max().unwrap_or(0),
        max_sharing_after: after.shared.iter().copied().max().unwrap_or(0),
        mean_avg_risk_before: before.mean_avg_risk(),
        mean_avg_risk_after: after.mean_avg_risk(),
    }
}

fn mean_avg_risk(rm: &RiskMatrix) -> f64 {
    let mut total = 0.0;
    let mut n = 0usize;
    for i in 0..rm.isp_count() {
        let cs = rm.conduits_of(i);
        if cs.is_empty() {
            continue;
        }
        total += cs.iter().map(|&c| rm.shared[c] as f64).sum::<f64>() / cs.len() as f64;
        n += 1;
    }
    total / n.max(1) as f64
}

/// Runs the before/after comparison for an augmentation plan.
pub fn what_if(map: &FiberMap, isps: &[String], plan: &AugmentationReport) -> WhatIfReport {
    let mut span = intertubes_obs::stage("mitigation.whatif");
    span.items("conduits_added", plan.added.len());
    let before = RiskMatrix::build(map, isps);
    let upgraded = apply_augmentation(map, plan);
    let after = RiskMatrix::build(&upgraded, isps);
    let frac_ge4 = |rm: &RiskMatrix| {
        rm.shared.iter().filter(|&&s| s >= 4).count() as f64 / rm.conduit_count() as f64
    };
    WhatIfReport {
        conduits_added: plan.added.len(),
        ge4_before: frac_ge4(&before),
        ge4_after: frac_ge4(&after),
        max_sharing_before: before.shared.iter().copied().max().unwrap_or(0),
        max_sharing_after: after.shared.iter().copied().max().unwrap_or(0),
        mean_avg_risk_before: mean_avg_risk(&before),
        mean_avg_risk_after: mean_avg_risk(&after),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augmentation::AddedConduit;
    use intertubes_geo::{GeoPoint, Polyline};
    use intertubes_map::MapConduitId;

    fn toy_map() -> FiberMap {
        let mut m = FiberMap::default();
        let a = m.ensure_node("A, XX", GeoPoint::new_unchecked(40.0, -100.0));
        let b = m.ensure_node("B, XX", GeoPoint::new_unchecked(40.0, -98.0));
        let t = |isp: &str| Tenancy {
            isp: isp.into(),
            source: TenancySource::PublishedMap,
        };
        m.conduits.push(MapConduit {
            a,
            b,
            geometry: Polyline::straight(
                GeoPoint::new_unchecked(40.0, -100.0),
                GeoPoint::new_unchecked(40.0, -98.0),
            )
            .densify(40.0)
            .unwrap(),
            tenants: vec![t("W"), t("X"), t("Y"), t("Z")],
            provenance: Provenance::Step1,
            validated: true,
            row: None,
        });
        m
    }

    fn plan() -> AugmentationReport {
        AugmentationReport {
            added: vec![AddedConduit {
                parallels: MapConduitId(0),
                a: "A, XX".into(),
                b: "B, XX".into(),
                row_km: 180.0,
                srr: 8.0,
            }],
            isps: vec!["W".into(), "X".into(), "Y".into(), "Z".into()],
            improvement: vec![vec![0.5]; 4],
        }
    }

    #[test]
    fn applying_plan_splits_tenants() {
        let m = toy_map();
        let upgraded = apply_augmentation(&m, &plan());
        assert_eq!(upgraded.conduits.len(), 2);
        assert_eq!(upgraded.conduits[0].tenant_count(), 2);
        assert_eq!(upgraded.conduits[1].tenant_count(), 2);
        // No tenancy lost or duplicated.
        assert_eq!(upgraded.link_count(), m.link_count());
        // The new trench is geographically parallel, not identical.
        let sep = midpoint_separation(&upgraded);
        assert!(sep > 2.0, "parallel trench separation {sep} km");
    }

    /// Separation between the midpoints of the toy map's two conduits.
    fn midpoint_separation(m: &FiberMap) -> f64 {
        let p1 = m.conduits[0].geometry.point_at_fraction(0.5);
        let p2 = m.conduits[1].geometry.point_at_fraction(0.5);
        p1.distance_km(&p2)
    }

    #[test]
    fn what_if_reduces_max_sharing() {
        let m = toy_map();
        let isps: Vec<String> = ["W", "X", "Y", "Z"].iter().map(|s| s.to_string()).collect();
        let report = what_if(&m, &isps, &plan());
        assert_eq!(report.conduits_added, 1);
        assert_eq!(report.max_sharing_before, 4);
        assert_eq!(report.max_sharing_after, 2);
        assert!(report.mean_avg_risk_after < report.mean_avg_risk_before);
        assert!(report.ge4_after < report.ge4_before);
    }

    /// A second toy map with two conduits so a cut leaves survivors.
    fn toy_map_two() -> FiberMap {
        let mut m = toy_map();
        let b = m.find_node("B, XX").unwrap();
        let c = m.ensure_node("C, XX", GeoPoint::new_unchecked(40.0, -96.0));
        m.conduits.push(MapConduit {
            a: b,
            b: c,
            geometry: Polyline::straight(
                GeoPoint::new_unchecked(40.0, -98.0),
                GeoPoint::new_unchecked(40.0, -96.0),
            )
            .densify(40.0)
            .unwrap(),
            tenants: vec![
                Tenancy {
                    isp: "W".into(),
                    source: TenancySource::PublishedMap,
                },
                Tenancy {
                    isp: "X".into(),
                    source: TenancySource::PublishedMap,
                },
            ],
            provenance: Provenance::Step1,
            validated: true,
            row: None,
        });
        m
    }

    #[test]
    fn apply_cut_removes_only_named_conduits() {
        let m = toy_map_two();
        let severed = apply_cut(&m, &[MapConduitId(0)]);
        assert_eq!(severed.conduits.len(), 1);
        assert_eq!(severed.conduits[0].tenant_count(), 2);
        // Duplicates and out-of-range ids are ignored.
        let same = apply_cut(&m, &[MapConduitId(0), MapConduitId(0), MapConduitId(99)]);
        assert_eq!(same.conduits.len(), 1);
        // Empty cut is the identity.
        assert_eq!(apply_cut(&m, &[]).conduits.len(), 2);
    }

    #[test]
    fn what_if_cut_reports_affected_isps_and_risk_drop() {
        let m = toy_map_two();
        let isps: Vec<String> = ["W", "X", "Y", "Z"].iter().map(|s| s.to_string()).collect();
        let report = what_if_cut(&m, &isps, &[MapConduitId(0)]);
        assert_eq!(report.conduits_cut, 1);
        assert_eq!(report.affected_isps, vec!["W", "X", "Y", "Z"]);
        assert_eq!(report.links_lost, 4);
        assert_eq!(report.max_sharing_before, 4);
        assert_eq!(report.max_sharing_after, 2);
        assert!(report.ge4_after < report.ge4_before);
    }

    #[test]
    fn sharing_profile_matches_risk_matrix_semantics() {
        let m = toy_map_two();
        // Duplicate roster entry: both paths must drop it (first wins).
        let isps: Vec<String> = ["W", "X", "W", "Y", "Z", "Q"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let rm = RiskMatrix::build(&m, &isps);
        let profile = SharingProfile::build(&m, &isps);
        assert_eq!(profile.shared, rm.shared);
        for (i, cs) in profile.conduits_of.iter().enumerate() {
            assert_eq!(cs, &rm.conduits_of(i), "provider {i}");
        }
        assert_eq!(profile.mean_avg_risk(), mean_avg_risk(&rm));
    }

    #[test]
    fn empty_cut_is_identity() {
        let m = toy_map_two();
        let isps: Vec<String> = ["W", "X"].iter().map(|s| s.to_string()).collect();
        let report = what_if_cut(&m, &isps, &[]);
        assert_eq!(report.conduits_cut, 0);
        assert!(report.affected_isps.is_empty());
        assert_eq!(report.links_lost, 0);
        assert_eq!(report.max_sharing_before, report.max_sharing_after);
        assert_eq!(report.mean_avg_risk_before, report.mean_avg_risk_after);
    }

    #[test]
    fn empty_plan_is_identity() {
        let m = toy_map();
        let isps: Vec<String> = ["W", "X"].iter().map(|s| s.to_string()).collect();
        let empty = AugmentationReport {
            added: vec![],
            isps: isps.clone(),
            improvement: vec![vec![], vec![]],
        };
        let report = what_if(&m, &isps, &empty);
        assert_eq!(report.conduits_added, 0);
        assert_eq!(report.max_sharing_before, report.max_sharing_after);
        assert_eq!(report.mean_avg_risk_before, report.mean_avg_risk_after);
    }
}
