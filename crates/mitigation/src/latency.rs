//! Propagation-delay analysis (§5.3, Fig. 12).
//!
//! For every city pair joined by at least one conduit, four one-way delays
//! are compared:
//!
//! * **best existing path** — the minimum-delay route over deployed
//!   conduits (usually, but not always, the direct trench);
//! * **average of existing paths** — the mean over the k cheapest loopless
//!   conduit routes (parallel trenches and detours included);
//! * **best ROW path** — the cheapest route over road/rail rights-of-way,
//!   whether or not fiber is deployed there (what a new build could achieve
//!   without line-of-sight trenching);
//! * **LOS** — the great-circle lower bound.
//!
//! Delays use the fiber propagation constant (≈ 4.9 µs/km; the paper's
//! "100 µs ≈ 20 km").

use intertubes_atlas::{City, TransportNetwork};
use intertubes_geo::fiber_delay_us;
use intertubes_graph::{
    par_shortest_paths_csr, par_yen_k_shortest_csr, EdgeId, Landmarks, MultiGraph, NodeId,
    DEFAULT_LANDMARK_COUNT,
};
use intertubes_map::FiberMap;
use serde::{Deserialize, Serialize};

/// Parameters of the latency study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyConfig {
    /// How many loopless alternate paths feed the "average of existing
    /// paths" series.
    pub k_paths: usize,
    /// Alternate paths longer than this multiple of the best are not
    /// "paths between the two cities" in any practical sense and are
    /// excluded from the average.
    pub detour_cap: f64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        LatencyConfig {
            k_paths: 4,
            detour_cap: 3.0,
        }
    }
}

/// Delay comparison for one conduit-joined city pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PairLatency {
    /// Endpoint label.
    pub a: String,
    /// Endpoint label.
    pub b: String,
    /// Best existing-conduit delay, µs.
    pub best_us: f64,
    /// Mean delay across existing paths, µs.
    pub avg_us: f64,
    /// Best right-of-way delay, µs.
    pub row_us: f64,
    /// Line-of-sight lower bound, µs.
    pub los_us: f64,
}

/// The full §5.3 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Per-pair comparisons.
    pub pairs: Vec<PairLatency>,
    /// Fraction of pairs whose best existing path is also the best ROW path
    /// (within 1 %; paper: "about 65 % of the best paths are also the best
    /// ROW paths").
    pub best_equals_row_fraction: f64,
}

/// Builds a combined road ∪ rail right-of-way graph over the gazetteer.
fn row_graph(
    cities: &[City],
    roads: &TransportNetwork,
    rails: &TransportNetwork,
) -> MultiGraph<(), f64> {
    let mut g: MultiGraph<(), f64> = MultiGraph::with_capacity(cities.len(), 0);
    for _ in 0..cities.len() {
        g.add_node(());
    }
    for net in [roads, rails] {
        for e in net.graph.edge_refs() {
            g.add_edge(e.u, e.v, e.data.length_km);
        }
    }
    g
}

/// Runs the latency study over every conduit-joined city pair in the map.
///
/// Pair enumeration is serial (sorted and deduplicated, so pair order is
/// canonical); the two expensive queries — Yen's k paths over the conduit
/// graph and Dijkstra over the ROW graph — fan out per pair via the
/// [`intertubes_graph`] batch helpers, which return results in input
/// order. The serial assembly then matches the serial loop exactly.
pub fn latency_study(
    map: &FiberMap,
    cities: &[City],
    roads: &TransportNetwork,
    rails: &TransportNetwork,
    cfg: &LatencyConfig,
) -> LatencyReport {
    let mut span = intertubes_obs::stage("mitigation.latency");
    let graph = map.graph();
    // Haversine-summing a polyline per relaxation dominated the old
    // profile; hoist each conduit's length once (same f64 values).
    let conduit_km: Vec<f64> = map
        .conduits
        .iter()
        .map(|c| c.geometry.length_km())
        .collect();
    let km = |e: EdgeId| conduit_km[graph.edge(e).index()];
    let csr = graph.to_csr();
    let landmarks = Landmarks::build(&csr, DEFAULT_LANDMARK_COUNT, km).ok();
    let row = row_graph(cities, roads, rails);
    let city_index: std::collections::HashMap<String, usize> = cities
        .iter()
        .enumerate()
        .map(|(i, c)| (c.label().to_string(), i))
        .collect();

    // Conduit-joined pairs, deduplicated.
    let mut pairs: Vec<(u32, u32)> = map
        .conduits
        .iter()
        .map(|c| (c.a.0.min(c.b.0), c.a.0.max(c.b.0)))
        .collect();
    pairs.sort_unstable();
    pairs.dedup();

    // Existing paths: k cheapest loopless conduit routes, batched over the
    // frozen CSR view with ALT-pruned spur searches.
    let node_pairs: Vec<(NodeId, NodeId)> =
        pairs.iter().map(|&(a, b)| (NodeId(a), NodeId(b))).collect();
    let yen_results =
        par_yen_k_shortest_csr(&csr, &node_pairs, cfg.k_paths, km, landmarks.as_ref());

    // ROW queries for the pairs whose endpoints are gazetteer cities.
    let mut row_queries: Vec<(NodeId, NodeId)> = Vec::new();
    let row_slot: Vec<Option<usize>> = pairs
        .iter()
        .map(|&(a, b)| {
            let ia = city_index.get(&map.nodes[a as usize].label)?;
            let ib = city_index.get(&map.nodes[b as usize].label)?;
            row_queries.push((NodeId(*ia as u32), NodeId(*ib as u32)));
            Some(row_queries.len() - 1)
        })
        .collect();
    let row_results = par_shortest_paths_csr(&row.to_csr(), &row_queries, |e| *row.edge(e));

    let mut out = Vec::with_capacity(pairs.len());
    let mut agree = 0usize;
    for (i, &(a, b)) in pairs.iter().enumerate() {
        let node_a = &map.nodes[a as usize];
        let node_b = &map.nodes[b as usize];
        // km costs are non-negative by construction, so errors cannot
        // occur; a pair is simply skipped if they somehow did.
        let Ok(paths) = yen_results[i].as_ref() else {
            continue;
        };
        let Some(best) = paths.first() else { continue };
        let best_km = best.cost;
        let capped: Vec<f64> = paths
            .iter()
            .map(|p| p.cost)
            .filter(|c| *c <= best_km * cfg.detour_cap)
            .collect();
        let avg_km = capped.iter().sum::<f64>() / capped.len() as f64;
        // Best ROW path (over the gazetteer's road/rail graph).
        let los_km = node_a.location.distance_km(&node_b.location);
        let row_km = match row_slot[i] {
            Some(slot) => match &row_results[slot] {
                Ok(Some(p)) => p.cost,
                _ => los_km,
            },
            None => los_km,
        };
        if (best_km - row_km).abs() <= 0.01 * row_km.max(1e-9) || best_km <= row_km {
            agree += 1;
        }
        out.push(PairLatency {
            a: node_a.label.clone(),
            b: node_b.label.clone(),
            best_us: fiber_delay_us(best_km),
            avg_us: fiber_delay_us(avg_km),
            row_us: fiber_delay_us(row_km),
            los_us: fiber_delay_us(los_km),
        });
    }
    let frac = agree as f64 / out.len().max(1) as f64;
    span.items("node_pairs", pairs.len());
    span.items("measured_pairs", out.len());
    LatencyReport {
        pairs: out,
        best_equals_row_fraction: frac,
    }
}

impl LatencyReport {
    /// Sorted delays (ms) for one series — CDF inputs for Fig. 12.
    pub fn series_ms(&self, pick: impl Fn(&PairLatency) -> f64) -> Vec<f64> {
        let mut v: Vec<f64> = self.pairs.iter().map(|p| pick(p) / 1000.0).collect();
        v.sort_by(|a, b| a.total_cmp(b));
        v
    }

    /// Quantile of the LOS–ROW delay gap in µs (paper: < 100 µs for 50 % of
    /// pairs, > 500 µs for 25 %).
    pub fn los_row_gap_quantile(&self, q: f64) -> f64 {
        let mut gaps: Vec<f64> = self
            .pairs
            .iter()
            .map(|p| (p.row_us - p.los_us).max(0.0))
            .collect();
        gaps.sort_by(|a, b| a.total_cmp(b));
        if gaps.is_empty() {
            return 0.0;
        }
        let idx = ((q * (gaps.len() - 1) as f64).round() as usize).min(gaps.len() - 1);
        gaps[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intertubes_atlas::World;
    use intertubes_map::{build_map, PipelineConfig};
    use intertubes_records::{generate_corpus, CorpusConfig};

    fn report() -> LatencyReport {
        let w = World::reference();
        let corpus = generate_corpus(&w, &CorpusConfig::default());
        let built = build_map(
            &w.publish_maps(),
            &corpus,
            &w.cities,
            &w.roads,
            &w.rails,
            &PipelineConfig::default(),
        );
        latency_study(
            &built.map,
            &w.cities,
            &w.roads,
            &w.rails,
            &LatencyConfig::default(),
        )
    }

    #[test]
    fn ordering_invariants_hold() {
        let r = report();
        assert!(r.pairs.len() > 200, "pairs: {}", r.pairs.len());
        for p in &r.pairs {
            // LOS is the absolute lower bound.
            assert!(
                p.los_us <= p.row_us + 1e-6,
                "{} - {}: row below LOS",
                p.a,
                p.b
            );
            assert!(
                p.los_us <= p.best_us + 1e-6,
                "{} - {}: best below LOS",
                p.a,
                p.b
            );
            // The average over paths can't beat the best path.
            assert!(p.best_us <= p.avg_us + 1e-6, "{} - {}", p.a, p.b);
            // All delays are in a sane range for adjacent long-haul pairs.
            assert!(p.best_us > 0.0 && p.best_us < 40_000.0);
        }
    }

    #[test]
    fn avg_exceeds_best_substantially_somewhere() {
        let r = report();
        // Paper: "average delays ... often substantially higher than the
        // best existing link".
        let frac_worse = r
            .pairs
            .iter()
            .filter(|p| p.avg_us > p.best_us * 1.25)
            .count() as f64
            / r.pairs.len() as f64;
        assert!(
            frac_worse > 0.2,
            "only {frac_worse:.2} of pairs show real detours"
        );
    }

    #[test]
    fn best_equals_row_for_majority() {
        let r = report();
        // Paper: ~65 %. Window: 45–95 %.
        assert!(
            (0.45..=0.95).contains(&r.best_equals_row_fraction),
            "best==ROW fraction {}",
            r.best_equals_row_fraction
        );
    }

    #[test]
    fn los_row_gap_has_heavy_tail() {
        let r = report();
        let median = r.los_row_gap_quantile(0.5);
        let p75 = r.los_row_gap_quantile(0.75);
        assert!(median < p75 || p75 == 0.0);
        assert!(median < 500.0, "median LOS-ROW gap {median} µs too large");
    }

    #[test]
    fn series_are_sorted_ms() {
        let r = report();
        let s = r.series_ms(|p| p.best_us);
        for w in s.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // Fig. 12's x-range: mostly below ~4 ms for adjacent pairs.
        let idx = (s.len() as f64 * 0.9) as usize;
        assert!(s[idx] < 10.0, "90th percentile best delay {} ms", s[idx]);
    }
}
