//! The "link exchange" model (§6.3).
//!
//! The paper proposes adapting the Internet-exchange-point model to
//! conduits: a consortium of providers jointly funds a strategically-placed
//! new trench, the way IXPs grew out of consortia keeping local traffic
//! local — possibly with government support given the shared-risk
//! externality. This module quantifies that proposal: for each conduit the
//! eq.-2 framework would add, it computes the cost per participant as the
//! consortium grows, the per-participant risk benefit, and the break-even
//! consortium size — with and without a public subsidy.

use intertubes_risk::RiskMatrix;
use serde::{Deserialize, Serialize};

use crate::augmentation::AugmentationReport;

/// Economic parameters of the exchange model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExchangeConfig {
    /// Trenching + conduit cost per km (abstract cost units; long-haul
    /// builds run $30k–$100k per mile in the period literature).
    pub cost_per_km: f64,
    /// Value a provider assigns to reducing its worst-case co-tenancy by
    /// one provider on one conduit (same cost units).
    pub value_per_srr_unit: f64,
    /// Fraction of the build publicly subsidised (the paper floats
    /// government support for critical-infrastructure hardening).
    pub subsidy: f64,
}

impl Default for ExchangeConfig {
    fn default() -> Self {
        ExchangeConfig {
            cost_per_km: 25_000.0,
            value_per_srr_unit: 150_000.0,
            subsidy: 0.0,
        }
    }
}

/// The exchange analysis for one candidate conduit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExchangeOffer {
    /// Endpoint labels.
    pub a: String,
    /// Endpoint labels.
    pub b: String,
    /// Build length along the right-of-way, km.
    pub row_km: f64,
    /// Total build cost after subsidy.
    pub total_cost: f64,
    /// Providers eligible to join (current tenants of the relieved conduit).
    pub eligible: usize,
    /// Per-participant benefit under the config's valuation.
    pub per_member_benefit: f64,
    /// Minimum consortium size at which per-member cost ≤ per-member
    /// benefit (`None` if even the full consortium cannot break even).
    pub break_even_members: Option<usize>,
}

/// The full §6.3 analysis over an augmentation report.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExchangeReport {
    /// Parameters used.
    pub config: ExchangeConfig,
    /// Offers, in the augmentation's greedy order.
    pub offers: Vec<ExchangeOffer>,
}

/// Evaluates the consortium economics of each augmentation addition.
pub fn exchange_analysis(
    rm: &RiskMatrix,
    augmentation: &AugmentationReport,
    cfg: &ExchangeConfig,
) -> ExchangeReport {
    let mut offers = Vec::with_capacity(augmentation.added.len());
    for add in &augmentation.added {
        let relieved = add.parallels.index();
        let eligible = rm.shared[relieved] as usize;
        let total_cost = add.row_km * cfg.cost_per_km * (1.0 - cfg.subsidy).max(0.0);
        // A participant who moves to the new trench halves its co-tenancy
        // on this link (the eq.-2 split model).
        let srr_per_member = rm.shared[relieved] as f64 / 2.0;
        let per_member_benefit = srr_per_member * cfg.value_per_srr_unit;
        let break_even_members = if per_member_benefit <= 0.0 {
            None
        } else {
            let need = (total_cost / per_member_benefit).ceil() as usize;
            (need <= eligible).then_some(need.max(1))
        };
        offers.push(ExchangeOffer {
            a: add.a.clone(),
            b: add.b.clone(),
            row_km: add.row_km,
            total_cost,
            eligible,
            per_member_benefit,
            break_even_members,
        });
    }
    ExchangeReport {
        config: *cfg,
        offers,
    }
}

impl ExchangeReport {
    /// Offers that close at some consortium size.
    pub fn viable(&self) -> impl Iterator<Item = &ExchangeOffer> {
        self.offers
            .iter()
            .filter(|o| o.break_even_members.is_some())
    }

    /// The subsidy fraction required to make `offer` viable at consortium
    /// size `members`.
    pub fn required_subsidy(offer: &ExchangeOffer, members: usize, cfg: &ExchangeConfig) -> f64 {
        if members == 0 {
            return 1.0;
        }
        let gross = offer.row_km * cfg.cost_per_km;
        let affordable = offer.per_member_benefit * members as f64;
        ((gross - affordable) / gross).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::augmentation::AddedConduit;
    use intertubes_map::MapConduitId;

    fn rm_with_shared(shared: Vec<u16>) -> RiskMatrix {
        // Build a matrix hull directly: empty uses, given shares.
        RiskMatrix {
            isps: vec!["A".into(), "B".into()],
            uses: vec![vec![false; shared.len()]; 2],
            shared,
        }
    }

    fn aug(row_km: f64, conduit: usize) -> AugmentationReport {
        AugmentationReport {
            added: vec![AddedConduit {
                parallels: MapConduitId(conduit as u32),
                a: "X, XX".into(),
                b: "Y, YY".into(),
                row_km,
                srr: 10.0,
            }],
            isps: vec!["A".into(), "B".into()],
            improvement: vec![vec![0.1], vec![0.0]],
        }
    }

    #[test]
    fn cheap_build_with_many_tenants_breaks_even_quickly() {
        let rm = rm_with_shared(vec![18]);
        // 100 km at 25k/km = 2.5 M; per-member benefit = 9 × 150k = 1.35 M.
        let report = exchange_analysis(&rm, &aug(100.0, 0), &ExchangeConfig::default());
        let o = &report.offers[0];
        assert_eq!(o.eligible, 18);
        assert_eq!(o.break_even_members, Some(2));
        assert!(report.viable().count() == 1);
    }

    #[test]
    fn expensive_build_needs_subsidy() {
        let rm = rm_with_shared(vec![4]);
        // 2000 km at 25k = 50 M; benefit/member = 2 × 150k = 300k; even 4
        // members cover 1.2 M — not viable unsubsidised.
        let cfg = ExchangeConfig::default();
        let report = exchange_analysis(&rm, &aug(2000.0, 0), &cfg);
        let o = &report.offers[0];
        assert_eq!(o.break_even_members, None);
        let subsidy = ExchangeReport::required_subsidy(o, 4, &cfg);
        assert!(subsidy > 0.9, "needs near-total subsidy, got {subsidy}");
    }

    #[test]
    fn full_subsidy_makes_everything_viable() {
        let rm = rm_with_shared(vec![4]);
        let cfg = ExchangeConfig {
            subsidy: 1.0,
            ..ExchangeConfig::default()
        };
        let report = exchange_analysis(&rm, &aug(2000.0, 0), &cfg);
        assert_eq!(report.offers[0].break_even_members, Some(1));
        assert_eq!(report.offers[0].total_cost, 0.0);
    }

    #[test]
    fn required_subsidy_is_bounded() {
        let rm = rm_with_shared(vec![18]);
        let cfg = ExchangeConfig::default();
        let report = exchange_analysis(&rm, &aug(100.0, 0), &cfg);
        let o = &report.offers[0];
        assert_eq!(ExchangeReport::required_subsidy(o, 0, &cfg), 1.0);
        assert_eq!(ExchangeReport::required_subsidy(o, 18, &cfg), 0.0);
    }
}
