//! Conduit augmentation (§5.2, eq. 2): add up to *k* new city-to-city
//! conduits to maximize global shared-risk reduction against deployment
//! cost.
//!
//! Model: a candidate new conduit parallels an existing heavily-shared
//! conduit along the cheapest right-of-way between its endpoints (its
//! deployment cost is that ROW mileage). When built, the incumbent tenants
//! re-balance across the old and new trench — sharing splits roughly in
//! half, which is exactly why the paper finds that a *small* number of new
//! conduits captures most of the achievable risk reduction, and why
//! providers whose footprints concentrate on the chokepoints (Telia, Tata,
//! NTT, Deutsche Telekom) gain the most while diversely-deployed providers
//! (Level 3, CenturyLink) barely move.

use intertubes_atlas::{City, TransportNetwork};
use intertubes_graph::{dijkstra, EdgeId, NodeId};
use intertubes_map::{FiberMap, MapConduitId};
use intertubes_risk::RiskMatrix;
use serde::{Deserialize, Serialize};

/// Parameters of the greedy augmentation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AugmentationConfig {
    /// Maximum number of new conduits to add (paper sweeps k = 1..10).
    pub max_new_conduits: usize,
    /// Candidate pool: the `n` most-shared conduits are eligible for a
    /// parallel relief trench.
    pub candidate_pool: usize,
    /// Deployment-cost weight λ (risk-reduction units per km). eq. 2 trades
    /// the summed SRR against DC; λ converts fiber miles into that scale.
    pub lambda_per_km: f64,
}

impl Default for AugmentationConfig {
    fn default() -> Self {
        AugmentationConfig {
            max_new_conduits: 10,
            candidate_pool: 40,
            lambda_per_km: 0.002,
        }
    }
}

/// One added conduit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AddedConduit {
    /// The heavy conduit being relieved.
    pub parallels: MapConduitId,
    /// Endpoint labels.
    pub a: String,
    /// Endpoint labels.
    pub b: String,
    /// Deployment length along the cheapest ROW, km.
    pub row_km: f64,
    /// Global shared-risk reduction achieved by this addition.
    pub srr: f64,
}

/// Fig. 11's data: per provider, the improvement ratio after each k.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AugmentationReport {
    /// The additions, in greedy order.
    pub added: Vec<AddedConduit>,
    /// Provider names.
    pub isps: Vec<String>,
    /// `improvement[i][k-1]`: provider i's relative reduction in average
    /// shared risk after the first k additions
    /// (`(before − after) / before`, 0 = no improvement).
    pub improvement: Vec<Vec<f64>>,
}

/// Per-provider average shared risk under a tenant-count vector.
fn avg_risk(rm: &RiskMatrix, shared: &[f64]) -> Vec<f64> {
    (0..rm.isp_count())
        .map(|i| {
            let cs = rm.conduits_of(i);
            if cs.is_empty() {
                return 0.0;
            }
            cs.iter().map(|&c| shared[c]).sum::<f64>() / cs.len() as f64
        })
        .collect()
}

/// Cheapest ROW mileage between two map nodes, over the road network (the
/// deployment-cost term DC of eq. 2). Falls back to geodesic distance when
/// the endpoints are not road-connected.
fn row_distance_km(
    cities: &[City],
    roads: &TransportNetwork,
    a_label: &str,
    b_label: &str,
    fallback_km: f64,
) -> f64 {
    let find = |label: &str| cities.iter().position(|c| c.label() == label);
    let (Some(ai), Some(bi)) = (find(a_label), find(b_label)) else {
        return fallback_km;
    };
    let cost = |e: EdgeId| roads.graph.edge(e).length_km;
    match dijkstra(&roads.graph, NodeId(ai as u32), NodeId(bi as u32), cost) {
        Ok(Some(p)) => p.cost,
        _ => fallback_km,
    }
}

/// Runs the greedy eq.-2 augmentation.
pub fn augment(
    map: &FiberMap,
    rm: &RiskMatrix,
    cities: &[City],
    roads: &TransportNetwork,
    cfg: &AugmentationConfig,
) -> AugmentationReport {
    let mut span = intertubes_obs::stage("mitigation.augmentation");
    span.items("candidate_pool", cfg.candidate_pool.min(rm.conduit_count()));
    // Mutable copy of per-conduit sharing, updated as additions land.
    let mut shared: Vec<f64> = rm.shared.iter().map(|&s| s as f64).collect();
    let before = avg_risk(rm, &shared);

    // Candidate pool: most-shared conduits.
    let mut pool: Vec<usize> = (0..rm.conduit_count()).collect();
    pool.sort_by(|&x, &y| rm.shared[y].cmp(&rm.shared[x]).then(x.cmp(&y)));
    pool.truncate(cfg.candidate_pool);

    struct Candidate {
        conduit: usize,
        row_km: f64,
    }
    let candidates: Vec<Candidate> = pool
        .into_iter()
        .map(|ci| {
            let c = &map.conduits[ci];
            let a = &map.nodes[c.a.index()];
            let b = &map.nodes[c.b.index()];
            let fallback = a.location.distance_km(&b.location);
            let row_km = row_distance_km(cities, roads, &a.label, &b.label, fallback);
            Candidate {
                conduit: ci,
                row_km,
            }
        })
        .collect();

    let mut used = vec![false; candidates.len()];
    let mut added = Vec::new();
    let mut improvement: Vec<Vec<f64>> = vec![Vec::new(); rm.isp_count()];

    for _k in 0..cfg.max_new_conduits {
        // Greedy: maximize SRR − λ·DC (eq. 2's argmax over S).
        // Splitting a conduit with sharing s in half reduces each of its s
        // tenants' exposure by ~s/2: SRR = s·(s/2) aggregated.
        let best = candidates
            .iter()
            .enumerate()
            .filter(|(i, _)| !used[*i])
            .map(|(i, cand)| {
                let s = shared[cand.conduit];
                let srr = s * (s / 2.0);
                (i, srr - cfg.lambda_per_km * cand.row_km * s.max(1.0))
            })
            .max_by(|a, b| a.1.total_cmp(&b.1));
        let Some((bi, objective)) = best else { break };
        if objective <= 0.0 {
            break; // no remaining addition pays for itself
        }
        used[bi] = true;
        let cand = &candidates[bi];
        let c = &map.conduits[cand.conduit];
        let old = shared[cand.conduit];
        let new = (old / 2.0).ceil();
        shared[cand.conduit] = new;
        added.push(AddedConduit {
            parallels: MapConduitId(cand.conduit as u32),
            a: map.nodes[c.a.index()].label.clone(),
            b: map.nodes[c.b.index()].label.clone(),
            row_km: cand.row_km,
            srr: (old - new) * old,
        });
        // Record the cumulative improvement ratio per provider.
        let after = avg_risk(rm, &shared);
        for i in 0..rm.isp_count() {
            let ratio = if before[i] > 0.0 {
                ((before[i] - after[i]) / before[i]).max(0.0)
            } else {
                0.0
            };
            improvement[i].push(ratio);
        }
    }
    span.items("added", added.len());
    AugmentationReport {
        added,
        isps: rm.isps.clone(),
        improvement,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intertubes_atlas::World;
    use intertubes_map::{build_map, PipelineConfig};
    use intertubes_records::{generate_corpus, CorpusConfig};

    fn setup() -> (World, FiberMap, RiskMatrix) {
        let w = World::reference();
        let corpus = generate_corpus(&w, &CorpusConfig::default());
        let built = build_map(
            &w.publish_maps(),
            &corpus,
            &w.cities,
            &w.roads,
            &w.rails,
            &PipelineConfig::default(),
        );
        let isps: Vec<String> = w
            .roster
            .iter()
            .take(intertubes_atlas::MAPPED_ISPS)
            .map(|p| p.name.clone())
            .collect();
        let rm = RiskMatrix::build(&built.map, &isps);
        (w, built.map, rm)
    }

    #[test]
    fn improvement_is_monotone_in_k() {
        let (w, map, rm) = setup();
        let report = augment(
            &map,
            &rm,
            &w.cities,
            &w.roads,
            &AugmentationConfig::default(),
        );
        assert!(!report.added.is_empty());
        for series in &report.improvement {
            for win in series.windows(2) {
                assert!(win[1] >= win[0] - 1e-12, "improvement must not regress");
            }
        }
        // Ratios live in [0, 1).
        for series in &report.improvement {
            for &v in series {
                assert!((0.0..1.0).contains(&v), "ratio {v}");
            }
        }
    }

    #[test]
    fn additions_target_heavy_conduits_first() {
        let (w, map, rm) = setup();
        let report = augment(
            &map,
            &rm,
            &w.cities,
            &w.roads,
            &AugmentationConfig::default(),
        );
        let first = &report.added[0];
        let first_shared = rm.shared[first.parallels.index()];
        let max_shared = rm.shared.iter().copied().max().unwrap();
        assert!(
            first_shared as f64 >= max_shared as f64 * 0.7,
            "first addition relieves a near-maximal conduit ({first_shared} vs max {max_shared})"
        );
    }

    #[test]
    fn concentrated_isps_gain_more_than_diverse_ones() {
        let (w, map, rm) = setup();
        let report = augment(
            &map,
            &rm,
            &w.cities,
            &w.roads,
            &AugmentationConfig::default(),
        );
        let last = report.improvement.iter().map(|s| *s.last().unwrap_or(&0.0));
        let gains: Vec<(String, f64)> = report.isps.iter().cloned().zip(last).collect();
        let get = |n: &str| gains.iter().find(|(i, _)| i == n).map(|(_, g)| *g).unwrap();
        // Paper's Fig. 11 shape: backbone-concentrated foreign carriers gain,
        // Level 3 / CenturyLink barely move.
        let concentrated =
            (get("TeliaSonera") + get("Tata") + get("NTT") + get("Deutsche Telekom")) / 4.0;
        let diverse = (get("Level 3") + get("CenturyLink") + get("EarthLink")) / 3.0;
        assert!(
            concentrated > diverse,
            "concentrated {concentrated:.3} must exceed diverse {diverse:.3}"
        );
    }

    #[test]
    fn deployment_costs_are_positive_row_distances() {
        let (w, map, rm) = setup();
        let report = augment(
            &map,
            &rm,
            &w.cities,
            &w.roads,
            &AugmentationConfig::default(),
        );
        for a in &report.added {
            assert!(a.row_km > 10.0, "ROW distance {} km", a.row_km);
            assert!(a.srr > 0.0);
        }
    }

    #[test]
    fn k_zero_adds_nothing() {
        let (w, map, rm) = setup();
        let cfg = AugmentationConfig {
            max_new_conduits: 0,
            ..AugmentationConfig::default()
        };
        let report = augment(&map, &rm, &w.cities, &w.roads, &cfg);
        assert!(report.added.is_empty());
        assert!(report.improvement.iter().all(|s| s.is_empty()));
    }
}
