//! Risk and latency mitigation frameworks (the paper's §5).
//!
//! * `robustness` — §5.1's robustness-suggestion framework (eq. 1):
//!   minimum-shared-risk rerouting of the most heavily shared conduits,
//!   path-inflation / shared-risk-reduction metrics, and best-peering
//!   suggestions.
//! * `augmentation` — §5.2's budgeted conduit-addition framework (eq. 2):
//!   greedy selection of up to k new conduits trading global shared-risk
//!   reduction against right-of-way deployment cost.
//! * `latency` — §5.3's propagation-delay study: best existing vs average
//!   existing vs best right-of-way vs line-of-sight delays.
//! * `exchange` — §6.3's "link exchange" proposal quantified: consortium
//!   economics (break-even membership, required subsidy) for the conduits
//!   the augmentation framework would add.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod augmentation;
mod exchange;
mod latency;
mod robustness;
mod whatif;

pub use augmentation::{augment, AddedConduit, AugmentationConfig, AugmentationReport};
pub use exchange::{exchange_analysis, ExchangeConfig, ExchangeOffer, ExchangeReport};
pub use latency::{latency_study, LatencyConfig, LatencyReport, PairLatency};
pub use robustness::{
    already_optimal_fraction, heaviest_conduits, robustness_suggestion,
    robustness_suggestion_weighted, IspRobustness, RobustnessReport,
};
pub use whatif::{apply_augmentation, apply_cut, what_if, what_if_cut, CutReport, WhatIfReport};
